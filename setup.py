"""Legacy setup shim.

Exists only so that ``pip install -e .`` works in offline environments
without the ``wheel`` package (see the note at the top of pyproject.toml);
all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
