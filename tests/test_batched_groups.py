"""Batched group kernel vs the looped per-set reference oracle.

The contract of :mod:`repro.citests.tablebase` is that ``test_group`` under
``batch_groups=True`` (offset-stacked bincount, stacked statistic
reductions, one ``gammaincc`` per group) is **bit-identical** to the looped
per-set path — same statistics, dofs, p-values, decisions and work-counter
accounting — across testers, storage layouts, depths, caches, duplicate
sets and compressed-Z fallbacks.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.citests.chisquare import ChiSquareTest
from repro.citests.contingency import ci_counts, group_ci_counts
from repro.citests.gsquare import GSquareTest
from repro.citests.mutual_info import MutualInformationTest
from repro.datasets.dataset import DiscreteDataset
from repro.datasets.encoded import EncodedDataset
from repro.engine.statscache import SufficientStatsCache

TESTERS = [GSquareTest, ChiSquareTest, MutualInformationTest]


def _make_tester(cls, dataset, *, batch, cache=False, **kw):
    if cls is MutualInformationTest:
        kw.pop("compress_threshold", None)
    if cache:
        kw["stats_cache"] = SufficientStatsCache()
    return cls(dataset, batch_groups=batch, **kw)


def _assert_results_identical(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want, strict=True):
        assert (g.x, g.y, g.s) == (w.x, w.y, w.s)
        assert g.statistic == w.statistic  # bitwise: no tolerance
        assert g.dof == w.dof
        assert g.p_value == w.p_value
        assert g.independent == w.independent


def _assert_counters_identical(got, want):
    assert got.n_tests == want.n_tests
    assert got.data_accesses == want.data_accesses
    assert got.table_cells == want.table_cells
    assert got.log_ops == want.log_ops
    assert got.per_depth_tests == want.per_depth_tests
    assert got.cache_hits == want.cache_hits
    assert got.cache_misses == want.cache_misses


GROUPS = [
    # (x, y, sets) over the 8-variable asia_data — one group per shape of
    # interest: depth-0+1 mix, uniform depth 1, uniform depth 2 (unequal
    # arity products exercise the padded stack), duplicates, depth 3.
    (0, 1, [(), (2,)]),
    (2, 3, [(0,), (1,), (4,), (5,)]),
    (0, 5, [(1, 2), (3, 4), (6, 7), (2, 6)]),
    (4, 6, [(1,), (1,), (3,), (1,)]),
    (1, 7, [(0, 2, 3), (2, 4, 5), (0, 3, 6)]),
]


class TestBatchedMatchesLooped:
    @pytest.mark.parametrize("cls", TESTERS)
    @pytest.mark.parametrize("layout", ["variable-major", "sample-major"])
    @pytest.mark.parametrize("cache", [False, True])
    def test_bitwise_identical_results_and_counters(self, asia_data, cls, layout, cache):
        data = asia_data.with_layout(layout)
        batched = _make_tester(cls, data, batch=True, cache=cache)
        looped = _make_tester(cls, data, batch=False, cache=cache)
        for x, y, sets in GROUPS:
            _assert_results_identical(
                batched.test_group(x, y, sets), looped.test_group(x, y, sets)
            )
        _assert_counters_identical(batched.counters, looped.counters)

    @pytest.mark.parametrize("cache", [False, True])
    def test_compressed_sets_fall_back(self, cache):
        # Tiny m with high-arity Z forces np.unique compression for the
        # deep sets while the shallow ones stay dense: a mixed group.
        rng = np.random.default_rng(5)
        rows = np.column_stack(
            [rng.integers(0, 2, 40), rng.integers(0, 2, 40)]
            + [rng.integers(0, 9, 40) for _ in range(4)]
        )
        data = DiscreteDataset.from_rows(rows, arities=[2, 2, 9, 9, 9, 9])
        sets = [(2,), (2, 3, 4, 5), (3,), (2, 4, 5), (4, 5)]
        batched = _make_tester(GSquareTest, data, batch=True, cache=cache)
        looped = _make_tester(GSquareTest, data, batch=False, cache=cache)
        _assert_results_identical(
            batched.test_group(0, 1, sets), looped.test_group(0, 1, sets)
        )
        _assert_counters_identical(batched.counters, looped.counters)

    def test_cache_warm_after_batched_group(self, asia_data):
        # Every table of a batched pass must land in the cache (bulk
        # insert): replaying the group is all hits, and the cached tables
        # are bit-identical to fresh uncached builds.
        cache = SufficientStatsCache()
        tester = GSquareTest(asia_data, stats_cache=cache)
        sets = [(2,), (3,), (2, 3)]
        tester.test_group(0, 1, sets)
        assert cache.stats().misses == len(sets)
        before = cache.stats().hits
        tester.test_group(0, 1, sets)
        assert cache.stats().hits >= before + len(sets)
        for s in sets:
            counts, nz, *_ = tester._builder.ci_counts(0, 1, s)
            ref, nz_ref, _ = ci_counts(
                asia_data.column(0),
                asia_data.column(1),
                asia_data.columns(s),
                asia_data.arity(0),
                asia_data.arity(1),
                [asia_data.arity(v) for v in s],
            )
            assert nz == nz_ref
            np.testing.assert_array_equal(counts, ref)

    def test_tiny_cache_budget_keeps_counter_parity(self, asia_data):
        # A budget below one table's size means stores are rejected:
        # in-group duplicates/subsets must then be rebuilt (and billed)
        # exactly as the looped path rebuilds them.
        for max_bytes in (0, 64):
            batched = GSquareTest(asia_data, stats_cache=SufficientStatsCache(max_bytes))
            looped = GSquareTest(
                asia_data, stats_cache=SufficientStatsCache(max_bytes), batch_groups=False
            )
            sets = [(2, 3), (2,), (2, 3), (3,)]  # dup + subsets of the first
            _assert_results_identical(
                batched.test_group(0, 1, sets), looped.test_group(0, 1, sets)
            )
            _assert_counters_identical(batched.counters, looped.counters)

    def test_aborted_group_leaves_no_pending_placeholders(self, asia_data, monkeypatch):
        # An exception mid-group must not leave reserved-but-unfilled
        # slots behind: later lookups would trip over the placeholders.
        import repro.citests.tablebase as tb

        cache = SufficientStatsCache()
        tester = GSquareTest(asia_data, stats_cache=cache)

        def boom(*a, **k):
            raise MemoryError("simulated mid-group failure")

        monkeypatch.setattr(tb, "fused_cell_counts", boom)
        with pytest.raises(MemoryError):
            tester.test_group(0, 1, [(2,), (3,)])
        monkeypatch.undo()
        from repro.engine.statscache import _PENDING

        assert not any(
            e.kind == "table" and e.value[0] is _PENDING for e in cache._entries.values()
        )
        # The tester keeps working and the cache self-heals.
        replay = tester.test_group(0, 1, [(2,), (3,)])
        fresh = GSquareTest(asia_data).test_group(0, 1, [(2,), (3,)])
        _assert_results_identical(replay, fresh)

    def test_cached_tables_do_not_pin_group_stack(self, asia_data):
        # Stored tables must be standalone copies, not views into the
        # whole group's bincount stack (a view would defeat the cache's
        # byte budget).
        cache = SufficientStatsCache()
        tester = GSquareTest(asia_data, stats_cache=cache)
        tester.test_group(0, 1, [(2,), (3,), (4,)])
        for entry in cache._entries.values():
            if entry.kind != "table":
                continue
            counts = entry.value[0]
            assert counts.base is None
            assert entry.nbytes == counts.nbytes

    def test_shared_encoded_layer_changes_nothing(self, asia_data):
        shared = EncodedDataset(asia_data)
        with_shared = GSquareTest(asia_data, encoded=shared)
        private = GSquareTest(asia_data)
        for x, y, sets in GROUPS:
            _assert_results_identical(
                with_shared.test_group(x, y, sets), private.test_group(x, y, sets)
            )
        _assert_counters_identical(with_shared.counters, private.counters)
        assert shared.stats()["n_xy"] > 0  # the layer actually memoized

    def test_skeleton_bit_identical(self, asia_data):
        from repro.core.skeleton import learn_skeleton

        runs = {}
        for batch in (True, False):
            tester = GSquareTest(asia_data, batch_groups=batch)
            graph, sepsets, _stats = learn_skeleton(
                tester, asia_data.n_variables, gs=4, group_endpoints=True
            )
            runs[batch] = (set(graph.edges()), sepsets.as_dict())
        assert runs[True] == runs[False]


# ---------------------------------------------------------------------- #
# kernel-level equivalence (tables, not statistics)
# ---------------------------------------------------------------------- #
class TestGroupCICounts:
    def test_stack_matches_per_set_tables(self, rng):
        m = 200
        x = rng.integers(0, 3, m).astype(np.uint8)
        y = rng.integers(0, 2, m).astype(np.uint8)
        zs = [rng.integers(0, a, m).astype(np.uint8) for a in (2, 3, 4)]
        xy = x.astype(np.int64) * 2 + y
        sets = [(None, 1), (zs[0].astype(np.int64), 2), (zs[1].astype(np.int64), 3)]
        # Include a two-variable set (mixed radix 3*4=12).
        z12 = zs[1].astype(np.int64) * 4 + zs[2]
        sets.append((z12, 12))
        stack = group_ci_counts(xy, [s[0] for s in sets], [s[1] for s in sets], 3, 2)
        assert stack.shape == (4, 12, 3, 2)
        z_cols = [[], [zs[0]], [zs[1]], [zs[1], zs[2]]]
        rz = [[], [2], [3], [3, 4]]
        for k in range(4):
            ref, nz_ref, dense = ci_counts(x, y, z_cols[k], 3, 2, rz[k])
            assert dense and nz_ref == sets[k][1]
            np.testing.assert_array_equal(stack[k, : sets[k][1]], ref)
            assert stack[k, sets[k][1] :].sum() == 0  # padding rows empty

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            group_ci_counts(np.zeros(3, dtype=np.int64), [None], [1, 1], 2, 2)
        with pytest.raises(ValueError):
            group_ci_counts(np.zeros(3, dtype=np.int64), [], [], 2, 2)


# ---------------------------------------------------------------------- #
# property: random datasets and groups, batched == looped bitwise
# ---------------------------------------------------------------------- #
@st.composite
def dataset_and_groups(draw):
    n_vars = draw(st.integers(4, 7))
    arities = [draw(st.integers(2, 4)) for _ in range(n_vars)]
    m = draw(st.integers(1, 80))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    rows = np.column_stack([rng.integers(0, a, m) for a in arities])
    layout = draw(st.sampled_from(["variable-major", "sample-major"]))
    ds = DiscreteDataset.from_rows(rows, arities=arities, layout=layout)
    x = draw(st.integers(0, n_vars - 1))
    y = draw(st.integers(0, n_vars - 1).filter(lambda v: v != x))
    pool = [v for v in range(n_vars) if v not in (x, y)]
    n_sets = draw(st.integers(2, 6))
    sets = []
    for _ in range(n_sets):
        size = draw(st.integers(0, len(pool)))
        sets.append(tuple(sorted(draw(st.permutations(pool))[:size])))
    return ds, x, y, sets


@given(dataset_and_groups(), st.booleans(), st.sampled_from(["g2", "chi2"]))
@settings(max_examples=60, deadline=None)
def test_batched_equals_looped_property(args, use_cache, which):
    ds, x, y, sets = args
    cls = GSquareTest if which == "g2" else ChiSquareTest
    batched = _make_tester(cls, ds, batch=True, cache=use_cache)
    looped = _make_tester(cls, ds, batch=False, cache=use_cache)
    _assert_results_identical(batched.test_group(x, y, sets), looped.test_group(x, y, sets))
    _assert_counters_identical(batched.counters, looped.counters)
