"""Tests for the socket transport layer (repro.engine.transport/client).

Covers the ISSUE-5 transport surface: TCP and Unix-socket round trips
speaking the exact ``fastbns serve`` JSONL protocol, per-connection
response ordering under pipelining, concurrent-client equivalence with
the in-process dispatcher, graceful drain (in-flight served, clean EOF,
manifest accounting), and address parsing.  Every blocking call carries
a timeout so a reintroduced deadlock fails fast instead of hanging the
suite.
"""

from __future__ import annotations

import json
import threading
import time

import pytest
from _timeouts import hard_timeout

from repro.engine import EngineClient, EngineServer, EngineTransport
from repro.engine.transport import parse_address

TIMEOUT = 30.0


def _payload(resp: dict) -> str:
    """Everything a client consumes, minus timing."""
    return json.dumps(
        {k: resp[k] for k in ("op", "dataset", "fingerprint", "cached", "result", "error")},
        sort_keys=True,
    )


@pytest.fixture()
def engine(asia_data, sprinkler_data):
    srv = EngineServer(alpha=0.05)
    srv.register("asia", asia_data)
    srv.register("sprinkler", sprinkler_data)
    yield srv
    srv.close()


@pytest.fixture()
def transport(engine):
    t = EngineTransport(engine, "127.0.0.1:0", threads=2, window=8)
    t.start()
    yield t
    t.shutdown(timeout=TIMEOUT)


class TestParseAddress:
    def test_tcp(self):
        assert parse_address("127.0.0.1:7878") == ("tcp", ("127.0.0.1", 7878))
        assert parse_address(("localhost", 9)) == ("tcp", ("localhost", 9))

    def test_unix(self):
        assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")

    @pytest.mark.parametrize("bad", ["", "nocolon", "host:notaport", "unix:", 7, None])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


class TestRoundTrip:
    def test_lockstep_learn_blanket_admin(self, transport):
        with EngineClient(transport.describe(), timeout=TIMEOUT) as client:
            learn = client.learn("asia", max_depth=1)
            assert learn["error"] is None and learn["dataset"] == "asia"
            again = client.learn("asia", max_depth=1)
            assert again["cached"] and again["result"] == learn["result"]
            blanket = client.blanket(0, dataset="sprinkler")
            assert blanket["error"] is None and "blanket" in blanket["result"]
            stats = client.stats()
            assert stats["result"]["sessions"]["live"] == 2

    def test_matches_in_process_dispatch(self, transport, asia_data, sprinkler_data):
        reqs = [
            {"op": "learn", "dataset": ds, "alpha": a, "max_depth": 1}
            for a in (0.05, 0.01)
            for ds in ("asia", "sprinkler")
        ] + [
            {"op": "learn", "dataset": "asia", "alpha": 0.05, "max_depth": 1},  # hit
            {"op": "learn", "dataset": "asia", "gs": 0},  # error
        ]
        with EngineClient(transport.describe(), timeout=TIMEOUT) as client:
            for r in reqs:
                client.send(r)
            over_wire = client.drain()
        with EngineServer(alpha=0.05) as reference:
            reference.register("asia", asia_data)
            reference.register("sprinkler", sprinkler_data)
            direct = reference.serve(reqs)
        assert [_payload(a) for a in over_wire] == [_payload(b) for b in direct]

    def test_parse_error_keeps_stream_alive(self, transport):
        with EngineClient(transport.describe(), timeout=TIMEOUT) as client:
            client._writer.write('{"op": "learn", "dataset": "asia", "max_depth": 0}\n')
            client._writer.write("this is not json\n")
            client._writer.write('{"op": "learn", "dataset": "asia", "max_depth": 0}\n')
            client._writer.flush()
            client._pending = 3
            first, bad, third = client.drain()
        assert first["error"] is None
        assert "invalid JSON" in bad["error"]
        assert third["cached"]

    def test_unix_socket_stale_file_is_reclaimed(self, engine, tmp_path):
        """Review fix (ISSUE-5): a SIGKILLed server leaves its socket
        file behind; the next bind must reclaim it instead of failing
        with EADDRINUSE — but never delete a live listener's socket or
        a regular file."""
        import socket as socket_mod

        path = tmp_path / "stale.sock"
        leftover = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
        leftover.bind(str(path))
        leftover.close()  # bound but never listening: stale
        t = EngineTransport(engine, f"unix:{path}", threads=1, window=2)
        t.start()
        try:
            with pytest.raises(OSError, match="live listener"):
                EngineTransport(engine, f"unix:{path}")
        finally:
            t.shutdown(timeout=TIMEOUT)
        regular = tmp_path / "regular.txt"
        regular.write_text("not a socket")
        with pytest.raises(OSError):
            EngineTransport(engine, f"unix:{regular}")
        assert regular.exists(), "a regular file must never be reclaimed"

    def test_unix_socket(self, engine, tmp_path):
        path = tmp_path / "fastbns.sock"
        t = EngineTransport(engine, f"unix:{path}", threads=2, window=4)
        t.start()
        try:
            with EngineClient(f"unix:{path}", timeout=TIMEOUT) as client:
                resp = client.learn("asia", max_depth=0)
                assert resp["error"] is None
        finally:
            t.shutdown(timeout=TIMEOUT)
        assert not path.exists(), "unix socket must be unlinked on shutdown"


class TestConcurrentClients:
    def test_two_clients_interleaved_datasets(self, transport, asia_data, sprinkler_data):
        """Two connections pipelining different datasets: each connection
        sees ordered responses whose payloads equal the sequential
        per-dataset reference (`cached` included — per-session order is
        each client's send order)."""
        per_client = {
            "asia": [
                {"op": "learn", "dataset": "asia", "alpha": a, "max_depth": 1}
                for a in (0.05, 0.01, 0.05)
            ],
            "sprinkler": [
                {"op": "learn", "dataset": "sprinkler", "alpha": a, "max_depth": 1}
                for a in (0.05, 0.01, 0.05)
            ],
        }
        results: dict[str, list] = {}
        errors: list = []

        def run(label: str) -> None:
            try:
                with EngineClient(transport.describe(), timeout=TIMEOUT) as client:
                    for req in per_client[label]:
                        client.send(req)
                    results[label] = client.drain()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        workers = [threading.Thread(target=run, args=(label,)) for label in per_client]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=TIMEOUT)
            assert not w.is_alive(), "client thread hung"
        assert not errors, errors

        for label, data in (("asia", asia_data), ("sprinkler", sprinkler_data)):
            with EngineServer(alpha=0.05) as reference:
                reference.register(label, data)
                direct = reference.serve(per_client[label])
            assert [_payload(a) for a in results[label]] == [
                _payload(b) for b in direct
            ]

    def test_connection_counters(self, transport):
        with EngineClient(transport.describe(), timeout=TIMEOUT) as c1:
            c1.learn("asia", max_depth=0)
        with EngineClient(transport.describe(), timeout=TIMEOUT) as c2:
            c2.learn("asia", max_depth=0)
        transport.shutdown(timeout=TIMEOUT)
        assert transport.n_connections == 2
        assert transport.n_responses == 2


class TestDrain:
    def test_shutdown_drains_inflight_then_clean_eof(self, engine):
        """Requests already received are served through the drain; the
        client then reads a clean EOF (never a connection reset), and the
        manifest accounts for everything."""
        with hard_timeout(3 * TIMEOUT, "drain test"):
            t = EngineTransport(engine, "127.0.0.1:0", threads=2, window=8)
            t.start()
            client = EngineClient(t.describe(), timeout=TIMEOUT)
            try:
                # Prime synchronously so the drain burst is all cache hits —
                # the test then exercises ordering, not learn latency.
                assert client.learn("asia", max_depth=0)["error"] is None
                for _ in range(5):
                    client.send({"op": "learn", "dataset": "asia", "max_depth": 0})
                # Give the connection time to ingest the burst; the drain
                # must then serve it without us reading a single response.
                time.sleep(0.5)
                t.shutdown(drain=True, timeout=TIMEOUT)
                responses = client.drain()
                assert len(responses) == 5
                assert all(r["cached"] for r in responses)
                with pytest.raises(ConnectionError, match="closed the connection"):
                    client.recv()
            finally:
                client.close()
            doc = engine.manifest()
            assert doc["totals"]["n_requests"] == 6

    def test_shutdown_is_idempotent_and_stops_accepts(self, engine):
        with hard_timeout(3 * TIMEOUT, "idempotent shutdown test"):
            t = EngineTransport(engine, "127.0.0.1:0", threads=1, window=2)
            t.start()
            t.shutdown(timeout=TIMEOUT)
            t.shutdown(timeout=TIMEOUT)  # second call is a no-op
            with pytest.raises(OSError):
                EngineClient(t.describe(), timeout=2.0).learn("asia")
