"""Property-based tests for the score, Markov-blanket and extension
subsystems."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.citests.oracle import OracleCITest
from repro.core.markov_blanket import grow_shrink, iamb, true_markov_blanket
from repro.datasets.dataset import DiscreteDataset
from repro.graphs.dag import dag_to_cpdag, is_acyclic, v_structures_of_dag
from repro.graphs.extension import pdag_to_dag
from repro.networks.generators import random_dag
from repro.score.scores import BDeuScore, BICScore, LogLikelihoodScore


@st.composite
def small_dataset(draw):
    n_vars = draw(st.integers(2, 4))
    arities = [draw(st.integers(2, 3)) for _ in range(n_vars)]
    m = draw(st.integers(5, 50))
    rows = np.array(
        [[draw(st.integers(0, a - 1)) for a in arities] for _ in range(m)], dtype=np.int64
    )
    return DiscreteDataset.from_rows(rows, arities=arities)


@given(small_dataset())
@settings(max_examples=25, deadline=None)
def test_loglik_never_decreases_with_more_parents(data):
    score = LogLikelihoodScore(data)
    n = data.n_variables
    for node in range(n):
        others = [v for v in range(n) if v != node]
        prev = score.local_score(node, ())
        for k in range(1, len(others) + 1):
            current = score.local_score(node, tuple(others[:k]))
            assert current >= prev - 1e-9
            prev = current


@given(small_dataset())
@settings(max_examples=25, deadline=None)
def test_bic_bounded_by_loglik(data):
    bic = BICScore(data)
    ll = LogLikelihoodScore(data)
    n = data.n_variables
    for node in range(n):
        parents = tuple(v for v in range(n) if v != node)
        assert bic.local_score(node, parents) <= ll.local_score(node, parents) + 1e-9


@given(st.integers(3, 8), st.data())
@settings(max_examples=20, deadline=None)
def test_bdeu_score_equivalence_property(n, data):
    """Markov-equivalent DAGs (same skeleton + v-structures) get the same
    BDeu score — tested by reversing a *reversible* edge of a random DAG."""
    e = data.draw(st.integers(1, min(n * (n - 1) // 2, 2 * n)))
    seed = data.draw(st.integers(0, 2**31 - 1))
    edges = random_dag(n, e, rng=seed, max_parents=None)
    rows_seed = data.draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(rows_seed)
    rows = rng.integers(0, 2, size=(40, n))
    ds = DiscreteDataset.from_rows(rows, arities=[2] * n)
    bdeu = BDeuScore(ds, equivalent_sample_size=2.0)

    def total(edge_list):
        parents = [[] for _ in range(n)]
        for u, v in edge_list:
            parents[v].append(u)
        return bdeu.total_score(parents)

    base_vs = v_structures_of_dag(n, edges)
    base_score = total(edges)
    for i, (u, v) in enumerate(edges):
        flipped = list(edges)
        flipped[i] = (v, u)
        if not is_acyclic(n, flipped):
            continue
        if v_structures_of_dag(n, flipped) != base_vs:
            continue
        assert abs(total(flipped) - base_score) <= 1e-8 * max(1.0, abs(base_score))


@given(st.integers(3, 9), st.data())
@settings(max_examples=20, deadline=None)
def test_markov_blanket_symmetry_property(n, data):
    """Oracle MB discovery satisfies symmetry: y in MB(x) iff x in MB(y)."""
    e = data.draw(st.integers(0, min(n * (n - 1) // 2, 2 * n)))
    seed = data.draw(st.integers(0, 2**31 - 1))
    edges = random_dag(n, e, rng=seed, max_parents=None)
    tester = OracleCITest(n, edges)
    blankets = [grow_shrink(tester, n, t).blanket for t in range(n)]
    for x in range(n):
        for y in range(n):
            if x == y:
                continue
            assert (y in blankets[x]) == (x in blankets[y])


@given(st.integers(3, 9), st.data())
@settings(max_examples=20, deadline=None)
def test_iamb_equals_grow_shrink_under_oracle(n, data):
    e = data.draw(st.integers(0, min(n * (n - 1) // 2, 2 * n)))
    seed = data.draw(st.integers(0, 2**31 - 1))
    edges = random_dag(n, e, rng=seed, max_parents=None)
    tester = OracleCITest(n, edges)
    for t in range(n):
        truth = true_markov_blanket(n, edges, t)
        assert grow_shrink(tester, n, t).blanket == truth
        assert iamb(tester, n, t).blanket == truth


@given(st.integers(2, 9), st.data())
@settings(max_examples=25, deadline=None)
def test_pdag_extension_property(n, data):
    """Any CPDAG of a random DAG extends to a DAG in the same equivalence
    class (same skeleton and v-structures)."""
    e = data.draw(st.integers(0, min(n * (n - 1) // 2, 2 * n)))
    seed = data.draw(st.integers(0, 2**31 - 1))
    edges = random_dag(n, e, rng=seed, max_parents=None)
    cpdag = dag_to_cpdag(n, edges)
    extension = pdag_to_dag(cpdag)
    assert is_acyclic(n, extension)
    assert {(min(a, b), max(a, b)) for a, b in extension} == {
        (min(a, b), max(a, b)) for a, b in edges
    }
    assert v_structures_of_dag(n, extension) == v_structures_of_dag(n, edges)
