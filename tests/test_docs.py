"""Documentation layer: integrity checker, perf-table renderer, artefacts.

Mirrors the CI docs job so doc rot fails locally in the tier-1 suite, not
just post-push: the promised documents exist, every intra-repo reference
resolves, and the README perf table matches the JSON artefacts.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


def _load_script(name: str):
    path = REPO / "scripts" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def check_docs():
    return _load_script("check_docs")


@pytest.fixture(scope="module")
def render_bench_table():
    return _load_script("render_bench_table")


class TestPromisedDocumentsExist:
    @pytest.mark.parametrize(
        "relpath",
        [
            "EXPERIMENTS.md",
            "docs/ARCHITECTURE.md",
            "benchmarks/results/README.md",
            "README.md",
        ],
    )
    def test_exists_and_non_trivial(self, relpath):
        path = REPO / relpath
        assert path.is_file(), f"{relpath} is promised by code/docs but missing"
        assert len(path.read_text()) > 500

    def test_experiments_covers_required_topics(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for topic in ("GIL", "simulat", "extrapolat", "Table III", "Fig. 4", "REPRO_FULL"):
            assert topic in text, f"EXPERIMENTS.md lost its {topic!r} discussion"

    def test_architecture_links_layers_and_checklist(self):
        text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        for topic in ("repro.datasets", "repro.citests", "repro.parallel", "repro.engine"):
            assert topic in text
        assert "- [ ]" in text  # the reproduction checklist


class TestNoDanglingReferences:
    def test_checker_reports_clean_tree(self, check_docs):
        problems: list[str] = []
        check_docs.check_markdown_links(problems)
        check_docs.check_python_citations(problems)
        assert problems == []

    def test_checker_catches_planted_rot(self, check_docs, tmp_path, monkeypatch):
        rotten = tmp_path / "src"
        rotten.mkdir()
        # Names assembled at runtime so the real checker does not flag
        # this test file itself when scanning tests/.
        missing_doc = "MISSING_DOC" + ".m" + "d"
        missing_link = "docs/NOPE" + ".m" + "d"
        (rotten / "mod.py").write_text(f'"""See {missing_doc} for details."""\n')
        (tmp_path / "README.md").write_text(f"[gone]({missing_link})\n")
        monkeypatch.setattr(check_docs, "REPO", tmp_path)
        problems: list[str] = []
        check_docs.check_markdown_links(problems)
        check_docs.check_python_citations(problems)
        assert len(problems) == 2


class TestPerfTable:
    def test_readme_table_is_fresh(self, render_bench_table):
        current = (REPO / "README.md").read_text()
        regenerated = render_bench_table.splice(current, render_bench_table.render_table())
        assert regenerated == current, (
            "README perf table does not match the BENCH_*.json artefacts "
            "(expected after re-running benchmarks) — regenerate with "
            "`python scripts/render_bench_table.py`"
        )

    def test_splice_requires_markers(self, render_bench_table):
        with pytest.raises(SystemExit, match="markers"):
            render_bench_table.splice("no markers here", "table")

    def test_every_perf_artefact_gets_a_row(self, render_bench_table):
        artefacts = sorted((REPO / "benchmarks" / "results").glob("BENCH_*.json"))
        table = render_bench_table.render_table()
        n_rows = sum(1 for line in table.splitlines() if line.startswith("|")) - 2
        assert n_rows == len(artefacts)
