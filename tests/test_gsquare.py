"""G^2 test: cross-checks against scipy, decision behaviour, counters."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import chi2_contingency

from repro.citests.gsquare import GSquareTest, g2_test_from_counts
from repro.datasets.dataset import DiscreteDataset


def make_dataset(rows, arities=None, layout="variable-major"):
    return DiscreteDataset.from_rows(np.asarray(rows), arities=arities, layout=layout)


@pytest.fixture()
def dependent_data(rng):
    """Y strongly depends on X."""
    m = 2000
    x = rng.integers(0, 2, m)
    noise = rng.random(m) < 0.1
    y = np.where(noise, 1 - x, x)
    z = rng.integers(0, 2, m)
    return make_dataset(np.column_stack([x, y, z]))


@pytest.fixture()
def independent_data(rng):
    m = 2000
    return make_dataset(rng.integers(0, 3, size=(m, 3)), arities=[3, 3, 3])


class TestAgainstScipy:
    def test_marginal_statistic_matches_scipy(self, rng):
        m = 1000
        rows = rng.integers(0, 3, size=(m, 2))
        ds = make_dataset(rows, arities=[3, 3])
        res = GSquareTest(ds).test(0, 1, ())
        table = np.zeros((3, 3))
        for a, b in rows:
            table[a, b] += 1
        expected_stat, expected_p, expected_dof, _ = chi2_contingency(
            table, correction=False, lambda_="log-likelihood"
        )
        assert res.statistic == pytest.approx(expected_stat, rel=1e-10)
        assert res.dof == expected_dof
        assert res.p_value == pytest.approx(expected_p, rel=1e-8)

    def test_conditional_statistic_is_sum_of_slices(self, rng):
        m = 3000
        rows = np.column_stack(
            [rng.integers(0, 2, m), rng.integers(0, 2, m), rng.integers(0, 3, m)]
        )
        ds = make_dataset(rows, arities=[2, 2, 3])
        res = GSquareTest(ds).test(0, 1, (2,))
        total = 0.0
        for zv in range(3):
            sub = rows[rows[:, 2] == zv]
            table = np.zeros((2, 2))
            for a, b, _ in sub:
                table[a, b] += 1
            if (table.sum(axis=0) > 0).sum() > 1 and (table.sum(axis=1) > 0).sum() > 1:
                stat, _, _, _ = chi2_contingency(
                    table + 0, correction=False, lambda_="log-likelihood"
                )
                total += stat
            # slices with degenerate margins contribute 0
        assert res.statistic == pytest.approx(total, rel=1e-8, abs=1e-9)
        assert res.dof == 1 * 1 * 3


class TestDecisions:
    def test_detects_dependence(self, dependent_data):
        res = GSquareTest(dependent_data).test(0, 1, ())
        assert not res.independent
        assert res.p_value < 1e-6

    def test_accepts_independence(self, independent_data):
        res = GSquareTest(independent_data).test(0, 1, ())
        assert res.p_value > 0.001  # not astronomically small

    def test_conditioning_breaks_dependence(self, rng):
        # X -> Z -> Y chain: X and Y dependent, independent given Z.
        m = 5000
        x = rng.integers(0, 2, m)
        z = np.where(rng.random(m) < 0.9, x, 1 - x)
        y = np.where(rng.random(m) < 0.9, z, 1 - z)
        ds = make_dataset(np.column_stack([x, y, z]))
        tester = GSquareTest(ds)
        assert not tester.test(0, 1, ()).independent
        assert tester.test(0, 1, (2,)).independent

    def test_layout_invariance(self, dependent_data):
        vm = GSquareTest(dependent_data).test(0, 1, (2,))
        sm = GSquareTest(dependent_data.with_layout("sample-major")).test(0, 1, (2,))
        assert vm.statistic == pytest.approx(sm.statistic, rel=1e-12)
        assert vm.independent == sm.independent

    def test_alpha_controls_decision(self, rng):
        m = 800
        x = rng.integers(0, 2, m)
        y = np.where(rng.random(m) < 0.45, 1 - x, x)  # weak dependence
        ds = make_dataset(np.column_stack([x, y]))
        res = GSquareTest(ds, alpha=0.05).test(0, 1, ())
        p = res.p_value
        strict = GSquareTest(ds, alpha=min(p / 2, 0.5)).test(0, 1, ())
        loose = GSquareTest(ds, alpha=min(p * 1.5, 0.99)).test(0, 1, ())
        assert strict.independent
        assert not loose.independent

    def test_zero_dof_is_independent(self):
        ds = make_dataset([[0, 0], [0, 1], [0, 0]], arities=[1, 2])
        res = GSquareTest(ds).test(0, 1, ())
        assert res.dof == 0
        assert res.p_value == 1.0
        assert res.independent

    def test_invalid_alpha(self, independent_data):
        with pytest.raises(ValueError):
            GSquareTest(independent_data, alpha=0.0)
        with pytest.raises(ValueError):
            GSquareTest(independent_data, alpha=1.0)

    def test_invalid_dof_adjust(self, independent_data):
        with pytest.raises(ValueError):
            GSquareTest(independent_data, dof_adjust="magic")


class TestDofAdjust:
    def test_slices_mode_counts_nonempty(self, rng):
        m = 400
        x = rng.integers(0, 2, m)
        y = rng.integers(0, 2, m)
        z = rng.integers(0, 2, m) * 3  # values {0, 3} of arity 4: 2 empty slices
        ds = make_dataset(np.column_stack([x, y, z]), arities=[2, 2, 4])
        structural = GSquareTest(ds, dof_adjust="structural").test(0, 1, (2,))
        adjusted = GSquareTest(ds, dof_adjust="slices").test(0, 1, (2,))
        assert structural.dof == 4
        assert adjusted.dof == 2
        assert structural.statistic == pytest.approx(adjusted.statistic)


class TestGroupEvaluation:
    def test_group_results_match_individual(self, dependent_data):
        tester = GSquareTest(dependent_data)
        sets = [(), (2,)]
        group = tester.test_group(0, 1, sets)
        singles = [GSquareTest(dependent_data).test(0, 1, s) for s in sets]
        for g, s in zip(group, singles, strict=True):
            assert g.statistic == pytest.approx(s.statistic, rel=1e-12)
            assert g.independent == s.independent

    def test_group_counters_account_reuse(self, dependent_data):
        tester = GSquareTest(dependent_data)
        tester.test_group(0, 1, [(2,), (2,)])
        m = dependent_data.n_samples
        # first test: m * (1 + 2) accesses, second reuses XY: m * 1
        assert tester.counters.data_accesses == m * 3 + m * 1
        assert tester.counters.n_tests == 2


class TestFromCounts:
    def test_matches_tester(self, rng):
        m = 1000
        rows = np.column_stack([rng.integers(0, 2, m), rng.integers(0, 3, m), rng.integers(0, 2, m)])
        ds = make_dataset(rows, arities=[2, 3, 2])
        res = GSquareTest(ds).test(0, 1, (2,))
        counts = np.zeros((2, 2, 3), dtype=np.int64)
        for a, b, c in rows:
            counts[c, a, b] += 1
        stat, dof, p, ind = g2_test_from_counts(counts, 2, 2, 3, alpha=0.05)
        assert stat == pytest.approx(res.statistic, rel=1e-12)
        assert dof == res.dof
        assert ind == res.independent


class TestCompressionEquivalence:
    def test_compressed_matches_dense(self, rng):
        m = 120
        rows = np.column_stack(
            [rng.integers(0, 2, m), rng.integers(0, 2, m)]
            + [rng.integers(0, 5, m) for _ in range(3)]
        )
        ds = make_dataset(rows, arities=[2, 2, 5, 5, 5])
        dense = GSquareTest(ds, compress_threshold=10**9).test(0, 1, (2, 3, 4))
        compressed = GSquareTest(ds, compress_threshold=0).test(0, 1, (2, 3, 4))
        assert compressed.statistic == pytest.approx(dense.statistic, rel=1e-12)
        assert compressed.dof == dense.dof
        assert compressed.independent == dense.independent
