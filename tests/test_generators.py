"""Random network/DAG generator tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.dag import is_acyclic
from repro.networks.generators import (
    chain_network,
    naive_bayes_network,
    random_cpts,
    random_dag,
    random_network,
)


class TestRandomDag:
    @pytest.mark.parametrize("n,e", [(5, 4), (20, 40), (50, 80), (10, 0)])
    def test_edge_count_and_acyclicity(self, n, e):
        edges = random_dag(n, e, rng=0)
        assert len(edges) == e
        assert len(set(edges)) == e
        assert is_acyclic(n, edges)

    def test_deterministic(self):
        assert random_dag(15, 25, rng=3) == random_dag(15, 25, rng=3)

    def test_max_parents_respected(self):
        edges = random_dag(30, 60, rng=1, max_parents=3)
        indeg = np.zeros(30, dtype=int)
        for _, c in edges:
            indeg[c] += 1
        assert indeg.max() <= 3

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            random_dag(4, 7, rng=0)  # K4 has 6 edges

    def test_max_parents_caps_capacity(self):
        # With max_parents=1 a DAG on n nodes has at most n-1 edges.
        with pytest.raises(ValueError):
            random_dag(5, 5, rng=0, max_parents=1)
        edges = random_dag(5, 4, rng=0, max_parents=1)
        assert len(edges) == 4

    def test_dense_request_falls_back_to_fill(self):
        # Nearly complete graph forces the deterministic fill path.
        n = 8
        e = n * (n - 1) // 2
        edges = random_dag(n, e, rng=2, max_parents=None, hub_bias=0.0)
        assert len(edges) == e
        assert is_acyclic(n, edges)

    def test_hub_bias_skews_out_degree(self):
        rng = np.random.default_rng(0)
        hubby = random_dag(60, 150, rng=rng, hub_bias=3.0, max_parents=None)
        out = np.zeros(60, dtype=int)
        for p, _ in hubby:
            out[p] += 1
        flat = random_dag(60, 150, rng=np.random.default_rng(0), hub_bias=0.0, max_parents=None)
        out_flat = np.zeros(60, dtype=int)
        for p, _ in flat:
            out_flat[p] += 1
        assert out.max() > out_flat.max()


class TestRandomCpts:
    def test_shapes_and_normalisation(self):
        arities = np.array([2, 3, 2])
        edges = [(0, 2), (1, 2)]
        cpts = random_cpts(arities, edges, rng=0)
        assert cpts[2].n_parent_configs == 6
        assert cpts[2].parents == (0, 1)
        for cpt in cpts:
            np.testing.assert_allclose(cpt.table.sum(axis=1), 1.0)

    def test_no_exact_zeros(self):
        cpts = random_cpts(np.array([4, 4]), [(0, 1)], rng=1, concentration=0.05)
        for cpt in cpts:
            assert (cpt.table > 0).all()


class TestRandomNetwork:
    def test_counts(self):
        net = random_network(25, 40, rng=0)
        assert net.n_nodes == 25
        assert net.n_edges == 40

    def test_arity_range(self):
        net = random_network(40, 50, rng=1, arity_range=(3, 5))
        assert net.arities.min() >= 3
        assert net.arities.max() <= 5

    def test_deterministic(self):
        a = random_network(15, 20, rng=9)
        b = random_network(15, 20, rng=9)
        assert a.edges() == b.edges()
        for i in range(15):
            np.testing.assert_array_equal(a.cpt(i).table, b.cpt(i).table)

    def test_unit_arity_rejected(self):
        with pytest.raises(ValueError):
            random_network(5, 4, rng=0, arity_range=(1, 2))

    def test_names(self):
        net = random_network(3, 2, rng=0, names=("x", "y", "z"))
        assert net.names == ("x", "y", "z")


class TestStructuredFamilies:
    def test_chain(self):
        net = chain_network(6, rng=0)
        assert net.edges() == [(i, i + 1) for i in range(5)]

    def test_naive_bayes_star(self):
        net = naive_bayes_network(7, rng=0)
        assert sorted(net.edges()) == [(0, i) for i in range(1, 8)]

    def test_chain_arity(self):
        net = chain_network(4, arity=3, rng=0)
        assert (net.arities == 3).all()
