"""d-separation tests, including cross-validation against networkx."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graphs.separation import DSeparationOracle, d_separated
from repro.networks.classic import asia, sprinkler
from repro.networks.generators import random_dag


class TestBasicPatterns:
    def test_chain_blocked_by_middle(self):
        edges = [(0, 1), (1, 2)]
        assert not d_separated(3, edges, 0, 2, [])
        assert d_separated(3, edges, 0, 2, [1])

    def test_fork_blocked_by_root(self):
        edges = [(1, 0), (1, 2)]
        assert not d_separated(3, edges, 0, 2, [])
        assert d_separated(3, edges, 0, 2, [1])

    def test_collider_opened_by_conditioning(self):
        edges = [(0, 1), (2, 1)]
        assert d_separated(3, edges, 0, 2, [])
        assert not d_separated(3, edges, 0, 2, [1])

    def test_collider_opened_by_descendant(self):
        edges = [(0, 1), (2, 1), (1, 3)]
        assert d_separated(4, edges, 0, 2, [])
        assert not d_separated(4, edges, 0, 2, [3])

    def test_adjacent_never_separated(self):
        edges = [(0, 1)]
        assert not d_separated(2, edges, 0, 1, [])

    def test_disconnected(self):
        assert d_separated(2, [], 0, 1, [])

    def test_x_in_z_rejected(self):
        with pytest.raises(ValueError):
            d_separated(3, [(0, 1)], 0, 1, [0])

    def test_x_equals_y_rejected(self):
        with pytest.raises(ValueError):
            d_separated(3, [(0, 1)], 0, 0, [])


class TestAsiaKnownFacts:
    @pytest.fixture(scope="class")
    def oracle(self):
        net = asia()
        return DSeparationOracle(net.n_nodes, net.edges())

    def test_asia_independent_of_smoking(self, oracle):
        A, T, S, L, B, E, X, D = range(8)
        assert oracle.query(A, S, [])

    def test_xray_depends_on_tb(self, oracle):
        A, T, S, L, B, E, X, D = range(8)
        assert not oracle.query(X, T, [])
        assert oracle.query(X, T, [E])

    def test_bronchitis_lungcancer_collider(self, oracle):
        A, T, S, L, B, E, X, D = range(8)
        assert oracle.query(B, L, [S])
        # conditioning on Dysp opens B -> D <- E <- L
        assert not oracle.query(B, L, [S, D])


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_dags_match_networkx(self, seed):
        rng = np.random.default_rng(seed)
        n = 9
        edges = random_dag(n, 14, rng=rng, max_parents=None, hub_bias=0.0)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        oracle = DSeparationOracle(n, edges)
        checked = 0
        for _ in range(120):
            x, y = rng.choice(n, size=2, replace=False)
            z_size = int(rng.integers(0, 4))
            pool = [v for v in range(n) if v not in (x, y)]
            z = list(rng.choice(pool, size=min(z_size, len(pool)), replace=False))
            ours = oracle.query(int(x), int(y), [int(v) for v in z])
            theirs = nx.is_d_separator(g, {int(x)}, {int(y)}, set(int(v) for v in z))
            assert ours == theirs, (x, y, z, edges)
            checked += 1
        assert checked == 120

    def test_symmetry(self):
        net = sprinkler()
        oracle = DSeparationOracle(net.n_nodes, net.edges())
        for x in range(4):
            for y in range(4):
                if x == y:
                    continue
                for z in ([], [0], [3]):
                    if x in z or y in z:
                        continue
                    assert oracle.query(x, y, z) == oracle.query(y, x, z)
