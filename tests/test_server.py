"""Tests for the multi-dataset engine server (repro.engine.server).

Covers the ISSUE-4 acceptance surface: dataset routing and registration,
the LRU session budget (eviction closes worker pools and unlinks the shm
plane), concurrent dispatch equivalence with the sequential path, the
uniform response schema, and the run manifest spanning live + retired
sessions.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.datasets.encoded import EncodedDataset
from repro.datasets.shm import shared_memory_available
from repro.engine import DatasetSource, EngineServer, dataset_fingerprint, merge_totals

RESPONSE_KEYS = {"op", "dataset", "fingerprint", "cached", "elapsed_s", "result", "error"}


def _uniform(resp: dict) -> bool:
    """Every server response has the same keys, one of result/error None."""
    return set(resp) == RESPONSE_KEYS and (resp["result"] is None) != (resp["error"] is None)


@pytest.fixture()
def server(asia_data, sprinkler_data):
    srv = EngineServer(alpha=0.05, max_sessions=4)
    srv.register("asia", asia_data)
    srv.register("sprinkler", sprinkler_data)
    yield srv
    srv.close()


# --------------------------------------------------------------------- #
# dataset sources
# --------------------------------------------------------------------- #
class TestDatasetSource:
    def test_string_specs(self):
        src = DatasetSource.from_spec("csv:/tmp/x.csv")
        assert (src.kind, src.path) == ("csv", "/tmp/x.csv")
        src = DatasetSource.from_spec("network:alarm", samples=700, scale=0.5)
        assert (src.kind, src.name, src.samples, src.scale) == ("network", "alarm", 700, 0.5)

    def test_mapping_specs(self):
        src = DatasetSource.from_spec({"kind": "bif", "path": "n.bif", "samples": 100, "seed": 3})
        assert (src.kind, src.path, src.samples, src.seed) == ("bif", "n.bif", 100, 3)

    @pytest.mark.parametrize(
        "spec",
        [
            "justaname",
            "frobnicate:x",
            {"kind": "csv"},  # missing path
            {"kind": "network"},  # missing name
            {"kind": "csv", "path": "x", "bogus": 1},
            {"kind": "memory"},  # memory never crosses the protocol
            42,
            None,
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            DatasetSource.from_spec(spec)

    def test_csv_source_loads(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("a,b\n0,1\n1,0\n0,0\n1,1\n")
        data = DatasetSource.from_spec(f"csv:{path}").load()
        assert data.names == ("a", "b")
        assert data.n_samples == 4

    def test_bif_source_is_deterministic(self, tmp_path, sprinkler_net):
        from repro.datasets.bif import write_bif

        path = tmp_path / "net.bif"
        path.write_text(write_bif(sprinkler_net))
        src = DatasetSource.from_spec({"kind": "bif", "path": str(path), "samples": 200, "seed": 5})
        assert dataset_fingerprint(src.load()) == dataset_fingerprint(src.load())

    def test_describe_never_carries_data(self, asia_data):
        desc = DatasetSource.memory(asia_data, "x").describe()
        assert desc["kind"] == "memory"
        assert desc["n_variables"] == asia_data.n_variables
        assert "dataset" not in desc and "values" not in desc


# --------------------------------------------------------------------- #
# registration & routing
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_register_is_idempotent_but_conflicts_raise(self, server):
        assert server.register("net", "network:alarm") is True
        assert server.register("net", "network:alarm") is False  # same source
        with pytest.raises(ValueError, match="different source"):
            server.register("net", "network:insurance")

    def test_bad_dataset_ids_rejected(self, server, asia_data):
        with pytest.raises(ValueError, match="dataset id"):
            server.register("", asia_data)
        with pytest.raises(ValueError, match="dataset id"):
            server.register(7, asia_data)

    def test_unknown_dataset_is_error_response_not_crash(self, server):
        resp = server.handle({"op": "learn", "dataset": "nope"})
        assert _uniform(resp)
        assert "unknown dataset 'nope'" in resp["error"]
        assert resp["dataset"] == "nope" and resp["fingerprint"] is None

    @pytest.mark.parametrize(
        "tag,needle",
        [
            (7, "'dataset' must be a string"),
            (["a"], "'dataset' must be a string"),
            (None, "no default dataset"),
        ],
    )
    def test_malformed_dataset_tags(self, server, tag, needle):
        raw = {"op": "learn"}
        if tag is not None:
            raw["dataset"] = tag
        resp = server.handle(raw)
        assert _uniform(resp)
        assert needle in resp["error"]

    def test_default_dataset_routes_untagged_requests(self, asia_data):
        with EngineServer(default_dataset="asia") as srv:
            srv.register("asia", asia_data)
            tagged = srv.handle({"op": "learn", "dataset": "asia"})
            untagged = srv.handle({"op": "learn"})
        assert untagged["fingerprint"] == tagged["fingerprint"]
        assert untagged["cached"] and untagged["result"] == tagged["result"]

    def test_register_op_in_stream(self, server, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("a,b,c\n" + "\n".join("0,1,0" for _ in range(4)) + "\n")
        out = server.serve(
            [
                {"op": "register", "dataset": "d", "source": {"kind": "csv", "path": str(path)}},
                {"op": "register", "dataset": "d", "source": {"kind": "csv", "path": str(path)}},
                {"op": "register", "dataset": "d", "source": "network:alarm"},
                {"op": "register", "dataset": "d", "source": "csv:missing", "bogus": 1},
            ]
        )
        assert all(_uniform(r) for r in out)
        assert out[0]["result"]["already"] is False
        assert out[1]["result"]["already"] is True
        assert "different source" in out[2]["error"]
        assert "unknown register fields" in out[3]["error"]

    def test_in_stream_register_inherits_server_source_defaults(self):
        """A protocol register op must resolve omitted samples/seed/scale
        against the same defaults as the --register flags, so both routes
        materialise (and fingerprint) identical datasets."""
        with EngineServer(default_samples=300, default_scale=0.4) as srv:
            srv.register("flag", "network:insurance")
            srv.handle(
                {"op": "register", "dataset": "stream",
                 "source": {"kind": "network", "name": "insurance"}}
            )
            a = srv.handle({"op": "learn", "dataset": "flag", "max_depth": 0})
            b = srv.handle({"op": "learn", "dataset": "stream", "max_depth": 0})
            stats = srv.stats()
        assert a["fingerprint"] == b["fingerprint"]
        assert b["cached"], "identical sources must alias one session"
        assert stats["sessions"]["spinups"] == 1

    def test_source_load_failure_is_error_response(self, server, tmp_path):
        server.register("ghost", f"csv:{tmp_path / 'missing.csv'}")
        resp = server.handle({"op": "learn", "dataset": "ghost"})
        assert _uniform(resp) and "missing.csv" in resp["error"]

    def test_identical_content_shares_one_session(self, asia_data):
        with EngineServer() as srv:
            srv.register("a", asia_data)
            srv.register("b", asia_data)  # same bytes, different id
            r1 = srv.handle({"op": "learn", "dataset": "a"})
            r2 = srv.handle({"op": "learn", "dataset": "b"})
            stats = srv.stats()
        assert r1["fingerprint"] == r2["fingerprint"]
        assert r2["cached"], "byte-identical data must share the result cache"
        assert stats["sessions"]["spinups"] == 1
        assert stats["datasets"]["a"]["fingerprint"] == stats["datasets"]["b"]["fingerprint"]


# --------------------------------------------------------------------- #
# exactness: routing never changes answers
# --------------------------------------------------------------------- #
class TestExactness:
    def test_server_matches_single_session_batchserver(self, asia_data, sprinkler_data):
        from repro.engine import BatchServer, LearningSession

        reqs = [
            {"op": "learn", "alpha": 0.05},
            {"op": "learn", "alpha": 0.01},
            {"op": "blanket", "target": 2},
            {"op": "learn", "alpha": 0.05},
        ]
        with EngineServer(alpha=0.05) as srv:
            srv.register("asia", asia_data)
            srv.register("sprinkler", sprinkler_data)
            via_server = {
                ds: srv.serve([dict(r, dataset=ds) for r in reqs])
                for ds in ("asia", "sprinkler")
            }
        for ds, data in (("asia", asia_data), ("sprinkler", sprinkler_data)):
            with LearningSession(data, alpha=0.05) as sess:
                direct = BatchServer(sess).serve(reqs)
            for a, b in zip(via_server[ds], direct, strict=True):
                assert a["fingerprint"] == b["fingerprint"]
                assert a["cached"] == b["cached"]
                assert json.dumps(a["result"]) == json.dumps(b["result"])


# --------------------------------------------------------------------- #
# LRU budget & eviction
# --------------------------------------------------------------------- #
class TestEviction:
    def test_eviction_closes_session_and_recreates_on_touch(
        self, asia_data, sprinkler_data
    ):
        with EngineServer(max_sessions=1) as srv:
            srv.register("a", asia_data)
            srv.register("b", sprinkler_data)
            first = srv.handle({"op": "learn", "dataset": "a"})
            slot_a = srv._slots[next(iter(srv._slots))]
            srv.handle({"op": "learn", "dataset": "b"})  # evicts a
            assert slot_a.retired and slot_a.session.closed
            stats = srv.stats()
            assert stats["sessions"]["evictions"] == 1
            assert stats["sessions"]["live"] == 1
            assert stats["datasets"]["a"]["live"] is False
            # Re-touch re-creates from the source; answers are identical
            # (but recomputed: the result cache died with the session).
            again = srv.handle({"op": "learn", "dataset": "a"})
            assert again["fingerprint"] == first["fingerprint"]
            assert json.dumps(again["result"]) == json.dumps(first["result"])
            assert not again["cached"]
            assert srv.stats()["sessions"]["spinups"] == 3

    def test_lru_order_is_touch_order(self, asia_data, sprinkler_data, small_random_data):
        with EngineServer(max_sessions=2) as srv:
            srv.register("a", asia_data)
            srv.register("b", sprinkler_data)
            srv.register("c", small_random_data)
            srv.handle({"op": "learn", "dataset": "a", "max_depth": 0})
            srv.handle({"op": "learn", "dataset": "b", "max_depth": 0})
            srv.handle({"op": "learn", "dataset": "a", "max_depth": 1})  # refresh a
            srv.handle({"op": "learn", "dataset": "c", "max_depth": 0})  # evicts b, not a
            live = srv.datasets()
            assert live["a"]["live"] and live["c"]["live"] and not live["b"]["live"]

    @pytest.mark.skipif(not shared_memory_available(), reason="no usable shared memory")
    def test_eviction_shuts_down_pool_and_unlinks_shm(self, asia_data, sprinkler_data):
        with EngineServer(max_sessions=1, n_jobs=2, use_shm=True) as srv:
            srv.register("a", asia_data)
            srv.register("b", sprinkler_data)
            srv.handle({"op": "learn", "dataset": "a", "max_depth": 1})
            slot_a = srv._slots[next(iter(srv._slots))]
            assert slot_a.session.uses_shm
            handle = slot_a.session._pool._shm_export.handle
            srv.handle({"op": "learn", "dataset": "b", "max_depth": 1})  # evicts a
            assert slot_a.session.closed and slot_a.session._pool is None
            with pytest.raises(FileNotFoundError):
                EncodedDataset.attach_shm(handle)

    def test_close_dataset_op(self, server):
        out = server.serve(
            [
                {"op": "learn", "dataset": "asia", "max_depth": 0},
                {"op": "close_dataset", "dataset": "asia"},
                {"op": "close_dataset", "dataset": "asia"},  # already cold: closed=False
                {"op": "close_dataset", "dataset": "nope"},
                {"op": "learn", "dataset": "asia", "max_depth": 0},  # re-creates
                {"op": "close_dataset", "dataset": "asia", "unregister": True},
                {"op": "learn", "dataset": "asia", "max_depth": 0},
            ]
        )
        assert all(_uniform(r) for r in out)
        assert out[1]["result"]["closed"] is True
        assert out[2]["result"]["closed"] is False
        assert "unknown dataset" in out[3]["error"]
        assert out[4]["error"] is None and not out[4]["cached"]
        assert out[5]["result"]["unregistered"] is True
        assert "unknown dataset" in out[6]["error"]

    def test_close_closes_everything(self, asia_data):
        srv = EngineServer()
        srv.register("a", asia_data)
        srv.handle({"op": "learn", "dataset": "a", "max_depth": 0})
        slot = srv._slots[next(iter(srv._slots))]
        srv.close()
        assert slot.session.closed
        with pytest.raises(RuntimeError, match="closed"):
            srv.handle({"op": "stats"})


# --------------------------------------------------------------------- #
# concurrent dispatch
# --------------------------------------------------------------------- #
class TestConcurrentServe:
    def _mixed_stream(self) -> list[dict]:
        reqs = []
        for alpha in (0.05, 0.01):
            for ds in ("asia", "sprinkler"):
                reqs.append({"op": "learn", "dataset": ds, "alpha": alpha})
        reqs.append({"op": "learn", "dataset": "asia", "alpha": 0.05})  # repeat: hit
        reqs.append({"op": "learn", "dataset": "asia", "gs": -1})  # error mid-stream
        reqs.append({"op": "blanket", "dataset": "sprinkler", "target": 1})
        return reqs

    def test_threaded_serve_matches_sequential(self, asia_data, sprinkler_data):
        reqs = self._mixed_stream()
        outs = []
        for threads in (1, 3):
            with EngineServer(alpha=0.05) as srv:
                srv.register("asia", asia_data)
                srv.register("sprinkler", sprinkler_data)
                outs.append(srv.serve(reqs, threads=threads))
        for seq, conc in zip(*outs, strict=True):
            assert (seq["op"], seq["dataset"], seq["fingerprint"], seq["cached"]) == (
                conc["op"], conc["dataset"], conc["fingerprint"], conc["cached"]
            )
            assert json.dumps(seq["result"]) == json.dumps(conc["result"])
            assert (seq["error"] is None) == (conc["error"] is None)

    def test_requests_for_different_datasets_overlap(self, asia_data, sprinkler_data):
        """Two lanes must actually interleave: each lane records the other
        running inside its own request window at least once."""
        overlap = threading.Event()
        active: set[str] = set()
        lock = threading.Lock()

        class SpyServer(EngineServer):
            def _handle_query(self, raw):
                ds = raw.get("dataset")
                with lock:
                    active.add(ds)
                    if len(active) > 1:
                        overlap.set()
                try:
                    return super()._handle_query(raw)
                finally:
                    with lock:
                        active.discard(ds)

        with SpyServer() as srv:
            srv.register("asia", asia_data)
            srv.register("sprinkler", sprinkler_data)
            reqs = [
                {"op": "learn", "dataset": ds, "alpha": a}
                for a in (0.05, 0.01, 0.02)
                for ds in ("asia", "sprinkler")
            ]
            srv.serve(reqs, threads=2)
        assert overlap.is_set(), "lanes never ran concurrently"

    def test_admin_ops_are_barriers(self, server):
        reqs = [
            {"op": "learn", "dataset": "asia", "max_depth": 0},
            {"op": "learn", "dataset": "sprinkler", "max_depth": 0},
            {"op": "stats"},
            {"op": "learn", "dataset": "asia", "max_depth": 0},
        ]
        out = server.serve(reqs, threads=2)
        # Both lanes completed before the stats snapshot was taken.
        assert out[2]["result"]["totals"]["n_requests"] == 2
        assert out[3]["cached"]

    def test_malformed_entries_in_threaded_stream(self, server):
        out = server.serve(
            [
                {"op": "learn", "dataset": "asia", "max_depth": 0},
                "not an object",
                {"op": "learn", "dataset": [1], "max_depth": 0},
            ],
            threads=2,
        )
        assert all(_uniform(r) for r in out)
        assert out[0]["error"] is None
        assert "JSON object" in out[1]["error"]
        assert "'dataset' must be a string" in out[2]["error"]


# --------------------------------------------------------------------- #
# streaming dispatch (serve_iter)
# --------------------------------------------------------------------- #
class TestStreaming:
    """ISSUE-5 tentpole: the dispatcher is a lazy, windowed generator."""

    def _mixed_stream(self, tmp_path) -> list:
        """Admin ops, in-session errors, unrouted errors, parse failures,
        aliased ids and cache hits — every response class in one stream."""
        from repro.engine.server import ParseFailure

        path = tmp_path / "d.csv"
        path.write_text("a,b\n" + "".join("0,1\n1,0\n" for _ in range(20)))
        return [
            {"op": "learn", "dataset": "asia", "max_depth": 1},
            {"op": "register", "dataset": "d", "source": f"csv:{path}"},  # barrier
            {"op": "learn", "dataset": "d", "max_depth": 0},
            {"op": "learn", "dataset": "asia", "max_depth": 1},  # hit
            {"op": "learn", "dataset": "sprinkler", "gs": -3},  # in-session error
            ParseFailure("invalid JSON: boom"),
            {"op": "learn", "dataset": "ghost"},  # unrouted error
            {"op": "stats"},  # barrier
            {"op": "blanket", "dataset": "sprinkler", "target": 0},
            {"op": "learn", "dataset": "asia", "max_depth": 1},  # hit
        ]

    @pytest.mark.parametrize("threads,window", [(1, 4), (3, 2), (3, 64)])
    def test_serve_iter_matches_serve_bit_identical(
        self, asia_data, sprinkler_data, tmp_path, threads, window
    ):
        reqs = self._mixed_stream(tmp_path)
        outs = []
        for mode in ("sequential", "streamed"):
            with EngineServer(alpha=0.05) as srv:
                srv.register("asia", asia_data)
                srv.register("sprinkler", sprinkler_data)
                if mode == "sequential":
                    outs.append([srv.handle(r) for r in reqs])
                else:
                    outs.append(
                        list(srv.serve_iter(reqs, threads=threads, window=window))
                    )
        def strip_timing(obj):
            """Timing is the one legitimately nondeterministic field —
            it appears inside `stats` results too (elapsed totals)."""
            if isinstance(obj, dict):
                return {
                    k: strip_timing(v) for k, v in obj.items() if k != "elapsed_s"
                }
            if isinstance(obj, list):
                return [strip_timing(v) for v in obj]
            return obj

        for seq, streamed in zip(*outs, strict=True):
            assert _uniform(streamed)
            for key in ("op", "dataset", "fingerprint", "cached"):
                assert seq[key] == streamed[key]
            assert json.dumps(strip_timing(seq["result"]), sort_keys=True) == json.dumps(
                strip_timing(streamed["result"]), sort_keys=True
            )
            assert (seq["error"] is None) == (streamed["error"] is None)

    def test_window_bounds_intake(self, server):
        """The dispatcher must pull at most `window` requests ahead of the
        consumer — never the whole stream."""
        pulled = [0]

        def producer():
            for _ in range(100):
                pulled[0] += 1
                yield {"op": "learn", "dataset": "asia", "max_depth": 0}

        window = 5
        it = server.serve_iter(producer(), threads=2, window=window)
        first = next(it)
        assert first["error"] is None
        # Allow the one request the consumer already took plus the window.
        assert pulled[0] <= window + 1
        rest = list(it)
        assert len(rest) == 99
        assert server.n_peak_inflight <= window
        assert server.stats()["dispatch"]["peak_inflight"] <= window

    def test_lockstep_producer_never_deadlocks(self, server):
        """A producer that waits for response i before sending i+1 is the
        shape that deadlocked the materialising dispatcher."""
        consumed = threading.Event()
        consumed.set()

        def producer():
            for i in range(8):
                assert consumed.wait(30), f"dispatcher stalled at request {i}"
                consumed.clear()
                yield {"op": "learn", "dataset": ("asia", "sprinkler")[i % 2],
                       "max_depth": 0}

        n = 0
        for resp in server.serve_iter(producer(), threads=4, window=64):
            assert resp["error"] is None
            n += 1
            consumed.set()
        assert n == 8
        assert server.n_peak_inflight <= 1  # lockstep: one in flight, ever

    def test_aliased_ids_share_a_lane(self, asia_data):
        """Regression (ISSUE-5): lanes are keyed by resolved content
        fingerprint, so ids naming byte-identical data — which share a
        session and result cache — interleave deterministically."""
        with EngineServer() as srv:
            srv.register("a", asia_data)
            srv.register("b", asia_data)
            key_a = srv._lane_key({"op": "learn", "dataset": "a"})
            key_b = srv._lane_key({"op": "learn", "dataset": "b"})
            assert key_a == key_b

    def test_aliased_ids_cache_accounting_is_sequential(self, asia_data):
        """With aliased ids racing in separate lanes the `cached` flags
        were nondeterministic; one shared lane makes them exactly the
        sequential run's, every time."""
        reqs = [
            {"op": "learn", "dataset": "ab"[i % 2], "alpha": a, "max_depth": 1}
            for a in (0.05, 0.01)
            for i in range(4)
        ]

        def run(threads):
            with EngineServer() as srv:
                srv.register("a", asia_data)
                srv.register("b", asia_data)
                return [r["cached"] for r in srv.serve(reqs, threads=threads)]

        sequential = run(1)
        for _ in range(3):  # would flake under the old repr(tag) lanes
            assert run(3) == sequential

    def test_parse_failure_is_ordered_error_response(self, server):
        from repro.engine.server import ParseFailure

        out = server.serve(
            [
                {"op": "learn", "dataset": "asia", "max_depth": 0},
                ParseFailure("invalid JSON: line 2"),
                {"op": "learn", "dataset": "asia", "max_depth": 0},
            ],
            threads=2,
        )
        assert all(_uniform(r) for r in out)
        assert out[1]["error"] == "invalid JSON: line 2"
        assert out[0]["error"] is None and out[2]["cached"]

    def test_broken_request_iterator_propagates(self, server):
        def producer():
            yield {"op": "learn", "dataset": "asia", "max_depth": 0}
            raise RuntimeError("producer exploded")

        it = server.serve_iter(producer(), threads=2)
        assert next(it)["error"] is None
        with pytest.raises(RuntimeError, match="producer exploded"):
            next(it)

    def test_note_shutdown_lands_in_manifest(self, server):
        server.handle({"op": "learn", "dataset": "asia", "max_depth": 0})
        assert server.manifest()["shutdown"] is None
        server.note_shutdown("signal", signum=2)
        doc = server.manifest()["shutdown"]
        assert doc["reason"] == "signal" and doc["signum"] == 2 and doc["drained"]


# --------------------------------------------------------------------- #
# manifest spanning sessions
# --------------------------------------------------------------------- #
class TestServerManifest:
    def test_totals_are_exact_sum_of_parts(self, server, tmp_path):
        server.serve(
            [
                {"op": "learn", "dataset": "asia", "max_depth": 0},
                {"op": "learn", "dataset": "asia", "max_depth": 0},  # hit
                {"op": "learn", "dataset": "sprinkler", "gs": 0},  # error (in-session)
                {"op": "learn", "dataset": "sprinkler", "max_depth": 0},
                {"op": "learn", "dataset": "nope"},  # unrouted error
                {"op": "close_dataset", "dataset": "asia"},  # retires a manifest
                {"op": "stats"},
            ]
        )
        doc = server.manifest()
        parts = [s["totals"] for s in doc["sessions"]] + [doc["unrouted"]["totals"]]
        assert doc["totals"] == merge_totals(parts)
        assert doc["totals"]["n_requests"] == 5  # admin ops tracked separately
        assert doc["totals"]["n_errors"] == 2
        assert doc["totals"]["n_result_cache_hits"] == 1
        lives = {s["dataset_ids"][0]: s["live"] for s in doc["sessions"]}
        assert lives == {"asia": False, "sprinkler": True}
        path = tmp_path / "m.json"
        server.write_manifest(path)
        assert json.loads(path.read_text())["totals"] == doc["totals"]

    def test_evicted_sessions_stay_in_manifest(self, asia_data, sprinkler_data):
        with EngineServer(max_sessions=1) as srv:
            srv.register("a", asia_data)
            srv.register("b", sprinkler_data)
            srv.handle({"op": "learn", "dataset": "a", "max_depth": 0})
            srv.handle({"op": "learn", "dataset": "b", "max_depth": 0})
            doc = srv.manifest()
        evicted = [s for s in doc["sessions"] if s["evicted"]]
        assert len(evicted) == 1 and evicted[0]["dataset_ids"] == ["a"]
        assert doc["totals"]["n_requests"] == 2

    def test_unrouted_errors_carry_into_manifest(self, server):
        server.handle(np.int64(3))  # not a mapping
        server.handle({"op": "learn", "dataset": "ghost-town"})
        doc = server.manifest()
        assert doc["unrouted"]["totals"]["n_errors"] == 2
        assert doc["totals"]["n_errors"] == 2
