"""Tests for the multi-process serve plane (ISSUE 10).

Covers the tentpole surface end to end: the consistent-hash placement
layer (:class:`~repro.engine.routing.HashRing`), cross-worker request
forwarding and admin broadcast, merged run manifests whose totals are
the exact sum of the per-worker parts on mixed error/admin/alias
streams, per-worker store shards with warm restarts, both router modes
(fd passing and ``SO_REUSEPORT``), and payload equivalence of ``serve
--processes 2`` against the in-process ``--threads`` dispatcher and a
sequential oracle on the committed golden trace.

Every socket-driving test runs under a hard wall-clock timeout — the
failure mode a broken drain or a lost fd produces *is* a hang.
"""

from __future__ import annotations

import json
import os
import socket
from pathlib import Path

import pytest
from _timeouts import hard_timeout

from repro.cli import main
from repro.engine import (
    EngineClient,
    EngineServer,
    HashRing,
    ProcessPlane,
    load_trace,
    merge_totals,
)
from repro.engine.routing import lane_label, request_dataset_id

PLANE_TIMEOUT_S = 300.0
GOLDEN_TRACE = Path(__file__).resolve().parents[1] / (
    "benchmarks/traces/workload_500.jsonl"
)
SHM_DIR = "/dev/shm"


def _shm_entries() -> set[str] | None:
    try:
        return set(os.listdir(SHM_DIR))
    except OSError:
        return None


def _strip_timing(obj):
    if isinstance(obj, dict):
        return {k: _strip_timing(v) for k, v in obj.items() if k != "elapsed_s"}
    if isinstance(obj, list):
        return [_strip_timing(v) for v in obj]
    return obj


def _drive(address, requests, *, window: int = 32) -> list[dict]:
    """Pipeline ``requests`` through one connection, responses in order."""
    responses: list[dict] = []
    with EngineClient(address) as client:
        pending = 0
        for req in requests:
            client.send(req)
            pending += 1
            if pending >= window:
                responses.append(client.recv())
                pending -= 1
        for _ in range(pending):
            responses.append(client.recv())
    return responses


def _worker_parts(merged: dict) -> list[dict]:
    return [
        w["manifest"]["totals"]
        for w in merged["workers"]
        if w["manifest"] is not None
    ]


# --------------------------------------------------------------------- #
# HashRing placement
# --------------------------------------------------------------------- #
class TestHashRing:
    def test_deterministic_across_instances(self):
        a, b = HashRing(4), HashRing(range(4))
        keys = [f"fp-{i:04x}" for i in range(256)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_every_worker_owns_a_fair_share(self):
        ring = HashRing(4)
        counts = {w: 0 for w in ring.workers}
        for i in range(4000):
            counts[ring.owner(f"key-{i}")] += 1
        # 64 replicas per worker keeps the spread tame: nobody starves,
        # nobody owns the ring.
        assert min(counts.values()) > 400
        assert max(counts.values()) < 2000

    def test_single_worker_owns_everything(self):
        ring = HashRing(1)
        assert {ring.owner(f"k{i}") for i in range(50)} == {0}

    def test_without_moves_only_the_removed_workers_keys(self):
        ring = HashRing(4)
        smaller = ring.without(2)
        assert smaller.workers == (0, 1, 3)
        moved = stayed = 0
        for i in range(2000):
            key = f"key-{i}"
            old = ring.owner(key)
            if old == 2:
                moved += 1
                assert smaller.owner(key) != 2
            else:
                stayed += 1
                assert smaller.owner(key) == old
        assert moved > 0 and stayed > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            HashRing(0)
        with pytest.raises(ValueError, match="duplicate"):
            HashRing(["a", "a"])
        with pytest.raises(ValueError, match="replicas"):
            HashRing(2, replicas=0)
        with pytest.raises(ValueError, match="not on the ring"):
            HashRing(2).without(7)
        assert len(HashRing(3)) == 3


class TestRoutingHelpers:
    def test_request_dataset_id(self):
        assert request_dataset_id({"dataset": "a"}) == "a"
        assert request_dataset_id({}, "dflt") == "dflt"
        assert request_dataset_id({}) is None
        assert request_dataset_id({"dataset": 7}) is None
        assert request_dataset_id("not a mapping", "dflt") is None

    def test_lane_label(self):
        assert lane_label(None) == "malformed"
        assert lane_label(("unresolved", "x")) == "unresolved:x"
        assert lane_label("abc123") == "abc123"


# --------------------------------------------------------------------- #
# plane fixtures
# --------------------------------------------------------------------- #
def _plane_kwargs(**extra) -> dict:
    kwargs = dict(
        server_kwargs=dict(alpha=0.05, n_jobs=1, max_sessions=8),
        threads=2,
        window=32,
    )
    kwargs.update(extra)
    return kwargs


@pytest.fixture(scope="module")
def duo_datasets(asia_data, small_random_data):
    """Two tenants whose fingerprints land on *different* workers of a
    2-ring — guaranteed by construction below, not by luck."""
    from repro.engine import dataset_fingerprint

    ring = HashRing(2)
    fps = {
        "a": dataset_fingerprint(asia_data),
        "b": dataset_fingerprint(small_random_data),
    }
    owners = {ds: ring.owner(fp) for ds, fp in fps.items()}
    if owners["a"] == owners["b"]:
        # Perturb tenant b until it lands on the other worker; the
        # datasets module guarantees any slice re-fingerprints.
        from repro.datasets.sampling import forward_sample
        from repro.networks.generators import random_network

        for bump in range(1, 64):
            net = random_network(8, 10, rng=100 + bump, arity_range=(2, 3))
            candidate = forward_sample(net, 500, rng=bump)
            if ring.owner(dataset_fingerprint(candidate)) != owners["a"]:
                return {"a": asia_data, "b": candidate}
        pytest.fail("could not construct a cross-worker tenant pair")
    return {"a": asia_data, "b": small_random_data}


# --------------------------------------------------------------------- #
# cross-worker forwarding + merged manifests on a mixed stream
# --------------------------------------------------------------------- #
class TestPlaneMixedStream:
    def test_merged_totals_are_exact_sum_of_worker_parts(
        self, duo_datasets, tmp_path
    ):
        """Mixed queries / errors / admin ops / aliases across 2 workers:
        every request is accounted exactly once in the merged manifest."""
        with hard_timeout(PLANE_TIMEOUT_S, "mixed-stream plane"):
            shm_before = _shm_entries()
            plane = ProcessPlane(
                f"unix:{tmp_path}/front.sock",
                processes=2,
                registrations=list(duo_datasets.items()),
                **_plane_kwargs(),
            )
            plane.start()
            requests = [
                {"op": "blanket", "dataset": "a", "target": 0, "alpha": 0.05},
                {"op": "blanket", "dataset": "b", "target": 0, "alpha": 0.05},
                # Repeat: a result-cache hit at whichever worker owns "a".
                {"op": "blanket", "dataset": "a", "target": 0, "alpha": 0.05},
                # Errors: unknown dataset (unrouted at the front worker),
                # bad op, bad params at the owner.
                {"op": "blanket", "dataset": "nope", "target": 0},
                {"op": "frobnicate", "dataset": "a"},
                {"op": "blanket", "dataset": "b", "target": 0, "alpha": 7.0},
                # Admin: stats barrier, then alias "a" under a second id —
                # byte-identical source, so same fingerprint, same worker,
                # and the repeat below hits the owner's result cache.
                {"op": "stats"},
                {"op": "blanket", "dataset": "a", "target": 1, "alpha": 0.05},
            ]
            responses = _drive(f"unix:{plane.address}", requests)
            plane.shutdown()
            merged = plane.manifest()

            assert [r.get("error") is not None for r in responses] == [
                False, False, False, True, True, True, False, False,
            ]
            assert responses[2]["cached"] is True
            assert responses[0]["fingerprint"] == responses[2]["fingerprint"]

            parts = _worker_parts(merged)
            assert len(parts) == 2
            assert merged["totals"] == merge_totals(parts)
            # 7 query requests (stats is admin: no manifest row), each
            # accounted exactly once across the two workers.
            assert merged["totals"]["n_requests"] == 7
            assert merged["totals"]["n_errors"] == 3
            # Both workers actually served something — the pair was
            # constructed to split across the ring.
            assert all(p["n_requests"] > 0 for p in parts)
        if shm_before is not None:
            leaked = _shm_entries() - shm_before
            assert not leaked, f"leaked shm blocks: {sorted(leaked)}"

    def test_alias_lands_on_same_worker_and_result_cache(
        self, duo_datasets, tmp_path
    ):
        """Two ids naming byte-identical data resolve to one fingerprint,
        one owner, one result cache — across process boundaries."""
        with hard_timeout(PLANE_TIMEOUT_S, "alias plane"):
            data = duo_datasets["a"]
            plane = ProcessPlane(
                f"unix:{tmp_path}/front.sock",
                processes=2,
                registrations=[("a", data), ("alias", data)],
                **_plane_kwargs(),
            )
            plane.start()
            responses = _drive(
                f"unix:{plane.address}",
                [
                    {"op": "blanket", "dataset": "a", "target": 0, "alpha": 0.05},
                    {"op": "blanket", "dataset": "alias", "target": 0, "alpha": 0.05},
                ],
            )
            plane.shutdown()
            merged = plane.manifest()
        first, second = responses
        assert first["error"] is None and second["error"] is None
        assert first["fingerprint"] == second["fingerprint"]
        assert second["cached"] is True
        # One worker owns the fingerprint: both rows in one shard.
        assert sorted(p["n_requests"] for p in _worker_parts(merged)) == [0, 2]
        assert merged["totals"] == merge_totals(_worker_parts(merged))

    def test_in_stream_register_broadcasts_to_every_worker(
        self, duo_datasets, tmp_path
    ):
        """A register admin op through one connection (one front worker)
        must make the dataset routable from *any* worker afterwards."""
        with hard_timeout(PLANE_TIMEOUT_S, "register broadcast"):
            plane = ProcessPlane(
                f"unix:{tmp_path}/front.sock",
                processes=2,
                registrations=[("a", duo_datasets["a"])],
                **_plane_kwargs(),
            )
            plane.start()
            reg = {
                "op": "register",
                "dataset": "late",
                "source": {"kind": "network", "name": "alarm", "samples": 301},
            }
            query = {"op": "blanket", "dataset": "late", "target": 0, "alpha": 0.05}
            # Register over connection 1, query over connections 2 and 3:
            # whichever front worker picks those up must already know it.
            r_reg = _drive(f"unix:{plane.address}", [reg])[0]
            r_q1 = _drive(f"unix:{plane.address}", [query])[0]
            r_q2 = _drive(f"unix:{plane.address}", [query])[0]
            plane.shutdown()
            merged = plane.manifest()
        assert r_reg["error"] is None and r_reg["result"]["registered"] is True
        assert r_q1["error"] is None
        assert r_q2["error"] is None and r_q2["cached"] is True
        assert merged["totals"]["n_requests"] == 2  # admin ops add no rows
        assert merged["totals"] == merge_totals(_worker_parts(merged))


# --------------------------------------------------------------------- #
# store shards + warm restart
# --------------------------------------------------------------------- #
class TestStoreShards:
    def test_per_worker_shards_and_warm_restart_payloads(
        self, duo_datasets, tmp_path
    ):
        store = str(tmp_path / "run.db")
        requests = [
            {"op": "blanket", "dataset": "a", "target": 0, "alpha": 0.05},
            {"op": "blanket", "dataset": "b", "target": 0, "alpha": 0.05},
            {"op": "blanket", "dataset": "a", "target": 1, "alpha": 0.01},
        ]

        def run() -> tuple[list[dict], dict]:
            plane = ProcessPlane(
                f"unix:{tmp_path}/front.sock",
                processes=2,
                registrations=list(duo_datasets.items()),
                store=store,
                **_plane_kwargs(),
            )
            plane.start()
            responses = _drive(f"unix:{plane.address}", requests)
            plane.shutdown()
            return responses, plane.manifest()

        with hard_timeout(PLANE_TIMEOUT_S, "warm-restart plane"):
            cold, cold_merged = run()
            assert os.path.exists(f"{store}.w0")
            assert os.path.exists(f"{store}.w1")
            warm, warm_merged = run()

        assert all(r["error"] is None for r in cold)
        # Byte-identical payloads across the restart, served from the
        # per-worker store shards without recomputing.
        assert _strip_timing([
            {k: r[k] for k in ("op", "dataset", "fingerprint", "result", "error")}
            for r in cold
        ]) == _strip_timing([
            {k: r[k] for k in ("op", "dataset", "fingerprint", "result", "error")}
            for r in warm
        ])
        assert all(r["cached"] for r in warm)
        assert warm_merged["totals"]["n_result_cache_hits"] == 3
        assert cold_merged["totals"] == merge_totals(_worker_parts(cold_merged))
        assert warm_merged["totals"] == merge_totals(_worker_parts(warm_merged))


# --------------------------------------------------------------------- #
# router modes
# --------------------------------------------------------------------- #
class TestRouterModes:
    @pytest.mark.parametrize("mode", ["fds", "reuseport"])
    def test_modes_serve_identical_payloads(self, duo_datasets, mode):
        with hard_timeout(PLANE_TIMEOUT_S, f"{mode} mode"):
            plane = ProcessPlane(
                "127.0.0.1:0",
                processes=2,
                mode=mode,
                registrations=list(duo_datasets.items()),
                **_plane_kwargs(),
            )
            plane.start()
            # Separate connections: in reuseport mode the kernel may park
            # them on different workers; fingerprint routing must make
            # that invisible.
            r1 = _drive(plane.address, [
                {"op": "blanket", "dataset": "a", "target": 0, "alpha": 0.05},
            ])[0]
            r2 = _drive(plane.address, [
                {"op": "blanket", "dataset": "a", "target": 0, "alpha": 0.05},
            ])[0]
            plane.shutdown()
            merged = plane.manifest()
        assert r1["error"] is None
        assert r2["error"] is None and r2["cached"] is True
        assert _strip_timing({k: r1[k] for k in ("result", "fingerprint")}) == (
            _strip_timing({k: r2[k] for k in ("result", "fingerprint")})
        )
        assert merged["router"]["mode"] == mode
        assert merged["totals"]["n_requests"] == 2
        assert merged["totals"] == merge_totals(_worker_parts(merged))

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="processes"):
            ProcessPlane("127.0.0.1:0", processes=0)
        with pytest.raises(ValueError, match="mode"):
            ProcessPlane("127.0.0.1:0", processes=2, mode="smoke-signals")
        with pytest.raises(ValueError, match="TCP"):
            ProcessPlane(
                f"unix:{tmp_path}/x.sock", processes=2, mode="reuseport"
            )

    def test_double_start_raises(self, duo_datasets):
        with hard_timeout(PLANE_TIMEOUT_S, "double start"):
            plane = ProcessPlane(
                "127.0.0.1:0",
                processes=1,
                registrations=[("a", duo_datasets["a"])],
                **_plane_kwargs(),
            )
            plane.start()
            try:
                with pytest.raises(RuntimeError, match="already started"):
                    plane.start()
            finally:
                plane.shutdown()

    def test_cli_processes_requires_listen(self):
        with pytest.raises(SystemExit, match="--listen"):
            main([
                "serve", "--register", "a=network:alarm",
                "--processes", "2", "--requests", "/dev/null",
            ])


# --------------------------------------------------------------------- #
# golden-trace equivalence: --processes 2 vs --threads vs sequential
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def golden_tenants(tmp_path_factory):
    """The golden trace's tenants materialised as CSV files, so the
    byte-identical sources register on the plane (across forks) and on
    the in-process oracles alike."""
    from repro.datasets.io import write_csv
    from repro.datasets.sampling import forward_sample
    from repro.networks.generators import random_network

    trace = load_trace(GOLDEN_TRACE)
    spec = trace.spec
    out = tmp_path_factory.mktemp("golden-tenants")
    registrations = []
    for i, ds_id in enumerate(spec.datasets):
        # The exact recipe `fastbns workload replay` uses for
        # unregistered tenants, with a smaller sample count for speed.
        n_vars = max(8, spec.n_targets)
        net = random_network(
            n_vars,
            n_vars + 2,
            rng=spec.seed * 1009 + i,
            arity_range=(2, 3),
            max_parents=3,
        )
        data = forward_sample(net, 400, rng=spec.seed * 1013 + i)
        path = out / f"{ds_id}.csv"
        write_csv(data, str(path))
        registrations.append((ds_id, f"csv:{path}"))
    return trace, registrations


class TestGoldenTraceEquivalence:
    def test_plane_matches_threads_and_sequential_oracles(
        self, golden_tenants, tmp_path
    ):
        """ISSUE 10 acceptance: `serve --processes 2` answers the
        committed golden trace payload-identically to the in-process
        `--threads` dispatcher and to a sequential oracle.  Per-worker
        `stats` payloads legitimately differ (counters are per process),
        so admin responses are compared on shape, queries on bytes."""
        trace, registrations = golden_tenants
        requests = [rec.request for rec in trace.records]
        with hard_timeout(PLANE_TIMEOUT_S, "golden-trace equivalence"):
            plane = ProcessPlane(
                f"unix:{tmp_path}/front.sock",
                processes=2,
                registrations=registrations,
                **_plane_kwargs(),
            )
            plane.start()
            plane_responses = _drive(f"unix:{plane.address}", requests)
            plane.shutdown()
            merged = plane.manifest()

            def oracle(threads: int) -> list[dict]:
                srv = EngineServer(alpha=0.05, n_jobs=1, max_sessions=8)
                try:
                    for ds_id, spec_str in registrations:
                        srv.register(ds_id, spec_str)
                    return list(
                        srv.serve_iter(iter(requests), threads=threads, window=32)
                    )
                finally:
                    srv.close()

            threaded = oracle(2)
            sequential = oracle(1)

        assert len(plane_responses) == len(requests) == len(trace)
        n_queries = 0
        for req, got, thr, seq in zip(
            requests, plane_responses, threaded, sequential, strict=True
        ):
            if req.get("op") == "stats":
                # Admin: per-process counters differ by design; the
                # response must still be a well-formed stats success.
                assert got["error"] is None
                assert {"datasets", "sessions", "totals"} <= set(got["result"])
                continue
            n_queries += 1
            assert _strip_timing(got) == _strip_timing(thr)
            assert _strip_timing(got) == _strip_timing(seq)
        assert n_queries > 400  # the committed trace is ~95% queries

        parts = _worker_parts(merged)
        assert merged["totals"] == merge_totals(parts)
        assert merged["totals"]["n_requests"] == n_queries
        assert all(p["n_requests"] > 0 for p in parts)
