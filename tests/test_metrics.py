"""Structure-metric tests (skeleton P/R/F1, arrowheads, SHD)."""

from __future__ import annotations

import pytest

from repro.graphs.metrics import arrowhead_metrics, shd, skeleton_metrics
from repro.graphs.pdag import PDAG


class TestSkeletonMetrics:
    def test_perfect(self):
        m = skeleton_metrics([(0, 1), (1, 2)], [(1, 0), (2, 1)])
        assert m.precision == 1.0
        assert m.recall == 1.0
        assert m.f1 == 1.0

    def test_partial(self):
        m = skeleton_metrics([(0, 1), (0, 2)], [(0, 1), (1, 2)])
        assert m.true_positives == 1
        assert m.false_positives == 1
        assert m.false_negatives == 1
        assert m.precision == 0.5
        assert m.recall == 0.5

    def test_empty_edges(self):
        m = skeleton_metrics([], [])
        assert m.precision == 1.0
        assert m.recall == 1.0

    def test_all_false_positives(self):
        m = skeleton_metrics([(0, 1)], [])
        assert m.precision == 0.0
        assert m.recall == 1.0
        assert m.f1 == 0.0

    def test_orientation_ignored(self):
        assert skeleton_metrics([(2, 0)], [(0, 2)]).f1 == 1.0


class TestArrowheadMetrics:
    def test_direction_sensitive(self):
        a = PDAG(3)
        a.add_directed(0, 1)
        b = PDAG(3)
        b.add_directed(1, 0)
        m = arrowhead_metrics(a, b)
        assert m.true_positives == 0
        assert m.false_positives == 1
        assert m.false_negatives == 1

    def test_perfect(self):
        a = PDAG(3)
        a.add_directed(0, 1)
        a.add_undirected(1, 2)
        b = a.copy()
        m = arrowhead_metrics(a, b)
        assert m.precision == 1.0
        assert m.recall == 1.0


class TestSHD:
    def build(self, n, und=(), dirs=()):
        g = PDAG(n)
        for u, v in und:
            g.add_undirected(u, v)
        for u, v in dirs:
            g.add_directed(u, v)
        return g

    def test_identical_graphs(self):
        a = self.build(3, und=[(0, 1)], dirs=[(1, 2)])
        assert shd(a, a.copy()) == 0

    def test_missing_edge(self):
        a = self.build(3, und=[(0, 1)])
        b = self.build(3)
        assert shd(a, b) == 1

    def test_misoriented_edge(self):
        a = self.build(3, dirs=[(0, 1)])
        b = self.build(3, dirs=[(1, 0)])
        assert shd(a, b) == 1

    def test_undirected_vs_directed(self):
        a = self.build(3, und=[(0, 1)])
        b = self.build(3, dirs=[(0, 1)])
        assert shd(a, b) == 1

    def test_multiple_differences(self):
        a = self.build(4, und=[(0, 1)], dirs=[(2, 3)])
        b = self.build(4, und=[(1, 2)], dirs=[(3, 2)])
        # (0,1) extra, (1,2) missing, (2,3) misoriented
        assert shd(a, b) == 3

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            shd(PDAG(2), PDAG(3))

    def test_symmetry(self):
        a = self.build(4, und=[(0, 1), (2, 3)])
        b = self.build(4, dirs=[(0, 1), (1, 2)])
        assert shd(a, b) == shd(b, a)
