"""Contingency-table kernel tests (vs brute force)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.citests.contingency import (
    ci_counts,
    contingency_table,
    encode_columns,
    marginal_tables,
    n_configurations,
)


class TestEncodeColumns:
    def test_empty(self):
        codes, n = encode_columns([], [])
        assert n == 1
        assert codes.shape == (0,)

    def test_single_column_identity(self):
        col = np.array([0, 2, 1], dtype=np.uint8)
        codes, n = encode_columns([col], [3])
        np.testing.assert_array_equal(codes, [0, 2, 1])
        assert n == 3

    def test_first_column_most_significant(self):
        a = np.array([1, 0], dtype=np.uint8)
        b = np.array([0, 2], dtype=np.uint8)
        codes, n = encode_columns([a, b], [2, 3])
        np.testing.assert_array_equal(codes, [3, 2])  # 1*3+0, 0*3+2
        assert n == 6

    def test_bijective_over_all_configs(self):
        arities = [2, 3, 2]
        cols = np.array(np.meshgrid(*[range(a) for a in arities], indexing="ij"))
        cols = cols.reshape(3, -1).astype(np.uint8)
        codes, n = encode_columns(list(cols), arities)
        assert n == 12
        assert sorted(codes.tolist()) == list(range(12))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            encode_columns([np.zeros(3, dtype=np.uint8)], [2, 2])


class TestEncodeOverflow:
    """Regression: deep, high-arity tuples used to wrap ``codes *= arity``.

    With 40 ternary columns the structural product 3^40 ~ 1.2e19 exceeds
    int64 (~9.2e18); the seed implementation silently wrapped, producing
    colliding (non-injective) codes.  The safe path compresses pairwise
    through ``np.unique`` and must stay injective and order-preserving.
    """

    def _columns(self, rng, m=60, depth=40, arity=3):
        cols = [rng.integers(0, arity, m).astype(np.uint8) for _ in range(depth)]
        return cols, [arity] * depth

    def test_structural_product_exceeds_int64(self, rng):
        cols, arities = self._columns(rng)
        assert n_configurations(arities) > np.iinfo(np.int64).max

    def test_codes_injective_and_lexicographic(self, rng):
        cols, arities = self._columns(rng)
        codes, n_cfg = encode_columns(cols, arities)
        assert n_cfg == 3**40
        assert codes.min() >= 0  # a wrapped encoding goes negative
        rows = np.column_stack(cols)
        # Equal codes iff equal configurations...
        by_code: dict[int, tuple] = {}
        for code, row in zip(codes.tolist(), map(tuple, rows), strict=True):
            assert by_code.setdefault(code, row) == row
        assert len(by_code) == len({tuple(r) for r in rows})
        # ...and code order follows mixed-radix (lexicographic) order.
        order = sorted(range(len(codes)), key=lambda i: tuple(rows[i]))
        sorted_codes = codes[order]
        assert all(
            a <= b for a, b in zip(sorted_codes[:-1].tolist(), sorted_codes[1:].tolist(), strict=True)
        )

    def test_ci_counts_through_overflowing_depth(self, rng):
        cols, arities = self._columns(rng)
        m = cols[0].shape[0]
        x = rng.integers(0, 2, m).astype(np.uint8)
        y = rng.integers(0, 2, m).astype(np.uint8)
        counts, nz_structural, dense = ci_counts(x, y, cols, 2, 2, arities)
        assert nz_structural == 3**40 and not dense
        assert counts.sum() == m
        assert counts.shape[0] <= m
        # Each nonempty slice must match a brute-force dict count.
        brute: dict[tuple, np.ndarray] = {}
        for i in range(m):
            key = tuple(int(c[i]) for c in cols)
            brute.setdefault(key, np.zeros((2, 2), dtype=np.int64))[int(x[i]), int(y[i])] += 1
        nonempty = [counts[k] for k in range(counts.shape[0]) if counts[k].sum()]
        expected = [brute[key] for key in sorted(brute)]
        assert len(nonempty) == len(expected)
        for got, want in zip(nonempty, expected, strict=True):
            np.testing.assert_array_equal(got, want)


class TestNConfigurations:
    def test_empty_is_one(self):
        assert n_configurations([]) == 1

    def test_product(self):
        assert n_configurations([2, 3, 4]) == 24


def brute_force_counts(x, y, zs, rx, ry, rz):
    nz = n_configurations(rz)
    counts = np.zeros((nz, rx, ry), dtype=np.int64)
    for i in range(len(x)):
        code = 0
        for j, z in enumerate(zs):
            code = code * rz[j] + int(z[i])
        counts[code, int(x[i]), int(y[i])] += 1
    return counts


class TestContingencyTable:
    @pytest.fixture()
    def data(self, rng):
        m = 300
        return (
            rng.integers(0, 3, m).astype(np.uint8),
            rng.integers(0, 2, m).astype(np.uint8),
            [rng.integers(0, 2, m).astype(np.uint8), rng.integers(0, 4, m).astype(np.uint8)],
        )

    def test_marginal_table(self, data):
        x, y, _ = data
        counts, nz = contingency_table(x, y, [], 3, 2, [])
        assert nz == 1
        np.testing.assert_array_equal(counts, brute_force_counts(x, y, [], 3, 2, []))

    def test_conditional_table(self, data):
        x, y, zs = data
        counts, nz = contingency_table(x, y, zs, 3, 2, [2, 4])
        assert nz == 8
        np.testing.assert_array_equal(counts, brute_force_counts(x, y, zs, 3, 2, [2, 4]))

    def test_total_preserved(self, data):
        x, y, zs = data
        counts, _ = contingency_table(x, y, zs, 3, 2, [2, 4])
        assert counts.sum() == len(x)

    def test_compression_path(self, rng):
        # Huge structural config space relative to m forces compression.
        m = 50
        x = rng.integers(0, 2, m).astype(np.uint8)
        y = rng.integers(0, 2, m).astype(np.uint8)
        zs = [rng.integers(0, 10, m).astype(np.uint8) for _ in range(4)]
        counts, nz = contingency_table(x, y, zs, 2, 2, [10, 10, 10, 10])
        assert nz == 10**4
        assert counts.shape[0] <= m  # compressed
        assert counts.sum() == m
        # Nonzero slice contents must match brute force after dropping
        # empty slices.
        brute = brute_force_counts(x, y, zs, 2, 2, [10] * 4)
        nonempty = brute[brute.sum(axis=(1, 2)) > 0]
        got_nonempty = counts[counts.sum(axis=(1, 2)) > 0]
        np.testing.assert_array_equal(got_nonempty, nonempty)


class TestMarginalTables:
    def test_marginals_consistent(self, rng):
        counts = rng.integers(0, 10, size=(4, 3, 2))
        n_xz, n_yz, n_z = marginal_tables(counts)
        np.testing.assert_array_equal(n_xz, counts.sum(axis=2))
        np.testing.assert_array_equal(n_yz, counts.sum(axis=1))
        np.testing.assert_array_equal(n_z, counts.sum(axis=(1, 2)))
