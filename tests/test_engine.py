"""Tests for the repro.engine subsystem.

Covers the ISSUE-1 acceptance surface: cached vs. uncached results are
bit-identical (statistics, p-values, CPDAGs, sepsets), the LRU respects
its byte budget, hit/miss counters are exact, and the batch server dedupes
identical requests.
"""

from __future__ import annotations

import itertools
import json

import numpy as np
import pytest

from repro.citests.base import CITestCounters
from repro.citests.chisquare import ChiSquareTest
from repro.citests.contingency import ci_counts, contingency_table, marginalize_table
from repro.citests.gsquare import GSquareTest
from repro.cli import main
from repro.core.learn import learn_structure
from repro.engine import (
    BatchRequest,
    BatchServer,
    LearningSession,
    SufficientStatsCache,
    dataset_fingerprint,
)
from repro.engine.statscache import CachedTableBuilder


# --------------------------------------------------------------------- #
# SufficientStatsCache: LRU byte budget and exact counters
# --------------------------------------------------------------------- #
class TestLRUBudget:
    def _table(self, n_bytes: int) -> np.ndarray:
        return np.zeros(n_bytes // 8, dtype=np.int64)

    def test_byte_budget_respected_and_oldest_evicted(self):
        cache = SufficientStatsCache(max_bytes=1000)
        for i in range(5):
            cache.put(("t", i), self._table(400), 400)
        assert cache.current_bytes <= 1000
        assert cache.current_bytes == 800
        assert cache.evictions == 3
        # Only the two most recent entries survive.
        assert ("t", 3) in cache and ("t", 4) in cache
        assert ("t", 0) not in cache and ("t", 2) not in cache

    def test_get_refreshes_recency(self):
        cache = SufficientStatsCache(max_bytes=1000)
        cache.put("a", self._table(400), 400)
        cache.put("b", self._table(400), 400)
        assert cache.get("a") is not None  # refresh "a": "b" is now coldest
        cache.put("c", self._table(400), 400)
        assert "a" in cache and "c" in cache
        assert "b" not in cache

    def test_oversized_entry_not_admitted(self):
        cache = SufficientStatsCache(max_bytes=100)
        cache.put("big", self._table(800), 800)
        assert "big" not in cache
        assert cache.current_bytes == 0

    def test_replace_same_key_accounts_bytes_once(self):
        cache = SufficientStatsCache(max_bytes=1000)
        cache.put("k", self._table(400), 400)
        cache.put("k", self._table(240), 240)
        assert cache.current_bytes == 240
        assert len(cache) == 1

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            SufficientStatsCache(max_bytes=-1)

    def test_put_many_matches_sequential_puts(self):
        """Bulk insert ends with the same contents, bytes and counters as
        the equivalent sequence of single puts (eviction is deferred to
        one end-of-batch sweep, which cannot change the surviving set)."""
        entries = [
            (("t", i), self._table(300), 300, "table", frozenset({i}), (i,), True)
            for i in range(6)
        ]
        bulk = SufficientStatsCache(max_bytes=1000)
        bulk.put_many(entries)
        seq = SufficientStatsCache(max_bytes=1000)
        for key, value, nbytes, kind, varset, dims, dense in entries:
            seq.put(key, value, nbytes, kind=kind, varset=varset, dims=dims, dense=dense)
        assert list(bulk._entries) == list(seq._entries)
        assert bulk.current_bytes == seq.current_bytes
        assert (bulk.puts, bulk.evictions) == (seq.puts, seq.evictions)

    def test_cache_pickles_without_lock(self):
        import pickle

        cache = SufficientStatsCache(max_bytes=1000)
        cache.put("k", self._table(400), 400)
        clone = pickle.loads(pickle.dumps(cache))
        assert "k" in clone and clone.current_bytes == 400
        clone.put("k2", self._table(400), 400)  # fresh lock works


class TestExactCounters:
    def test_builder_hit_miss_counts(self, asia_data):
        cache = SufficientStatsCache()
        builder = CachedTableBuilder(asia_data, cache)
        # Three distinct queries: all misses.
        builder.ci_counts(0, 1, ())
        builder.ci_counts(0, 1, (2,))
        builder.ci_counts(0, 1, (2, 3))
        assert (cache.hits, cache.misses) == (0, 3)
        # Exact repeats: direct hits.
        builder.ci_counts(0, 1, (2,))
        builder.ci_counts(0, 1, (2, 3))
        assert (cache.hits, cache.misses) == (2, 3)
        # A query introducing an uncovered variable is a genuine miss.
        before = cache.marginal_builds
        counts, nz, from_cache, *_ = builder.ci_counts(0, 4, (5,))
        assert not from_cache and cache.misses == 4
        # Subset of a cached dense table: marginalization hit, not a scan.
        counts2, nz2, from_cache2, *_ = builder.ci_counts(2, 3, ())
        assert from_cache2 and cache.marginal_builds == before + 1

    def test_tester_counters_split_hits_and_misses(self, asia_data):
        cache = SufficientStatsCache()
        tester = GSquareTest(asia_data, stats_cache=cache)
        tester.test(0, 1, (2,))
        tester.test(0, 1, (2,))
        c = tester.counters
        assert c.n_tests == 2
        assert (c.cache_hits, c.cache_misses) == (1, 1)
        # A hit must not touch the data: only the miss paid m * (d + 2).
        assert c.data_accesses == asia_data.n_samples * 3

    def test_counters_without_cache_stay_zero(self, asia_data):
        tester = GSquareTest(asia_data)
        tester.test(0, 1, (2,))
        assert tester.counters.cache_hits == 0
        assert tester.counters.cache_misses == 0

    def test_snapshot_and_reset_carry_cache_fields(self):
        c = CITestCounters()
        c.record(depth=1, m=10, cells=8, logs=4, xy_reused=False, from_cache=True)
        c.record(depth=1, m=10, cells=8, logs=4, xy_reused=False, from_cache=False)
        snap = c.snapshot()
        assert (snap.cache_hits, snap.cache_misses) == (1, 1)
        c.reset()
        assert (c.cache_hits, c.cache_misses) == (0, 0)


# --------------------------------------------------------------------- #
# bit-identical results, cached vs. uncached
# --------------------------------------------------------------------- #
class TestBitIdentical:
    @pytest.mark.parametrize("tester_cls", [GSquareTest, ChiSquareTest])
    def test_statistics_identical_over_query_stream(self, asia_data, tester_cls):
        plain = tester_cls(asia_data)
        cached = tester_cls(asia_data, stats_cache=SufficientStatsCache())
        n = asia_data.n_variables
        queries = []
        for x, y in itertools.combinations(range(min(n, 5)), 2):
            rest = [v for v in range(n) if v not in (x, y)]
            queries += [
                (x, y, ()),
                (x, y, (rest[0],)),
                (x, y, (rest[0], rest[1])),
                (x, y, (rest[0],)),  # repeat: direct hit
                (x, y, ()),  # subset of cached superset: marginal hit
            ]
        for x, y, s in queries:
            a = plain.test(x, y, s)
            b = cached.test(x, y, s)
            assert a.statistic == b.statistic, (x, y, s)
            assert a.p_value == b.p_value, (x, y, s)
            assert a.dof == b.dof and a.independent == b.independent
        assert cached.counters.cache_hits > 0

    def test_marginal_path_bit_identical(self, asia_data):
        """A table served by marginalizing a cached superset must equal the
        freshly built one byte for byte."""
        cache = SufficientStatsCache()
        builder = CachedTableBuilder(asia_data, cache)
        builder.ci_counts(0, 1, (2, 3, 4))
        counts, nz, from_cache, *_ = builder.ci_counts(2, 4, (3,))
        assert from_cache and cache.marginal_builds == 1
        direct, nz_direct, _ = ci_counts(
            asia_data.column(2),
            asia_data.column(4),
            asia_data.columns((3,)),
            asia_data.arity(2),
            asia_data.arity(4),
            [asia_data.arity(3)],
        )
        assert nz == nz_direct
        np.testing.assert_array_equal(counts, direct)

    def test_session_learn_identical_to_learn_structure(self, asia_data):
        ref = learn_structure(asia_data, method="fast-bns", alpha=0.05, gs=2)
        with LearningSession(asia_data, alpha=0.05) as sess:
            got = sess.learn(gs=2)
            assert sorted(got.skeleton.edges()) == sorted(ref.skeleton.edges())
            assert sorted(got.cpdag.directed_edges()) == sorted(ref.cpdag.directed_edges())
            assert sorted(got.cpdag.undirected_edges()) == sorted(
                ref.cpdag.undirected_edges()
            )
            assert got.sepsets == ref.sepsets

    def test_relearn_reuses_cache_and_matches_fresh_run(self, asia_data):
        with LearningSession(asia_data, alpha=0.05) as sess:
            sess.learn()
            misses_after_first = sess.cache_stats().misses
            got = sess.relearn(alpha=0.01)
            ref = learn_structure(asia_data, method="fast-bns", alpha=0.01)
            assert sorted(got.cpdag.directed_edges()) == sorted(ref.cpdag.directed_edges())
            assert got.sepsets == ref.sepsets
            # The relearn hit the cache (counters moved) and added few
            # fresh tables relative to the first pass.
            assert sess.counters().cache_hits > 0
            assert sess.cache_stats().misses - misses_after_first < misses_after_first

    def test_blanket_on_session_matches_plain_tester(self, asia_data):
        from repro.core.markov_blanket import iamb

        plain = iamb(GSquareTest(asia_data, alpha=0.05), asia_data.n_variables, 2,
                     max_conditioning=3)
        with LearningSession(asia_data, alpha=0.05) as sess:
            sess.learn()  # warm the cache first
            got = sess.markov_blanket(2, algorithm="iamb", max_conditioning=3)
        assert got.blanket == plain.blanket
        assert got.n_tests == plain.n_tests

    def test_parallel_session_matches_sequential(self, asia_data):
        ref = learn_structure(asia_data, method="fast-bns", alpha=0.05)
        with LearningSession(asia_data, alpha=0.05, n_jobs=2) as sess:
            got = sess.learn()
            got2 = sess.relearn(alpha=0.01)
        ref2 = learn_structure(asia_data, method="fast-bns", alpha=0.01)
        assert sorted(got.cpdag.directed_edges()) == sorted(ref.cpdag.directed_edges())
        assert sorted(got2.cpdag.directed_edges()) == sorted(ref2.cpdag.directed_edges())


# --------------------------------------------------------------------- #
# marginalize_table
# --------------------------------------------------------------------- #
class TestMarginalize:
    def test_matches_brute_force(self, rng):
        dims = (2, 3, 4, 2)
        table = rng.integers(0, 10, size=dims)
        out = marginalize_table(table, dims, keep=[2, 0])
        expected = table.sum(axis=(1, 3)).transpose(1, 0)
        np.testing.assert_array_equal(out, expected)

    def test_keep_all_is_permutation(self, rng):
        dims = (2, 3, 4)
        table = rng.integers(0, 10, size=dims)
        out = marginalize_table(table, dims, keep=[2, 1, 0])
        np.testing.assert_array_equal(out, table.transpose(2, 1, 0))

    def test_roundtrip_against_contingency_table(self, asia_data):
        """Marginalizing the (z, x, y) joint down to (x, y) equals the
        depth-0 contingency table."""
        x, y, z = 0, 1, 2
        rx, ry, rz = (asia_data.arity(v) for v in (x, y, z))
        joint, _ = contingency_table(
            asia_data.column(x), asia_data.column(y), [asia_data.column(z)], rx, ry, [rz]
        )
        flat = marginalize_table(joint, (rz, rx, ry), keep=[1, 2])
        direct, _ = contingency_table(
            asia_data.column(x), asia_data.column(y), [], rx, ry, []
        )
        np.testing.assert_array_equal(flat, direct[0])


# --------------------------------------------------------------------- #
# batch server
# --------------------------------------------------------------------- #
class TestBatchServer:
    def test_dedupes_identical_requests(self, asia_data):
        with LearningSession(asia_data) as sess:
            server = BatchServer(sess)
            reqs = [
                {"op": "learn", "alpha": 0.05},
                {"op": "learn", "alpha": 0.05},
                {"op": "learn", "alpha": 0.01},
            ]
            out = server.serve(reqs)
            assert [r["cached"] for r in out] == [False, True, False]
            assert server.n_computed == 2
            assert out[0]["result"] == out[1]["result"]
            assert out[0]["fingerprint"] == out[1]["fingerprint"]
            # Second batch: everything served from the result cache.
            out2 = server.serve(reqs)
            assert all(r["cached"] for r in out2)
            assert server.n_computed == 2
            assert [r["result"] for r in out2] == [r["result"] for r in out]

    def test_equivalent_spellings_share_fingerprint(self, asia_data):
        with LearningSession(asia_data) as sess:
            name = asia_data.names[3]
            a = BatchRequest.normalise({"op": "blanket", "target": 3}, sess)
            b = BatchRequest.normalise({"op": "blanket", "target": name}, sess)
            assert a == b
            # Explicit defaults normalise to the same request as omissions.
            c = BatchRequest.normalise({"op": "learn"}, sess)
            d = BatchRequest.normalise(
                {"op": "learn", "alpha": sess.alpha, "gs": 1, "test": sess.test}, sess
            )
            assert c.fingerprint(sess.fingerprint) == d.fingerprint(sess.fingerprint)

    def test_rejects_malformed_requests(self, asia_data):
        with LearningSession(asia_data) as sess:
            with pytest.raises(ValueError, match="op"):
                BatchRequest.normalise({"op": "frobnicate"}, sess)
            with pytest.raises(ValueError, match="target"):
                BatchRequest.normalise({"op": "blanket"}, sess)
            with pytest.raises(ValueError, match="unknown request fields"):
                BatchRequest.normalise({"op": "learn", "bogus": 1}, sess)

    def test_bad_request_does_not_abort_the_stream(self, asia_data):
        """One client's malformed request yields an error response; the
        rest of the batch is still served."""
        with LearningSession(asia_data) as sess:
            server = BatchServer(sess)
            manifest = server.new_manifest()
            out = server.serve(
                [
                    {"op": "learn"},
                    {"op": "frobnicate"},
                    {"op": "blanket", "target": "not-a-variable"},
                    {"op": "learn", "alpha": 7.0},
                    {"op": "learn"},
                ],
                manifest=manifest,
            )
        assert "result" in out[0] and out[4]["cached"]
        assert "frobnicate" in out[1]["error"]
        assert "not-a-variable" in out[2]["error"]
        assert "alpha" in out[3]["error"]
        assert server.n_errors == 3
        totals = manifest.totals()
        assert totals["n_errors"] == 3 and totals["n_computed"] == 1

    @pytest.mark.parametrize(
        "req,needle",
        [
            ({"op": "learn", "gs": 0}, "gs must be >= 1"),
            ({"op": "learn", "gs": -4}, "gs must be >= 1"),
            ({"op": "learn", "gs": "sometimes"}, "gs must be a positive int"),
            ({"op": "learn", "gs": None}, "gs must be a positive int"),
            ({"op": "learn", "max_depth": -1}, "max_depth must be >= 0"),
            ({"op": "learn", "max_depth": "deep"}, "max_depth must be a non-negative int"),
            ({"op": "blanket", "target": 10**6}, "out of range"),
            ({"op": "blanket", "target": -1}, "out of range"),
            ({"op": "blanket", "target": 1.5}, "name or index"),
            ({"op": "blanket", "target": 0, "max_conditioning": -2}, "max_conditioning"),
        ],
    )
    def test_invalid_parameters_rejected_at_normalisation(self, asia_data, req, needle):
        """gs=0 / negative depths / bad targets die at intake with a clear
        message — not as a ValueError (or worse, IndexError) deep inside
        learn_skeleton mid-compute."""
        with LearningSession(asia_data) as sess:
            with pytest.raises(ValueError, match=needle):
                BatchRequest.normalise(req, sess)
            server = BatchServer(sess)
            resp = server.handle(req)
            assert needle.split(" must")[0] in resp["error"]
            assert resp["result"] is None and not resp["cached"]
            assert server.n_errors == 1

    def test_valid_boundary_parameters_accepted(self, asia_data):
        with LearningSession(asia_data) as sess:
            for req in (
                {"op": "learn", "gs": 1, "max_depth": 0},
                {"op": "learn", "gs": "auto"},
                {"op": "blanket", "target": 0, "max_conditioning": 0},
                {"op": "blanket", "target": 0, "max_conditioning": None},
            ):
                BatchRequest.normalise(req, sess)  # must not raise

    def test_uniform_response_schema(self, asia_data):
        """Success and error responses expose the same keys: consumers
        branch on the error *value*, never on key presence."""
        keys = {"op", "fingerprint", "cached", "elapsed_s", "result", "error"}
        with LearningSession(asia_data) as sess:
            server = BatchServer(sess)
            out = server.serve(
                [
                    {"op": "learn", "max_depth": 0},
                    {"op": "learn", "max_depth": 0},
                    {"op": "learn", "gs": 0},
                    {"op": "frobnicate"},
                ]
            )
        for resp in out:
            assert set(resp) == keys
            assert (resp["result"] is None) != (resp["error"] is None)
        assert [r["error"] is None for r in out] == [True, True, False, False]

    def test_server_stats_equal_manifest_totals_on_mixed_stream(self, asia_data):
        """The two accounting views (live counters vs manifest rollup) must
        agree exactly on a stream containing errors AND cache hits."""
        with LearningSession(asia_data) as sess:
            server = BatchServer(sess)
            manifest = server.new_manifest()
            server.serve(
                [
                    {"op": "learn", "max_depth": 0},
                    {"op": "learn", "max_depth": 0},  # result-cache hit
                    {"op": "learn", "gs": 0},  # validation error
                    {"op": "blanket", "target": "nope"},  # routing error
                    {"op": "blanket", "target": 0},
                    {"op": "learn", "max_depth": 0},  # hit again
                ],
                manifest=manifest,
            )
            stats = server.stats()
        totals = manifest.totals()
        for key in ("n_requests", "n_computed", "n_result_cache_hits", "n_errors"):
            assert stats[key] == totals[key], key
        assert totals == {
            "n_requests": 6,
            "n_computed": 2,
            "n_result_cache_hits": 2,
            "n_errors": 2,
            "elapsed_s": totals["elapsed_s"],
        }

    def test_manifest_records_stream(self, asia_data, tmp_path):
        with LearningSession(asia_data) as sess:
            server = BatchServer(sess)
            manifest = server.new_manifest()
            server.serve(
                [{"op": "learn"}, {"op": "learn"}, {"op": "blanket", "target": 0}],
                manifest=manifest,
            )
            path = manifest.write(
                tmp_path / "manifest.json", cache_stats=sess.cache_stats().as_dict()
            )
        doc = json.loads(path.read_text())
        assert doc["dataset_fingerprint"] == dataset_fingerprint(sess.dataset)
        assert doc["totals"] == {
            "n_requests": 3,
            "n_computed": 2,
            "n_result_cache_hits": 1,
            "n_errors": 0,
            "elapsed_s": pytest.approx(
                sum(r["elapsed_s"] for r in doc["requests"])
            ),
        }
        assert doc["stats_cache"]["hits"] > 0
        assert [r["cached"] for r in doc["requests"]] == [False, True, False]


class TestFingerprints:
    def test_dataset_fingerprint_is_content_derived(self, asia_data, sprinkler_data):
        assert dataset_fingerprint(asia_data) == dataset_fingerprint(asia_data)
        assert dataset_fingerprint(asia_data) != dataset_fingerprint(sprinkler_data)

    def test_session_closed_rejects_queries(self, asia_data):
        sess = LearningSession(asia_data)
        sess.close()
        with pytest.raises(RuntimeError, match="closed"):
            sess.learn()


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestBatchCLI:
    def test_batch_end_to_end(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.jsonl"
        reqs.write_text(
            "\n".join(
                json.dumps(r)
                for r in [
                    {"op": "learn", "alpha": 0.05},
                    {"op": "learn", "alpha": 0.05},
                    {"op": "blanket", "target": 0},
                ]
            )
            + "\n"
        )
        out = tmp_path / "out.jsonl"
        man = tmp_path / "manifest.json"
        rc = main(
            [
                "batch",
                "--network",
                "alarm",
                "--samples",
                "500",
                "--requests",
                str(reqs),
                "--out",
                str(out),
                "--manifest",
                str(man),
            ]
        )
        assert rc == 0
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == 3
        assert [r["cached"] for r in lines] == [False, True, False]
        assert lines[0]["result"] == lines[1]["result"]
        doc = json.loads(man.read_text())
        assert doc["totals"]["n_result_cache_hits"] == 1
        assert "result-cache hits" in capsys.readouterr().out

    def test_batch_requests_from_stdin(self, tmp_path, capsys, monkeypatch):
        """``--requests -`` reads the JSONL stream from stdin (pipes)."""
        import io

        stream = "\n".join(
            json.dumps(r)
            for r in [{"op": "learn", "alpha": 0.05}, {"op": "blanket", "target": 0}]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(stream + "\n"))
        out = tmp_path / "out.jsonl"
        rc = main(
            [
                "batch",
                "--network",
                "alarm",
                "--samples",
                "500",
                "--requests",
                "-",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == 2
        assert [r["op"] for r in lines] == ["learn", "blanket"]
        assert "served 2 requests" in capsys.readouterr().out
