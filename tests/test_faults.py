"""Fault drills as first-class tests (ISSUE 8).

Each drill injects a production failure — a killed pool worker,
``/dev/shm`` exhaustion, a slow-reading client against the backpressure
window, session eviction under concurrent load — and asserts the
serving layers degrade the way the protocol promises: a clean error
response (never a torn stream), recovery on the next request, and a run
manifest whose totals are exactly the sum of its per-session parts.
Every drill runs under a hard wall-clock timeout because the failure
mode these guard against *is* a hang.
"""

from __future__ import annotations

import json
import os
import time

import pytest
from _timeouts import hard_timeout

from repro.datasets.shm import shared_memory_available
from repro.engine import (
    EngineClient,
    EngineServer,
    EngineTransport,
    merge_totals,
)
from repro.engine.faults import injector, kill_one_worker, pool_worker_pids, shm_enospc

DRILL_TIMEOUT_S = 180.0
SHM_DIR = "/dev/shm"


@pytest.fixture(autouse=True)
def _disarm_everything():
    """No fault leaks between tests, whatever a drill did."""
    injector.clear()
    yield
    injector.clear()


def _shm_entries() -> set[str] | None:
    try:
        return set(os.listdir(SHM_DIR))
    except OSError:
        return None


def _exact_manifest(server: EngineServer) -> dict:
    doc = server.manifest()
    parts = [s["totals"] for s in doc["sessions"]] + [doc["unrouted"]["totals"]]
    assert doc["totals"] == merge_totals(parts)
    return doc


def _payload(resp: dict) -> str:
    """Everything a client consumes, minus timing/caching metadata."""
    return json.dumps(
        {k: resp[k] for k in ("op", "dataset", "fingerprint", "result", "error")},
        sort_keys=True,
    )


# --------------------------------------------------------------------- #
# drill 1: killed pool worker mid-stream
# --------------------------------------------------------------------- #
class TestKilledWorker:
    def test_killed_worker_is_one_clean_error_then_recovery(self, asia_data):
        """SIGKILL a process-pool worker between requests: the next
        parallel learn fails cleanly, the one after respawns the pool and
        succeeds — the stream never tears, the manifest stays exact."""
        with hard_timeout(DRILL_TIMEOUT_S, "killed-worker drill"):
            srv = EngineServer(alpha=0.05, n_jobs=2, backend="process")
            srv.register("a", asia_data)
            shm_before = _shm_entries()
            try:
                # Three *distinct* learns so none is a result-cache hit.
                requests = [
                    {"op": "learn", "dataset": "a", "alpha": 0.05},
                    {"op": "learn", "dataset": "a", "alpha": 0.01},
                    {"op": "learn", "dataset": "a", "alpha": 0.02},
                ]
                first = srv.handle(requests[0])
                assert first["error"] is None
                session = srv._slot_for("a").session
                assert pool_worker_pids(session), "process pool has no workers"
                killed = kill_one_worker(session)
                assert killed is not None
                broken = srv.handle(requests[1])
                assert broken["error"] is not None and broken["result"] is None
                # The session dropped its pool; this learn respawns it.
                recovered = srv.handle(requests[2])
                assert recovered["error"] is None
                assert pool_worker_pids(session), "pool was not respawned"
                assert killed not in pool_worker_pids(session)
                doc = _exact_manifest(srv)
                assert doc["totals"]["n_requests"] == 3
                assert doc["totals"]["n_errors"] == 1
            finally:
                srv.close()
            if shm_before is not None:
                leaked = _shm_entries() - shm_before
                assert not leaked, f"leaked shm blocks: {sorted(leaked)}"


# --------------------------------------------------------------------- #
# drill 2: /dev/shm exhaustion
# --------------------------------------------------------------------- #
@pytest.mark.skipif(not shared_memory_available(), reason="no usable /dev/shm")
class TestShmExhaustion:
    def test_auto_policy_falls_back_pickled_payload_identical(self, asia_data):
        """use_shm=None (auto): a full /dev/shm degrades transport to
        pickling — same answers, no error, nothing leaked."""
        with hard_timeout(DRILL_TIMEOUT_S, "shm-fallback drill"):
            request = {"op": "learn", "dataset": "a", "max_depth": 1}
            clean_srv = EngineServer(alpha=0.05, n_jobs=2, use_shm=None)
            clean_srv.register("a", asia_data)
            try:
                clean = clean_srv.handle(dict(request))
            finally:
                clean_srv.close()
            assert clean["error"] is None

            shm_before = _shm_entries()
            faulted_srv = EngineServer(alpha=0.05, n_jobs=2, use_shm=None)
            faulted_srv.register("a", asia_data)
            try:
                with shm_enospc():
                    faulted = faulted_srv.handle(dict(request))
                assert faulted["error"] is None
                assert _payload(faulted) == _payload(clean)
                session = faulted_srv._slot_for("a").session
                assert not session.uses_shm  # pool really fell back
                _exact_manifest(faulted_srv)
            finally:
                faulted_srv.close()
            if shm_before is not None:
                leaked = _shm_entries() - shm_before
                assert not leaked, f"leaked shm blocks: {sorted(leaked)}"

    def test_required_policy_surfaces_clean_error_then_recovers(self, asia_data):
        """use_shm=True: exhaustion is a per-request error response, and
        once space returns the same session serves normally."""
        with hard_timeout(DRILL_TIMEOUT_S, "shm-required drill"):
            srv = EngineServer(alpha=0.05, n_jobs=2, use_shm=True)
            srv.register("a", asia_data)
            try:
                request = {"op": "learn", "dataset": "a", "max_depth": 1}
                with shm_enospc():
                    broken = srv.handle(dict(request))
                assert broken["error"] is not None
                assert "No space left" in broken["error"]
                recovered = srv.handle(dict(request))
                assert recovered["error"] is None
                doc = _exact_manifest(srv)
                assert doc["totals"]["n_errors"] == 1
                assert doc["totals"]["n_requests"] == 2
            finally:
                srv.close()


# --------------------------------------------------------------------- #
# drill 3: slow-reader client against the backpressure window
# --------------------------------------------------------------------- #
class TestSlowReader:
    def test_stalled_client_does_not_starve_lockstep_peer(self, asia_data, sprinkler_data):
        """Client A bursts requests and reads nothing; client B stays
        lockstep on another dataset.  B must keep completing while A is
        stalled (A's window fills, only A buffers), and once A finally
        reads, every response arrives in order with an exact manifest."""
        with hard_timeout(DRILL_TIMEOUT_S, "slow-reader drill"):
            srv = EngineServer(alpha=0.05)
            srv.register("a", asia_data)
            srv.register("b", sprinkler_data)
            transport = EngineTransport(srv, "127.0.0.1:0", threads=2, window=4)
            transport.start()
            slow = fast = None
            try:
                slow = EngineClient(transport.describe(), timeout=60.0)
                fast = EngineClient(transport.describe(), timeout=60.0)
                # Prime both datasets so the burst is cheap cache hits.
                assert slow.learn("a", max_depth=0)["error"] is None
                assert fast.learn("b", max_depth=0)["error"] is None
                n_burst = 12
                for _ in range(n_burst):
                    slow.send({"op": "learn", "dataset": "a", "max_depth": 0})
                # While A ignores its responses, B's lockstep round trips
                # must keep completing promptly.
                t0 = time.monotonic()
                for _ in range(5):
                    assert fast.learn("b", max_depth=0)["cached"]
                assert time.monotonic() - t0 < 30.0
                # A wakes up and reads everything it is owed, in order.
                responses = slow.drain()
                assert len(responses) == n_burst
                assert all(r["error"] is None and r["cached"] for r in responses)
            finally:
                for c in (slow, fast):
                    if c is not None:
                        c.close()
                transport.shutdown(drain=True, timeout=60.0)
            doc = _exact_manifest(srv)
            assert doc["totals"]["n_requests"] == 2 + n_burst + 5
            srv.close()


# --------------------------------------------------------------------- #
# drill 4: session eviction under concurrent load
# --------------------------------------------------------------------- #
class TestEvictionUnderLoad:
    def test_lru_thrash_stays_payload_identical_and_exact(self, asia_data, sprinkler_data):
        """max_sessions=1 with alternating datasets and threads=2: every
        switch evicts mid-stream, yet responses match the sequential
        oracle and nothing leaks."""
        with hard_timeout(DRILL_TIMEOUT_S, "eviction drill"):
            requests = []
            for _ in range(6):
                requests.append({"op": "learn", "dataset": "a", "max_depth": 0})
                requests.append({"op": "learn", "dataset": "b", "max_depth": 0})

            def build():
                srv = EngineServer(alpha=0.05, max_sessions=1)
                srv.register("a", asia_data)
                srv.register("b", sprinkler_data)
                return srv

            shm_before = _shm_entries()
            concurrent_srv, oracle_srv = build(), build()
            try:
                concurrent = list(
                    concurrent_srv.serve_iter(iter(requests), threads=2, window=8)
                )
                sequential = list(oracle_srv.serve_iter(iter(requests), threads=1))
                assert [_payload(r) for r in concurrent] == [
                    _payload(r) for r in sequential
                ]
                assert concurrent_srv.n_evictions >= 1
                doc = _exact_manifest(concurrent_srv)
                assert doc["totals"]["n_requests"] == len(requests)
                assert doc["totals"]["n_errors"] == 0
            finally:
                concurrent_srv.close()
                oracle_srv.close()
            if shm_before is not None:
                leaked = _shm_entries() - shm_before
                assert not leaked, f"leaked shm blocks: {sorted(leaked)}"

    def test_forced_eviction_mid_stream_via_admin_op(self, asia_data, sprinkler_data):
        """An in-stream close_dataset admin op (a barrier) evicts a live
        session between its own requests; later requests revive it."""
        with hard_timeout(DRILL_TIMEOUT_S, "forced-eviction drill"):
            srv = EngineServer(alpha=0.05)
            srv.register("a", asia_data)
            srv.register("b", sprinkler_data)
            stream = [
                {"op": "learn", "dataset": "a", "max_depth": 0},
                {"op": "learn", "dataset": "b", "max_depth": 0},
                {"op": "close_dataset", "dataset": "a"},
                {"op": "learn", "dataset": "a", "max_depth": 0},  # revival
                {"op": "learn", "dataset": "b", "max_depth": 0},  # cache hit
            ]
            try:
                responses = list(srv.serve_iter(iter(stream), threads=2, window=4))
                assert [r["error"] for r in responses] == [None] * len(stream)
                # The revived learn recomputed (fresh session, result
                # caches die with the slot when no store is configured).
                assert responses[3]["cached"] is False
                assert responses[4]["cached"] is True
                doc = _exact_manifest(srv)
                assert doc["totals"]["n_requests"] == 4  # admin not counted
                assert len(doc["sessions"]) == 3  # a, b, revived a
            finally:
                srv.close()


# --------------------------------------------------------------------- #
# drill 5: SIGKILLed serve worker in the multi-process plane (ISSUE 10)
# --------------------------------------------------------------------- #
class TestKilledServeWorker:
    def test_killed_worker_clean_error_respawn_exact_manifest(
        self, asia_data, small_random_data, tmp_path
    ):
        """SIGKILL the serve worker owning one dataset mid-run: requests
        forwarded to it become clean error responses (the stream on the
        surviving front worker never tears), the router respawns it, a
        subsequent request succeeds — served from the dead worker's store
        shard — and the merged manifest accounts for every request
        exactly once (the predecessor's journalled rows are folded back
        in; the failed forward is one unrouted error at the front)."""
        import signal as _signal

        from repro.engine import HashRing, ProcessPlane, dataset_fingerprint

        ring = HashRing(2)
        datasets = {"a": asia_data, "b": small_random_data}
        fp_a = dataset_fingerprint(asia_data)
        owner_a = ring.owner(fp_a)
        if ring.owner(dataset_fingerprint(small_random_data)) == owner_a:
            # Both tenants on one worker: perturb "b" until it lands on
            # the other, so the surviving front still owns live work.
            from repro.datasets.sampling import forward_sample
            from repro.networks.generators import random_network

            for bump in range(1, 64):
                net = random_network(8, 10, rng=300 + bump, arity_range=(2, 3))
                candidate = forward_sample(net, 500, rng=bump)
                if ring.owner(dataset_fingerprint(candidate)) != owner_a:
                    datasets["b"] = candidate
                    break
            else:
                pytest.fail("could not build a cross-worker tenant pair")
        survivor = 1 - owner_a

        with hard_timeout(DRILL_TIMEOUT_S, "killed serve-worker drill"):
            store = str(tmp_path / "plane.db")
            plane = ProcessPlane(
                f"unix:{tmp_path}/front.sock",
                processes=2,
                registrations=list(datasets.items()),
                server_kwargs=dict(alpha=0.05, n_jobs=1, max_sessions=8),
                threads=2,
                store=store,
            )
            plane.start()
            n_sent = n_client_errors = 0
            # The fd router hands connections out round-robin from worker
            # 0, so the (survivor+1)-th connection is fronted by the
            # survivor; earlier ones just burn rotation slots.
            warmups = [
                EngineClient(f"unix:{plane.address}") for _ in range(survivor)
            ]
            try:
                with EngineClient(f"unix:{plane.address}") as client:
                    q_a = {"op": "blanket", "dataset": "a", "target": 0,
                           "alpha": 0.05}
                    baseline = client.request(q_a)
                    n_sent += 1
                    assert baseline["error"] is None
                    other = client.request(
                        {"op": "blanket", "dataset": "b", "target": 0,
                         "alpha": 0.05}
                    )
                    n_sent += 1
                    assert other["error"] is None

                    doomed = plane.worker_pid(owner_a)
                    os.kill(doomed, _signal.SIGKILL)
                    # Forwarded while the owner is dead: one clean error
                    # response on an intact stream (never a torn socket).
                    broken = client.request(q_a)
                    n_sent += 1
                    assert broken["result"] is None
                    assert broken["error"] is not None
                    assert "peer worker unavailable" in broken["error"]
                    assert broken["op"] == "blanket"

                    # The router respawns the worker under the same run
                    # id, store shard and internal socket; the repeat is
                    # answered from the shard's result cache.
                    deadline = time.monotonic() + 60.0
                    while True:
                        recovered = client.request(q_a)
                        n_sent += 1
                        if recovered["error"] is None:
                            break
                        assert time.monotonic() < deadline, recovered
                        time.sleep(0.25)
                    assert recovered["cached"] is True
                    assert _payload(recovered) == _payload(baseline)
                    assert plane.n_respawns >= 1
                    assert plane.worker_pid(owner_a) != doomed
            finally:
                for w in warmups:
                    try:
                        w.close()
                    except OSError:
                        n_client_errors += 1
            plane.shutdown()
            merged = plane.manifest()

        # Exactness across the kill: baseline rows recovered from the
        # predecessor's journal, the failed forward accounted once as an
        # unrouted error at the surviving front, respawn retries counted
        # at the reborn owner.  Nothing lost, nothing double-counted.
        parts = [
            w["manifest"]["totals"]
            for w in merged["workers"]
            if w["manifest"] is not None
        ]
        assert merged["totals"] == merge_totals(parts)
        assert merged["totals"]["n_requests"] == n_sent
        assert merged["totals"]["n_errors"] >= 1
        assert merged["router"]["n_respawns"] >= 1
        recovered_docs = [
            s
            for w in merged["workers"]
            if w["manifest"] is not None
            for s in w["manifest"]["sessions"]
            if s.get("recovered")
        ]
        assert recovered_docs, "predecessor journal rows were not folded in"
