"""End-to-end integration tests across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.learn import learn_structure
from repro.core.trace import TraceRecorder
from repro.datasets.sampling import forward_sample
from repro.graphs.dag import dag_to_cpdag
from repro.graphs.metrics import shd, skeleton_metrics
from repro.networks.classic import cancer, sprinkler
from repro.networks.generators import random_network
from repro.simcpu.costmodel import CostModel
from repro.simcpu.machine import MachineSpec
from repro.simcpu.scheduler import simulate, simulate_sequential


class TestDataRecovery:
    """Structure learning from sampled data recovers known structures."""

    def test_sprinkler_skeleton_at_large_m(self):
        net = sprinkler()
        data = forward_sample(net, 20000, rng=0)
        res = learn_structure(data)
        truth = {(min(u, v), max(u, v)) for u, v in net.edges()}
        assert set(res.skeleton.edges()) == truth

    def test_sprinkler_vstructure_found(self):
        net = sprinkler()
        data = forward_sample(net, 20000, rng=0)
        res = learn_structure(data)
        assert res.cpdag.has_directed(1, 3)
        assert res.cpdag.has_directed(2, 3)

    def test_cancer_skeleton_recall_improves_with_samples(self):
        net = cancer()
        recalls = []
        for m in (200, 5000, 60000):
            data = forward_sample(net, m, rng=1)
            res = learn_structure(data)
            metrics = skeleton_metrics(res.skeleton.edges(), net.edges())
            recalls.append(metrics.recall)
        assert recalls[-1] >= recalls[0]
        assert recalls[-1] >= 0.75  # cancer's weak edges need many samples

    def test_random_network_good_f1_at_large_m(self):
        net = random_network(12, 14, rng=3, arity_range=(2, 3), max_parents=3)
        data = forward_sample(net, 30000, rng=4)
        res = learn_structure(data)
        metrics = skeleton_metrics(res.skeleton.edges(), net.edges())
        assert metrics.f1 > 0.8

    def test_shd_decreases_with_samples(self):
        net = random_network(10, 12, rng=5, arity_range=(2, 3), max_parents=3)
        truth = dag_to_cpdag(net.n_nodes, net.edges())
        distances = []
        for m in (300, 30000):
            data = forward_sample(net, m, rng=6)
            res = learn_structure(data)
            distances.append(shd(res.cpdag, truth))
        assert distances[1] <= distances[0]


class TestMethodAgreement:
    """All learners and all execution modes give the same structure."""

    @pytest.fixture(scope="class")
    def data(self):
        return forward_sample(random_network(9, 11, rng=8, max_parents=3), 2500, rng=9)

    def test_all_methods_agree(self, data):
        fast = learn_structure(data, method="fast-bns")
        ref = learn_structure(data, method="pc-stable")
        naive = learn_structure(data, method="pc-stable-naive")
        assert fast.cpdag == ref.cpdag == naive.cpdag
        assert fast.sepsets == ref.sepsets == naive.sepsets

    @pytest.mark.parametrize("gs", [1, 3, 8])
    def test_gs_and_parallel_agree(self, data, gs):
        seq = learn_structure(data, gs=gs)
        par = learn_structure(data, gs=gs, n_jobs=2, parallelism="ci", backend="thread")
        assert seq.cpdag == par.cpdag
        assert seq.n_ci_tests == par.n_ci_tests


class TestSimulatorPipeline:
    """Trace -> simulator pipeline over a real learning run."""

    @pytest.fixture(scope="class")
    def run(self):
        data = forward_sample(random_network(12, 16, rng=10, max_parents=4), 3000, rng=11)
        rec = TraceRecorder()
        res = learn_structure(data, recorder=rec)
        return res, rec

    def test_paper_ordering_holds(self, run):
        """The headline qualitative claim: CI-level fastest, sample-level
        slowest at high thread counts.  Uses a low per-depth overhead so the
        12-node toy workload is not overhead-dominated (on real-size
        networks the default constants behave the same; see the Fig. 2
        bench)."""
        _, rec = run
        model = CostModel(MachineSpec(region_overhead_s=1e-5))
        seq = simulate_sequential(rec.depths, model)
        for t in (8, 16, 32):
            ci = simulate(rec.depths, model, "ci", t)
            edge = simulate(rec.depths, model, "edge", t)
            sample = simulate(rec.depths, model, "sample", t)
            assert ci.makespan_units <= edge.makespan_units
            assert edge.makespan_units < sample.makespan_units
            assert ci.speedup_over(seq) > 1

    def test_ci_speedup_monotone_to_moderate_t(self, run):
        _, rec = run
        model = CostModel(MachineSpec(region_overhead_s=1e-5))
        seq = simulate_sequential(rec.depths, model)
        speedups = [simulate(rec.depths, model, "ci", t).speedup_over(seq) for t in (1, 2, 4, 8)]
        assert all(b > a for a, b in zip(speedups, speedups[1:], strict=False))

    def test_cache_friendly_beats_unfriendly(self, run):
        _, rec = run
        friendly = simulate_sequential(rec.depths, CostModel(MachineSpec(), cache_friendly=True))
        unfriendly = simulate_sequential(
            rec.depths, CostModel(MachineSpec(), cache_friendly=False)
        )
        ratio = unfriendly.makespan_units / friendly.makespan_units
        assert 2.0 < ratio < 8.0  # bounded by the DRAM/cache ratio


class TestRealTimingEffects:
    """Real (not simulated) wall-clock effects on this host."""

    def test_naive_much_slower_than_vectorised(self):
        data = forward_sample(sprinkler(), 3000, rng=12)
        fast = learn_structure(data, method="fast-bns")
        naive = learn_structure(data, method="pc-stable-naive")
        assert naive.elapsed["skeleton"] > 3 * fast.elapsed["skeleton"]

    def test_grouping_reduces_tests_on_hubby_network(self):
        from repro.networks.generators import naive_bayes_network

        net = naive_bayes_network(8, rng=13)
        data = forward_sample(net, 4000, rng=14)
        grouped = learn_structure(data, method="fast-bns")
        ungrouped = learn_structure(data, method="pc-stable")
        assert grouped.n_ci_tests < ungrouped.n_ci_tests


class TestReproducibility:
    def test_learning_is_deterministic(self):
        net = random_network(10, 13, rng=15, max_parents=3)
        data = forward_sample(net, 2000, rng=16)
        a = learn_structure(data)
        b = learn_structure(data)
        assert a.cpdag == b.cpdag
        assert a.n_ci_tests == b.n_ci_tests

    def test_variable_permutation_isomorphism(self):
        """Permuting variable order permutes the result accordingly —
        PC-stable's order-independence, end to end."""
        net = random_network(8, 10, rng=17, max_parents=3)
        data = forward_sample(net, 4000, rng=18)
        res = learn_structure(data)
        perm = np.array([3, 1, 7, 0, 5, 2, 6, 4])
        permuted_rows = data.as_rows()[:, perm]
        permuted = learn_structure(
            permuted_rows, arities=[int(data.arities[i]) for i in perm]
        )
        # edge {u, v} in original <=> edge {pos(u), pos(v)} in permuted
        position = np.empty(8, dtype=int)
        position[perm] = np.arange(8)
        mapped = {
            tuple(sorted((position[u], position[v]))) for u, v in res.skeleton.edges()
        }
        assert mapped == set(permuted.skeleton.edges())
