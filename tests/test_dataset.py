"""Unit tests for repro.datasets.dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.dataset import DiscreteDataset, smallest_uint_dtype


class TestSmallestUintDtype:
    def test_uint8_boundary(self):
        assert smallest_uint_dtype(0) == np.uint8
        assert smallest_uint_dtype(255) == np.uint8

    def test_uint16_boundary(self):
        assert smallest_uint_dtype(256) == np.uint16
        assert smallest_uint_dtype(65535) == np.uint16

    def test_uint32(self):
        assert smallest_uint_dtype(65536) == np.uint32

    def test_uint64(self):
        assert smallest_uint_dtype(2**40) == np.uint64

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            smallest_uint_dtype(-1)


class TestConstruction:
    def test_from_rows_infers_arities(self):
        rows = np.array([[0, 1], [1, 2], [0, 0]])
        ds = DiscreteDataset.from_rows(rows)
        assert ds.n_variables == 2
        assert ds.n_samples == 3
        assert list(ds.arities) == [2, 3]

    def test_from_rows_explicit_arities(self):
        rows = np.array([[0, 1], [1, 0]])
        ds = DiscreteDataset.from_rows(rows, arities=[4, 4])
        assert list(ds.arities) == [4, 4]

    def test_from_rows_default_variable_major(self):
        ds = DiscreteDataset.from_rows(np.array([[0, 1], [1, 0]]))
        assert ds.layout == "variable-major"
        assert ds.values.shape == (2, 2)

    def test_from_rows_sample_major(self):
        rows = np.array([[0, 1], [1, 0], [1, 1]])
        ds = DiscreteDataset.from_rows(rows, layout="sample-major")
        assert ds.layout == "sample-major"
        assert ds.values.shape == (3, 2)

    def test_default_names(self):
        ds = DiscreteDataset.from_rows(np.array([[0, 1, 0]]), arities=[2, 2, 2])
        assert ds.names == ("V0", "V1", "V2")

    def test_custom_names(self):
        ds = DiscreteDataset.from_rows(np.array([[0, 1]]), arities=[2, 2], names=["a", "b"])
        assert ds.names == ("a", "b")
        assert ds.index_of("b") == 1

    def test_index_of_missing_raises(self):
        ds = DiscreteDataset.from_rows(np.array([[0]]), arities=[2])
        with pytest.raises(KeyError):
            ds.index_of("nope")

    def test_value_exceeding_arity_rejected(self):
        with pytest.raises(ValueError, match="arity"):
            DiscreteDataset.from_rows(np.array([[3]]), arities=[2])

    def test_bad_layout_rejected(self):
        with pytest.raises(ValueError, match="layout"):
            DiscreteDataset.from_rows(np.array([[0]]), arities=[2], layout="diagonal")

    def test_wrong_arity_count_rejected(self):
        with pytest.raises(ValueError):
            DiscreteDataset.from_rows(np.array([[0, 0]]), arities=[2])

    def test_zero_arity_rejected(self):
        with pytest.raises(ValueError):
            DiscreteDataset.from_rows(np.array([[0]]), arities=[0])

    def test_empty_rows_need_arities(self):
        with pytest.raises(ValueError):
            DiscreteDataset.from_rows(np.zeros((0, 2), dtype=int))

    def test_one_dimensional_rejected(self):
        with pytest.raises(ValueError):
            DiscreteDataset.from_rows(np.array([0, 1]))

    def test_dtype_minimised(self):
        ds = DiscreteDataset.from_rows(np.array([[0, 1]]), arities=[2, 2])
        assert ds.values.dtype == np.uint8
        big = DiscreteDataset.from_rows(np.array([[300, 1]]), arities=[301, 2])
        assert big.values.dtype == np.uint16


class TestAccessors:
    @pytest.fixture()
    def rows(self):
        rng = np.random.default_rng(3)
        return rng.integers(0, 3, size=(50, 4))

    def test_column_matches_rows_both_layouts(self, rows):
        for layout in ("variable-major", "sample-major"):
            ds = DiscreteDataset.from_rows(rows, arities=[3] * 4, layout=layout)
            for i in range(4):
                np.testing.assert_array_equal(ds.column(i), rows[:, i])

    def test_column_contiguity_depends_on_layout(self, rows):
        vm = DiscreteDataset.from_rows(rows, arities=[3] * 4, layout="variable-major")
        sm = DiscreteDataset.from_rows(rows, arities=[3] * 4, layout="sample-major")
        assert vm.column(1).flags["C_CONTIGUOUS"]
        assert not sm.column(1).flags["C_CONTIGUOUS"]

    def test_as_rows_round_trip(self, rows):
        for layout in ("variable-major", "sample-major"):
            ds = DiscreteDataset.from_rows(rows, arities=[3] * 4, layout=layout)
            np.testing.assert_array_equal(ds.as_rows(), rows)

    def test_columns_plural(self, rows):
        ds = DiscreteDataset.from_rows(rows, arities=[3] * 4)
        cols = ds.columns([2, 0])
        np.testing.assert_array_equal(cols[0], rows[:, 2])
        np.testing.assert_array_equal(cols[1], rows[:, 0])

    def test_arity_accessor(self, rows):
        ds = DiscreteDataset.from_rows(rows, arities=[3, 4, 3, 5])
        assert ds.arity(1) == 4
        assert ds.arity(3) == 5


class TestTransformations:
    @pytest.fixture()
    def ds(self):
        rng = np.random.default_rng(9)
        return DiscreteDataset.from_rows(rng.integers(0, 2, size=(30, 5)), arities=[2] * 5)

    def test_with_layout_round_trip(self, ds):
        sm = ds.with_layout("sample-major")
        back = sm.with_layout("variable-major")
        np.testing.assert_array_equal(back.values, ds.values)
        assert back.layout == "variable-major"

    def test_with_layout_same_is_identity(self, ds):
        assert ds.with_layout("variable-major") is ds

    def test_with_layout_invalid(self, ds):
        with pytest.raises(ValueError):
            ds.with_layout("bogus")

    def test_take_samples(self, ds):
        sub = ds.take_samples(10)
        assert sub.n_samples == 10
        np.testing.assert_array_equal(sub.as_rows(), ds.as_rows()[:10])

    def test_take_samples_preserves_layout(self, ds):
        sm = ds.with_layout("sample-major")
        assert sm.take_samples(5).layout == "sample-major"

    def test_take_samples_bounds(self, ds):
        with pytest.raises(ValueError):
            ds.take_samples(0)
        with pytest.raises(ValueError):
            ds.take_samples(ds.n_samples + 1)

    def test_select_variables(self, ds):
        sub = ds.select_variables([3, 1])
        assert sub.n_variables == 2
        np.testing.assert_array_equal(sub.column(0), ds.column(3))
        np.testing.assert_array_equal(sub.column(1), ds.column(1))
        assert sub.names == (ds.names[3], ds.names[1])

    def test_select_variables_sample_major(self, ds):
        sm = ds.with_layout("sample-major")
        sub = sm.select_variables([0, 2])
        np.testing.assert_array_equal(sub.column(1), ds.column(2))
