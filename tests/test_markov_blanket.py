"""Markov-blanket discovery tests (Grow-Shrink, IAMB)."""

from __future__ import annotations

import pytest

from repro.citests.gsquare import GSquareTest
from repro.citests.oracle import OracleCITest
from repro.core.markov_blanket import grow_shrink, iamb, true_markov_blanket
from repro.datasets.sampling import forward_sample
from repro.networks.classic import asia, cancer, sprinkler
from repro.networks.generators import random_dag, random_network


class TestTrueMarkovBlanket:
    def test_collider_includes_spouse(self):
        # 0 -> 2 <- 1: MB(0) = {2, 1} (child + spouse)
        edges = [(0, 2), (1, 2)]
        assert true_markov_blanket(3, edges, 0) == frozenset({1, 2})

    def test_chain_blanket(self):
        edges = [(0, 1), (1, 2)]
        assert true_markov_blanket(3, edges, 1) == frozenset({0, 2})
        assert true_markov_blanket(3, edges, 0) == frozenset({1})

    def test_isolated_node(self):
        assert true_markov_blanket(3, [(0, 1)], 2) == frozenset()


class TestOracleExactness:
    @pytest.mark.parametrize("factory", [sprinkler, asia, cancer])
    @pytest.mark.parametrize("algorithm", [grow_shrink, iamb])
    def test_classics_exact(self, factory, algorithm):
        net = factory()
        tester = OracleCITest.from_network(net)
        for target in range(net.n_nodes):
            result = algorithm(tester, net.n_nodes, target)
            assert result.blanket == true_markov_blanket(
                net.n_nodes, net.edges(), target
            ), (factory.__name__, target)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_dags_exact(self, seed):
        n = 10
        edges = random_dag(n, 14, rng=seed, max_parents=None)
        tester = OracleCITest(n, edges)
        for target in range(n):
            for algorithm in (grow_shrink, iamb):
                result = algorithm(tester, n, target)
                assert result.blanket == true_markov_blanket(n, edges, target)

    def test_shrink_removes_grow_false_positives(self):
        # A chain 0 -> 1 -> 2: growing MB(0) may pick up 2 before 1 is in
        # the candidate set; shrink must remove it.
        edges = [(0, 1), (1, 2)]
        tester = OracleCITest(3, edges)
        result = grow_shrink(tester, 3, 0)
        assert result.blanket == frozenset({1})
        # 2 was either never added or got shrunk.
        assert 2 not in result.blanket


class TestOnData:
    def test_strong_network_recovered(self):
        net = random_network(8, 9, rng=4, arity_range=(2, 2), max_parents=2, concentration=0.2)
        data = forward_sample(net, 30000, rng=5)
        tester = GSquareTest(data, alpha=0.01)
        hits = 0
        total = 0
        for target in range(net.n_nodes):
            truth = true_markov_blanket(net.n_nodes, net.edges(), target)
            found = iamb(tester, net.n_nodes, target, max_conditioning=4).blanket
            hits += len(found & truth)
            total += len(truth)
        assert hits / max(total, 1) > 0.6

    def test_work_accounting(self, asia_data):
        tester = GSquareTest(asia_data)
        before = tester.counters.n_tests
        result = grow_shrink(tester, asia_data.n_variables, 0)
        assert result.n_tests == tester.counters.n_tests - before
        assert result.n_tests > 0

    def test_target_validation(self, asia_data):
        tester = GSquareTest(asia_data)
        with pytest.raises(ValueError):
            grow_shrink(tester, asia_data.n_variables, -1)
        with pytest.raises(ValueError):
            iamb(tester, asia_data.n_variables, asia_data.n_variables)

    def test_traces_recorded(self, asia_data):
        tester = GSquareTest(asia_data)
        result = iamb(tester, asia_data.n_variables, 5)
        # Every blanket member entered through the grow phase.
        assert set(result.blanket) <= set(result.grow_trace)
        # Shrunk variables are no longer in the blanket.
        assert not (set(result.shrink_trace) & result.blanket)
