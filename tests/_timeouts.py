"""Hard wall-clock timeout helpers shared across the test-suite.

A real module (not ``conftest``) so test files can import it by a
unique name — ``benchmarks/conftest.py`` and ``tests/conftest.py`` both
answer to ``import conftest`` in a whole-repo run, and which one wins
depends on collection order.
"""

from __future__ import annotations

import contextlib
import queue
import signal
import threading
from typing import IO


@contextlib.contextmanager
def hard_timeout(seconds: float, label: str = "test"):
    """Fail (don't hang) if the enclosed block runs past ``seconds``.

    The fault drills and subprocess tests exercise code whose failure
    mode *is* a hang (un-drained dispatchers, stuck reads); a wall-clock
    alarm turns that into a diagnosable failure.  SIGALRM only works on
    the main thread of Unix — elsewhere this degrades to a no-op rather
    than a false failure.
    """
    if threading.current_thread() is not threading.main_thread() or not hasattr(
        signal, "SIGALRM"
    ):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(f"{label} exceeded hard timeout of {seconds}s")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def readline_with_timeout(stream: IO[str], timeout: float) -> str:
    """One line from a (subprocess) stream, or fail after ``timeout``.

    ``readline`` on a pipe cannot be interrupted by SIGALRM reliably
    (it restarts), so the read runs on a scratch thread and the caller
    waits on a queue."""
    out: queue.Queue[str] = queue.Queue()
    t = threading.Thread(target=lambda: out.put(stream.readline()), daemon=True)
    t.start()
    try:
        return out.get(timeout=timeout)
    except queue.Empty:
        raise TimeoutError(f"no line within {timeout}s") from None
