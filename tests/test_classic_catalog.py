"""Tests for the classic networks and the Table II catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.networks.catalog import TABLE_II, catalog_names, get_network, spec
from repro.networks.classic import asia, cancer, sprinkler


class TestClassicNetworks:
    def test_sprinkler_structure(self):
        net = sprinkler()
        assert net.n_nodes == 4
        assert sorted(net.edges()) == [(0, 1), (0, 2), (1, 3), (2, 3)]

    def test_asia_structure(self):
        net = asia()
        assert net.n_nodes == 8
        expected = {(0, 1), (2, 3), (2, 4), (1, 5), (3, 5), (5, 6), (5, 7), (4, 7)}
        assert set(net.edges()) == expected

    def test_cancer_structure(self):
        net = cancer()
        assert set(net.edges()) == {(0, 2), (1, 2), (2, 3), (2, 4)}

    @pytest.mark.parametrize("factory", [sprinkler, asia, cancer])
    def test_cpts_normalised(self, factory):
        net = factory()
        for i in range(net.n_nodes):
            np.testing.assert_allclose(net.cpt(i).table.sum(axis=1), 1.0)

    @pytest.mark.parametrize("factory", [sprinkler, asia, cancer])
    def test_all_binary(self, factory):
        assert (factory().arities == 2).all()


class TestCatalog:
    def test_table_ii_counts_match_paper(self):
        paper = {
            "alarm": (37, 46),
            "insurance": (27, 52),
            "hepar2": (70, 123),
            "munin1": (186, 273),
            "diabetes": (413, 602),
            "link": (724, 1125),
            "munin2": (1003, 1244),
            "munin3": (1041, 1306),
        }
        assert set(catalog_names()) == set(paper)
        for name, (nodes, edges) in paper.items():
            s = spec(name)
            assert (s.n_nodes, s.n_edges) == (nodes, edges)

    @pytest.mark.parametrize("name", ["alarm", "insurance"])
    def test_built_network_matches_spec(self, name):
        s = spec(name)
        net = get_network(name)
        assert net.n_nodes == s.n_nodes
        assert net.n_edges == s.n_edges

    def test_deterministic_build(self):
        a = get_network("alarm")
        b = get_network("alarm")
        assert a.edges() == b.edges()
        for i in range(a.n_nodes):
            np.testing.assert_array_equal(a.cpt(i).table, b.cpt(i).table)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            spec("hogwarts")

    def test_scaling_preserves_density(self):
        original = spec("munin1")
        scaled = spec("munin1", 0.5)
        assert scaled.n_nodes == round(186 * 0.5)
        density_orig = original.n_edges / original.n_nodes
        density_scaled = scaled.n_edges / scaled.n_nodes
        assert abs(density_orig - density_scaled) < 0.15

    def test_scale_bounds(self):
        with pytest.raises(ValueError):
            spec("alarm", 0.0)
        with pytest.raises(ValueError):
            spec("alarm", 1.5)

    def test_scale_one_is_identity(self):
        assert spec("alarm", 1.0) is TABLE_II["alarm"]

    def test_scaled_label(self):
        assert spec("alarm", 0.5).name == "alarm@0.5"

    def test_scaled_floor(self):
        tiny = spec("alarm", 0.01)
        assert tiny.n_nodes >= 8
