"""Tests for conservative/majority orientation, CSV I/O and trace
serialisation."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.citests.oracle import OracleCITest
from repro.core.conservative import classify_triples, orient_skeleton_robust
from repro.core.learn import learn_structure
from repro.core.skeleton import learn_skeleton
from repro.core.trace import TraceRecorder
from repro.datasets.io import read_csv, train_test_split, write_csv
from repro.datasets.sampling import forward_sample
from repro.graphs.dag import dag_to_cpdag
from repro.networks.classic import asia, sprinkler
from repro.simcpu.serialize import load_trace, save_trace, trace_from_json, trace_to_json


class TestConservativeOrientation:
    @pytest.mark.parametrize("rule", ["conservative", "majority"])
    def test_oracle_matches_standard_on_faithful_input(self, rule):
        """With exact CI answers every triple is unambiguous, so CPC/MPC
        agree with standard PC-stable and with the true CPDAG."""
        net = asia()
        tester = OracleCITest.from_network(net)
        skeleton, sepsets, _ = learn_skeleton(tester, net.n_nodes)
        pdag, classification = orient_skeleton_robust(tester, skeleton, sepsets, rule=rule)
        assert not classification.ambiguous
        assert pdag == dag_to_cpdag(net.n_nodes, net.edges())

    def test_classification_covers_all_unshielded_triples(self):
        net = sprinkler()
        tester = OracleCITest.from_network(net)
        skeleton, sepsets, _ = learn_skeleton(tester, net.n_nodes)
        cls = classify_triples(tester, skeleton, sepsets)
        n_triples = len(cls.colliders) + len(cls.non_colliders) + len(cls.ambiguous)
        # Sprinkler skeleton (0-1, 0-2, 1-3, 2-3) has four unshielded
        # triples; only the WetGrass one is a collider.
        assert n_triples == 4
        assert cls.colliders == {(1, 3, 2)}
        assert cls.non_colliders == {(1, 0, 2), (0, 1, 3), (0, 2, 3)}
        assert not cls.ambiguous
        assert cls.n_extra_tests > 0

    def test_invalid_rule(self):
        net = sprinkler()
        tester = OracleCITest.from_network(net)
        skeleton, sepsets, _ = learn_skeleton(tester, net.n_nodes)
        with pytest.raises(ValueError):
            classify_triples(tester, skeleton, sepsets, rule="optimistic")

    def test_learn_structure_integration(self, asia_data):
        standard = learn_structure(asia_data)
        conservative = learn_structure(asia_data, v_structures="conservative")
        # Same skeleton; conservative orients a subset of arrows.
        assert conservative.cpdag.skeleton_edges() == standard.cpdag.skeleton_edges()
        assert conservative.cpdag.n_directed <= standard.cpdag.n_directed

    def test_learn_structure_rule_validation(self, asia_data):
        with pytest.raises(ValueError):
            learn_structure(asia_data, v_structures="bold")


class TestCsvIO:
    CSV = "color,size,label\nred,small,yes\nblue,large,no\nred,large,yes\nblue,small,no\n"

    def test_read_encodes_by_first_appearance(self):
        ds, codec = read_csv(io.StringIO(self.CSV))
        assert ds.names == ("color", "size", "label")
        assert codec.levels[0] == ("red", "blue")
        np.testing.assert_array_equal(ds.column(0), [0, 1, 0, 1])
        assert list(ds.arities) == [2, 2, 2]

    def test_codec_round_trip(self):
        _, codec = read_csv(io.StringIO(self.CSV))
        assert codec.encode(0, "blue") == 1
        assert codec.decode(0, 1) == "blue"
        with pytest.raises(KeyError):
            codec.encode(0, "green")

    def test_write_read_round_trip(self, tmp_path):
        ds, codec = read_csv(io.StringIO(self.CSV))
        path = tmp_path / "out.csv"
        write_csv(ds, str(path), codec=codec)
        ds2, codec2 = read_csv(str(path))
        np.testing.assert_array_equal(ds.as_rows(), ds2.as_rows())
        assert codec2.levels == codec.levels

    def test_write_codes_without_codec(self):
        ds, _ = read_csv(io.StringIO(self.CSV))
        buf = io.StringIO()
        write_csv(ds, buf)
        lines = buf.getvalue().strip().splitlines()
        assert lines[0] == "color,size,label"
        assert lines[1] == "0,0,0"

    def test_errors(self):
        with pytest.raises(ValueError, match="header"):
            read_csv(io.StringIO(""))
        with pytest.raises(ValueError, match="no data"):
            read_csv(io.StringIO("a,b\n"))
        with pytest.raises(ValueError, match="columns"):
            read_csv(io.StringIO("a,b\n1,2,3\n"))

    def test_blank_lines_skipped(self):
        ds, _ = read_csv(io.StringIO("a,b\nx,y\n\nx,z\n"))
        assert ds.n_samples == 2

    def test_learnable_csv_pipeline(self, tmp_path):
        data = forward_sample(sprinkler(), 3000, rng=0)
        path = tmp_path / "sprinkler.csv"
        write_csv(data, str(path))
        loaded, _ = read_csv(str(path))
        res_a = learn_structure(data)
        res_b = learn_structure(loaded)
        assert sorted(res_a.skeleton.edges()) == sorted(res_b.skeleton.edges())


class TestTrainTestSplit:
    def test_sizes_and_disjointness(self, sprinkler_data):
        train, test = train_test_split(sprinkler_data, test_fraction=0.25, rng=0)
        assert train.n_samples + test.n_samples == sprinkler_data.n_samples
        assert test.n_samples == round(sprinkler_data.n_samples * 0.25)
        assert train.names == sprinkler_data.names

    def test_deterministic(self, sprinkler_data):
        a = train_test_split(sprinkler_data, rng=3)
        b = train_test_split(sprinkler_data, rng=3)
        np.testing.assert_array_equal(a[0].values, b[0].values)

    def test_validation(self, sprinkler_data):
        with pytest.raises(ValueError):
            train_test_split(sprinkler_data, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(sprinkler_data, test_fraction=1.0)


class TestTraceSerialization:
    @pytest.fixture(scope="class")
    def trace(self):
        net = asia()
        rec = TraceRecorder()
        data = forward_sample(net, 1500, rng=1)
        learn_structure(data, recorder=rec, gs=3)
        return rec.depths

    def test_json_round_trip(self, trace):
        restored = trace_from_json(trace_to_json(trace))
        assert len(restored) == len(trace)
        for a, b in zip(restored, trace, strict=True):
            assert a.depth == b.depth
            assert a.n_edges_start == b.n_edges_start
            assert a.n_edges_removed == b.n_edges_removed
            assert len(a.edges) == len(b.edges)
            for ea, eb in zip(a.edges, b.edges, strict=True):
                assert (ea.u, ea.v, ea.total_possible, ea.removed) == (
                    eb.u,
                    eb.v,
                    eb.total_possible,
                    eb.removed,
                )
                assert [g.tests for g in ea.groups] == [g.tests for g in eb.groups]

    def test_simulation_identical_after_round_trip(self, trace):
        from repro.simcpu import CostModel, MachineSpec, simulate

        restored = trace_from_json(trace_to_json(trace))
        model = CostModel(MachineSpec())
        for scheme in ("sequential", "ci", "edge"):
            a = simulate(trace, model, scheme, 4)
            b = simulate(restored, model, scheme, 4)
            assert a.makespan_units == b.makespan_units

    def test_file_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(trace, str(path))
        restored = load_trace(str(path))
        assert sum(e.n_tests for d in restored for e in d.edges) == sum(
            e.n_tests for d in trace for e in d.edges
        )

    def test_rejects_foreign_json(self):
        with pytest.raises(ValueError):
            trace_from_json('{"format": "something-else"}')
        with pytest.raises(ValueError):
            trace_from_json('{"format": "fastbns-trace", "version": 99}')
