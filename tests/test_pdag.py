"""PDAG tests."""

from __future__ import annotations

import pytest

from repro.graphs.pdag import PDAG
from repro.graphs.undirected import UndirectedGraph


class TestEdges:
    def test_add_undirected(self):
        g = PDAG(3)
        g.add_undirected(0, 1)
        assert g.has_undirected(1, 0)
        assert g.adjacent(0, 1)
        assert g.n_undirected == 1

    def test_add_directed(self):
        g = PDAG(3)
        g.add_directed(0, 1)
        assert g.has_directed(0, 1)
        assert not g.has_directed(1, 0)
        assert g.adjacent(1, 0)
        assert g.parents(1) == {0}
        assert g.children(0) == {1}

    def test_double_connection_rejected(self):
        g = PDAG(3)
        g.add_undirected(0, 1)
        with pytest.raises(ValueError):
            g.add_directed(0, 1)
        with pytest.raises(ValueError):
            g.add_undirected(1, 0)

    def test_orient(self):
        g = PDAG(3)
        g.add_undirected(0, 1)
        g.orient(1, 0)
        assert g.has_directed(1, 0)
        assert not g.has_undirected(0, 1)

    def test_orient_requires_undirected(self):
        g = PDAG(3)
        g.add_directed(0, 1)
        with pytest.raises(ValueError):
            g.orient(0, 1)

    def test_remove_any_edge(self):
        g = PDAG(4)
        g.add_undirected(0, 1)
        g.add_directed(2, 3)
        g.remove_any_edge(0, 1)
        g.remove_any_edge(3, 2)  # order-insensitive
        assert not g.adjacent(0, 1)
        assert not g.adjacent(2, 3)
        with pytest.raises(KeyError):
            g.remove_any_edge(0, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            PDAG(2).add_undirected(1, 1)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            PDAG(2).add_directed(0, 5)


class TestViews:
    def test_from_skeleton(self):
        sk = UndirectedGraph.from_edges(4, [(0, 1), (2, 3)])
        g = PDAG.from_skeleton(sk)
        assert g.n_undirected == 2
        assert g.n_directed == 0

    def test_from_dag_edges(self):
        g = PDAG.from_dag_edges(3, [(0, 1), (1, 2)])
        assert sorted(g.directed_edges()) == [(0, 1), (1, 2)]

    def test_skeleton_edges_mixed(self):
        g = PDAG(4)
        g.add_undirected(0, 1)
        g.add_directed(3, 2)
        assert g.skeleton_edges() == {(0, 1), (2, 3)}

    def test_adjacencies(self):
        g = PDAG(4)
        g.add_undirected(0, 1)
        g.add_directed(2, 0)
        g.add_directed(0, 3)
        assert g.adjacencies(0) == {1, 2, 3}

    def test_copy_independent(self):
        g = PDAG(3)
        g.add_undirected(0, 1)
        h = g.copy()
        h.orient(0, 1)
        assert g.has_undirected(0, 1)
        assert not h.has_undirected(0, 1)
        assert g != h


class TestDagChecks:
    def test_is_dag_true(self):
        g = PDAG.from_dag_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert g.is_dag()

    def test_is_dag_false_with_undirected(self):
        g = PDAG(2)
        g.add_undirected(0, 1)
        assert not g.is_dag()

    def test_is_dag_false_with_cycle(self):
        g = PDAG(3)
        g.add_directed(0, 1)
        g.add_directed(1, 2)
        g.add_directed(2, 0)
        assert not g.is_dag()

    def test_equality(self):
        a = PDAG(3)
        a.add_directed(0, 1)
        b = PDAG(3)
        b.add_directed(0, 1)
        assert a == b
        b.add_undirected(1, 2)
        assert a != b
