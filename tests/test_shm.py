"""Shared-memory dataset plane: lifecycle, transport parity, leak-freedom.

The contract under test (see :mod:`repro.datasets.shm`):

* attach serves bit-identical encodings under both ``fork`` and ``spawn``;
* the creator — and only the creator — unlinks: on pool shutdown, on
  session exit, after a worker crash, and via the finalizer backstop when
  an export is dropped without ``close()``;
* the pickled fallback path produces identical results;
* baseline (non-memoizing) regimes refuse the plane.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.datasets.dataset import DiscreteDataset
from repro.datasets.encoded import EncodedDataset
from repro.datasets.shm import shared_memory_available
from repro.engine import LearningSession
from repro.parallel.backends import WorkerPool

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="platform provides no usable shared memory"
)


@pytest.fixture(scope="module")
def small_data() -> DiscreteDataset:
    rng = np.random.default_rng(3)
    return DiscreteDataset.from_rows(rng.integers(0, 3, size=(1500, 7)))


def _attach_should_fail(handle) -> bool:
    try:
        EncodedDataset.attach_shm(handle)
    except FileNotFoundError:
        return True
    return False


class TestExportAttach:
    def test_round_trip_values(self, small_data):
        enc = EncodedDataset(small_data)
        enc.xy_codes(0, 1)
        enc.xy_codes(2, 3)
        with enc.export_shm() as export:
            attached = EncodedDataset.attach_shm(export.handle)
            assert attached.dataset.n_variables == small_data.n_variables
            assert attached.dataset.n_samples == small_data.n_samples
            assert attached.dataset.names == small_data.names
            for i in range(small_data.n_variables):
                np.testing.assert_array_equal(attached.col64(i), enc.col64(i))
            # pre-warmed pair plus a pair derived fresh from the plane
            np.testing.assert_array_equal(attached.xy_codes(0, 1), enc.xy_codes(0, 1))
            np.testing.assert_array_equal(attached.xy_codes(5, 6), enc.xy_codes(5, 6))
            assert attached.stats()["n_col64"] == small_data.n_variables
            attached.detach_shm()
            del attached
            gc.collect()

    def test_attached_views_are_read_only(self, small_data):
        with EncodedDataset(small_data).export_shm() as export:
            attached = EncodedDataset.attach_shm(export.handle)
            with pytest.raises(ValueError):
                attached.col64(0)[0] = 1
            with pytest.raises(ValueError):
                attached.dataset.values[0, 0] = 1
            del attached
            gc.collect()

    def test_encode_z_from_attached_plane(self, small_data):
        enc = EncodedDataset(small_data)
        with enc.export_shm() as export:
            attached = EncodedDataset.attach_shm(export.handle)
            s, rz = (1, 4, 6), [small_data.arity(v) for v in (1, 4, 6)]
            codes_a, nz_a = attached.encode_z(s, rz)
            codes_b, nz_b = enc.encode_z(s, rz)
            assert nz_a == nz_b
            np.testing.assert_array_equal(codes_a, codes_b)
            del attached
            gc.collect()

    def test_handle_is_tiny_and_descriptive(self, small_data):
        enc = EncodedDataset(small_data)
        enc.xy_codes(0, 1)
        with enc.export_shm() as export:
            h = export.handle
            assert h.pair_keys == ((0, 1),)
            assert h.nbytes == 8 * small_data.n_samples * (small_data.n_variables + 1)
            import pickle

            assert len(pickle.dumps(h)) < 2048

    def test_baseline_layer_refuses_export(self, small_data):
        enc = EncodedDataset(small_data, memoize=False)
        with pytest.raises(ValueError, match="baseline"):
            enc.export_shm()

    def test_detach_is_noop_on_ordinary_instances(self, small_data):
        enc = EncodedDataset(small_data)
        enc.detach_shm()  # must not raise
        assert enc.shm is None


class TestUnlinkDiscipline:
    def test_export_close_unlinks(self, small_data):
        export = EncodedDataset(small_data).export_shm()
        handle = export.handle
        export.close()
        assert export.closed
        export.close()  # idempotent
        assert _attach_should_fail(handle)

    def test_finalizer_backstop_unlinks_dropped_exports(self, small_data):
        export = EncodedDataset(small_data).export_shm()
        handle = export.handle
        del export
        gc.collect()
        assert _attach_should_fail(handle)

    def test_pool_shutdown_unlinks(self, small_data):
        pool = WorkerPool(small_data, 2, use_shm=True)
        handle = pool._shm_export.handle
        assert pool.eval_groups([(0, 1, ((), (2,)))])
        pool.shutdown()
        assert not pool.uses_shm
        assert _attach_should_fail(handle)

    def test_pool_shutdown_unlinks_after_worker_crash(self, small_data):
        import os
        from concurrent.futures.process import BrokenProcessPool

        pool = WorkerPool(small_data, 2, use_shm=True)
        handle = pool._shm_export.handle
        with pytest.raises(BrokenProcessPool):
            pool._executor.submit(os._exit, 13).result()
        pool.shutdown()
        assert _attach_should_fail(handle)

    def test_session_exit_unlinks(self, small_data):
        with LearningSession(small_data, n_jobs=2) as session:
            session.learn(max_depth=1)
            assert session.uses_shm
            handle = session._pool._shm_export.handle
        assert _attach_should_fail(handle)


class TestTransportParity:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_attach_parity_across_start_methods(self, small_data, start_method):
        jobs = [(0, 1, ((), (2,), (3, 4))), (2, 5, ((0,), (1,), (0, 1)))]
        with WorkerPool(small_data, 2, use_shm=False) as pickled:
            expected = pickled.eval_groups(jobs)
            assert not pickled.uses_shm
        with WorkerPool(small_data, 2, use_shm=True, start_method=start_method) as pool:
            assert pool.uses_shm
            assert pool.eval_groups(jobs) == expected

    def test_parity_with_worker_caches(self, small_data):
        jobs = [(0, 1, ((2,), (3,), (2, 3)))]
        with WorkerPool(small_data, 2, use_shm=False, cache_bytes=1 << 20) as pickled:
            expected = pickled.eval_groups(jobs)
        with WorkerPool(small_data, 2, use_shm=True, cache_bytes=1 << 20) as pool:
            assert pool.eval_groups(jobs) == expected
            assert pool.cache_stats()  # workers answered over the plane

    def test_learn_structure_parity(self, small_data):
        from repro.core.learn import learn_structure

        seq = learn_structure(small_data)
        shm = learn_structure(small_data, n_jobs=2, parallelism="ci")
        pickled = learn_structure(small_data, n_jobs=2, parallelism="ci", use_shm=False)
        for res in (shm, pickled):
            assert sorted(res.skeleton.edges()) == sorted(seq.skeleton.edges())
            assert res.sepsets == seq.sepsets
            assert res.cpdag == seq.cpdag


class TestValidation:
    def test_thread_backend_rejects_use_shm(self, small_data):
        with pytest.raises(ValueError, match="thread"):
            WorkerPool(small_data, 2, backend="thread", use_shm=True)

    def test_baseline_regime_rejects_use_shm(self, small_data):
        with pytest.raises(ValueError, match="baseline"):
            WorkerPool(small_data, 2, use_shm=True, memoize_encodings=False)

    def test_baseline_regime_auto_falls_back_to_pickled(self, small_data):
        with WorkerPool(small_data, 2, memoize_encodings=False) as pool:
            assert not pool.uses_shm
            assert pool.eval_groups([(0, 1, ((),))])


class TestSampleLevelTransport:
    def test_use_shm_false_is_honoured(self, small_data, monkeypatch):
        from repro.datasets import shm as shm_mod
        from repro.parallel.sample_level import sample_level_skeleton

        g2, s2, _ = sample_level_skeleton(
            small_data, small_data.n_variables, n_jobs=2, max_depth=0, use_shm=True
        )

        def forbidden(*a, **k):  # pragma: no cover - failure path
            raise AssertionError("use_shm=False must not export the plane")

        monkeypatch.setattr(shm_mod, "export_dataset", forbidden)
        g, s, _ = sample_level_skeleton(
            small_data, small_data.n_variables, n_jobs=2, max_depth=0, use_shm=False
        )
        assert sorted(g.edges()) == sorted(g2.edges())
        assert s == s2

    def test_use_shm_true_rejects_thread_backend(self, small_data):
        from repro.parallel.sample_level import sample_level_skeleton

        with pytest.raises(ValueError, match="thread"):
            sample_level_skeleton(
                small_data, small_data.n_variables, n_jobs=2, backend="thread", use_shm=True
            )

    def test_use_shm_true_rejects_sample_major_layout(self, small_data):
        from repro.parallel.sample_level import sample_level_skeleton

        rotated = small_data.with_layout("sample-major")
        with pytest.raises(ValueError, match="layout"):
            sample_level_skeleton(
                rotated, rotated.n_variables, n_jobs=2, use_shm=True
            )

    def test_raw_export_keeps_original_dtype(self, small_data):
        from repro.datasets.shm import attach_dataset, export_dataset

        assert small_data.values.dtype == np.uint8  # smallest sufficient
        with export_dataset(small_data) as export:
            assert export.handle.nbytes == small_data.values.nbytes  # no widening
            attached = attach_dataset(export.handle)
            assert attached.values.dtype == small_data.values.dtype
            np.testing.assert_array_equal(attached.values, small_data.values)
            del attached


class TestCapacityGuard:
    def test_undersized_shm_falls_back_instead_of_sigbus(self, small_data, monkeypatch):
        import os

        from repro.datasets import shm as shm_mod
        from repro.datasets.encoded import EncodedDataset

        class TinyFS:
            f_bavail = 1
            f_frsize = 4096

        monkeypatch.setattr(os, "statvfs", lambda path: TinyFS())
        # auto mode: clean fallback to the pickled path
        assert shm_mod.try_export_encoded(EncodedDataset(small_data), None) is None
        assert shm_mod.try_export_dataset(small_data, None) is None
        # explicit use_shm=True: a catchable error, not a SIGBUS later
        with pytest.raises(OSError, match="free"):
            shm_mod.try_export_encoded(EncodedDataset(small_data), True)

    def test_pool_auto_mode_survives_undersized_shm(self, small_data, monkeypatch):
        import os

        class TinyFS:
            f_bavail = 1
            f_frsize = 4096

        monkeypatch.setattr(os, "statvfs", lambda path: TinyFS())
        with WorkerPool(small_data, 2) as pool:
            assert not pool.uses_shm
            assert pool.eval_groups([(0, 1, ((),))])
