"""Adaptive group scheduler: policy behaviour and result invariance.

Two layers of contract (see :mod:`repro.parallel.adaptive`):

* **policy** — buckets shrink under waste, grow only when waste stays low
  *and* groups stay cheap, respect the clamps, seed depth 0 at 1, and the
  tail guard halves sizes when the pool drains below the worker count;
* **invariance** — ``gs="auto"`` produces bit-identical skeletons,
  separating sets and CPDAGs to the fixed-``gs`` sequential engine,
  because removal deferral and rank tie-breaks are group-size independent.
"""

from __future__ import annotations

import pytest

from repro.core.edges import EdgeTask
from repro.core.learn import learn_structure
from repro.parallel.adaptive import (
    DEFAULT_SEED_GS,
    AdaptiveGroupScheduler,
    resolve_gs,
)


def make_task(depth: int = 1, side: int = 5) -> EdgeTask:
    adj = tuple(range(2, 2 + side))
    return EdgeTask(0, 1, adj, adj, depth)


class TestResolveGs:
    def test_int_passthrough(self):
        assert resolve_gs(4) == 4
        assert resolve_gs(True) == 1  # ints in disguise are normalised

    def test_auto_builds_scheduler(self):
        sched = resolve_gs("auto", arities=(2, 3, 4))
        assert isinstance(sched, AdaptiveGroupScheduler)
        assert sched.arities == (2, 3, 4)

    def test_scheduler_passthrough(self):
        sched = AdaptiveGroupScheduler()
        assert resolve_gs(sched) is sched

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            resolve_gs(0)
        with pytest.raises(ValueError):
            resolve_gs("autox")


class TestPolicy:
    def test_depth0_seeds_at_one(self):
        sched = AdaptiveGroupScheduler()
        assert sched.gs_for(make_task(depth=0)) == 1
        assert sched.gs_for(make_task(depth=1)) == DEFAULT_SEED_GS

    def test_waste_shrinks_bucket(self):
        sched = AdaptiveGroupScheduler()
        task = make_task()
        for _ in range(6):
            gs = sched.gs_for(task)
            sched.observe(task, gs, first_accept=0, elapsed_s=1e-5)  # all but first wasted
        assert sched.gs_for(task) == sched.min_gs

    def test_cheap_wasteless_groups_grow_to_max(self):
        sched = AdaptiveGroupScheduler(max_gs=16)
        task = make_task()
        for _ in range(12):
            gs = sched.gs_for(task)
            sched.observe(task, gs, first_accept=-1, elapsed_s=1e-6)
        assert sched.gs_for(task) == 16

    def test_latency_target_damps_growth(self):
        sched = AdaptiveGroupScheduler(target_group_seconds=0.01)
        task = make_task()
        for _ in range(12):
            gs = sched.gs_for(task)
            sched.observe(task, gs, first_accept=-1, elapsed_s=0.02)  # expensive groups
        assert sched.gs_for(task) == DEFAULT_SEED_GS  # never doubled

    def test_tail_guard_halves_under_low_pressure(self):
        sched = AdaptiveGroupScheduler()
        task = make_task()
        full = sched.gs_for(task, n_pending=100, n_workers=8)
        starved = sched.gs_for(task, n_pending=3, n_workers=8)
        assert starved == max(sched.min_gs, full // 2)

    def test_buckets_are_independent(self):
        sched = AdaptiveGroupScheduler()
        hub, leaf = make_task(side=12), make_task(side=2)
        for _ in range(6):
            sched.observe(hub, sched.gs_for(hub), first_accept=0, elapsed_s=1e-5)
        assert sched.gs_for(hub) == sched.min_gs
        assert sched.gs_for(leaf) == DEFAULT_SEED_GS

    def test_arity_dimension(self):
        high = AdaptiveGroupScheduler(arities=(2, 8, 2, 2, 2, 2, 2, 2))
        flat = AdaptiveGroupScheduler()
        t = make_task()
        assert high.bucket_key(t) != flat.bucket_key(t)
        assert high.bucket_key(t)[0] == t.depth

    def test_summary_counters(self):
        sched = AdaptiveGroupScheduler()
        task = make_task()
        sched.observe(task, 4, first_accept=1, elapsed_s=1e-4)
        sched.observe(task, 4, first_accept=-1, elapsed_s=1e-4)
        s = sched.summary()
        assert s["n_groups"] == 2
        assert s["n_tests"] == 8
        assert s["n_wasted"] == 2
        assert s["waste_ratio"] == pytest.approx(0.25)
        assert len(s["buckets"]) == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AdaptiveGroupScheduler(min_gs=8, max_gs=4)
        with pytest.raises(ValueError):
            AdaptiveGroupScheduler(waste_shrink=0.1, waste_grow=0.2)
        with pytest.raises(ValueError):
            AdaptiveGroupScheduler(ewma=0.0)


class TestResultInvariance:
    @pytest.fixture(scope="class")
    def data(self):
        from repro.datasets.sampling import forward_sample
        from repro.networks.classic import asia

        return forward_sample(asia(), 4000, rng=7)

    @pytest.fixture(scope="class")
    def sequential(self, data):
        return learn_structure(data)

    def test_auto_parallel_matches_sequential(self, data, sequential):
        res = learn_structure(data, n_jobs=2, parallelism="ci", gs="auto", backend="thread")
        assert sorted(res.skeleton.edges()) == sorted(sequential.skeleton.edges())
        assert res.sepsets == sequential.sepsets
        assert res.cpdag == sequential.cpdag

    def test_auto_sequential_equals_fixed_seed(self, data):
        auto = learn_structure(data, gs="auto")
        fixed = learn_structure(data, gs=DEFAULT_SEED_GS)
        assert auto.n_ci_tests == fixed.n_ci_tests
        assert auto.cpdag == fixed.cpdag

    def test_histogram_and_pool_peak_recorded(self, data):
        res = learn_structure(data, n_jobs=2, parallelism="ci", gs="auto", backend="thread")
        assert res.stats.pool_peak > 0
        populated = [d.gs_histogram for d in res.stats.depths if d.n_groups]
        assert populated and all(h for h in populated)
        # depth 0 is always singleton groups
        assert set(res.stats.depths[0].gs_histogram) == {1}

    def test_shared_scheduler_instance_is_inspectable(self, data, sequential):
        sched = AdaptiveGroupScheduler(arities=data.arities)
        res = learn_structure(data, n_jobs=2, parallelism="ci", gs=sched, backend="thread")
        assert res.cpdag == sequential.cpdag
        summary = sched.summary()
        assert summary["n_tests"] == res.n_ci_tests

    def test_session_and_batch_accept_auto(self, data, sequential):
        from repro.engine import BatchServer, LearningSession

        with LearningSession(data) as session:
            res = session.learn(gs="auto")
            assert res.cpdag == sequential.cpdag
            server = BatchServer(session)
            out = server.serve([{"op": "learn", "gs": "auto", "max_depth": 1}])
            assert out[0]["result"] is not None and out[0]["error"] is None

    def test_bad_gs_rejected_by_frontend(self, data):
        with pytest.raises(ValueError):
            learn_structure(data, gs="fastest")
        with pytest.raises(ValueError):
            learn_structure(data, gs=0)
