"""BIF parser/writer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.bif import parse_bif, write_bif
from repro.networks.classic import asia, sprinkler
from repro.networks.generators import random_network

SAMPLE_BIF = """
network example {
}
variable Rain {
  type discrete [ 2 ] { no, yes };
}
variable Sprinkler {
  type discrete [ 2 ] { off, on };
}
variable Wet {
  type discrete [ 2 ] { dry, wet };
}
probability ( Rain ) {
  table 0.8, 0.2;
}
probability ( Sprinkler | Rain ) {
  (no) 0.6, 0.4;
  (yes) 0.99, 0.01;
}
probability ( Wet | Sprinkler, Rain ) {
  (off, no) 1.0, 0.0;
  (off, yes) 0.2, 0.8;
  (on, no) 0.1, 0.9;
  (on, yes) 0.01, 0.99;
}
"""


class TestParse:
    def test_basic_structure(self):
        net = parse_bif(SAMPLE_BIF)
        assert net.n_nodes == 3
        assert net.names == ("Rain", "Sprinkler", "Wet")
        assert net.parents(1) == (0,)
        assert net.parents(2) == (1, 0)

    def test_root_table(self):
        net = parse_bif(SAMPLE_BIF)
        np.testing.assert_allclose(net.cpt(0).table, [[0.8, 0.2]])

    def test_conditional_rows_in_declared_config_order(self):
        net = parse_bif(SAMPLE_BIF)
        # parents (Sprinkler, Rain): config code = sprinkler * 2 + rain
        table = net.cpt(2).table
        np.testing.assert_allclose(table[0], [1.0, 0.0])  # off, no
        np.testing.assert_allclose(table[1], [0.2, 0.8])  # off, yes
        np.testing.assert_allclose(table[2], [0.1, 0.9])  # on, no
        np.testing.assert_allclose(table[3], [0.01, 0.99])  # on, yes

    def test_comments_ignored(self):
        text = "// leading comment\n" + SAMPLE_BIF.replace(
            "probability ( Rain ) {", "probability ( Rain ) { // inline\n"
        )
        net = parse_bif(text)
        assert net.n_nodes == 3

    def test_missing_probability_block(self):
        broken = SAMPLE_BIF.replace("probability ( Rain ) {\n  table 0.8, 0.2;\n}", "")
        with pytest.raises(ValueError, match="no probability block"):
            parse_bif(broken)

    def test_undeclared_variable_in_probability(self):
        broken = SAMPLE_BIF + "\nprobability ( Ghost ) {\n  table 1.0;\n}\n"
        with pytest.raises(ValueError, match="undeclared"):
            parse_bif(broken)

    def test_missing_configuration(self):
        broken = SAMPLE_BIF.replace("  (on, yes) 0.01, 0.99;\n", "")
        with pytest.raises(ValueError, match="no probabilities"):
            parse_bif(broken)

    def test_continuous_rejected(self):
        text = "variable X {\n  type continuous;\n}\n"
        with pytest.raises(ValueError):
            parse_bif(text)

    def test_unknown_level_label(self):
        broken = SAMPLE_BIF.replace("(no) 0.6, 0.4;", "(maybe) 0.6, 0.4;")
        with pytest.raises(ValueError, match="unknown level"):
            parse_bif(broken)


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [sprinkler, asia])
    def test_classic_round_trip(self, factory):
        original = factory()
        text = write_bif(original, name="roundtrip")
        parsed = parse_bif(text)
        assert parsed.n_nodes == original.n_nodes
        assert parsed.names == original.names
        for i in range(original.n_nodes):
            assert parsed.parents(i) == original.parents(i)
            np.testing.assert_allclose(parsed.cpt(i).table, original.cpt(i).table, atol=1e-9)

    def test_random_network_round_trip(self):
        original = random_network(12, 16, rng=5, arity_range=(2, 4))
        parsed = parse_bif(write_bif(original))
        assert parsed.n_edges == original.n_edges
        for i in range(original.n_nodes):
            np.testing.assert_allclose(parsed.cpt(i).table, original.cpt(i).table, atol=1e-9)

    def test_load_bif_from_file(self, tmp_path):
        from repro.datasets.bif import load_bif

        path = tmp_path / "net.bif"
        path.write_text(write_bif(sprinkler()))
        net = load_bif(str(path))
        assert net.n_nodes == 4
