"""Arena-backed multi-group fused kernel: buffers, dtype tiers, native path.

Covers the megagroup engine introduced with the kernel arena:

* :class:`repro.citests.arena.KernelArena` — view reuse, geometric growth,
  prewarm sizing, pickle severing;
* cross-group fusion (``test_groups``) — bit-identical to the looped
  per-set oracle, including counters, cache statistics, duplicate edges
  and depth-0 sets;
* arity-driven dtype narrowing — ``code_dtype``/``_cell_dtype`` boundary
  behaviour at 255/256 and 65535/65536, every tier exercised end-to-end;
* the ``_INT64_CODE_LIMIT`` overflow fallback composed with a batched
  group (compressed-Z + pairwise-unique inside ``test_group``);
* the optional native backend — parity with the NumPy kernel and the
  ``REPRO_NATIVE=0`` kill switch;
* the conditioning-row memo — reuse across calls, FIFO bound.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.citests.arena import KernelArena
from repro.citests.chisquare import ChiSquareTest
from repro.citests.contingency import code_dtype, encode_columns, fused_cell_counts
from repro.citests.gsquare import GSquareTest
from repro.citests.native import native_available
from repro.citests.tablebase import _cell_dtype
from repro.datasets.dataset import DiscreteDataset
from repro.engine.statscache import SufficientStatsCache

TESTERS = [GSquareTest, ChiSquareTest]


def _random_dataset(rng, n_vars=8, arity_hi=4, m=120):
    arities = [int(rng.integers(2, arity_hi + 1)) for _ in range(n_vars)]
    rows = np.column_stack([rng.integers(0, a, m) for a in arities])
    return DiscreteDataset.from_rows(rows, arities=arities)


def _random_groups(rng, n_vars, n_groups=10, max_depth=3):
    groups = []
    for _ in range(n_groups):
        x, y = (int(v) for v in rng.choice(n_vars, size=2, replace=False))
        pool = [v for v in range(n_vars) if v not in (x, y)]
        sets, seen = [], set()
        for _ in range(int(rng.integers(2, 6))):
            depth = int(rng.integers(0, max_depth + 1))
            s = tuple(sorted(int(v) for v in rng.choice(pool, depth, replace=False)))
            if s not in seen:
                seen.add(s)
                sets.append(s)
        groups.append((x, y, sets))
    # Cross-group duplicate: the first edge again, endpoints swapped.
    x0, y0, s0 = groups[0]
    groups.append((y0, x0, list(s0)))
    return groups


def _run_looped(cls, ds, groups, cache):
    kw = {"stats_cache": SufficientStatsCache()} if cache else {}
    t = cls(ds, batch_groups=False, **kw)
    out = []
    for x, y, sets in groups:
        out.extend(t.test_group(x, y, sets))
    return t, out


def _run_fused(cls, ds, groups, cache, native, chunk=4):
    kw = {"stats_cache": SufficientStatsCache()} if cache else {}
    t = cls(ds, batch_groups=True, **kw)
    t.use_native = native
    out = []
    for i in range(0, len(groups), chunk):
        for res in t.test_groups(groups[i : i + chunk]):
            out.extend(res)
    return t, out


def _assert_identical(ref, got):
    assert len(ref) == len(got)
    for a, b in zip(ref, got, strict=True):
        assert (a.x, a.y, a.s) == (b.x, b.y, b.s)
        assert a.statistic == b.statistic  # bitwise: no tolerance
        assert a.dof == b.dof
        assert a.p_value == b.p_value
        assert a.independent == b.independent


# ---------------------------------------------------------------------- #
# arena
# ---------------------------------------------------------------------- #
class TestKernelArena:
    def test_take_shape_dtype_contiguity(self):
        arena = KernelArena()
        view = arena.take("cells", (7, 13), np.int32)
        assert view.shape == (7, 13)
        assert view.dtype == np.int32
        assert view.flags["C_CONTIGUOUS"]

    def test_steady_state_reuses_backing_buffer(self):
        arena = KernelArena()
        first = arena.take("cells", (64, 64), np.int64)
        grows = arena.n_grows
        for _ in range(32):
            again = arena.take("cells", (64, 64), np.int64)
            assert np.shares_memory(first, again)
        # Same-or-smaller takes of a warm slot never allocate.
        arena.take("cells", (8, 8), np.int64)
        assert arena.n_grows == grows

    def test_growth_is_geometric(self):
        arena = KernelArena()
        arena.take("cells", (2048,), np.int64)
        buf_small = arena._buffers[("cells", np.dtype(np.int64).str)]
        arena.take("cells", (2049,), np.int64)
        buf_big = arena._buffers[("cells", np.dtype(np.int64).str)]
        assert buf_big.size >= 2 * buf_small.size

    def test_slots_keyed_by_dtype(self):
        arena = KernelArena()
        a = arena.take("cells", (32,), np.int32)
        b = arena.take("cells", (32,), np.int64)
        assert not np.shares_memory(a, b)

    def test_prewarm_presizes_and_ignores_garbage(self):
        arena = KernelArena()
        arena.prewarm({"cells": (4096, "<i8"), "bad": "nonsense", 3: None})
        grows = arena.n_grows
        assert grows == 1
        arena.take("cells", (4096,), np.int64)  # fits: no growth
        assert arena.n_grows == grows
        arena.prewarm(None)  # no-op
        assert arena.n_grows == grows

    def test_pickle_severs_buffers(self):
        arena = KernelArena()
        arena.take("cells", (4096,), np.int64)
        clone = pickle.loads(pickle.dumps(arena))
        assert clone.stats()["n_slots"] == 0
        assert clone.stats()["nbytes"] == 0
        # ...but stays usable (regrows locally).
        view = clone.take("cells", (16,), np.int32)
        assert view.shape == (16,)

    def test_release_frees_but_keeps_arena_usable(self):
        arena = KernelArena()
        arena.take("cells", (4096,), np.float64)
        assert arena.nbytes() > 0
        arena.release()
        assert arena.nbytes() == 0
        assert arena.take("cells", (4,), np.float64).shape == (4,)

    def test_fused_tester_reaches_allocation_steady_state(self, asia_data):
        rng = np.random.default_rng(5)
        groups = _random_groups(rng, asia_data.n_variables, n_groups=6)
        t = GSquareTest(asia_data, batch_groups=True)
        t.use_native = False
        t.test_groups(groups)
        warm_grows = t.arena.n_grows
        for _ in range(3):
            t.test_groups(groups)
        assert t.arena.n_grows == warm_grows  # zero large allocations


# ---------------------------------------------------------------------- #
# cross-group fusion vs the looped oracle
# ---------------------------------------------------------------------- #
class TestMultiGroupFusion:
    @pytest.mark.parametrize("cls", TESTERS)
    @pytest.mark.parametrize("cache", [False, True])
    def test_bitwise_identical_to_looped(self, cls, cache):
        rng = np.random.default_rng(11)
        ds = _random_dataset(rng)
        groups = _random_groups(rng, ds.n_variables)
        t_ref, ref = _run_looped(cls, ds, groups, cache)
        t_got, got = _run_fused(cls, ds, groups, cache, native=False)
        _assert_identical(ref, got)
        assert vars(t_ref.counters) == vars(t_got.counters)
        if cache:
            ref_stats = vars(t_ref._builder.cache.stats)
            got_stats = vars(t_got._builder.cache.stats)
            assert ref_stats == got_stats

    @pytest.mark.parametrize("chunk", [1, 3, 100])
    def test_chunking_is_invisible(self, chunk):
        rng = np.random.default_rng(12)
        ds = _random_dataset(rng)
        groups = _random_groups(rng, ds.n_variables)
        _, ref = _run_looped(GSquareTest, ds, groups, cache=False)
        _, got = _run_fused(GSquareTest, ds, groups, False, False, chunk=chunk)
        _assert_identical(ref, got)

    def test_conditioning_row_memo_reused_across_calls(self):
        rng = np.random.default_rng(13)
        ds = _random_dataset(rng)
        groups = _random_groups(rng, ds.n_variables)
        t = GSquareTest(ds, batch_groups=True)
        t.use_native = False
        first = [r for res in t.test_groups(groups) for r in res]
        assert len(t._z_rows) > 0
        memo_ids = {s: id(row) for s, row in t._z_rows.items()}
        second = [r for res in t.test_groups(groups) for r in res]
        _assert_identical(first, second)
        # Served from the memo: the rows were not rebuilt.
        assert {s: id(row) for s, row in t._z_rows.items()} == memo_ids

    def test_memo_is_fifo_bounded(self):
        rng = np.random.default_rng(14)
        ds = _random_dataset(rng, n_vars=10, m=40)
        t = GSquareTest(ds, batch_groups=True)
        t.use_native = False
        t._z_rows_cap = 4
        groups = _random_groups(rng, ds.n_variables, n_groups=14)
        t.test_groups(groups)
        assert len(t._z_rows) <= 4
        assert len(t._z_scaled) <= 4


# ---------------------------------------------------------------------- #
# dtype narrowing
# ---------------------------------------------------------------------- #
class TestDtypeTiers:
    @pytest.mark.parametrize(
        "n_configs, expect",
        [
            (255, np.uint8),
            (256, np.uint16),
            (65535, np.uint16),
            (65536, np.int32),
            (2**31 - 1, np.int32),
            (2**31, np.int64),
        ],
    )
    def test_code_dtype_boundaries(self, n_configs, expect):
        assert code_dtype(n_configs) == np.dtype(expect)

    @pytest.mark.parametrize(
        "limit, narrow, expect",
        [
            (255, True, np.uint8),
            (256, True, np.uint16),
            (65535, True, np.uint16),
            (65536, True, np.int32),
            (255, False, np.int32),  # native kernels dispatch on i32/i64
            (2**31, False, np.int64),
        ],
    )
    def test_cell_dtype_tiers(self, limit, narrow, expect):
        assert _cell_dtype(limit, narrow) == np.dtype(expect)

    @pytest.mark.parametrize(
        "arities",
        [
            [5, 51],  # 255  -> uint8
            [4, 64],  # 256  -> uint16
            [255, 257],  # 65535 -> uint16
            [256, 256],  # 65536 -> int32
        ],
    )
    def test_encode_columns_auto_matches_int64(self, arities):
        rng = np.random.default_rng(21)
        cols = [rng.integers(0, a, 200) for a in arities]
        want, n_want = encode_columns(cols, arities)
        got, n_got = encode_columns(cols, arities, dtype="auto")
        assert n_got == n_want
        assert got.dtype == code_dtype(n_want)
        assert np.array_equal(got.astype(np.int64), want)

    def test_single_column_auto_is_a_view(self):
        col = np.arange(100, dtype=np.uint8) % 7
        codes, n = encode_columns([col], [7], dtype="auto")
        assert n == 7
        assert codes.dtype == np.uint8
        assert codes is col  # no copy when already the target dtype

    def test_single_column_default_copy_only_when_widening(self):
        col64 = (np.arange(50) % 3).astype(np.int64)
        codes, _ = encode_columns([col64], [3])
        assert codes is col64
        col8 = (np.arange(50) % 3).astype(np.uint8)
        widened, _ = encode_columns([col8], [3])
        assert widened.dtype == np.int64
        assert np.array_equal(widened, col64)

    def _tier_workload(self, tier):
        # Dataset/group mixes whose fused-wave histograms land in the
        # requested tier: binary toys stay under 256 cells, the alarm-ish
        # mix under 65536, and many deep arity-4 sets in one call push a
        # single wave past 65536 cells.
        rng = np.random.default_rng(31)
        if tier == "uint8":
            ds = _random_dataset(rng, n_vars=5, arity_hi=2, m=60)
            groups = _random_groups(rng, 5, n_groups=4, max_depth=1)
        elif tier == "uint16":
            ds = _random_dataset(rng, n_vars=8, arity_hi=4, m=60)
            groups = _random_groups(rng, 8, n_groups=8, max_depth=3)
        else:  # int32: one wave > 65535 cells
            # m keeps nz=256 under the dense limit (4 * m) so the deep
            # sets stay on the fused path instead of compressed-Z.
            arities = [4] * 8
            rows = np.column_stack([rng.integers(0, 4, 300) for _ in arities])
            ds = DiscreteDataset.from_rows(rows, arities=arities)
            groups = []
            for x in range(4):
                y = x + 4
                pool = [v for v in range(8) if v not in (x, y)]
                sets = [
                    tuple(sorted(pool[i] for i in idx))
                    for idx in [(0, 1, 2, 3), (0, 1, 2, 4), (0, 1, 3, 4), (0, 2, 3, 4)]
                ]
                groups.append((x, y, sets))
        return ds, groups

    @pytest.mark.parametrize("tier", ["uint8", "uint16", "int32"])
    def test_every_tier_bitwise_identical(self, tier, monkeypatch):
        ds, groups = self._tier_workload(tier)
        seen = set()
        import repro.citests.tablebase as tb

        real = tb._cell_dtype

        def spy(limit, narrow):
            dt = real(limit, narrow)
            seen.add(dt.name)
            return dt

        monkeypatch.setattr(tb, "_cell_dtype", spy)
        _, ref = _run_looped(GSquareTest, ds, groups, cache=False)
        _, got = _run_fused(GSquareTest, ds, groups, cache=False, native=False)
        _assert_identical(ref, got)
        assert tier in seen, f"workload never produced a {tier} wave: {seen}"


# ---------------------------------------------------------------------- #
# int64 overflow fallback inside a batched group
# ---------------------------------------------------------------------- #
class TestOverflowFallbackInBatchedGroup:
    def test_overflowing_depth_matches_looped(self):
        # prod(arities) over the deep set exceeds int64: encode_columns
        # falls back to pairwise-unique relabelling, and the fused planner
        # routes the set through the compressed-Z looped path — composed
        # here inside one batched group next to dense shallow sets.
        rng = np.random.default_rng(41)
        n_vars = 44
        arities = [3] * n_vars
        rows = np.column_stack([rng.integers(0, 3, 60) for _ in range(n_vars)])
        ds = DiscreteDataset.from_rows(rows, arities=arities)
        deep = tuple(range(2, 44))  # 3**42 > 2**63
        assert 3**42 > 2**63
        sets = [(), (2,), deep, (2, 3)]
        for cls in TESTERS:
            t_ref = cls(ds, batch_groups=False)
            ref = t_ref.test_group(0, 1, sets)
            t_got = cls(ds, batch_groups=True)
            t_got.use_native = False
            got = t_got.test_group(0, 1, sets)
            _assert_identical(ref, got)
            assert vars(t_ref.counters) == vars(t_got.counters)


# ---------------------------------------------------------------------- #
# native path
# ---------------------------------------------------------------------- #
class TestNativePath:
    def test_kill_switch(self):
        env = dict(os.environ, REPRO_NATIVE="0")
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.citests.native import native_available, native_kind;"
                "print(native_available(), native_kind())",
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            check=True,
        )
        assert out.stdout.split() == ["False", "None"]

    @pytest.mark.skipif(not native_available(), reason="no native backend")
    def test_fused_counts_parity_with_numpy(self):
        rng = np.random.default_rng(51)
        n, m = 13, 300
        scales = rng.integers(2, 10, n).astype(np.int64)
        sizes = rng.integers(1, 9, n) * scales
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.int64)
        total = int(sizes.sum())
        z2d = np.stack(
            [rng.integers(0, sizes[r] // scales[r], m) for r in range(n)]
        ).astype(np.int32)
        xy_mat = rng.integers(0, 2, (4, m)).astype(np.int32)
        row_group = rng.integers(0, 4, n).astype(np.int64)
        # Clamp endpoint codes below each row's scale.
        for r in range(n):
            np.minimum(xy_mat[row_group[r]], scales[r] - 1, out=xy_mat[row_group[r]])
        ref = fused_cell_counts(
            z2d.copy(), xy_mat, row_group, scales, offsets, total, use_native=False
        )
        got = fused_cell_counts(
            z2d.copy(), xy_mat, row_group, scales, offsets, total, use_native=True
        )
        assert got.dtype == ref.dtype or got.sum() == ref.sum()
        assert np.array_equal(np.asarray(got), np.asarray(ref))

    @pytest.mark.skipif(not native_available(), reason="no native backend")
    @pytest.mark.parametrize("cls", TESTERS)
    def test_tester_native_bitwise_identical(self, cls):
        rng = np.random.default_rng(52)
        ds = _random_dataset(rng)
        groups = _random_groups(rng, ds.n_variables)
        t_ref, ref = _run_fused(cls, ds, groups, cache=False, native=False)
        t_got, got = _run_fused(cls, ds, groups, cache=False, native=True)
        _assert_identical(ref, got)
        assert vars(t_ref.counters) == vars(t_got.counters)
