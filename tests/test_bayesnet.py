"""DiscreteBayesianNetwork and CPT validation tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.networks.bayesnet import CPT, DiscreteBayesianNetwork


def two_node_net():
    cpts = [
        CPT(parents=(), table=np.array([[0.4, 0.6]])),
        CPT(parents=(0,), table=np.array([[0.9, 0.1], [0.2, 0.8]])),
    ]
    return DiscreteBayesianNetwork([2, 2], cpts, names=("A", "B"))


class TestCPT:
    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            CPT(parents=(), table=np.array([[0.5, 0.4]]))

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CPT(parents=(), table=np.array([[1.2, -0.2]]))

    def test_must_be_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            CPT(parents=(), table=np.array([0.5, 0.5]))

    def test_properties(self):
        cpt = CPT(parents=(3, 1), table=np.tile([0.5, 0.5], (6, 1)))
        assert cpt.arity == 2
        assert cpt.n_parent_configs == 6
        assert cpt.parents == (3, 1)


class TestNetworkValidation:
    def test_basic_accessors(self):
        net = two_node_net()
        assert net.n_nodes == 2
        assert net.n_edges == 1
        assert net.edges() == [(0, 1)]
        assert net.parents(1) == (0,)
        assert net.names == ("A", "B")

    def test_cpt_config_count_must_match(self):
        cpts = [
            CPT(parents=(), table=np.array([[0.4, 0.6]])),
            CPT(parents=(0,), table=np.array([[0.9, 0.1]])),  # needs 2 rows
        ]
        with pytest.raises(ValueError, match="parent configs"):
            DiscreteBayesianNetwork([2, 2], cpts)

    def test_cpt_arity_must_match(self):
        cpts = [CPT(parents=(), table=np.array([[0.4, 0.6]]))]
        with pytest.raises(ValueError, match="arity"):
            DiscreteBayesianNetwork([3], cpts)

    def test_self_parent_rejected(self):
        cpts = [CPT(parents=(0,), table=np.array([[0.5, 0.5], [0.5, 0.5]]))]
        with pytest.raises(ValueError, match="own parent"):
            DiscreteBayesianNetwork([2], cpts)

    def test_parent_out_of_range(self):
        cpts = [CPT(parents=(5,), table=np.tile([0.5, 0.5], (2, 1)))]
        with pytest.raises(ValueError, match="out of range"):
            DiscreteBayesianNetwork([2], cpts)

    def test_cycle_detected(self):
        cpts = [
            CPT(parents=(1,), table=np.tile([0.5, 0.5], (2, 1))),
            CPT(parents=(0,), table=np.tile([0.5, 0.5], (2, 1))),
        ]
        with pytest.raises(ValueError, match="cycle"):
            DiscreteBayesianNetwork([2, 2], cpts)

    def test_cpt_count_mismatch(self):
        with pytest.raises(ValueError):
            DiscreteBayesianNetwork([2, 2], [CPT(parents=(), table=np.array([[1.0, 0.0]]))])


class TestTopologicalOrder:
    def test_respects_edges(self, asia_net):
        order = asia_net.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for parent, child in asia_net.edges():
            assert position[parent] < position[child]

    def test_covers_all_nodes(self, small_random_net):
        order = small_random_net.topological_order()
        assert sorted(order) == list(range(small_random_net.n_nodes))


class TestLogProbability:
    def test_matches_manual_product(self):
        net = two_node_net()
        # P(A=1, B=0) = 0.6 * 0.2
        expected = np.log(0.6) + np.log(0.2)
        assert np.isclose(net.log_probability([1, 0]), expected)

    def test_mapping_input(self):
        net = two_node_net()
        assert np.isclose(net.log_probability({0: 0, 1: 1}), np.log(0.4) + np.log(0.1))

    def test_total_probability_sums_to_one(self, sprinkler_net):
        total = 0.0
        for a in range(2):
            for b in range(2):
                for c in range(2):
                    for d in range(2):
                        total += np.exp(sprinkler_net.log_probability([a, b, c, d]))
        assert np.isclose(total, 1.0)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            two_node_net().log_probability([0])


class TestNetworkxExport:
    def test_to_networkx(self, asia_net):
        g = asia_net.to_networkx()
        assert g.number_of_nodes() == asia_net.n_nodes
        assert g.number_of_edges() == asia_net.n_edges
        import networkx as nx

        assert nx.is_directed_acyclic_graph(g)
