"""V-structure orientation and Meek-rule tests."""

from __future__ import annotations

from repro.core.orientation import (
    apply_meek_rules,
    orient_skeleton,
    orient_v_structures,
)
from repro.core.sepsets import SepSetStore
from repro.graphs.pdag import PDAG
from repro.graphs.undirected import UndirectedGraph


class TestVStructures:
    def test_collider_oriented(self):
        # 0 - 2 - 1 with 0, 1 separated by the empty set (2 not in sepset).
        sk = UndirectedGraph.from_edges(3, [(0, 2), (1, 2)])
        seps = SepSetStore()
        seps.record(0, 1, ())
        pdag = orient_v_structures(sk, seps)
        assert pdag.has_directed(0, 2)
        assert pdag.has_directed(1, 2)

    def test_no_collider_when_middle_in_sepset(self):
        sk = UndirectedGraph.from_edges(3, [(0, 2), (1, 2)])
        seps = SepSetStore()
        seps.record(0, 1, (2,))
        pdag = orient_v_structures(sk, seps)
        assert pdag.n_directed == 0
        assert pdag.n_undirected == 2

    def test_shielded_triple_ignored(self):
        sk = UndirectedGraph.from_edges(3, [(0, 2), (1, 2), (0, 1)])
        seps = SepSetStore()
        pdag = orient_v_structures(sk, seps)
        assert pdag.n_directed == 0

    def test_conflicting_vstructures_first_wins(self):
        # Path 0 - 1 - 2 - 3; sepsets force colliders at 1 and at 2; the
        # edge 1 - 2 can only carry one arrowhead: first-come-first-served.
        sk = UndirectedGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        seps = SepSetStore()
        seps.record(0, 2, ())  # collider at 1: 0 -> 1 <- 2
        seps.record(1, 3, ())  # collider at 2: 1 -> 2 <- 3
        pdag = orient_v_structures(sk, seps)
        # Edge (1,2) received the 2 -> 1 arrow from the first triple, so the
        # second triple can only orient 3 -> 2.
        assert pdag.has_directed(0, 1)
        assert pdag.has_directed(2, 1)
        assert pdag.has_directed(3, 2)


class TestMeekRules:
    def test_rule1(self):
        # 0 -> 1, 1 - 2, 0 and 2 non-adjacent  =>  1 -> 2
        pdag = PDAG(3)
        pdag.add_directed(0, 1)
        pdag.add_undirected(1, 2)
        apply_meek_rules(pdag)
        assert pdag.has_directed(1, 2)

    def test_rule1_blocked_by_adjacency(self):
        pdag = PDAG(3)
        pdag.add_directed(0, 1)
        pdag.add_undirected(1, 2)
        pdag.add_undirected(0, 2)
        apply_meek_rules(pdag)
        # 0 and 2 adjacent: R1 does not fire on 1 - 2... but R2 may not
        # either; the graph must keep 1 - 2 undirected.
        assert pdag.has_undirected(1, 2) or pdag.has_directed(1, 2) is False

    def test_rule2(self):
        # 0 -> 2 -> 1 and 0 - 1  =>  0 -> 1
        pdag = PDAG(3)
        pdag.add_directed(0, 2)
        pdag.add_directed(2, 1)
        pdag.add_undirected(0, 1)
        apply_meek_rules(pdag)
        assert pdag.has_directed(0, 1)

    def test_rule3(self):
        # 0 - 1, 0 - 2, 0 - 3, 2 -> 1, 3 -> 1, 2 and 3 non-adjacent => 0 -> 1
        pdag = PDAG(4)
        pdag.add_undirected(0, 1)
        pdag.add_undirected(0, 2)
        pdag.add_undirected(0, 3)
        pdag.add_directed(2, 1)
        pdag.add_directed(3, 1)
        apply_meek_rules(pdag)
        assert pdag.has_directed(0, 1)

    def test_rule4_only_with_flag(self):
        # i - j, i - k, k -> l, l -> j, k and j non-adjacent => i -> j (R4)
        def build():
            pdag = PDAG(4)
            i, j, k, l = 0, 1, 2, 3
            pdag.add_undirected(i, j)
            pdag.add_undirected(i, k)
            pdag.add_undirected(i, l)
            pdag.add_directed(k, l)
            pdag.add_directed(l, j)
            return pdag

        without = apply_meek_rules(build(), apply_r4=False)
        assert without.has_undirected(0, 1)
        with_r4 = apply_meek_rules(build(), apply_r4=True)
        assert with_r4.has_directed(0, 1)

    def test_fixpoint_idempotent(self):
        pdag = PDAG(4)
        pdag.add_directed(0, 1)
        pdag.add_undirected(1, 2)
        pdag.add_undirected(2, 3)
        apply_meek_rules(pdag)
        snapshot = pdag.copy()
        apply_meek_rules(pdag)
        assert pdag == snapshot

    def test_no_rules_fire_on_plain_undirected(self):
        pdag = PDAG(3)
        pdag.add_undirected(0, 1)
        pdag.add_undirected(1, 2)
        apply_meek_rules(pdag)
        assert pdag.n_directed == 0


class TestOrientSkeletonEndToEnd:
    def test_cancer_fully_oriented(self, cancer_net):
        from repro.citests.oracle import OracleCITest
        from repro.core.skeleton import learn_skeleton
        from repro.graphs.dag import dag_to_cpdag

        tester = OracleCITest.from_network(cancer_net)
        graph, sepsets, _ = learn_skeleton(tester, cancer_net.n_nodes)
        cpdag = orient_skeleton(graph, sepsets)
        truth = dag_to_cpdag(cancer_net.n_nodes, cancer_net.edges())
        assert cpdag == truth

    def test_chain_stays_undirected(self):
        from repro.citests.oracle import OracleCITest
        from repro.core.skeleton import learn_skeleton
        from repro.networks.generators import chain_network

        net = chain_network(5, rng=0)
        tester = OracleCITest.from_network(net)
        graph, sepsets, _ = learn_skeleton(tester, net.n_nodes)
        cpdag = orient_skeleton(graph, sepsets)
        assert cpdag.n_directed == 0
        assert cpdag.n_undirected == 4
