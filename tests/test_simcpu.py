"""Multi-core simulator tests: cost model, schedulers, conservation laws."""

from __future__ import annotations

import pytest

from repro.citests.oracle import OracleCITest
from repro.core.skeleton import learn_skeleton
from repro.core.trace import DepthTrace, EdgeWorkRecord, GroupRecord, TraceRecorder
from repro.core.trace import TestRecord as TR  # alias avoids pytest collecting the dataclass
from repro.networks.classic import asia
from repro.simcpu.costmodel import CostModel, calibrate_seconds_per_unit
from repro.simcpu.machine import PAPER_MACHINE, MachineSpec
from repro.simcpu.scheduler import (
    simulate,
    simulate_ci_level,
    simulate_edge_level,
    simulate_sample_level,
    simulate_sequential,
)


def synthetic_trace(edge_test_counts, depth=1, m=1000, cells=8):
    """One-depth trace with the given per-edge executed-test counts."""
    edges = []
    for i, count in enumerate(edge_test_counts):
        groups = [
            GroupRecord(tests=[TR(depth=depth, m=m, cells=cells, independent=False)])
            for _ in range(count)
        ]
        edges.append(EdgeWorkRecord(u=0, v=i + 1, total_possible=count, groups=groups))
    return [DepthTrace(depth=depth, n_edges_start=len(edges), edges=edges)]


@pytest.fixture(scope="module")
def asia_trace():
    net = asia()
    recorder = TraceRecorder()
    learn_skeleton(OracleCITest.from_network(net, n_samples=1000), net.n_nodes, recorder=recorder)
    return recorder.depths


class TestCostModel:
    def test_unfriendly_gather_matches_t3(self):
        spec = MachineSpec()
        model = CostModel(spec, cache_friendly=False)
        # m samples = B/4 => T3 = dram * (d+2) * B/4 for d+2 columns
        m = spec.values_per_line
        d = 2
        assert model.gather_units(m, d + 2) == spec.dram_cost * (d + 2) * m

    def test_friendly_gather_matches_t4(self):
        spec = MachineSpec()
        model = CostModel(spec, cache_friendly=True)
        m = spec.values_per_line
        d = 2
        expected = spec.dram_cost * (d + 2) + spec.cache_cost * (d + 2) * (m - 1)
        assert model.gather_units(m, d + 2) == expected

    def test_cache_speedup_ratio_matches_paper(self):
        # The Sec. IV-D example: d=2, B=64, ratio 8 => T3/T4 = 5.57
        spec = MachineSpec()
        friendly = CostModel(spec, cache_friendly=True)
        unfriendly = CostModel(spec, cache_friendly=False)
        m = spec.values_per_line
        ratio = unfriendly.gather_units(m, 4) / friendly.gather_units(m, 4)
        assert ratio == pytest.approx(5.57, abs=0.01)

    def test_group_reuse_cheaper(self):
        model = CostModel(MachineSpec())
        rec = TR(depth=2, m=1000, cells=16, independent=False)
        assert model.test_units(rec, xy_reused=True) < model.test_units(rec, xy_reused=False)

    def test_group_units_reuses_after_first(self):
        model = CostModel(MachineSpec())
        rec = TR(depth=1, m=500, cells=8, independent=False)
        g = GroupRecord(tests=[rec, rec, rec])
        expected = model.test_units(rec) + 2 * model.test_units(rec, xy_reused=True)
        assert model.group_units(g) == expected

    def test_contention_scales_dram_only(self):
        spec = MachineSpec(dram_concurrency=4)
        base = CostModel(spec, cache_friendly=True)
        loaded = base.with_contention(8)
        assert loaded.dram_cost == spec.dram_cost * 2
        assert base.with_contention(2).dram_cost == spec.dram_cost

    def test_calibration(self, asia_trace):
        model = CostModel(MachineSpec())
        spu = calibrate_seconds_per_unit(model, asia_trace, measured_seconds=2.0)
        seq = simulate_sequential(
            asia_trace, CostModel(model.machine.calibrated(spu))
        )
        assert seq.seconds == pytest.approx(2.0, rel=1e-9)

    def test_calibration_rejects_empty(self):
        with pytest.raises(ValueError):
            calibrate_seconds_per_unit(CostModel(MachineSpec()), [], 1.0)


class TestSchedulerLaws:
    @pytest.mark.parametrize("scheme", ["ci", "edge"])
    @pytest.mark.parametrize("t", [1, 2, 4, 16])
    def test_makespan_bounds(self, asia_trace, scheme, t):
        model = CostModel(MachineSpec())
        seq = simulate_sequential(asia_trace, model)
        sim = simulate(asia_trace, model, scheme, t)
        # Work conservation: busy time never exceeds total sequential work
        # (contention scales costs, so compare at equal contention).
        lower = seq.makespan_units / t
        assert sim.makespan_units >= min(lower, sim.busy_units / t)
        assert sim.busy_units >= seq.busy_units  # contention only inflates

    def test_one_thread_ci_close_to_sequential(self, asia_trace):
        model = CostModel(MachineSpec())
        seq = simulate_sequential(asia_trace, model)
        ci1 = simulate_ci_level(asia_trace, model, 1)
        # Exactly the scheduling overheads separate them at t = 1.
        n_groups = sum(len(e.groups) for d in asia_trace for e in d.edges)
        bound = (
            seq.makespan_units
            + n_groups * model.machine.spawn_overhead_units
            + len(asia_trace) * model.machine.region_overhead_units
        )
        assert seq.makespan_units <= ci1.makespan_units <= bound + 1e-6

    def test_ci_beats_edge_on_skewed_workload(self):
        # One giant edge plus many tiny ones: static partition loses.
        trace = synthetic_trace([200] + [1] * 63)
        model = CostModel(MachineSpec())
        edge = simulate_edge_level(trace, model, 8)
        ci = simulate_ci_level(trace, model, 8)
        assert ci.makespan_units < edge.makespan_units

    def test_edge_imbalance_measured(self):
        trace = synthetic_trace([100] + [1] * 31)
        model = CostModel(MachineSpec())
        edge = simulate_edge_level(trace, model, 4)
        ci = simulate_ci_level(trace, model, 4)
        assert edge.load_imbalance > ci.load_imbalance

    def test_sample_level_overhead_grows_with_threads(self, asia_trace):
        model = CostModel(MachineSpec())
        s4 = simulate_sample_level(asia_trace, model, 4)
        s32 = simulate_sample_level(asia_trace, model, 32)
        # Far past the useful point, more threads make it slower.
        assert s32.makespan_units > s4.makespan_units

    def test_atomic_variant_slower_than_local_tables(self, asia_trace):
        model = CostModel(MachineSpec())
        local = simulate_sample_level(asia_trace, model, 8, variant="local-tables")
        atomic = simulate_sample_level(asia_trace, model, 8, variant="atomic")
        assert atomic.makespan_units > local.makespan_units * 0.5  # same order
        # atomic pays factor on table updates; with small tables the two can
        # be close, but atomic must never be cheaper on fill-dominated work.
        assert atomic.busy_units >= local.busy_units

    def test_utilization_bounded(self, asia_trace):
        model = CostModel(MachineSpec())
        for t in (1, 4, 16):
            sim = simulate_ci_level(asia_trace, model, t)
            assert 0 < sim.utilization <= 1.0

    def test_speedup_over(self, asia_trace):
        model = CostModel(MachineSpec())
        seq = simulate_sequential(asia_trace, model)
        ci = simulate_ci_level(asia_trace, model, 8)
        assert ci.speedup_over(seq) == pytest.approx(
            seq.makespan_units / ci.makespan_units
        )

    def test_dispatch_and_validation(self, asia_trace):
        model = CostModel(MachineSpec())
        assert simulate(asia_trace, model, "sample/atomic", 4).scheme == "sample-level/atomic"
        with pytest.raises(ValueError):
            simulate(asia_trace, model, "gpu", 4)
        with pytest.raises(ValueError):
            simulate_ci_level(asia_trace, model, 0)
        with pytest.raises(ValueError):
            simulate_sample_level(asia_trace, model, 2, variant="hybrid")

    def test_per_depth_sums_to_makespan(self, asia_trace):
        model = CostModel(MachineSpec())
        for scheme in ("sequential", "ci", "edge", "sample"):
            sim = simulate(asia_trace, model, scheme, 4)
            assert sum(sim.per_depth_units) == pytest.approx(sim.makespan_units)


class TestPaperMachine:
    def test_values_per_line(self):
        assert PAPER_MACHINE.values_per_line == 16

    def test_calibrated_returns_new_spec(self):
        spec = PAPER_MACHINE.calibrated(1e-8)
        assert spec.seconds_per_unit == 1e-8
        assert PAPER_MACHINE.seconds_per_unit != 1e-8
