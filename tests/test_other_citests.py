"""Chi-squared, mutual-information, naive and oracle CI testers."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import chi2_contingency

from repro.citests.chisquare import ChiSquareTest
from repro.citests.gsquare import GSquareTest
from repro.citests.mutual_info import MutualInformationTest
from repro.citests.naive import NaiveGSquareTest
from repro.citests.oracle import OracleCITest
from repro.datasets.dataset import DiscreteDataset


def make_dataset(rows, arities=None):
    return DiscreteDataset.from_rows(np.asarray(rows), arities=arities)


@pytest.fixture()
def chain_data(rng):
    """X -> Z -> Y chain data (dependent marginally, independent given Z)."""
    m = 4000
    x = rng.integers(0, 2, m)
    z = np.where(rng.random(m) < 0.88, x, 1 - x)
    y = np.where(rng.random(m) < 0.88, z, 1 - z)
    return make_dataset(np.column_stack([x, y, z]))


class TestChiSquare:
    def test_matches_scipy_pearson(self, rng):
        m = 1200
        rows = rng.integers(0, 3, size=(m, 2))
        ds = make_dataset(rows, arities=[3, 3])
        res = ChiSquareTest(ds).test(0, 1, ())
        table = np.zeros((3, 3))
        for a, b in rows:
            table[a, b] += 1
        stat, p, dof, _ = chi2_contingency(table, correction=False)
        assert res.statistic == pytest.approx(stat, rel=1e-10)
        assert res.dof == dof
        assert res.p_value == pytest.approx(p, rel=1e-8)

    def test_same_decisions_as_g2_on_chain(self, chain_data):
        chi = ChiSquareTest(chain_data)
        assert not chi.test(0, 1, ()).independent
        assert chi.test(0, 1, (2,)).independent

    def test_group_matches_individual(self, chain_data):
        chi = ChiSquareTest(chain_data)
        group = chi.test_group(0, 1, [(), (2,)])
        singles = [ChiSquareTest(chain_data).test(0, 1, s) for s in [(), (2,)]]
        for g, s in zip(group, singles, strict=True):
            assert g.statistic == pytest.approx(s.statistic)

    def test_invalid_params(self, chain_data):
        with pytest.raises(ValueError):
            ChiSquareTest(chain_data, alpha=2.0)
        with pytest.raises(ValueError):
            ChiSquareTest(chain_data, dof_adjust="nope")


class TestMutualInformation:
    def test_mi_is_g2_over_2m(self, chain_data):
        mi = MutualInformationTest(chain_data)
        g2 = GSquareTest(chain_data)
        value = mi.mutual_information(0, 1, ())
        stat = g2.test(0, 1, ()).statistic
        assert value == pytest.approx(stat / (2 * chain_data.n_samples))

    def test_pvalue_mode_matches_g2(self, chain_data):
        mi = MutualInformationTest(chain_data, mode="pvalue")
        g2 = GSquareTest(chain_data)
        assert mi.test(0, 1, (2,)).independent == g2.test(0, 1, (2,)).independent

    def test_threshold_mode(self, chain_data):
        strict = MutualInformationTest(chain_data, mode="threshold", mi_threshold=1e-9)
        loose = MutualInformationTest(chain_data, mode="threshold", mi_threshold=10.0)
        assert not strict.test(0, 1, ()).independent
        assert loose.test(0, 1, ()).independent

    def test_group_interface(self, chain_data):
        mi = MutualInformationTest(chain_data)
        out = mi.test_group(0, 1, [(), (2,)])
        assert len(out) == 2

    def test_invalid_mode(self, chain_data):
        with pytest.raises(ValueError):
            MutualInformationTest(chain_data, mode="banana")


class TestNaive:
    def test_matches_vectorised_g2(self, chain_data):
        naive = NaiveGSquareTest(chain_data)
        fast = GSquareTest(chain_data)
        for s in [(), (2,)]:
            a = naive.test(0, 1, s)
            b = fast.test(0, 1, s)
            assert a.statistic == pytest.approx(b.statistic, rel=1e-9)
            assert a.dof == b.dof
            assert a.independent == b.independent

    def test_matches_on_multivalued(self, rng):
        m = 500
        rows = np.column_stack(
            [rng.integers(0, 4, m), rng.integers(0, 3, m), rng.integers(0, 2, m)]
        )
        ds = make_dataset(rows, arities=[4, 3, 2])
        a = NaiveGSquareTest(ds).test(0, 1, (2,))
        b = GSquareTest(ds).test(0, 1, (2,))
        assert a.statistic == pytest.approx(b.statistic, rel=1e-9)

    def test_slices_dof_mode(self, rng):
        m = 300
        z = rng.integers(0, 2, m) * 2  # arity 3, one empty slice
        rows = np.column_stack([rng.integers(0, 2, m), rng.integers(0, 2, m), z])
        ds = make_dataset(rows, arities=[2, 2, 3])
        a = NaiveGSquareTest(ds, dof_adjust="slices").test(0, 1, (2,))
        b = GSquareTest(ds, dof_adjust="slices").test(0, 1, (2,))
        assert a.dof == b.dof == 2

    def test_counters(self, chain_data):
        naive = NaiveGSquareTest(chain_data)
        naive.test(0, 1, ())
        assert naive.counters.n_tests == 1
        assert naive.counters.data_accesses == chain_data.n_samples * 2


class TestOracle:
    def test_answers_match_dseparation(self, sprinkler_net):
        oracle = OracleCITest.from_network(sprinkler_net)
        # Sprinkler vs Rain: dependent (common cause), independent given Cloudy.
        assert not oracle.test(1, 2, ()).independent
        assert oracle.test(1, 2, (0,)).independent

    def test_collider(self, sprinkler_net):
        oracle = OracleCITest.from_network(sprinkler_net)
        # Sprinkler vs Rain given WetGrass: collider opens.
        assert not oracle.test(1, 2, (0, 3)).independent

    def test_result_fields(self, sprinkler_net):
        oracle = OracleCITest.from_network(sprinkler_net)
        res = oracle.test(0, 3, (1, 2))
        assert res.independent
        assert res.p_value == 1.0
        dep = oracle.test(0, 1, ())
        assert dep.p_value == 0.0

    def test_group_interface_and_counters(self, sprinkler_net):
        oracle = OracleCITest.from_network(sprinkler_net, n_samples=100)
        out = oracle.test_group(0, 3, [(1,), (2,), (1, 2)])
        assert [r.independent for r in out] == [False, False, True]
        # 3 tests: first costs (d+2)*m, rest reuse XY.
        assert oracle.counters.n_tests == 3
