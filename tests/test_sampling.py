"""Tests for forward sampling: shapes, determinism, statistical fidelity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.sampling import forward_sample
from repro.networks.bayesnet import CPT, DiscreteBayesianNetwork
from repro.networks.classic import sprinkler


class TestShapesAndDeterminism:
    def test_shape(self, asia_net):
        ds = forward_sample(asia_net, 123, rng=0)
        assert ds.n_samples == 123
        assert ds.n_variables == asia_net.n_nodes
        assert ds.names == asia_net.names

    def test_values_within_arity(self, small_random_net):
        ds = forward_sample(small_random_net, 500, rng=1)
        rows = ds.as_rows()
        assert (rows >= 0).all()
        assert (rows < np.asarray(small_random_net.arities)[None, :]).all()

    def test_deterministic_given_seed(self, asia_net):
        a = forward_sample(asia_net, 200, rng=5)
        b = forward_sample(asia_net, 200, rng=5)
        np.testing.assert_array_equal(a.values, b.values)

    def test_different_seeds_differ(self, asia_net):
        a = forward_sample(asia_net, 200, rng=5)
        b = forward_sample(asia_net, 200, rng=6)
        assert not np.array_equal(a.values, b.values)

    def test_layout_option(self, asia_net):
        sm = forward_sample(asia_net, 50, rng=0, layout="sample-major")
        assert sm.layout == "sample-major"

    def test_invalid_sample_count(self, asia_net):
        with pytest.raises(ValueError):
            forward_sample(asia_net, 0)


class TestStatisticalFidelity:
    def test_root_marginal(self):
        net = sprinkler()
        ds = forward_sample(net, 40000, rng=2)
        cloudy = ds.column(0)
        assert abs(cloudy.mean() - 0.5) < 0.02

    def test_conditional_distribution(self):
        net = sprinkler()
        ds = forward_sample(net, 60000, rng=3)
        cloudy = ds.column(0).astype(bool)
        rain = ds.column(2).astype(bool)
        # P(Rain | Cloudy) = 0.8, P(Rain | not Cloudy) = 0.2
        assert abs(rain[cloudy].mean() - 0.8) < 0.02
        assert abs(rain[~cloudy].mean() - 0.2) < 0.02

    def test_deterministic_node(self):
        # A child that copies its parent exactly.
        cpts = [
            CPT(parents=(), table=np.array([[0.3, 0.7]])),
            CPT(parents=(0,), table=np.array([[1.0, 0.0], [0.0, 1.0]])),
        ]
        net = DiscreteBayesianNetwork([2, 2], cpts)
        ds = forward_sample(net, 1000, rng=4)
        np.testing.assert_array_equal(ds.column(0), ds.column(1))

    def test_multi_parent_configuration_encoding(self):
        # Child = XOR of two parents with probability ~1; exercises the
        # mixed-radix parent-config encoding order (first parent most
        # significant).
        xor_table = np.array(
            [
                [1.0, 0.0],  # (0, 0)
                [0.0, 1.0],  # (0, 1)
                [0.0, 1.0],  # (1, 0)
                [1.0, 0.0],  # (1, 1)
            ]
        )
        cpts = [
            CPT(parents=(), table=np.array([[0.5, 0.5]])),
            CPT(parents=(), table=np.array([[0.5, 0.5]])),
            CPT(parents=(0, 1), table=xor_table),
        ]
        net = DiscreteBayesianNetwork([2, 2, 2], cpts)
        ds = forward_sample(net, 2000, rng=5)
        expected = ds.column(0) ^ ds.column(1)
        np.testing.assert_array_equal(ds.column(2), expected)

    def test_three_valued_marginal(self):
        cpts = [CPT(parents=(), table=np.array([[0.2, 0.3, 0.5]]))]
        net = DiscreteBayesianNetwork([3], cpts)
        ds = forward_sample(net, 50000, rng=6)
        counts = np.bincount(ds.column(0), minlength=3) / 50000
        np.testing.assert_allclose(counts, [0.2, 0.3, 0.5], atol=0.01)
