"""Junction-tree, sampling-based and interventional inference tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.inference.intervention import intervene, interventional_marginal
from repro.inference.junction_tree import (
    JunctionTree,
    min_fill_order,
    moralize,
    triangulated_cliques,
)
from repro.inference.sampling_inference import likelihood_weighting, rejection_sampling
from repro.inference.variable_elimination import VariableElimination
from repro.networks.classic import asia, cancer, sprinkler
from repro.networks.generators import random_network


class TestMoralization:
    def test_coparents_married(self, sprinkler_net):
        adj = moralize(sprinkler_net)
        # Sprinkler (1) and Rain (2) share child WetGrass: moral edge.
        assert 2 in adj[1] and 1 in adj[2]

    def test_all_dag_edges_present(self, asia_net):
        adj = moralize(asia_net)
        for u, v in asia_net.edges():
            assert v in adj[u] and u in adj[v]

    def test_symmetric(self, asia_net):
        adj = moralize(asia_net)
        for u in range(len(adj)):
            for v in adj[u]:
                assert u in adj[v]


class TestTriangulation:
    def test_order_covers_all_nodes(self, asia_net):
        adj = moralize(asia_net)
        order = min_fill_order(adj)
        assert sorted(order) == list(range(asia_net.n_nodes))

    def test_cliques_cover_families(self, asia_net):
        adj = moralize(asia_net)
        cliques = triangulated_cliques(adj, min_fill_order(adj))
        for node in range(asia_net.n_nodes):
            family = set(asia_net.parents(node)) | {node}
            assert any(family <= c for c in cliques), node

    def test_cliques_are_maximal(self, asia_net):
        adj = moralize(asia_net)
        cliques = triangulated_cliques(adj, min_fill_order(adj))
        for i, a in enumerate(cliques):
            for j, b in enumerate(cliques):
                if i != j:
                    assert not a <= b


class TestJunctionTreeVsVE:
    @pytest.mark.parametrize("factory", [sprinkler, asia, cancer])
    def test_prior_marginals(self, factory):
        net = factory()
        ve = VariableElimination(net)
        jt = JunctionTree(net).calibrate()
        for var in range(net.n_nodes):
            np.testing.assert_allclose(jt.marginal(var), ve.marginal(var), atol=1e-10)

    @pytest.mark.parametrize("factory", [sprinkler, asia])
    def test_posterior_marginals(self, factory):
        net = factory()
        ve = VariableElimination(net)
        evidence = {net.n_nodes - 1: 1, 0: 0}
        jt = JunctionTree(net).calibrate(evidence)
        for var in range(net.n_nodes):
            if var in evidence:
                continue
            np.testing.assert_allclose(
                jt.marginal(var), ve.marginal(var, evidence), atol=1e-10
            )

    def test_evidence_variable_marginal_is_point_mass(self, sprinkler_net):
        jt = JunctionTree(sprinkler_net).calibrate({1: 1})
        np.testing.assert_allclose(jt.marginal(1), [0.0, 1.0])

    def test_log_evidence_matches_enumeration(self, sprinkler_net):
        jt = JunctionTree(sprinkler_net).calibrate({3: 1})
        total = 0.0
        for a in range(2):
            for b in range(2):
                for c in range(2):
                    total += np.exp(sprinkler_net.log_probability([a, b, c, 1]))
        assert jt.log_evidence == pytest.approx(np.log(total), rel=1e-9)

    def test_random_network_agreement(self):
        net = random_network(12, 15, rng=3, arity_range=(2, 3), max_parents=3)
        ve = VariableElimination(net)
        jt = JunctionTree(net).calibrate({0: 0})
        for var in range(1, net.n_nodes):
            np.testing.assert_allclose(jt.marginal(var), ve.marginal(var, {0: 0}), atol=1e-9)

    def test_disconnected_network(self):
        # Two independent chains: components calibrate independently.
        net = random_network(6, 2, rng=1, arity_range=(2, 2), max_parents=1)
        jt = JunctionTree(net).calibrate()
        ve = VariableElimination(net)
        for var in range(6):
            np.testing.assert_allclose(jt.marginal(var), ve.marginal(var), atol=1e-10)

    def test_requires_calibration(self, sprinkler_net):
        jt = JunctionTree(sprinkler_net)
        with pytest.raises(RuntimeError):
            jt.marginal(0)
        with pytest.raises(RuntimeError):
            jt.log_evidence

    def test_evidence_validation(self, sprinkler_net):
        with pytest.raises(ValueError):
            JunctionTree(sprinkler_net).calibrate({99: 0})
        with pytest.raises(ValueError):
            JunctionTree(sprinkler_net).calibrate({0: 9})

    def test_impossible_evidence(self):
        from repro.networks.bayesnet import CPT, DiscreteBayesianNetwork

        cpts = [
            CPT(parents=(), table=np.array([[1.0, 0.0]])),
            CPT(parents=(0,), table=np.array([[1.0, 0.0], [0.0, 1.0]])),
        ]
        net = DiscreteBayesianNetwork([2, 2], cpts)
        with pytest.raises(ValueError, match="probability 0"):
            JunctionTree(net).calibrate({1: 1})

    def test_recalibration_with_new_evidence(self, sprinkler_net):
        jt = JunctionTree(sprinkler_net)
        jt.calibrate({3: 1})
        first = jt.marginal(2).copy()
        jt.calibrate({3: 0})
        second = jt.marginal(2)
        assert not np.allclose(first, second)


class TestSamplingInference:
    def test_likelihood_weighting_converges(self, sprinkler_net):
        exact = VariableElimination(sprinkler_net).marginal(2, {3: 1})
        estimate = likelihood_weighting(sprinkler_net, 2, {3: 1}, n_samples=100000, rng=0)
        np.testing.assert_allclose(estimate, exact, atol=0.01)

    def test_rejection_converges(self, sprinkler_net):
        exact = VariableElimination(sprinkler_net).marginal(2, {3: 1})
        estimate = rejection_sampling(sprinkler_net, 2, {3: 1}, n_samples=100000, rng=0)
        np.testing.assert_allclose(estimate, exact, atol=0.01)

    def test_no_evidence_matches_prior(self, cancer_net):
        exact = VariableElimination(cancer_net).marginal(2)
        lw = likelihood_weighting(cancer_net, 2, n_samples=100000, rng=1)
        np.testing.assert_allclose(lw, exact, atol=0.01)

    def test_lw_handles_unlikely_evidence(self, asia_net):
        # P(Asia=1) = 0.01: rejection wastes 99% of samples; LW does not.
        exact = VariableElimination(asia_net).marginal(1, {0: 1})
        lw = likelihood_weighting(asia_net, 1, {0: 1}, n_samples=50000, rng=2)
        np.testing.assert_allclose(lw, exact, atol=0.02)

    def test_rejection_raises_when_all_rejected(self):
        from repro.networks.bayesnet import CPT, DiscreteBayesianNetwork

        cpts = [
            CPT(parents=(), table=np.array([[1.0, 0.0]])),
            CPT(parents=(), table=np.array([[0.5, 0.5]])),
        ]
        net = DiscreteBayesianNetwork([2, 2], cpts)
        with pytest.raises(ValueError, match="rejected"):
            rejection_sampling(net, 1, {0: 1}, n_samples=1000, rng=0)

    def test_validation(self, sprinkler_net):
        with pytest.raises(ValueError):
            likelihood_weighting(sprinkler_net, 0, {0: 1})
        with pytest.raises(ValueError):
            rejection_sampling(sprinkler_net, 9)

    def test_deterministic_given_seed(self, sprinkler_net):
        a = likelihood_weighting(sprinkler_net, 2, {3: 1}, n_samples=5000, rng=7)
        b = likelihood_weighting(sprinkler_net, 2, {3: 1}, n_samples=5000, rng=7)
        np.testing.assert_array_equal(a, b)


class TestIntervention:
    def test_mutilated_structure(self, sprinkler_net):
        mutilated = intervene(sprinkler_net, {1: 1})
        assert mutilated.parents(1) == ()
        np.testing.assert_allclose(mutilated.cpt(1).table, [[0.0, 1.0]])
        # Other CPTs untouched.
        np.testing.assert_allclose(mutilated.cpt(3).table, sprinkler_net.cpt(3).table)

    def test_do_differs_from_observation(self, sprinkler_net):
        """Observing Sprinkler=on is evidence that it is sunny (anti-rain);
        *forcing* the sprinkler is not."""
        ve = VariableElimination(sprinkler_net)
        observed = ve.marginal(2, {1: 1})[1]  # P(Rain=1 | Sprinkler=1)
        forced = interventional_marginal(sprinkler_net, 2, {1: 1})[1]
        prior = ve.marginal(2)[1]
        assert observed < prior  # observation explains away rain
        assert forced == pytest.approx(prior, abs=1e-10)  # do() does not

    def test_do_on_effect_does_not_touch_cause(self, cancer_net):
        # do(Xray) cannot change P(Cancer); observing Xray does.
        ve = VariableElimination(cancer_net)
        prior = ve.marginal(2)
        forced = interventional_marginal(cancer_net, 2, {3: 1})
        observed = ve.marginal(2, {3: 1})
        np.testing.assert_allclose(forced, prior, atol=1e-10)
        assert not np.allclose(observed, prior)

    def test_downstream_effect_propagates(self, cancer_net):
        # do(Cancer=1) raises P(Xray=1) to its conditional.
        forced = interventional_marginal(cancer_net, 3, {2: 1})
        np.testing.assert_allclose(forced, cancer_net.cpt(3).table[1], atol=1e-10)

    def test_with_evidence(self, asia_net):
        out = interventional_marginal(asia_net, 3, {2: 1}, evidence={6: 1})
        assert out.shape == (2,)
        assert out.sum() == pytest.approx(1.0)

    def test_validation(self, sprinkler_net):
        with pytest.raises(ValueError):
            intervene(sprinkler_net, {9: 0})
        with pytest.raises(ValueError):
            intervene(sprinkler_net, {0: 5})
        with pytest.raises(ValueError):
            interventional_marginal(sprinkler_net, 1, {1: 1})
