"""Closed-form speedup model tests (Sec. IV-D), including the paper's
worked example."""

from __future__ import annotations

import pytest

from repro.analysis.speedup_model import (
    SpeedupModel,
    breakdown_from_run,
    paper_worked_example,
)


class TestPaperWorkedExample:
    """The paper computes S_CI = 3.87, S_grouping = 1.43, S_cache = 5.57,
    overall S = 30.8 for t=4, d=2, |Ed|=1200, rho=0.6, degree 10, B=64,
    T_DRAM/T_cache = 8."""

    @pytest.fixture(scope="class")
    def breakdown(self):
        return paper_worked_example().breakdown()

    def test_s_ci(self, breakdown):
        assert breakdown.s_ci == pytest.approx(3.87, abs=0.01)

    def test_s_grouping(self, breakdown):
        assert breakdown.s_grouping == pytest.approx(1.43, abs=0.01)

    def test_s_cache(self, breakdown):
        assert breakdown.s_cache == pytest.approx(5.57, abs=0.01)

    def test_overall(self, breakdown):
        assert breakdown.overall == pytest.approx(30.8, abs=0.1)


class TestModelBehaviour:
    def base(self, **kw):
        defaults = dict(
            n_threads=4, depth=2, n_edges=1200, deletion_ratio=0.6, mean_degree=10
        )
        defaults.update(kw)
        return SpeedupModel(**defaults)

    def test_s_ci_grows_with_threads(self):
        assert self.base(n_threads=8).s_ci > self.base(n_threads=4).s_ci

    def test_s_ci_bounded_by_threads(self):
        for t in (2, 4, 8, 16):
            assert self.base(n_threads=t).s_ci <= t

    def test_s_grouping_range(self):
        assert self.base(deletion_ratio=0.0).s_grouping == 1.0
        assert self.base(deletion_ratio=1.0).s_grouping == 2.0

    def test_s_cache_independent_of_depth(self):
        # T3 and T4 share the (d + 2) factor, so it cancels exactly.
        assert self.base(depth=4).s_cache == pytest.approx(self.base(depth=0).s_cache)

    def test_s_cache_bounded_by_dram_ratio(self):
        m = self.base()
        assert m.s_cache < m.dram_cache_ratio

    def test_equations_1_and_2(self):
        m = self.base()
        # Eq (1): |Ed|/t heavy edges each with C(10,2)+C(10,2) = 90 tests.
        assert m.edge_level_time() == 300 * 90
        # Eq (2): (heavy work + (t-1)|Ed|/t) / t
        assert m.ci_level_time() == pytest.approx((300 * 90 + 3 * 300) / 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.base(n_threads=0)
        with pytest.raises(ValueError):
            self.base(deletion_ratio=1.5)
        with pytest.raises(ValueError):
            self.base(depth=-1)


class TestBreakdownFromRun:
    def test_uses_measured_depth_stats(self, asia_data):
        from repro.core.learn import learn_structure

        result = learn_structure(asia_data)
        out = breakdown_from_run(result.stats.depths, n_threads=4, mean_degree=3)
        assert out  # at least one depth >= 1
        for depth, b in out:
            assert depth >= 1
            assert b.s_ci >= 1.0 or b.s_ci > 0
            assert 1.0 <= b.s_grouping <= 2.0
            assert b.overall == b.s_ci * b.s_grouping * b.s_cache

    def test_depth_zero_excluded(self, asia_data):
        from repro.core.learn import learn_structure

        result = learn_structure(asia_data)
        out = breakdown_from_run(result.stats.depths, n_threads=2, mean_degree=3)
        assert all(d >= 1 for d, _ in out)
