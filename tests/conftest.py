"""Shared fixtures for the test-suite.

``REPRO_LOCKCHECK=1`` arms the runtime lock-order sanitizer for the
whole session: project locks created after this conftest imports come
back wrapped in recording proxies (see :mod:`repro.analysis.runtime`),
and at session end the observed per-thread acquisition orders are merged
into the statically extracted lock graph — any cycle in the union fails
the run.  CI runs the concurrency suites under this flag.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

# Instrument *before* the repro engine modules import, so even locks
# created at module import time get tracked proxies.
_LOCKCHECK = bool(os.environ.get("REPRO_LOCKCHECK"))
if _LOCKCHECK:
    from repro.analysis import runtime as _lockcheck_runtime

    _lockcheck_runtime.install()

from _timeouts import hard_timeout, readline_with_timeout
from repro.datasets.dataset import DiscreteDataset
from repro.datasets.sampling import forward_sample
from repro.networks.classic import asia, cancer, sprinkler
from repro.networks.generators import random_network


@pytest.fixture(scope="session")
def hard_timeout_ctx():
    return hard_timeout


@pytest.fixture(scope="session")
def readline_timeout():
    return readline_with_timeout


@pytest.fixture(scope="session")
def asia_net():
    return asia()


@pytest.fixture(scope="session")
def sprinkler_net():
    return sprinkler()


@pytest.fixture(scope="session")
def cancer_net():
    return cancer()


@pytest.fixture(scope="session")
def asia_data(asia_net) -> DiscreteDataset:
    return forward_sample(asia_net, 4000, rng=7)


@pytest.fixture(scope="session")
def sprinkler_data(sprinkler_net) -> DiscreteDataset:
    return forward_sample(sprinkler_net, 5000, rng=11)


@pytest.fixture(scope="session")
def small_random_net():
    return random_network(10, 12, rng=42, arity_range=(2, 3), max_parents=3)


@pytest.fixture(scope="session")
def small_random_data(small_random_net) -> DiscreteDataset:
    return forward_sample(small_random_net, 3000, rng=13)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def pytest_sessionfinish(session, exitstatus):
    """Lock-order sanity gate: fail the run on an observed/static cycle."""
    if not _LOCKCHECK:
        return
    src_root = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    report = _lockcheck_runtime.check(src_paths=(src_root,))
    tr = session.config.pluginmanager.get_plugin("terminalreporter")
    write = tr.write_line if tr is not None else print
    write(
        f"[lockcheck] roles={report['roles']} acquisitions={report['acquisitions']} "
        f"observed_edges={report['observed_edges']} static_edges={report['static_edges']} "
        f"merged_edges={report['merged_edges']} cycles={len(report['cycles'])}"
    )
    if report["cycles"]:
        for line in report["cycle_reports"]:
            write(f"[lockcheck] CYCLE: {line}")
        session.exitstatus = 3
