"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from _timeouts import hard_timeout, readline_with_timeout
from repro.datasets.dataset import DiscreteDataset
from repro.datasets.sampling import forward_sample
from repro.networks.classic import asia, cancer, sprinkler
from repro.networks.generators import random_network


@pytest.fixture(scope="session")
def hard_timeout_ctx():
    return hard_timeout


@pytest.fixture(scope="session")
def readline_timeout():
    return readline_with_timeout


@pytest.fixture(scope="session")
def asia_net():
    return asia()


@pytest.fixture(scope="session")
def sprinkler_net():
    return sprinkler()


@pytest.fixture(scope="session")
def cancer_net():
    return cancer()


@pytest.fixture(scope="session")
def asia_data(asia_net) -> DiscreteDataset:
    return forward_sample(asia_net, 4000, rng=7)


@pytest.fixture(scope="session")
def sprinkler_data(sprinkler_net) -> DiscreteDataset:
    return forward_sample(sprinkler_net, 5000, rng=11)


@pytest.fixture(scope="session")
def small_random_net():
    return random_network(10, 12, rng=42, arity_range=(2, 3), max_parents=3)


@pytest.fixture(scope="session")
def small_random_data(small_random_net) -> DiscreteDataset:
    return forward_sample(small_random_net, 3000, rng=13)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
