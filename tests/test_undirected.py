"""UndirectedGraph tests."""

from __future__ import annotations

import pytest

from repro.graphs.undirected import UndirectedGraph


class TestConstruction:
    def test_complete_graph(self):
        g = UndirectedGraph.complete(5)
        assert g.n_edges == 10
        assert all(g.degree(i) == 4 for i in range(5))

    def test_complete_trivial(self):
        assert UndirectedGraph.complete(1).n_edges == 0
        assert UndirectedGraph.complete(0).n_edges == 0

    def test_from_edges(self):
        g = UndirectedGraph.from_edges(4, [(0, 1), (2, 3)])
        assert g.n_edges == 2
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UndirectedGraph(-1)


class TestMutation:
    def test_add_remove(self):
        g = UndirectedGraph(3)
        g.add_edge(0, 2)
        assert g.has_edge(2, 0)
        g.remove_edge(2, 0)
        assert not g.has_edge(0, 2)
        assert g.n_edges == 0

    def test_add_duplicate_is_noop(self):
        g = UndirectedGraph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        assert g.n_edges == 1

    def test_self_loop_rejected(self):
        g = UndirectedGraph(3)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_remove_missing_raises(self):
        g = UndirectedGraph(3)
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_copy_independent(self):
        g = UndirectedGraph.complete(4)
        h = g.copy()
        h.remove_edge(0, 1)
        assert g.has_edge(0, 1)
        assert not h.has_edge(0, 1)
        assert g != h


class TestQueries:
    def test_edges_ordered_pairs(self):
        g = UndirectedGraph.from_edges(4, [(3, 1), (0, 2)])
        assert sorted(g.edges()) == [(0, 2), (1, 3)]

    def test_neighbors_live_view(self):
        g = UndirectedGraph.from_edges(3, [(0, 1)])
        nbrs = g.neighbors(0)
        g.add_edge(0, 2)
        assert nbrs == {1, 2}  # live set mutates with the graph

    def test_adjacency_snapshot_frozen(self):
        g = UndirectedGraph.from_edges(3, [(0, 1)])
        snap = g.adjacency_snapshot()
        g.add_edge(0, 2)
        assert snap[0] == frozenset({1})  # snapshot unaffected

    def test_equality(self):
        a = UndirectedGraph.from_edges(3, [(0, 1)])
        b = UndirectedGraph.from_edges(3, [(1, 0)])
        assert a == b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(UndirectedGraph(2))
