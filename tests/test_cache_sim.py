"""Cache-simulator tests: LRU mechanics and the layout contrast of Table IV."""

from __future__ import annotations

import pytest

from repro.simcpu.cache import CacheSim, column_fill_accesses, simulate_fill_misses


class TestCacheMechanics:
    def test_cold_miss_then_hit(self):
        cache = CacheSim(size_bytes=1024, line_bytes=64, associativity=2)
        assert not cache.access(0)  # cold miss
        assert cache.access(0)  # hit
        assert cache.access(63)  # same line
        assert not cache.access(64)  # next line

    def test_lru_eviction_within_set(self):
        # 2-way set: third distinct tag in the same set evicts the LRU one.
        cache = CacheSim(size_bytes=2 * 64, line_bytes=64, associativity=2)
        assert cache.n_sets == 1
        cache.access(0)  # tag 0
        cache.access(64)  # tag 1
        cache.access(0)  # refresh tag 0
        cache.access(128)  # evicts tag 1 (LRU)
        assert cache.access(0)  # still cached
        assert not cache.access(64)  # evicted

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheSim(size_bytes=1000, line_bytes=64, associativity=8)

    def test_stats_reset(self):
        cache = CacheSim()
        cache.access(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.stats.misses == 0

    def test_miss_rate(self):
        cache = CacheSim()
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == 0.5
        assert cache.stats.hits == 1


class TestAccessStreams:
    def test_access_count(self):
        addrs = list(column_fill_accesses([0, 3, 5], n_variables=10, n_samples=7, variable_major=True))
        assert len(addrs) == 21

    def test_variable_major_addresses(self):
        addrs = list(column_fill_accesses([1], n_variables=4, n_samples=3, variable_major=True))
        assert addrs == [(1 * 3 + s) * 4 for s in range(3)]

    def test_sample_major_addresses(self):
        addrs = list(column_fill_accesses([1], n_variables=4, n_samples=3, variable_major=False))
        assert addrs == [(s * 4 + 1) * 4 for s in range(3)]


class TestLayoutContrast:
    """The Table IV effect: variable-major misses ~1/16 as often."""

    def test_friendly_layout_has_fewer_misses(self):
        n_vars, m = 200, 2048
        variables = [3, 57, 120, 199]
        friendly = simulate_fill_misses(variables, n_vars, m, variable_major=True)
        unfriendly = simulate_fill_misses(variables, n_vars, m, variable_major=False)
        assert friendly.accesses == unfriendly.accesses
        assert friendly.misses < unfriendly.misses / 4

    def test_friendly_miss_rate_near_line_reciprocal(self):
        # Sequential reads: one miss per 16 values (64B line / 4B values).
        stats = simulate_fill_misses([0, 50, 99], 150, 4096, variable_major=True)
        assert stats.miss_rate == pytest.approx(1 / 16, rel=0.1)

    def test_unfriendly_miss_rate_near_one_for_wide_tables(self):
        # With hundreds of variables per row, every access strides past a
        # cache line and the working set exceeds L1: ~every access misses.
        stats = simulate_fill_misses([0, 100, 200], 300, 4096, variable_major=False)
        assert stats.miss_rate > 0.9

    def test_small_dataset_fits_in_cache(self):
        # A tiny dataset fits entirely in L1 after the first pass no matter
        # the layout: second fill has ~zero misses.
        cache = CacheSim(size_bytes=32 * 1024)
        variables = [0, 1, 2]
        simulate_fill_misses(variables, 4, 512, variable_major=False, cache=cache)
        second = CacheSim(size_bytes=32 * 1024)
        for _ in range(2):
            stats = simulate_fill_misses(variables, 4, 512, variable_major=False, cache=second)
        assert stats.miss_rate < 0.05
