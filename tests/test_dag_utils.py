"""DAG utilities: topological order, v-structures, DAG -> CPDAG."""

from __future__ import annotations

import pytest

from repro.graphs.dag import (
    dag_to_cpdag,
    is_acyclic,
    topological_order,
    v_structures_of_dag,
)
from repro.networks.classic import asia, cancer, sprinkler


class TestTopologicalOrder:
    def test_simple_chain(self):
        order = topological_order(3, [(0, 1), (1, 2)])
        assert order.index(0) < order.index(1) < order.index(2)

    def test_cycle_raises(self):
        with pytest.raises(ValueError):
            topological_order(2, [(0, 1), (1, 0)])

    def test_is_acyclic(self):
        assert is_acyclic(3, [(0, 1), (0, 2)])
        assert not is_acyclic(3, [(0, 1), (1, 2), (2, 0)])


class TestVStructures:
    def test_collider_detected(self):
        # 0 -> 2 <- 1 with 0, 1 non-adjacent
        assert v_structures_of_dag(3, [(0, 2), (1, 2)]) == {(0, 2, 1)}

    def test_shielded_collider_not_a_vstructure(self):
        edges = [(0, 2), (1, 2), (0, 1)]
        assert v_structures_of_dag(3, edges) == set()

    def test_chain_has_none(self):
        assert v_structures_of_dag(3, [(0, 1), (1, 2)]) == set()

    def test_sprinkler_vstructure(self):
        net = sprinkler()
        # Sprinkler -> WetGrass <- Rain is the only v-structure.
        assert v_structures_of_dag(net.n_nodes, net.edges()) == {(1, 3, 2)}

    def test_asia_vstructures(self):
        net = asia()
        vs = v_structures_of_dag(net.n_nodes, net.edges())
        # TB -> Either <- LungCancer and Bronchitis -> Dysp <- Either.
        assert (1, 5, 3) in vs
        assert (4, 7, 5) in vs
        assert len(vs) == 2


class TestDagToCpdag:
    def test_chain_fully_undirected(self):
        cpdag = dag_to_cpdag(3, [(0, 1), (1, 2)])
        assert cpdag.n_directed == 0
        assert cpdag.n_undirected == 2

    def test_pure_collider_fully_directed(self):
        cpdag = dag_to_cpdag(3, [(0, 2), (1, 2)])
        assert cpdag.has_directed(0, 2)
        assert cpdag.has_directed(1, 2)
        assert cpdag.n_undirected == 0

    def test_sprinkler_cpdag(self):
        net = sprinkler()
        cpdag = dag_to_cpdag(net.n_nodes, net.edges())
        # V-structure at WetGrass is compelled...
        assert cpdag.has_directed(1, 3)
        assert cpdag.has_directed(2, 3)
        # ...and Cloudy's edges stay reversible.
        assert cpdag.has_undirected(0, 1)
        assert cpdag.has_undirected(0, 2)

    def test_cancer_cpdag(self):
        net = cancer()
        cpdag = dag_to_cpdag(net.n_nodes, net.edges())
        # Collider Pollution -> Cancer <- Smoker compelled; Meek R1 then
        # compels Cancer -> Xray and Cancer -> Dyspnoea.
        assert cpdag.has_directed(0, 2)
        assert cpdag.has_directed(1, 2)
        assert cpdag.has_directed(2, 3)
        assert cpdag.has_directed(2, 4)
        assert cpdag.n_undirected == 0

    def test_skeleton_preserved(self):
        net = asia()
        cpdag = dag_to_cpdag(net.n_nodes, net.edges())
        truth = {(min(u, v), max(u, v)) for u, v in net.edges()}
        assert cpdag.skeleton_edges() == truth

    def test_cyclic_input_rejected(self):
        with pytest.raises(ValueError):
            dag_to_cpdag(2, [(0, 1), (1, 0)])

    def test_compelled_edges_consistent_with_dag(self, small_random_net):
        net = small_random_net
        cpdag = dag_to_cpdag(net.n_nodes, net.edges())
        dag_edges = set(net.edges())
        # Every compelled (directed) CPDAG edge must appear in the DAG with
        # the same orientation.
        for u, v in cpdag.directed_edges():
            assert (u, v) in dag_edges
