"""Tests for the ``repro.analysis`` linter + lock-order detector.

Coverage map:

* one good/bad fixture pair per REPRO00x rule, asserting the exact
  ``Finding`` location (file, line, rule id);
* lock-order graph: a seeded two-lock inversion must come back as a
  LOCK001 cycle, and blocking-under-lock as LOCK002;
* suppression semantics: line pragmas, file pragmas, the ten-line
  window, and the wrong-rule-id case;
* the runtime sanitizer: tracked proxies record real acquisition
  order, Condition keeps working through the proxy, and an inverted
  order produces a detectable cycle;
* CLI surface: exit codes, JSON output, ``--list-rules``;
* the repo-wide gate: ``src/`` itself must analyze clean (this is the
  in-tree twin of the CI ``fastbns analyze src`` job).
"""

from __future__ import annotations

import ast
import json
import os
import textwrap
import threading

import pytest

from repro.analysis import runtime
from repro.analysis.engine import Analyzer, SourceModule, all_rules
from repro.analysis.findings import Finding, SuppressionIndex, format_findings, normalize_path
from repro.analysis.lockgraph import find_cycles
from repro.cli import main as cli_main

SRC_ROOT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def make_module(relpath: str, source: str) -> SourceModule:
    text = textwrap.dedent(source)
    return SourceModule(
        path=relpath,
        relpath=normalize_path(relpath),
        text=text,
        tree=ast.parse(text),
        lines=text.splitlines(),
    )


def analyze(relpath: str, source: str, select=None, lockgraph=False) -> list[Finding]:
    analyzer = Analyzer(select=select, lockgraph=lockgraph)
    return analyzer.run_modules([make_module(relpath, source)])


def rule_ids(findings) -> list[str]:
    return [f.rule_id for f in findings]


# --------------------------------------------------------------------- #
# REPRO001 — SharedMemory cleanup
# --------------------------------------------------------------------- #
class TestShmUnlinkRule:
    BAD = """\
    from multiprocessing.shared_memory import SharedMemory

    def export(nbytes):
        seg = SharedMemory(create=True, size=nbytes)
        return seg
    """

    GOOD = """\
    import weakref
    from multiprocessing.shared_memory import SharedMemory

    def export(nbytes):
        seg = SharedMemory(create=True, size=nbytes)
        weakref.finalize(seg, seg.unlink)
        return seg
    """

    def test_bad_flagged_at_create_site(self):
        findings = analyze("repro/datasets/x.py", self.BAD, select=["REPRO001"])
        assert [(f.rule_id, f.line) for f in findings] == [("REPRO001", 4)]

    def test_good_clean(self):
        assert analyze("repro/datasets/x.py", self.GOOD, select=["REPRO001"]) == []

    def test_attach_only_is_fine(self):
        src = """\
        from multiprocessing.shared_memory import SharedMemory

        def attach(name):
            return SharedMemory(name=name)
        """
        assert analyze("repro/datasets/x.py", src, select=["REPRO001"]) == []


# --------------------------------------------------------------------- #
# REPRO002 — determinism paths
# --------------------------------------------------------------------- #
class TestDeterminismRule:
    BAD = """\
    import time
    import numpy as np

    def stamp():
        return time.time()

    def draw():
        return np.random.rand()
    """

    def test_wall_clock_and_global_rng_flagged(self):
        findings = analyze("repro/core/x.py", self.BAD, select=["REPRO002"])
        assert [(f.rule_id, f.line) for f in findings] == [("REPRO002", 5), ("REPRO002", 8)]

    def test_seeded_rng_allowed(self):
        src = """\
        import random
        import numpy as np

        def draw(seed):
            rng = np.random.default_rng(seed)
            r = random.Random(seed)
            return rng.random() + r.random()
        """
        assert analyze("repro/citests/x.py", src, select=["REPRO002"]) == []

    def test_rule_is_path_gated(self):
        # The same nondeterminism is legal outside the fingerprinted paths
        # (benchmarks time things; the server stamps wall-clock latencies).
        assert analyze("repro/bench/x.py", self.BAD, select=["REPRO002"]) == []


# --------------------------------------------------------------------- #
# REPRO003 — response schema
# --------------------------------------------------------------------- #
class TestResponseSchemaRule:
    def test_half_schema_dict_flagged(self):
        src = """\
        def respond(payload):
            return {"id": 1, "result": payload}
        """
        findings = analyze("repro/engine/x.py", src, select=["REPRO003"])
        assert [(f.rule_id, f.line) for f in findings] == [("REPRO003", 2)]
        assert "'error'" in findings[0].message

    def test_dict_call_form_flagged(self):
        src = """\
        def respond(msg):
            return dict(id=1, error=msg)
        """
        findings = analyze("repro/engine/x.py", src, select=["REPRO003"])
        assert [(f.rule_id, f.line) for f in findings] == [("REPRO003", 2)]

    def test_full_schema_clean(self):
        src = """\
        def respond(payload):
            return {"id": 1, "result": payload, "error": None}
        """
        assert analyze("repro/engine/x.py", src, select=["REPRO003"]) == []

    def test_rule_is_path_gated(self):
        src = """\
        def summary(ok):
            return {"result": ok}
        """
        assert analyze("repro/bench/x.py", src, select=["REPRO003"]) == []


# --------------------------------------------------------------------- #
# REPRO004 — pickle-sever for handle holders
# --------------------------------------------------------------------- #
class TestPickleSeverRule:
    BAD = """\
    import sqlite3

    class Store:
        def __init__(self, path):
            self._conn = sqlite3.connect(path)
    """

    def test_handle_holder_without_getstate_flagged(self):
        findings = analyze("repro/engine/x.py", self.BAD, select=["REPRO004"])
        assert [(f.rule_id, f.line) for f in findings] == [("REPRO004", 3)]
        assert "Store" in findings[0].message

    def test_getstate_satisfies(self):
        src = self.BAD + "\n        def __getstate__(self):\n            raise TypeError()\n"
        assert analyze("repro/engine/x.py", src, select=["REPRO004"]) == []

    def test_reduce_satisfies(self):
        src = self.BAD + "\n        def __reduce__(self):\n            return (Store, ())\n"
        assert analyze("repro/engine/x.py", src, select=["REPRO004"]) == []

    def test_annotation_marker_detected(self):
        src = """\
        import sqlite3

        class Wrapper:
            def adopt(self, conn: sqlite3.Connection):
                self._conn = conn
        """
        findings = analyze("repro/engine/x.py", src, select=["REPRO004"])
        assert rule_ids(findings) == ["REPRO004"]


# --------------------------------------------------------------------- #
# REPRO005 — thread lifecycle
# --------------------------------------------------------------------- #
class TestThreadLifecycleRule:
    def test_leaked_thread_flagged(self):
        src = """\
        import threading

        def start(fn):
            t = threading.Thread(target=fn)
            t.start()
            return t
        """
        findings = analyze("repro/engine/x.py", src, select=["REPRO005"])
        assert [(f.rule_id, f.line) for f in findings] == [("REPRO005", 4)]

    def test_daemon_thread_clean(self):
        src = """\
        import threading

        def start(fn):
            t = threading.Thread(target=fn, daemon=True)
            t.start()
        """
        assert analyze("repro/engine/x.py", src, select=["REPRO005"]) == []

    def test_joined_thread_clean(self):
        src = """\
        import threading

        def run(fn):
            t = threading.Thread(target=fn)
            t.start()
            t.join()
        """
        assert analyze("repro/engine/x.py", src, select=["REPRO005"]) == []

    def test_join_via_loop_over_container(self):
        src = """\
        import threading

        def run(fns):
            workers = [threading.Thread(target=fn) for fn in fns]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
        """
        assert analyze("repro/engine/x.py", src, select=["REPRO005"]) == []


# --------------------------------------------------------------------- #
# REPRO006 — broad except accounting
# --------------------------------------------------------------------- #
class TestBroadExceptRule:
    def test_swallowing_handler_flagged(self):
        src = """\
        def load(path):
            try:
                return open(path).read()
            except Exception:
                pass
        """
        findings = analyze("repro/engine/x.py", src, select=["REPRO006"])
        assert [(f.rule_id, f.line) for f in findings] == [("REPRO006", 4)]

    def test_narrow_handler_not_flagged(self):
        src = """\
        def load(path):
            try:
                return open(path).read()
            except OSError:
                pass
        """
        assert analyze("repro/engine/x.py", src, select=["REPRO006"]) == []

    def test_reraise_accounts(self):
        src = """\
        def load(path):
            try:
                return open(path).read()
            except Exception:
                raise RuntimeError(path)
        """
        assert analyze("repro/engine/x.py", src, select=["REPRO006"]) == []

    def test_counter_increment_accounts(self):
        src = """\
        class Tier:
            def get(self, key):
                try:
                    return self._decode(key)
                except Exception:
                    self.n_blob_errors += 1
                    return None
        """
        assert analyze("repro/engine/x.py", src, select=["REPRO006"]) == []

    def test_captured_exception_reference_accounts(self):
        src = """\
        def run(q, fn):
            try:
                fn()
            except BaseException as exc:
                q.put(exc)
        """
        assert analyze("repro/engine/x.py", src, select=["REPRO006"]) == []


# --------------------------------------------------------------------- #
# suppression semantics
# --------------------------------------------------------------------- #
class TestSuppressions:
    BAD_LINE = 'x = {"result": 1}  # repro: ignore[%s]'

    def _module(self, pragma_rule: str):
        return f'def f():\n    return {{"result": 1}}  {pragma_rule}\n'

    def test_line_pragma_suppresses_named_rule(self):
        src = self._module("# repro: ignore[REPRO003] - legacy summary doc")
        assert analyze("repro/engine/x.py", src, select=["REPRO003"]) == []

    def test_wrong_rule_id_does_not_suppress(self):
        src = self._module("# repro: ignore[REPRO006]")
        assert rule_ids(analyze("repro/engine/x.py", src, select=["REPRO003"])) == ["REPRO003"]

    def test_blanket_pragma_suppresses_everything(self):
        src = self._module("# repro: ignore")
        assert analyze("repro/engine/x.py", src, select=["REPRO003"]) == []

    def test_file_pragma_in_window(self):
        src = '# repro: ignore-file[REPRO003]\ndef f():\n    return {"result": 1}\n'
        assert analyze("repro/engine/x.py", src, select=["REPRO003"]) == []

    def test_file_pragma_outside_window_ignored(self):
        filler = "\n" * 12
        src = filler + '# repro: ignore-file[REPRO003]\ndef f():\n    return {"result": 1}\n'
        assert rule_ids(analyze("repro/engine/x.py", src, select=["REPRO003"])) == ["REPRO003"]

    def test_suppressed_findings_are_counted(self):
        src = self._module("# repro: ignore[REPRO003]")
        analyzer = Analyzer(select=["REPRO003"], lockgraph=False)
        assert analyzer.run_modules([make_module("repro/engine/x.py", src)]) == []
        assert analyzer.n_suppressed == 1

    def test_index_parses_multiple_rules(self):
        idx = SuppressionIndex(["x = 1  # repro: ignore[REPRO001, LOCK002]"])
        assert idx.is_suppressed(1, "REPRO001")
        assert idx.is_suppressed(1, "lock002")
        assert not idx.is_suppressed(1, "REPRO003")
        assert not idx.is_suppressed(2, "REPRO001")


# --------------------------------------------------------------------- #
# lock-order graph
# --------------------------------------------------------------------- #
INVERTED = """\
import threading

class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                return 1

    def backward(self):
        with self._b:
            with self._a:
                return 2
"""


class TestLockGraph:
    def test_find_cycles_on_plain_edges(self):
        assert find_cycles([("A", "B"), ("B", "C")]) == []
        cycles = find_cycles([("A", "B"), ("B", "A")])
        assert len(cycles) == 1
        assert cycles[0][0] == cycles[0][-1]
        assert set(cycles[0]) == {"A", "B"}

    def test_two_lock_inversion_is_lock001(self):
        findings = analyze("repro/engine/x.py", INVERTED, select=["LOCK001"], lockgraph=True)
        assert rule_ids(findings) == ["LOCK001"]
        assert "cycle" in findings[0].message.lower()

    def test_consistent_order_clean(self):
        src = INVERTED.replace(
            "with self._b:\n            with self._a:",
            "with self._a:\n            with self._b:",
        )
        assert src != INVERTED  # the inversion really was rewritten
        assert analyze("repro/engine/x.py", src, select=["LOCK001"], lockgraph=True) == []

    def test_interprocedural_inversion_caught(self):
        src = """\
        import threading

        class Pair:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def locked_b(self):
                with self._b:
                    return 1

            def forward(self):
                with self._a:
                    return self.locked_b()

            def backward(self):
                with self._b:
                    with self._a:
                        return 2
        """
        findings = analyze("repro/engine/x.py", src, select=["LOCK001"], lockgraph=True)
        assert rule_ids(findings) == ["LOCK001"]

    def test_blocking_under_lock_is_lock002(self):
        src = """\
        import threading
        import time

        class Slow:
            def __init__(self):
                self._lock = threading.Lock()

            def nap(self):
                with self._lock:
                    time.sleep(1.0)
        """
        findings = analyze("repro/engine/x.py", src, select=["LOCK002"], lockgraph=True)
        assert [(f.rule_id, f.line) for f in findings] == [("LOCK002", 10)]

    def test_blocking_outside_lock_clean(self):
        src = """\
        import threading
        import time

        class Slow:
            def __init__(self):
                self._lock = threading.Lock()

            def nap(self):
                with self._lock:
                    pass
                time.sleep(1.0)
        """
        assert analyze("repro/engine/x.py", src, select=["LOCK002"], lockgraph=True) == []


# --------------------------------------------------------------------- #
# runtime sanitizer
# --------------------------------------------------------------------- #
@pytest.fixture()
def fresh_recorder(monkeypatch):
    """Route proxy events into a throwaway recorder (never the process one:
    under ``REPRO_LOCKCHECK=1`` the global feeds the session-end gate)."""
    rec = runtime.LockOrderRecorder()
    monkeypatch.setattr(runtime, "recorder", rec)
    return rec


class TestRuntimeSanitizer:
    def test_tracked_lock_records_order(self, fresh_recorder):
        a = runtime._TrackedLock("role-a")
        b = runtime._TrackedLock("role-b")
        with a:
            with b:
                pass
        assert ("role-a", "role-b") in fresh_recorder.snapshot_edges()
        assert ("role-b", "role-a") not in fresh_recorder.snapshot_edges()
        assert fresh_recorder.n_acquisitions == 2

    def test_inverted_orders_form_cycle(self, fresh_recorder):
        a = runtime._TrackedLock("role-a")
        b = runtime._TrackedLock("role-b")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        cycles = find_cycles(fresh_recorder.snapshot_edges())
        assert len(cycles) == 1
        assert set(cycles[0]) == {"role-a", "role-b"}

    def test_orders_recorded_across_threads(self, fresh_recorder):
        a = runtime._TrackedLock("role-a")
        b = runtime._TrackedLock("role-b")

        def fwd():
            with a:
                with b:
                    pass

        def rev():
            with b:
                with a:
                    pass

        for fn in (fwd, rev):
            t = threading.Thread(target=fn)
            t.start()
            t.join()
        edges = fresh_recorder.snapshot_edges()
        assert ("role-a", "role-b") in edges and ("role-b", "role-a") in edges

    def test_condition_compatible_with_proxy(self, fresh_recorder):
        # Condition duck-types through _release_save/_acquire_restore/_is_owned;
        # wait() must fully release the proxy so the held stack stays honest.
        lock = runtime._TrackedRLock("role-c")
        cond = threading.Condition(lock)
        fired = []

        def waiter():
            with cond:
                while not fired:
                    cond.wait(timeout=1.0)

        t = threading.Thread(target=waiter)
        t.start()
        with cond:
            fired.append(True)
            cond.notify()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert fresh_recorder.roles.get("role-c", 0) >= 2
        assert not fresh_recorder._stack()  # main thread holds nothing now

    @pytest.mark.skipif(
        bool(os.environ.get("REPRO_LOCKCHECK")),
        reason="factory patching is session-owned under REPRO_LOCKCHECK",
    )
    def test_install_patches_only_marked_paths(self, fresh_recorder):
        runtime.install(path_markers=("test_static_analysis",))
        try:
            mine = threading.Lock()
            assert isinstance(mine, runtime._TrackedLock)
            with mine:
                pass
            assert fresh_recorder.n_acquisitions == 1
        finally:
            runtime.uninstall()
        assert not runtime.installed()
        assert threading.Lock is runtime._REAL_LOCK

    def test_check_merges_static_and_observed(self, fresh_recorder):
        fresh_recorder.note_acquired("x", 1)
        fresh_recorder.note_acquired("y", 2)
        fresh_recorder.note_released("y", 2)
        fresh_recorder.note_released("x", 1)
        report = runtime.check(src_paths=(SRC_ROOT,))
        assert report["observed_edges"] == 1
        assert report["static_edges"] > 0
        assert report["merged_edges"] >= report["static_edges"] + 1
        assert report["cycles"] == []


# --------------------------------------------------------------------- #
# output formats, CLI, and the repo-wide gate
# --------------------------------------------------------------------- #
class TestFormatsAndCli:
    def test_format_human_and_json(self):
        f = Finding(file="repro/x.py", line=3, rule_id="REPRO003", severity="error", message="m")
        human = format_findings([f], "human")
        assert "repro/x.py:3: REPRO003 [error] m" in human
        assert "1 finding(s)" in human
        doc = json.loads(format_findings([f], "json"))
        assert doc["n_findings"] == 1
        assert doc["findings"][0]["rule"] == "REPRO003"
        assert format_findings([], "human") == "no findings"
        with pytest.raises(ValueError):
            format_findings([], "yaml")

    def test_rule_catalogue_complete(self):
        ids = set(all_rules())
        assert {
            "REPRO001", "REPRO002", "REPRO003", "REPRO004", "REPRO005", "REPRO006",
            "LOCK001", "LOCK002",
        } <= ids

    def test_unknown_select_raises(self):
        with pytest.raises(ValueError, match="REPRO999"):
            Analyzer(select=["REPRO999"])

    def _write_fixture(self, tmp_path, body: str) -> str:
        pkg = tmp_path / "repro" / "engine"
        pkg.mkdir(parents=True)
        target = pkg / "fixture.py"
        target.write_text(textwrap.dedent(body))
        return str(target)

    def test_cli_exit_one_and_json(self, tmp_path, capsys):
        path = self._write_fixture(tmp_path, 'def f():\n    return {"result": 1}\n')
        rc = cli_main(["analyze", path, "--format", "json", "--select", "REPRO003"])
        captured = capsys.readouterr()
        assert rc == 1
        doc = json.loads(captured.out)
        assert doc["n_findings"] == 1
        assert doc["findings"][0]["rule"] == "REPRO003"
        assert doc["findings"][0]["line"] == 2
        assert "analyzed 1 file(s)" in captured.err

    def test_cli_exit_zero_on_clean(self, tmp_path, capsys):
        path = self._write_fixture(tmp_path, 'def f():\n    return {"result": 1, "error": None}\n')
        rc = cli_main(["analyze", path])
        assert rc == 0
        assert "no findings" in capsys.readouterr().out

    def test_cli_unknown_rule_exits_two(self, tmp_path, capsys):
        path = self._write_fixture(tmp_path, "x = 1\n")
        rc = cli_main(["analyze", path, "--select", "NOPE123"])
        assert rc == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_cli_list_rules(self, capsys):
        rc = cli_main(["analyze", "--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for rid in ("REPRO001", "REPRO006", "LOCK001", "LOCK002"):
            assert rid in out

    def test_parse_error_reported_not_raised(self, tmp_path, capsys):
        path = self._write_fixture(tmp_path, "def broken(:\n")
        rc = cli_main(["analyze", path])
        assert rc == 1
        assert "PARSE" in capsys.readouterr().out

    def test_repo_src_analyzes_clean(self):
        # The in-tree twin of the CI gate: the engine's own source must
        # satisfy every codified invariant (suppressions carry reasons).
        analyzer = Analyzer()
        findings = analyzer.run([SRC_ROOT])
        assert findings == [], "\n" + format_findings(findings, "human")
        assert analyzer.n_files > 50
