"""Skeleton-engine tests: correctness against the oracle, invariance across
optimisation switches, statistics bookkeeping."""

from __future__ import annotations

import pytest

from repro.citests.oracle import OracleCITest
from repro.core.skeleton import build_depth_tasks, depth_has_work, learn_skeleton
from repro.core.trace import TraceRecorder
from repro.graphs.undirected import UndirectedGraph
from repro.networks.classic import asia, cancer, sprinkler
from repro.networks.generators import random_network


def oracle_skeleton(net, **kwargs):
    tester = OracleCITest.from_network(net)
    return learn_skeleton(tester, net.n_nodes, **kwargs)


def true_skeleton_edges(net):
    return sorted((min(u, v), max(u, v)) for u, v in net.edges())


class TestOracleRecovery:
    @pytest.mark.parametrize("factory", [sprinkler, asia, cancer])
    def test_classics_recovered_exactly(self, factory):
        net = factory()
        graph, _, _ = oracle_skeleton(net)
        assert sorted(graph.edges()) == true_skeleton_edges(net)

    @pytest.mark.parametrize("seed", [0, 1, 2, 7])
    def test_random_networks_recovered(self, seed):
        net = random_network(12, 16, rng=seed, max_parents=4)
        graph, _, _ = oracle_skeleton(net)
        assert sorted(graph.edges()) == true_skeleton_edges(net)

    def test_sepsets_actually_separate(self, asia_net):
        from repro.graphs.separation import DSeparationOracle

        graph, sepsets, _ = oracle_skeleton(asia_net)
        oracle = DSeparationOracle(asia_net.n_nodes, asia_net.edges())
        for (u, v), s in sepsets.items():
            assert oracle.query(u, v, s)
            assert not graph.has_edge(u, v)

    def test_empty_graph(self):
        net = random_network(5, 0, rng=0)
        graph, _, _ = oracle_skeleton(net)
        assert graph.n_edges == 0


class TestSwitchInvariance:
    """Every optimisation switch must leave results unchanged."""

    @pytest.fixture(scope="class")
    def reference(self, asia_data):
        from repro.citests.gsquare import GSquareTest

        tester = GSquareTest(asia_data)
        return learn_skeleton(tester, asia_data.n_variables)

    @pytest.mark.parametrize("gs", [2, 3, 5, 8, 16])
    def test_gs_invariance(self, asia_data, reference, gs):
        from repro.citests.gsquare import GSquareTest

        graph, sepsets, stats = learn_skeleton(
            GSquareTest(asia_data), asia_data.n_variables, gs=gs
        )
        ref_graph, ref_sepsets, ref_stats = reference
        assert graph == ref_graph
        assert sepsets == ref_sepsets
        assert stats.n_tests >= ref_stats.n_tests  # redundancy only adds

    def test_group_endpoints_invariance(self, asia_data, reference):
        from repro.citests.gsquare import GSquareTest

        graph, sepsets, stats = learn_skeleton(
            GSquareTest(asia_data), asia_data.n_variables, group_endpoints=False
        )
        ref_graph, ref_sepsets, ref_stats = reference
        assert graph == ref_graph
        assert sepsets == ref_sepsets
        # Ungrouped runs at least as many tests (skipped side-2 work).
        assert stats.n_tests >= ref_stats.n_tests

    def test_onthefly_invariance(self, asia_data, reference):
        from repro.citests.gsquare import GSquareTest

        graph, sepsets, stats = learn_skeleton(
            GSquareTest(asia_data), asia_data.n_variables, onthefly=False
        )
        ref_graph, ref_sepsets, ref_stats = reference
        assert graph == ref_graph
        assert sepsets == ref_sepsets
        assert stats.n_tests == ref_stats.n_tests
        assert stats.materialised_set_ints > 0
        assert ref_stats.materialised_set_ints == 0

    def test_layout_invariance(self, asia_data, reference):
        from repro.citests.gsquare import GSquareTest

        sm = asia_data.with_layout("sample-major")
        graph, sepsets, _ = learn_skeleton(GSquareTest(sm), sm.n_variables)
        ref_graph, ref_sepsets, _ = reference
        assert graph == ref_graph
        assert sepsets == ref_sepsets


class TestMaxDepth:
    def test_depth_zero_only(self, asia_data):
        from repro.citests.gsquare import GSquareTest

        graph, _, stats = learn_skeleton(GSquareTest(asia_data), asia_data.n_variables, max_depth=0)
        assert stats.max_depth == 0
        n = asia_data.n_variables
        assert stats.n_tests == n * (n - 1) // 2

    def test_monotone_edge_count_in_depth(self, asia_data):
        from repro.citests.gsquare import GSquareTest

        previous = None
        for depth in range(3):
            graph, _, _ = learn_skeleton(
                GSquareTest(asia_data), asia_data.n_variables, max_depth=depth
            )
            if previous is not None:
                assert graph.n_edges <= previous
            previous = graph.n_edges


class TestStats:
    def test_depth_bookkeeping(self, asia_net):
        _, _, stats = oracle_skeleton(asia_net)
        assert stats.depths[0].depth == 0
        n = asia_net.n_nodes
        assert stats.depths[0].n_edges_start == n * (n - 1) // 2
        assert stats.n_tests == sum(d.n_tests for d in stats.depths)
        for d in stats.depths:
            assert 0 <= d.deletion_ratio <= 1

    def test_gs_redundancy_counted(self, asia_data):
        from repro.citests.gsquare import GSquareTest

        _, _, stats1 = learn_skeleton(GSquareTest(asia_data), asia_data.n_variables, gs=1)
        _, _, stats8 = learn_skeleton(GSquareTest(asia_data), asia_data.n_variables, gs=8)
        assert stats1.n_redundant_tests == 0
        assert stats8.n_redundant_tests > 0
        assert stats8.n_tests == stats1.n_tests + stats8.n_redundant_tests

    def test_counters_snapshot_attached(self, asia_data):
        from repro.citests.gsquare import GSquareTest

        _, _, stats = learn_skeleton(GSquareTest(asia_data), asia_data.n_variables)
        assert stats.counters is not None
        assert stats.counters.n_tests == stats.n_tests

    def test_invalid_args(self, asia_data):
        from repro.citests.gsquare import GSquareTest

        with pytest.raises(ValueError):
            learn_skeleton(GSquareTest(asia_data), asia_data.n_variables, gs=0)
        with pytest.raises(ValueError):
            learn_skeleton(GSquareTest(asia_data), -1)


class TestTraceRecorder:
    def test_trace_matches_stats(self, asia_net):
        tester = OracleCITest.from_network(asia_net)
        recorder = TraceRecorder()
        _, _, stats = learn_skeleton(tester, asia_net.n_nodes, recorder=recorder)
        assert recorder.n_tests == stats.n_tests
        assert len(recorder.depths) == len(stats.depths)
        for dt, ds in zip(recorder.depths, stats.depths, strict=True):
            assert dt.n_edges_start == ds.n_edges_start
            assert dt.n_edges_removed == ds.n_edges_removed
            assert sum(e.n_tests for e in dt.edges) == ds.n_tests

    def test_removed_edges_marked(self, asia_net):
        tester = OracleCITest.from_network(asia_net)
        recorder = TraceRecorder()
        graph, _, _ = learn_skeleton(tester, asia_net.n_nodes, recorder=recorder)
        removed_in_trace = {
            (e.u, e.v) for d in recorder.depths for e in d.edges if e.removed
        }
        for u, v in removed_in_trace:
            assert not graph.has_edge(u, v)


class TestHelpers:
    def test_build_depth_tasks_grouped_vs_not(self):
        g = UndirectedGraph.complete(4)
        grouped = build_depth_tasks(g, 1, group_endpoints=True)
        ungrouped = build_depth_tasks(g, 1, group_endpoints=False)
        assert len(grouped) == 6
        assert len(ungrouped) == 12
        assert sum(t.total_tests for t in ungrouped) == sum(t.total_tests for t in grouped)

    def test_build_depth_tasks_depth0_always_single(self):
        g = UndirectedGraph.complete(3)
        tasks = build_depth_tasks(g, 0, group_endpoints=False)
        assert len(tasks) == 3
        assert all(t.total_tests == 1 for t in tasks)

    def test_depth_has_work(self):
        g = UndirectedGraph.from_edges(4, [(0, 1), (1, 2)])
        assert depth_has_work(g, 1)  # node 1 has degree 2
        assert not depth_has_work(g, 2)
