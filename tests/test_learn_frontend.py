"""learn_structure / FastBNS / baseline front-end tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fastbns import FastBNS
from repro.core.learn import learn_structure, make_tester
from repro.core.pcstable import pc_stable, pc_stable_naive
from repro.core.trace import TraceRecorder


class TestLearnStructure:
    def test_accepts_raw_rows(self, asia_data):
        rows = asia_data.as_rows()
        res = learn_structure(rows, arities=list(asia_data.arities))
        ref = learn_structure(asia_data)
        assert sorted(res.skeleton.edges()) == sorted(ref.skeleton.edges())

    def test_result_fields(self, asia_data):
        res = learn_structure(asia_data)
        assert res.names == asia_data.names
        assert res.n_ci_tests == res.stats.n_tests
        assert set(res.elapsed) == {"skeleton", "orientation", "total"}
        assert res.elapsed["total"] >= res.elapsed["skeleton"]
        assert res.cpdag.skeleton_edges() == set(res.skeleton.edges())

    def test_edge_name_views(self, asia_data):
        res = learn_structure(asia_data)
        names = dict(zip(range(len(res.names)), res.names, strict=True))
        assert all(
            (a in res.names and b in res.names) for a, b in res.edge_names()
        )
        for a, b in res.directed_edge_names():
            assert a in names.values() and b in names.values()

    def test_unknown_method(self, asia_data):
        with pytest.raises(ValueError, match="method"):
            learn_structure(asia_data, method="magic")

    def test_unknown_parallelism(self, asia_data):
        with pytest.raises(ValueError, match="parallelism"):
            learn_structure(asia_data, parallelism="quantum")

    def test_invalid_jobs(self, asia_data):
        with pytest.raises(ValueError):
            learn_structure(asia_data, n_jobs=0)

    def test_chi2_and_mi_tests_run(self, asia_data):
        for test in ("chi2", "mi"):
            res = learn_structure(asia_data, test=test)
            assert res.skeleton.n_edges > 0

    def test_recorder_integration(self, asia_data):
        rec = TraceRecorder()
        res = learn_structure(asia_data, recorder=rec)
        assert rec.n_tests == res.n_ci_tests

    def test_max_depth_forwarded(self, asia_data):
        res = learn_structure(asia_data, max_depth=1)
        assert res.stats.max_depth <= 1


class TestMakeTester:
    def test_by_name(self, asia_data):
        from repro.citests.chisquare import ChiSquareTest
        from repro.citests.gsquare import GSquareTest
        from repro.citests.mutual_info import MutualInformationTest
        from repro.citests.naive import NaiveGSquareTest

        assert isinstance(make_tester(asia_data, "g2"), GSquareTest)
        assert isinstance(make_tester(asia_data, "chi2"), ChiSquareTest)
        assert isinstance(make_tester(asia_data, "mi"), MutualInformationTest)
        assert isinstance(make_tester(asia_data, "g2-naive"), NaiveGSquareTest)

    def test_passthrough_instance(self, asia_data):
        from repro.citests.gsquare import GSquareTest

        tester = GSquareTest(asia_data, alpha=0.01)
        assert make_tester(asia_data, tester) is tester

    def test_unknown_name(self, asia_data):
        with pytest.raises(ValueError):
            make_tester(asia_data, "t-test")


class TestBaselines:
    def test_pc_stable_same_skeleton_as_fastbns(self, asia_data):
        fast = learn_structure(asia_data)
        ref = pc_stable(asia_data)
        assert sorted(ref.skeleton.edges()) == sorted(fast.skeleton.edges())
        assert ref.sepsets == fast.sepsets
        assert ref.cpdag == fast.cpdag

    def test_pc_stable_does_more_tests(self, asia_data):
        fast = learn_structure(asia_data)
        ref = pc_stable(asia_data)
        assert ref.n_ci_tests >= fast.n_ci_tests

    def test_naive_matches_on_small_input(self, sprinkler_data):
        small = sprinkler_data.take_samples(800)
        fast = learn_structure(small)
        naive = pc_stable_naive(small)
        assert sorted(naive.skeleton.edges()) == sorted(fast.skeleton.edges())

    def test_gs_ignored_by_baseline(self, asia_data):
        a = learn_structure(asia_data, method="pc-stable", gs=8)
        b = learn_structure(asia_data, method="pc-stable", gs=1)
        assert a.n_ci_tests == b.n_ci_tests


class TestFastBNSClass:
    def test_fit_and_result(self, asia_data):
        model = FastBNS(alpha=0.05, gs=4)
        res = model.fit(asia_data)
        assert model.result_ is res
        assert model.cpdag is res.cpdag

    def test_cpdag_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            FastBNS().cpdag

    def test_matches_functional_api(self, asia_data):
        res_cls = FastBNS(gs=2).fit(asia_data)
        res_fn = learn_structure(asia_data, gs=2)
        assert res_cls.cpdag == res_fn.cpdag

    def test_numpy_input(self, asia_data):
        rows = np.asarray(asia_data.as_rows())
        res = FastBNS().fit(rows, arities=list(asia_data.arities))
        assert res.skeleton.n_edges > 0
