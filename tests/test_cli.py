"""CLI tests (argument parsing and end-to-end runs on tiny inputs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_learn_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["learn"])

    def test_learn_sources_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["learn", "--csv", "a.csv", "--network", "alarm"])

    def test_experiment_name_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_defaults(self):
        args = build_parser().parse_args(["learn", "--network", "alarm"])
        assert args.method == "fast-bns"
        assert args.alpha == 0.05
        assert args.gs == 1
        assert args.jobs == 1


class TestLearnCommand:
    def test_learn_from_csv(self, tmp_path, capsys, rng):
        m = 400
        x = rng.integers(0, 2, m)
        y = np.where(rng.random(m) < 0.1, 1 - x, x)
        z = rng.integers(0, 2, m)
        path = tmp_path / "data.csv"
        header = "x,y,z"
        np.savetxt(path, np.column_stack([x, y, z]), fmt="%d", delimiter=",", header=header, comments="")
        rc = main(["learn", "--csv", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "skeleton:" in out
        assert "x -- y" in out or "x -> y" in out or "y -> x" in out

    def test_learn_from_network_quiet(self, capsys):
        rc = main(["learn", "--network", "alarm", "--samples", "300", "--scale", "0.3", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CI tests:" in out
        assert "directed edges:" not in out

    def test_learn_from_bif(self, tmp_path, capsys):
        from repro.datasets.bif import write_bif
        from repro.networks.classic import sprinkler

        path = tmp_path / "net.bif"
        path.write_text(write_bif(sprinkler()))
        rc = main(["learn", "--bif", str(path), "--samples", "2000", "--quiet"])
        assert rc == 0
        assert "skeleton:" in capsys.readouterr().out

    def test_learn_with_gs_and_maxdepth(self, capsys):
        rc = main(
            [
                "learn",
                "--network",
                "insurance",
                "--samples",
                "300",
                "--scale",
                "0.4",
                "--gs",
                "4",
                "--max-depth",
                "1",
                "--quiet",
            ]
        )
        assert rc == 0


class TestExperimentCommand:
    def test_table2(self, capsys):
        rc = main(["experiment", "table2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "alarm" in out
        assert "munin3" in out
        assert "Table II" in out


class TestBlanketCommand:
    def test_blanket_by_index(self, capsys):
        rc = main(["blanket", "--network", "alarm", "--target", "3", "--samples", "800", "--scale", "0.4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "blanket" in out
        assert "overlap:" in out

    def test_blanket_by_name(self, capsys):
        rc = main(
            [
                "blanket",
                "--network",
                "insurance",
                "--target",
                "insurance_2",
                "--samples",
                "600",
                "--scale",
                "0.4",
                "--algorithm",
                "grow-shrink",
            ]
        )
        assert rc == 0
        assert "true blanket" in capsys.readouterr().out
