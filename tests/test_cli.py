"""CLI tests (argument parsing and end-to-end runs on tiny inputs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_learn_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["learn"])

    def test_learn_sources_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["learn", "--csv", "a.csv", "--network", "alarm"])

    def test_experiment_name_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_defaults(self):
        args = build_parser().parse_args(["learn", "--network", "alarm"])
        assert args.method == "fast-bns"
        assert args.alpha == 0.05
        assert args.gs == 1
        assert args.jobs == 1


class TestLearnCommand:
    def test_learn_from_csv(self, tmp_path, capsys, rng):
        m = 400
        x = rng.integers(0, 2, m)
        y = np.where(rng.random(m) < 0.1, 1 - x, x)
        z = rng.integers(0, 2, m)
        path = tmp_path / "data.csv"
        header = "x,y,z"
        np.savetxt(path, np.column_stack([x, y, z]), fmt="%d", delimiter=",", header=header, comments="")
        rc = main(["learn", "--csv", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "skeleton:" in out
        assert "x -- y" in out or "x -> y" in out or "y -> x" in out

    def test_learn_from_network_quiet(self, capsys):
        rc = main(["learn", "--network", "alarm", "--samples", "300", "--scale", "0.3", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CI tests:" in out
        assert "directed edges:" not in out

    def test_learn_from_bif(self, tmp_path, capsys):
        from repro.datasets.bif import write_bif
        from repro.networks.classic import sprinkler

        path = tmp_path / "net.bif"
        path.write_text(write_bif(sprinkler()))
        rc = main(["learn", "--bif", str(path), "--samples", "2000", "--quiet"])
        assert rc == 0
        assert "skeleton:" in capsys.readouterr().out

    def test_learn_with_gs_and_maxdepth(self, capsys):
        rc = main(
            [
                "learn",
                "--network",
                "insurance",
                "--samples",
                "300",
                "--scale",
                "0.4",
                "--gs",
                "4",
                "--max-depth",
                "1",
                "--quiet",
            ]
        )
        assert rc == 0


class TestCsvLoading:
    def test_single_column_csv(self, tmp_path, capsys, rng):
        """np.loadtxt returns 1-D for one column; ndmin=2 must keep the
        loader working instead of crashing in from_rows."""
        path = tmp_path / "one.csv"
        path.write_text("x\n" + "\n".join(str(v) for v in rng.integers(0, 3, 50)) + "\n")
        rc = main(["learn", "--csv", str(path), "--quiet"])
        assert rc == 0
        assert "skeleton: 0 edges" in capsys.readouterr().out

    def test_header_width_mismatch_is_clear_error(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y,z\n0,1\n1,0\n")
        with pytest.raises(ValueError, match="header names 3 column"):
            main(["learn", "--csv", str(path)])

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("x,y\n")
        with pytest.raises(ValueError, match="no data rows"):
            main(["learn", "--csv", str(path)])


class TestExperimentCommand:
    def test_table2(self, capsys):
        rc = main(["experiment", "table2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "alarm" in out
        assert "munin3" in out
        assert "Table II" in out


class TestBlanketCommand:
    def test_blanket_by_index(self, capsys):
        rc = main(["blanket", "--network", "alarm", "--target", "3", "--samples", "800", "--scale", "0.4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "blanket" in out
        assert "overlap:" in out

    def test_blanket_by_name(self, capsys):
        rc = main(
            [
                "blanket",
                "--network",
                "insurance",
                "--target",
                "insurance_2",
                "--samples",
                "600",
                "--scale",
                "0.4",
                "--algorithm",
                "grow-shrink",
            ]
        )
        assert rc == 0
        assert "true blanket" in capsys.readouterr().out

    def test_blanket_sources_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["blanket", "--network", "alarm", "--csv", "a.csv", "--target", "0"]
            )

    def test_blanket_from_csv(self, tmp_path, capsys, rng):
        """--csv parity: no generating network, so no ground-truth lines,
        but the query itself runs through the session layer."""
        m = 500
        x = rng.integers(0, 2, m)
        y = np.where(rng.random(m) < 0.05, 1 - x, x)
        z = rng.integers(0, 2, m)
        path = tmp_path / "data.csv"
        np.savetxt(
            path, np.column_stack([x, y, z]), fmt="%d", delimiter=",",
            header="x,y,z", comments="",
        )
        rc = main(["blanket", "--csv", str(path), "--target", "x"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "blanket (iamb" in out and "y" in out
        assert "true blanket" not in out and "overlap" not in out
        assert "stats cache:" in out

    def test_blanket_from_bif_with_seed(self, tmp_path, capsys):
        from repro.datasets.bif import write_bif
        from repro.networks.classic import sprinkler

        path = tmp_path / "net.bif"
        path.write_text(write_bif(sprinkler()))
        rc = main(
            ["blanket", "--bif", str(path), "--samples", "1500", "--seed", "3",
             "--target", "0"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "blanket (iamb" in out and "m=1500" in out


class TestServeCommand:
    def _write_requests(self, path, requests):
        import json

        path.write_text("".join(json.dumps(r) + "\n" for r in requests))

    @pytest.mark.parametrize("threads", [1, 2])
    def test_serve_end_to_end(self, tmp_path, capsys, threads):
        import json

        reqs = tmp_path / "reqs.jsonl"
        self._write_requests(
            reqs,
            [
                {"op": "learn", "dataset": "a", "alpha": 0.05},
                {"op": "register", "dataset": "b",
                 "source": {"kind": "network", "name": "insurance",
                            "samples": 300, "scale": 0.4}},
                {"op": "learn", "dataset": "b"},
                {"op": "learn", "dataset": "a", "alpha": 0.05},  # hit
                {"op": "learn", "dataset": "a", "gs": 0},  # validation error
                {"op": "learn", "dataset": "ghost"},  # unknown dataset
                {"op": "stats"},
            ],
        )
        out = tmp_path / "out.jsonl"
        man = tmp_path / "manifest.json"
        rc = main(
            ["serve", "--register", "a=network:alarm", "--samples", "300",
             "--requests", str(reqs), "--out", str(out),
             "--manifest", str(man), "--threads", str(threads)]
        )
        assert rc == 0
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == 7
        for resp in lines:
            assert (resp["result"] is None) != (resp["error"] is None)
        assert [r["dataset"] for r in lines[:6]] == ["a", "b", "b", "a", "a", "ghost"]
        assert lines[3]["cached"] and lines[3]["result"] == lines[0]["result"]
        assert "gs must be >= 1" in lines[4]["error"]
        assert "unknown dataset" in lines[5]["error"]
        assert lines[6]["result"]["sessions"]["live"] == 2
        doc = json.loads(man.read_text())
        assert doc["totals"]["n_requests"] == 5  # 2 admin ops tracked apart
        assert doc["totals"]["n_errors"] == 2
        assert doc["totals"]["n_result_cache_hits"] == 1

    def test_serve_streams_stdin_stdout(self, capsys, monkeypatch):
        import io
        import json

        stream = "\n".join(
            [
                json.dumps({"op": "learn", "dataset": "a", "max_depth": 1}),
                "this is not json",
                json.dumps({"op": "learn", "dataset": "a", "max_depth": 1}),
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(stream + "\n"))
        rc = main(["serve", "--register", "a=network:alarm", "--samples", "300"])
        assert rc == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.splitlines()]
        assert len(lines) == 3
        assert lines[0]["error"] is None
        assert "invalid JSON" in lines[1]["error"]
        assert lines[2]["cached"]
        # The summary must not pollute the JSONL stream on stdout.
        assert "served 3 requests" in captured.err

    def test_serve_summary_counts_emitted_lines_once(self, capsys, monkeypatch):
        """A failed admin op is both an admin request and an unrouted
        error; the summary must count the response line once."""
        import io
        import json

        stream = "\n".join(
            [
                json.dumps({"op": "register", "dataset": "b", "bogus": 1}),
                json.dumps({"op": "learn", "dataset": "a", "max_depth": 0}),
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(stream + "\n"))
        rc = main(["serve", "--register", "a=network:alarm", "--samples", "300"])
        assert rc == 0
        captured = capsys.readouterr()
        assert len(captured.out.splitlines()) == 2
        assert "served 2 requests" in captured.err

    def test_serve_bad_register_spec_exits(self):
        with pytest.raises(SystemExit, match="ID=KIND:VALUE"):
            main(["serve", "--register", "nonsense"])

    def test_serve_bad_out_path_does_not_leak_requests_file(self, tmp_path, monkeypatch):
        """Regression (ISSUE-5): --out used to be opened outside the try,
        so a bad path leaked the already-opened requests file."""
        import builtins
        import json

        reqs = tmp_path / "reqs.jsonl"
        reqs.write_text(json.dumps({"op": "stats"}) + "\n")
        opened = []
        real_open = builtins.open

        def tracking_open(file, *args, **kwargs):
            fh = real_open(file, *args, **kwargs)
            if str(file) == str(reqs):
                opened.append(fh)
            return fh

        monkeypatch.setattr(builtins, "open", tracking_open)
        with pytest.raises(FileNotFoundError):
            main(
                ["serve", "--register", "a=network:alarm", "--samples", "300",
                 "--requests", str(reqs),
                 "--out", str(tmp_path / "missing-dir" / "out.jsonl")]
            )
        assert opened and all(fh.closed for fh in opened)

    def test_serve_broken_stdout_pipe_is_clean_exit(self, tmp_path, capsys, monkeypatch):
        """Regression (ISSUE-5): a consumer hanging up on stdout must end
        the run cleanly — manifest and stderr summary still written."""
        import io
        import json

        class BrokenStdout(io.StringIO):
            def write(self, s):
                raise BrokenPipeError(32, "Broken pipe")

        reqs = tmp_path / "reqs.jsonl"
        reqs.write_text(
            "".join(
                json.dumps({"op": "learn", "dataset": "a", "max_depth": 0}) + "\n"
                for _ in range(3)
            )
        )
        man = tmp_path / "manifest.json"
        monkeypatch.setattr("sys.stdout", BrokenStdout())
        rc = main(
            ["serve", "--register", "a=network:alarm", "--samples", "300",
             "--requests", str(reqs), "--manifest", str(man)]
        )
        assert rc == 0
        doc = json.loads(man.read_text())
        assert doc["shutdown"]["reason"] == "broken-pipe"
        assert "served 0 requests" in capsys.readouterr().err

    @pytest.mark.parametrize("threads", [1, 2])
    def test_serve_sigint_mid_stream_writes_manifest(self, tmp_path, capsys, threads):
        """Regression (ISSUE-5): SIGINT used to lose the manifest and the
        summary.  Intake stops, in-flight drains, exit code is 130."""
        import json

        class InterruptingStream:
            """Two good lines, then the signal arrives."""

            def __init__(self):
                self.lines = [
                    json.dumps({"op": "learn", "dataset": "a", "max_depth": 0}) + "\n",
                    json.dumps({"op": "learn", "dataset": "a", "max_depth": 0}) + "\n",
                ]

            def __iter__(self):
                return self

            def __next__(self):
                if not self.lines:
                    raise KeyboardInterrupt
                return self.lines.pop(0)

            def close(self):
                pass

        out = tmp_path / "out.jsonl"
        man = tmp_path / "manifest.json"
        import repro.cli as cli_mod

        real_open = open
        import builtins

        def fake_open(file, *args, **kwargs):
            if str(file) == "fake-requests":
                return InterruptingStream()
            return real_open(file, *args, **kwargs)

        orig = builtins.open
        builtins.open = fake_open
        try:
            rc = cli_mod.main(
                ["serve", "--register", "a=network:alarm", "--samples", "300",
                 "--requests", "fake-requests", "--out", str(out),
                 "--manifest", str(man), "--threads", str(threads)]
            )
        finally:
            builtins.open = orig
        assert rc == 130
        doc = json.loads(man.read_text())
        assert doc["shutdown"]["reason"] == "signal"
        assert doc["totals"]["n_requests"] == 2  # both pre-signal served
        assert "interrupted after" in capsys.readouterr().err

    def test_batch_bad_json_line_is_error_response_not_stream_abort(
        self, tmp_path, capsys
    ):
        """Review fix (ISSUE-5): a malformed line mid-batch used to
        traceback out of the run and lose the manifest; it now becomes
        an ordered error response like in `fastbns serve`."""
        import json

        reqs = tmp_path / "reqs.jsonl"
        reqs.write_text(
            json.dumps({"op": "learn", "max_depth": 0}) + "\n"
            + "{this is not json\n"
            + json.dumps({"op": "learn", "max_depth": 0}) + "\n"
        )
        out = tmp_path / "out.jsonl"
        man = tmp_path / "manifest.json"
        rc = main(
            ["batch", "--network", "alarm", "--samples", "300",
             "--requests", str(reqs), "--out", str(out), "--manifest", str(man)]
        )
        assert rc == 0
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == 3
        assert lines[0]["error"] is None
        assert "invalid JSON" in lines[1]["error"]
        assert lines[2]["cached"]
        totals = json.loads(man.read_text())["totals"]
        assert totals["n_requests"] == 3 and totals["n_errors"] == 1

    def test_batch_sigint_mid_stream_writes_manifest(self, tmp_path, capsys, monkeypatch):
        import io
        import json

        class InterruptingStdin(io.StringIO):
            def __init__(self):
                super().__init__(
                    json.dumps({"op": "learn", "max_depth": 0}) + "\n"
                )
                self.served = 0

            def __iter__(self):
                return self

            def __next__(self):
                self.served += 1
                if self.served > 1:
                    raise KeyboardInterrupt
                return json.dumps({"op": "learn", "max_depth": 0}) + "\n"

        out = tmp_path / "out.jsonl"
        man = tmp_path / "manifest.json"
        monkeypatch.setattr("sys.stdin", InterruptingStdin())
        rc = main(
            ["batch", "--network", "alarm", "--samples", "300",
             "--requests", "-", "--out", str(out), "--manifest", str(man)]
        )
        assert rc == 130
        assert json.loads(man.read_text())["totals"]["n_requests"] == 1
        assert len(out.read_text().splitlines()) == 1
        assert "interrupted after 1 requests" in capsys.readouterr().err


class TestServeSubprocess:
    """End-to-end process tests: pipes, signals, sockets.

    These are the ISSUE-5 acceptance shapes — every wait carries a
    timeout so a reintroduced whole-stream buffer (the deadlock this PR
    removes) fails the test instead of hanging the suite.
    """

    STARTUP_S = 60.0

    def _spawn(self, extra, tmp_path):
        import os
        import subprocess
        import sys as _sys

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
            "PYTHONPATH", ""
        )
        return subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve",
             "--register", "a=network:alarm", "--samples", "300"] + extra,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            cwd="/root/repo",
            text=True,
        )

    def _readline(self, stream, timeout=STARTUP_S):
        """readline with a hard timeout: a hang means the bug is back."""
        from _timeouts import readline_with_timeout

        try:
            return readline_with_timeout(stream, timeout)
        except TimeoutError:
            raise AssertionError("stream stalled: no response within timeout") from None

    def test_lockstep_pipe_threads4_no_deadlock(self, tmp_path):
        """THE acceptance criterion: a producer piping N requests into
        `fastbns serve --threads 4` and reading each response before
        sending the next completes without deadlock."""
        import json

        man = tmp_path / "manifest.json"
        proc = self._spawn(
            ["--threads", "4", "--window", "8", "--manifest", str(man)], tmp_path
        )
        try:
            n = 6
            for i in range(n):
                proc.stdin.write(
                    json.dumps({"op": "learn", "dataset": "a", "max_depth": 0}) + "\n"
                )
                proc.stdin.flush()
                resp = json.loads(self._readline(proc.stdout))
                assert resp["error"] is None
                assert resp["cached"] == (i > 0)
            proc.stdin.close()
            rc = proc.wait(timeout=self.STARTUP_S)
            assert rc == 0
            doc = json.loads(man.read_text())
            assert doc["totals"]["n_requests"] == n
            # Lockstep producer => never more than one request in flight,
            # regardless of the window.
            assert proc.stderr.read().count("served 6 requests") == 1
        finally:
            proc.kill()

    def test_sigint_drains_and_exits_130(self, tmp_path):
        import json
        import signal

        man = tmp_path / "manifest.json"
        proc = self._spawn(["--threads", "2", "--manifest", str(man)], tmp_path)
        try:
            proc.stdin.write(
                json.dumps({"op": "learn", "dataset": "a", "max_depth": 0}) + "\n"
            )
            proc.stdin.flush()
            resp = json.loads(self._readline(proc.stdout))
            assert resp["error"] is None
            proc.send_signal(signal.SIGINT)
            rc = proc.wait(timeout=self.STARTUP_S)
            assert rc == 130
            doc = json.loads(man.read_text())
            assert doc["shutdown"]["reason"] == "signal"
            assert doc["totals"]["n_requests"] == 1
        finally:
            proc.kill()

    def test_listen_socket_end_to_end_sigterm_drain(self, tmp_path):
        """`--listen`: a client learns over TCP, SIGTERM drains the
        transport, the manifest lands, exit code is 143."""
        import json
        import re
        import signal

        from repro.engine import EngineClient

        man = tmp_path / "manifest.json"
        proc = self._spawn(
            ["--listen", "127.0.0.1:0", "--threads", "2", "--window", "8",
             "--manifest", str(man)],
            tmp_path,
        )
        try:
            banner = self._readline(proc.stderr)
            match = re.search(r"listening on (\S+)", banner)
            assert match, f"no listen banner in {banner!r}"
            with EngineClient(match.group(1), timeout=self.STARTUP_S) as client:
                resp = client.learn("a", max_depth=0)
                assert resp["error"] is None
                assert client.learn("a", max_depth=0)["cached"]
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=self.STARTUP_S)
            assert rc == 143
            doc = json.loads(man.read_text())
            assert doc["shutdown"]["reason"] == "signal"
            assert doc["shutdown"]["signum"] == int(signal.SIGTERM)
            assert doc["totals"]["n_requests"] == 2
        finally:
            proc.kill()
