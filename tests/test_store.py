"""Durable engine store: warm restarts, spill tier, journal, degradation.

The store's contract is *exactness under restart*: a server pointed at an
existing ``--store`` file must answer previously-served streams with
byte-identical payloads and zero recompute, and any damage to the file
must degrade to a cold start with a warning — never a crash, never a
wrong answer.  These tests drive the contract end to end (session, batch
server, engine server, CLI-shaped streams) and unit-test each tier.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3

import numpy as np
import pytest

from repro.datasets.dataset import DiscreteDataset
from repro.engine import BatchServer, EngineServer, EngineStore, LearningSession
from repro.engine.manifest import shutdown_doc
from repro.engine.statscache import _PENDING, SufficientStatsCache
from repro.engine.store import (
    STORE_VERSION,
    ManifestJournal,
    SpillTier,
    StoreDB,
    journal_runs,
    new_run_id,
)


def _make_data(seed: int = 0, n: int = 400, k: int = 6) -> DiscreteDataset:
    rng = np.random.default_rng(seed)
    cols = [rng.integers(0, 2, n)]
    for _ in range(k - 1):
        cols.append((cols[-1] + rng.integers(0, 2, n)) % 2)
    return DiscreteDataset.from_rows(
        np.stack(cols, axis=1), names=[f"v{i}" for i in range(k)]
    )


def _mixed_requests() -> list[dict]:
    """Learns, blankets, a repeat and two error shapes — one stream."""
    return [
        {"op": "learn"},
        {"op": "blanket", "target": "v1"},
        {"op": "learn", "alpha": 0.01},
        {"op": "learn"},  # repeat -> result-cache hit
        {"op": "bogus"},  # unknown op -> error response
        {"op": "blanket", "target": "nope"},  # unknown target -> error
    ]


def _payload_bytes(responses: list[dict]) -> list[str]:
    return [json.dumps(r["result"]) for r in responses]


# --------------------------------------------------------------------- #
# StoreDB substrate
# --------------------------------------------------------------------- #
class TestStoreDB:
    def test_creates_schema_and_version(self, tmp_path):
        db = StoreDB(tmp_path / "s.sqlite")
        assert db.active
        assert db.scalar("SELECT value FROM meta WHERE key='store_version'") == str(
            STORE_VERSION
        )
        tables = {
            row[0]
            for row in db.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        assert {"meta", "results", "skeletons", "spill", "journal"} <= tables
        db.close()
        assert not db.active

    def test_rows_survive_reopen(self, tmp_path):
        path = tmp_path / "s.sqlite"
        db = StoreDB(path)
        db.execute(
            "INSERT INTO results VALUES (?,?,?,?,?)", ("fp", "ds", "learn", "{}", 0.0)
        )
        db.close()
        db2 = StoreDB(path)
        assert db2.scalar("SELECT COUNT(*) FROM results") == 1
        db2.close()

    def test_garbage_file_degrades_to_cold_start(self, tmp_path):
        path = tmp_path / "s.sqlite"
        path.write_bytes(b"this is not a sqlite database" * 100)
        with pytest.warns(RuntimeWarning, match="unusable"):
            db = StoreDB(path)
        # Fresh DB in place, broken bytes sidestepped — cold, not dead.
        assert db.active
        assert db.sidestepped == str(path) + ".corrupt"
        assert os.path.exists(db.sidestepped)
        assert db.scalar("SELECT COUNT(*) FROM results") == 0
        db.close()

    def test_truncated_db_degrades_to_cold_start(self, tmp_path):
        path = tmp_path / "s.sqlite"
        db = StoreDB(path)
        for i in range(50):
            db.execute(
                "INSERT INTO results VALUES (?,?,?,?,?)",
                (f"fp{i}", "ds", "learn", json.dumps({"i": i, "pad": "x" * 500}), 0.0),
            )
        db.close()
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])
        with pytest.warns(RuntimeWarning, match="unusable"):
            db2 = StoreDB(path)
        assert db2.active
        assert db2.scalar("SELECT COUNT(*) FROM results", default=0) == 0
        db2.close()

    def test_version_skew_sidesteps(self, tmp_path):
        path = tmp_path / "s.sqlite"
        db = StoreDB(path)
        db.execute("UPDATE meta SET value='999' WHERE key='store_version'")
        db.close()
        with pytest.warns(RuntimeWarning, match="store version 999"):
            db2 = StoreDB(path)
        assert db2.active
        assert db2.scalar(
            "SELECT value FROM meta WHERE key='store_version'"
        ) == str(STORE_VERSION)
        db2.close()

    def test_runtime_error_disables_not_raises(self, tmp_path):
        db = StoreDB(tmp_path / "s.sqlite")
        with pytest.warns(RuntimeWarning, match="failed mid-run"):
            rows = db.execute("SELECT * FROM no_such_table")
        assert rows == []
        assert db.n_io_errors == 1
        assert not db.active
        # Every later call is a cheap no-op.
        assert db.execute("SELECT COUNT(*) FROM results") == []
        db.close()


# --------------------------------------------------------------------- #
# EngineStore facade
# --------------------------------------------------------------------- #
class TestEngineStore:
    def test_result_roundtrip_preserves_bytes(self, tmp_path):
        store = EngineStore(tmp_path / "s.sqlite")
        payload = {"b": 1, "a": [1, 2, {"z": None}], "n": "text"}
        store.put_result("fp1", "ds", "learn", payload)
        got = store.get_result("fp1")
        # Byte-identical JSON, key order included.
        assert json.dumps(got) == json.dumps(payload)
        assert store.result_hits == 1 and store.result_puts == 1
        assert store.get_result("missing") is None
        assert store.result_misses == 1
        store.close()

    def test_skeleton_roundtrip(self, tmp_path):
        store = EngineStore(tmp_path / "s.sqlite")
        obj = ({"edges": [(0, 1)]}, [frozenset({2})], {"n_tests": 7})
        store.put_skeleton("k1", "ds", "cfg", obj)
        assert store.get_skeleton("k1") == obj
        assert store.get_skeleton("k2") is None
        assert store.skeleton_hits == 1 and store.skeleton_misses == 1
        store.close()

    def test_undecodable_blob_reads_as_miss_and_drops(self, tmp_path):
        store = EngineStore(tmp_path / "s.sqlite")
        store.db.execute(
            "INSERT INTO skeletons VALUES (?,?,?,?,?)",
            ("bad", "ds", "cfg", b"\x80garbage", 0.0),
        )
        assert store.get_skeleton("bad") is None
        assert store.n_blob_errors == 1
        assert store.counts()["skeletons"] == 0  # dropped, cold for this key only
        store.db.execute(
            "INSERT INTO results VALUES (?,?,?,?,?)",
            ("badjson", "ds", "learn", "{not json", 0.0),
        )
        assert store.get_result("badjson") is None
        assert store.n_blob_errors == 2
        store.close()

    def test_stats_shape(self, tmp_path):
        store = EngineStore(tmp_path / "s.sqlite")
        store.put_result("fp", "ds", "learn", {"x": 1})
        st = store.stats()
        assert st["active"] and st["version"] == STORE_VERSION
        assert st["rows"]["results"] == 1
        assert st["results"]["puts"] == 1
        assert st["io_errors"] == 0 and st["blob_errors"] == 0
        store.close()

    def test_ensure_coercion(self, tmp_path):
        assert EngineStore.ensure(None) is None
        store = EngineStore.ensure(str(tmp_path / "s.sqlite"))
        assert isinstance(store, EngineStore)
        assert EngineStore.ensure(store) is store
        store.close()


# --------------------------------------------------------------------- #
# spill tier
# --------------------------------------------------------------------- #
class TestSpillTier:
    def test_roundtrip_and_index_reload(self, tmp_path):
        db = StoreDB(tmp_path / "s.sqlite")
        tier = SpillTier(db, "fp", max_bytes=1 << 20)
        value = np.arange(6)
        assert tier.put((1, 2), value, 48, "table", frozenset({1, 2}), (2, 3), True)
        assert tier.has((1, 2)) and not tier.has((9,))
        got = tier.get((1, 2))
        assert got is not None
        v, nbytes, kind, varset, dims, dense = got
        assert list(v) == list(value) and nbytes == 48 and kind == "table"
        assert varset == frozenset({1, 2}) and dims == (2, 3) and dense
        # A fresh tier over the same DB sees the same keys (restart warmth).
        tier2 = SpillTier(db, "fp", max_bytes=1 << 20)
        assert tier2.has((1, 2)) and tier2.current_bytes == 48
        db.close()

    def test_budget_evicts_lru(self, tmp_path):
        db = StoreDB(tmp_path / "s.sqlite")
        tier = SpillTier(db, "fp", max_bytes=200)
        for i in range(5):
            tier.put(("k", i), i, 64, "table", None, (), True)
        assert tier.current_bytes <= 200
        assert not tier.has(("k", 0))  # oldest demoted off the end
        assert tier.has(("k", 4))
        # Oversized entries are refused outright.
        assert not tier.put("big", 0, 10_000, "table", None, (), True)
        db.close()

    def test_damaged_row_reads_as_miss(self, tmp_path):
        db = StoreDB(tmp_path / "s.sqlite")
        tier = SpillTier(db, "fp", max_bytes=1 << 20)
        tier.put("k", 1, 8, "table", None, (), True)
        db.execute(
            "UPDATE spill SET blob=? WHERE dataset_fp='fp'", (b"\x80broken",)
        )
        assert tier.get("k") is None
        assert not tier.has("k")  # dropped from the index too
        db.close()

    def test_namespaced_by_dataset(self, tmp_path):
        db = StoreDB(tmp_path / "s.sqlite")
        a = SpillTier(db, "fpA", max_bytes=1 << 20)
        b = SpillTier(db, "fpB", max_bytes=1 << 20)
        a.put("k", "from-a", 8, "table", None, (), True)
        assert not b.has("k")
        assert b.get("k") is None
        db.close()


class TestStatsCacheSpill:
    def test_evictions_demote_and_lookups_promote(self, tmp_path):
        store = EngineStore(tmp_path / "s.sqlite")
        cache = SufficientStatsCache(max_bytes=256, spill=store.spill_tier("fp"))
        for i in range(10):
            cache.put(("k", i), np.arange(8) + i, 64, "table", frozenset({i}), (8,), True)
        st = cache.stats()
        assert st.spill_enabled and st.spill_stores > 0
        # The demoted entry comes back bit-identical and counts as a hit.
        entry = cache.get(("k", 0))
        assert entry is not None and list(entry.value) == list(np.arange(8))
        st = cache.stats()
        assert st.spill_hits == 1 and st.spill_promotes == 1
        assert cache.hits == 1
        doc = st.as_dict()
        assert doc["spill"]["stores"] == st.spill_stores
        store.close()

    def test_pending_reservations_never_spill(self, tmp_path):
        store = EngineStore(tmp_path / "s.sqlite")
        cache = SufficientStatsCache(max_bytes=128, spill=store.spill_tier("fp"))
        cache.put("pending", (_PENDING, "slot"), 64, "table", None, (), True)
        cache.put("real-a", 1, 64, "table", None, (), True)
        cache.put("real-b", 2, 64, "table", None, (), True)  # evicts "pending"
        assert cache.get("pending", count=False) is None
        assert not store.spill_tier("fp").has("pending")
        store.close()

    def test_no_spill_means_no_spill_block(self):
        cache = SufficientStatsCache(max_bytes=128)
        doc = cache.stats().as_dict()
        assert "spill" not in doc

    def test_workers_drop_the_spill_handle(self, tmp_path):
        store = EngineStore(tmp_path / "s.sqlite")
        cache = SufficientStatsCache(max_bytes=256, spill=store.spill_tier("fp"))
        clone = pickle.loads(pickle.dumps(cache))
        assert clone._spill is None  # SQLite handles never cross a fork/pickle
        store.close()


# --------------------------------------------------------------------- #
# warm restarts: session + batch server
# --------------------------------------------------------------------- #
class TestWarmRestart:
    def test_batch_stream_byte_identical_after_restart(self, tmp_path):
        path = tmp_path / "store.sqlite"
        data = _make_data()
        reqs = _mixed_requests()
        with LearningSession(data, store=str(path)) as s1:
            srv1 = BatchServer(s1)
            cold = srv1.serve(reqs)
            assert srv1.n_store_hits == 0
            assert s1.n_skeleton_learns > 0
        with LearningSession(data, store=str(path)) as s2:
            srv2 = BatchServer(s2)
            warm = srv2.serve(reqs)
            # Byte-identical payloads, every valid request served cached.
            assert _payload_bytes(cold) == _payload_bytes(warm)
            for resp in warm:
                if resp["error"] is None:
                    assert resp["cached"] is True
            assert srv2.n_store_hits > 0
            assert srv2.n_computed == 0
            assert s2.n_skeleton_learns == 0
            store_block = srv2.stats()["store"]
            assert store_block["n_store_result_hits"] == srv2.n_store_hits

    def test_restart_never_relearns_skeleton(self, tmp_path, monkeypatch):
        path = tmp_path / "store.sqlite"
        data = _make_data()
        with LearningSession(data, store=str(path)) as s1:
            first = s1.learn()
        # The warm process must never reach the skeleton learner at all.
        import repro.engine.session as session_mod

        def _boom(*a, **k):  # pragma: no cover - failure path
            raise AssertionError("skeleton recomputed on warm restart")

        monkeypatch.setattr(session_mod, "learn_skeleton", _boom)
        with LearningSession(data, store=str(path)) as s2:
            second = s2.learn()
            assert s2.n_skeleton_loads == 1 and s2.n_skeleton_learns == 0
            # And the warm skeleton orients to the same graph.
            assert sorted(second.cpdag.directed_edges()) == sorted(
                first.cpdag.directed_edges()
            )
            assert sorted(second.cpdag.undirected_edges()) == sorted(
                first.cpdag.undirected_edges()
            )
            # Orientation parameters still run live off the stored skeleton.
            s2.learn(apply_r4=True)
            assert s2.n_skeleton_loads == 2 and s2.n_skeleton_learns == 0

    def test_skeleton_key_separates_configs(self, tmp_path):
        path = tmp_path / "store.sqlite"
        data = _make_data()
        with LearningSession(data, store=str(path)) as s1:
            s1.learn()
        # Different alpha -> different skeleton fingerprint -> relearn.
        with LearningSession(data, store=str(path)) as s2:
            s2.learn(alpha=0.01)
            assert s2.n_skeleton_learns == 1 and s2.n_skeleton_loads == 0
        # Different dataset -> nothing shared.
        with LearningSession(_make_data(seed=9), store=str(path)) as s3:
            s3.learn()
            assert s3.n_skeleton_learns == 1 and s3.n_skeleton_loads == 0

    def test_corrupt_store_serves_cold_with_warning(self, tmp_path):
        path = tmp_path / "store.sqlite"
        path.write_bytes(b"garbage" * 64)
        data = _make_data()
        with pytest.warns(RuntimeWarning, match="unusable"):
            with LearningSession(data, store=str(path)) as s:
                srv = BatchServer(s)
                responses = srv.serve(_mixed_requests())
        valid = [r for r in responses if r["error"] is None]
        assert len(valid) == 4
        assert s.n_skeleton_learns > 0  # genuinely cold

    def test_session_without_store_unchanged(self):
        data = _make_data()
        with LearningSession(data) as s:
            srv = BatchServer(s)
            srv.serve(_mixed_requests())
            assert s.store is None
            assert "store" not in srv.stats()


# --------------------------------------------------------------------- #
# EngineServer: shared store, eviction revival, restart
# --------------------------------------------------------------------- #
class TestEngineServerStore:
    def test_evicted_session_revives_warm(self, tmp_path):
        """Regression: LRU eviction used to discard the result cache for
        good — with a store, re-touching the dataset must serve the repeat
        request as ``cached: true``."""
        reqs = [{"op": "learn", "dataset": "d1"}]
        with EngineServer(store=str(tmp_path / "s.sqlite"), max_sessions=1) as es:
            es.register("d1", _make_data(seed=0))
            es.register("d2", _make_data(seed=1))
            first = es.serve(reqs)
            assert first[0]["cached"] is False
            es.serve([{"op": "learn", "dataset": "d2"}])  # evicts d1
            assert es.n_evictions >= 1
            again = es.serve(reqs)
            assert again[0]["cached"] is True
            assert json.dumps(again[0]["result"]) == json.dumps(first[0]["result"])

    def test_server_restart_byte_identical(self, tmp_path, monkeypatch):
        path = tmp_path / "s.sqlite"
        reqs = [
            {"op": "learn", "dataset": "d1"},
            {"op": "blanket", "dataset": "d1", "target": "v0"},
            {"op": "learn", "dataset": "d2", "alpha": 0.01},
            {"op": "learn", "dataset": "d1"},
        ]
        with EngineServer(store=str(path)) as es1:
            es1.register("d1", _make_data(seed=0))
            es1.register("d2", _make_data(seed=1))
            cold = es1.serve(reqs)
        # Restarted process: no skeleton learner, no compute — store only.
        import repro.engine.session as session_mod

        monkeypatch.setattr(
            session_mod,
            "learn_skeleton",
            lambda *a, **k: pytest.fail("recompute on warm restart"),
        )
        with EngineServer(store=str(path)) as es2:
            es2.register("d1", _make_data(seed=0))
            es2.register("d2", _make_data(seed=1))
            warm = es2.serve(reqs)
            assert _payload_bytes(cold) == _payload_bytes(warm)
            assert all(r["cached"] for r in warm)
            st = es2.stats()
            assert st["store"]["results"]["hits"] > 0
            assert st["store"]["rows"]["results"] >= 3
        # No store -> the block is explicitly None.
        with EngineServer() as es3:
            assert es3.stats()["store"] is None

    def test_manifest_carries_run_id_and_store_path(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with EngineServer(store=str(path)) as es:
            es.register("d1", _make_data())
            es.serve([{"op": "learn", "dataset": "d1"}])
            doc = es.manifest()
            assert doc["run_id"]
            assert doc["engine"]["store"] == str(path)
        with EngineServer() as es2:
            assert es2.manifest()["run_id"] is None


# --------------------------------------------------------------------- #
# manifest journal + replay-orderable timestamps
# --------------------------------------------------------------------- #
class TestJournal:
    def test_rows_appended_per_response_in_order(self, tmp_path):
        path = tmp_path / "s.sqlite"
        data = _make_data()
        with LearningSession(data, store=str(path)) as s:
            srv = BatchServer(s)
            journal = s.store.journal()
            manifest = srv.new_manifest(journal=journal)
            srv.serve(_mixed_requests(), manifest=manifest)
            rows = journal.rows()
        assert len(rows) == len(_mixed_requests())
        assert [r["seq"] for r in rows] == list(range(len(rows)))
        for row in rows:
            assert row["kind"] == "request"
            assert row["dataset_fingerprint"]
            assert isinstance(row["t_wall"], float)
            assert isinstance(row["t_mono"], float)
        # t_mono is the replay order: strictly non-decreasing.
        monos = [r["t_mono"] for r in rows]
        assert monos == sorted(monos)

    def test_crash_mid_stream_leaves_exact_prefix(self, tmp_path):
        path = tmp_path / "s.sqlite"
        data = _make_data()
        reqs = _mixed_requests()
        with LearningSession(data, store=str(path)) as s:
            srv = BatchServer(s)
            journal = s.store.journal()
            manifest = srv.new_manifest(journal=journal)
            it = srv.serve_iter(reqs, manifest=manifest)
            next(it)
            next(it)
            run_id = journal.run_id
            # Abandon the stream (simulated crash): no manifest.write happens.
        store = EngineStore(path)
        rows = store.journal_rows(run_id)
        assert len(rows) == 2  # exactly what was served, nothing buffered
        store.close()

    def test_server_journals_across_sessions_under_one_run(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with EngineServer(store=str(path)) as es:
            es.register("d1", _make_data(seed=0))
            es.register("d2", _make_data(seed=1))
            es.serve(
                [
                    {"op": "learn", "dataset": "d1"},
                    {"op": "learn", "dataset": "d2"},
                    {"op": "learn", "dataset": "nope"},  # unrouted error
                ]
            )
            es.note_shutdown("test-shutdown", signum=None)
            run_id = es.manifest()["run_id"]
        store = EngineStore(path)
        rows = store.journal_rows(run_id)
        kinds = [r["kind"] for r in rows]
        assert kinds.count("request") == 3
        assert kinds[-1] == "shutdown"
        assert rows[-1]["reason"] == "test-shutdown"
        assert "mono_time" in rows[-1] and "unix_time" in rows[-1]
        assert journal_runs(store.db) == [(run_id, 4)]
        store.close()

    def test_resuming_a_run_id_continues_the_sequence(self, tmp_path):
        db = StoreDB(tmp_path / "s.sqlite")
        run = new_run_id()
        j1 = ManifestJournal(db, run)
        assert j1.append({"kind": "request"}) == 0
        assert j1.append({"kind": "request"}) == 1
        j2 = ManifestJournal(db, run)  # restart, same run id
        assert j2.append({"kind": "request"}) == 2
        assert [r["seq"] for r in j2.rows()] == [0, 1, 2]
        db.close()

    def test_run_ids_are_unique(self):
        ids = {new_run_id() for _ in range(100)}
        assert len(ids) == 100


class TestManifestTimestamps:
    def test_rows_carry_wall_and_mono_clocks(self):
        data = _make_data()
        with LearningSession(data) as s:
            srv = BatchServer(s)
            manifest = srv.new_manifest()
            srv.serve([{"op": "learn"}, {"op": "bogus"}], manifest=manifest)
        for row in manifest.requests:
            assert isinstance(row["t_wall"], float)
            assert isinstance(row["t_mono"], float)
        # Totals stay exact with the new fields present.
        totals = manifest.totals()
        assert totals["n_requests"] == 2
        assert totals["n_computed"] + totals["n_result_cache_hits"] + totals[
            "n_errors"
        ] == totals["n_requests"]

    def test_shutdown_doc_carries_both_clocks(self):
        doc = shutdown_doc("signal", signum=2)
        assert isinstance(doc["unix_time"], float)
        assert isinstance(doc["mono_time"], float)


# --------------------------------------------------------------------- #
# counter exactness with the store in the loop
# --------------------------------------------------------------------- #
class TestCounterExactness:
    def test_store_hits_fold_into_manifest_totals(self, tmp_path):
        path = tmp_path / "s.sqlite"
        data = _make_data()
        reqs = _mixed_requests()
        with LearningSession(data, store=str(path)) as s1:
            srv1 = BatchServer(s1)
            srv1.serve(reqs, manifest=srv1.new_manifest())
        with LearningSession(data, store=str(path)) as s2:
            srv2 = BatchServer(s2)
            manifest = srv2.new_manifest()
            srv2.serve(reqs, manifest=manifest)
            totals = manifest.totals()
            # The server-side counters and the manifest agree exactly even
            # though some "cached" responses came from disk.
            assert totals["n_result_cache_hits"] == srv2.n_result_hits
            assert totals["n_computed"] == srv2.n_computed == 0
            assert totals["n_errors"] == srv2.n_errors
            assert srv2.n_store_hits <= srv2.n_result_hits

    def test_sqlite_file_is_really_on_disk(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with LearningSession(_make_data(), store=str(path)) as s:
            BatchServer(s).serve([{"op": "learn"}])
        assert path.exists()
        with sqlite3.connect(path) as conn:
            n = conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        assert n == 1
