"""Parallel-backend tests: every granularity/backend combination must equal
the sequential result exactly."""

from __future__ import annotations

import pytest

from repro.core.learn import learn_structure
from repro.core.trace import TraceRecorder
from repro.parallel import WorkerPool, run_parallel_skeleton
from repro.parallel.sample_level import sample_level_skeleton


@pytest.fixture(scope="module")
def sequential_asia(asia_data_module):
    return learn_structure(asia_data_module)


@pytest.fixture(scope="module")
def asia_data_module():
    from repro.datasets.sampling import forward_sample
    from repro.networks.classic import asia

    return forward_sample(asia(), 4000, rng=7)


class TestEquivalence:
    @pytest.mark.parametrize("parallelism", ["ci", "edge", "sample"])
    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_matches_sequential(self, asia_data_module, sequential_asia, parallelism, backend):
        res = learn_structure(
            asia_data_module, n_jobs=2, parallelism=parallelism, backend=backend
        )
        assert sorted(res.skeleton.edges()) == sorted(sequential_asia.skeleton.edges())
        assert res.sepsets == sequential_asia.sepsets
        assert res.cpdag == sequential_asia.cpdag

    def test_ci_level_with_gs(self, asia_data_module, sequential_asia):
        res = learn_structure(asia_data_module, n_jobs=2, parallelism="ci", gs=4)
        assert sorted(res.skeleton.edges()) == sorted(sequential_asia.skeleton.edges())
        seq_gs = learn_structure(asia_data_module, gs=4)
        assert res.n_ci_tests == seq_gs.n_ci_tests

    def test_ci_level_test_count_matches_sequential(self, asia_data_module, sequential_asia):
        res = learn_structure(asia_data_module, n_jobs=3, parallelism="ci")
        assert res.n_ci_tests == sequential_asia.n_ci_tests

    def test_sample_level_test_count(self, asia_data_module, sequential_asia):
        res = learn_structure(asia_data_module, n_jobs=2, parallelism="sample", backend="thread")
        assert res.n_ci_tests == sequential_asia.n_ci_tests

    def test_single_worker_pool(self, asia_data_module, sequential_asia):
        res = learn_structure(asia_data_module, n_jobs=1, parallelism="ci")
        # n_jobs=1 uses the sequential engine (dispatch shortcut)
        assert res.cpdag == sequential_asia.cpdag


class TestWorkerPool:
    def test_invalid_backend(self, asia_data_module):
        with pytest.raises(ValueError):
            WorkerPool(asia_data_module, 2, backend="gpu")

    def test_invalid_jobs(self, asia_data_module):
        with pytest.raises(ValueError):
            WorkerPool(asia_data_module, 0)

    def test_thread_pool_group_eval(self, asia_data_module):
        with WorkerPool(asia_data_module, 2, backend="thread") as pool:
            verdicts = pool.eval_groups([(0, 1, ((), (2,)))])
            assert len(verdicts) == 1
            assert len(verdicts[0]) == 2
            assert all(isinstance(v, bool) for v in verdicts[0])

    def test_thread_pool_edge_eval(self, asia_data_module):
        with WorkerPool(asia_data_module, 2, backend="thread") as pool:
            results = pool.eval_edges([(0, 1, (2, 3), (4,), 1)])
            n_exec, accepting = results[0]
            assert 1 <= n_exec <= 3
            assert accepting is None or isinstance(accepting, tuple)


class TestTraceRecording:
    def test_ci_level_records_trace(self, asia_data_module):
        rec = TraceRecorder()
        res = learn_structure(asia_data_module, n_jobs=2, parallelism="ci", recorder=rec)
        assert rec.n_tests == res.n_ci_tests

    def test_edge_level_rejects_recorder(self, asia_data_module):
        with pytest.raises(ValueError, match="trace"):
            learn_structure(
                asia_data_module, n_jobs=2, parallelism="edge", recorder=TraceRecorder()
            )

    def test_sample_level_rejects_recorder(self, asia_data_module):
        with pytest.raises(ValueError, match="trace"):
            learn_structure(
                asia_data_module, n_jobs=2, parallelism="sample", recorder=TraceRecorder()
            )


class TestSampleLevelInternals:
    def test_wrong_node_count_rejected(self, asia_data_module):
        with pytest.raises(ValueError):
            sample_level_skeleton(asia_data_module, 3, n_jobs=2, backend="thread")

    def test_invalid_backend(self, asia_data_module):
        with pytest.raises(ValueError):
            sample_level_skeleton(
                asia_data_module, asia_data_module.n_variables, n_jobs=2, backend="fpga"
            )

    def test_run_parallel_skeleton_dispatch_error(self, asia_data_module):
        with pytest.raises(ValueError):
            run_parallel_skeleton(asia_data_module, None, parallelism="warp", n_jobs=2)
