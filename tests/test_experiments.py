"""Experiment-regenerator tests on miniature workloads.

These run each experiment function on heavily scaled-down inputs and check
the paper's qualitative claims programmatically: the full-size tables live
in the benchmark suite; here we verify the machinery and directions.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    experiment_fig2,
    experiment_fig4,
    experiment_fig5,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    traced_run,
)
from repro.bench.workloads import make_workload

# Miniature settings shared by all experiment smoke-tests.
MINI_NETS = ("alarm",)
MINI_M = 800


@pytest.fixture(scope="module")
def mini_run():
    return traced_run(make_workload("alarm", MINI_M, scale=0.5))


class TestTracedRun:
    def test_calibration_matches_measurement(self, mini_run):
        assert mini_run.seq_sim.seconds == pytest.approx(
            mini_run.result.elapsed["skeleton"], rel=1e-6
        )

    def test_cached(self):
        a = traced_run(make_workload("alarm", MINI_M, scale=0.5))
        b = traced_run(make_workload("alarm", MINI_M, scale=0.5))
        assert a is b

    def test_speedup_interface(self, mini_run):
        assert mini_run.speedup("ci", 1) <= mini_run.speedup("ci", 8) * 1.5


class TestTable1:
    def test_properties_direction(self):
        out = experiment_table1(network="alarm", n_samples=MINI_M)
        imb = out.data["imbalance"]
        assert imb["edge-level"] > imb["ci-level"]
        assert out.data["atomic_ops_sample_level"] == out.data["n_tests"] * MINI_M
        assert "CI-level" in out.text


class TestTable2:
    def test_counts_match(self):
        out = experiment_table2()
        for row in out.data.values():
            assert row["paper_nodes"] == row["built_nodes"]
            assert row["paper_edges"] == row["built_edges"]


class TestTable3:
    @pytest.fixture(scope="class")
    def out(self):
        return experiment_table3(networks=("alarm",), n_samples=MINI_M, n_threads=8)

    def test_fastbns_seq_beats_bnlearn_analog(self, out):
        row = next(iter(out.data.values()))
        assert row["fastbns_seq_s"] < row["bnlearn_seq_s"]

    def test_naive_is_slowest(self, out):
        row = next(iter(out.data.values()))
        assert row["naive_seq_s"] > row["bnlearn_seq_s"]

    def test_parallel_fastbns_beats_parallel_baselines(self, out):
        row = next(iter(out.data.values()))
        assert row["fastbns_par_s"] < row["bnlearn_par_s"]
        assert row["fastbns_par_s"] < row["parallel_pc_s"]

    def test_grouping_saves_tests(self, out):
        row = next(iter(out.data.values()))
        assert row["n_tests_fast"] <= row["n_tests_ref"]


class TestTable4:
    def test_fastbns_lower_miss_rates(self):
        out = experiment_table4(networks=("alarm",), n_samples=MINI_M, n_threads=8)
        reports = next(iter(out.data.values()))
        fast_par = reports["Fast-BNS-par"]
        bn_par = reports["bnlearn-par*"]
        assert fast_par.l1_miss_rate < bn_par.l1_miss_rate
        assert fast_par.l1_accesses < bn_par.l1_accesses
        assert fast_par.cpu_utilization > 1.0  # parallel run uses > 1 core


class TestFig2:
    def test_ci_level_wins(self):
        out = experiment_fig2(networks=("alarm",), n_samples=MINI_M, threads=(4, 16))
        series = next(iter(out.data.values()))
        for i in range(2):
            assert series["CI-level"][i] <= series["Edge-level"][i]
            assert series["Edge-level"][i] < series["Sample-level"][i]


class TestFig4:
    def test_inflation_monotone_in_gs(self):
        out = experiment_fig4(networks=("alarm",), n_samples=MINI_M, group_sizes=(1, 4, 8))
        data = next(iter(out.data.values()))
        inflation = data["inflation_pct"]
        assert inflation[0] == 0.0
        assert inflation[0] <= inflation[1] <= inflation[2]
        assert data["best_gs"] in (1, 4, 8)


class TestFig5:
    def test_rows_cover_networks(self):
        out = experiment_fig5(networks=("alarm",), n_samples=MINI_M, n_threads=8)
        assert len(out.data) == 1
        entry = next(iter(out.data.values()))
        assert entry["speedup"] > 0
