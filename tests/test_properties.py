"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.citests.contingency import contingency_table, encode_columns
from repro.core.combinadic import rank_combination, unrank_combination
from repro.core.edges import EdgeTask
from repro.datasets.dataset import DiscreteDataset
from repro.graphs.dag import dag_to_cpdag, is_acyclic
from repro.graphs.separation import DSeparationOracle
from repro.graphs.undirected import UndirectedGraph
from repro.networks.generators import random_dag


# ---------------------------------------------------------------------- #
# combinadics
# ---------------------------------------------------------------------- #
@given(st.integers(0, 12), st.integers(0, 6), st.data())
def test_unrank_rank_bijection(p, q, data):
    total = comb(p, q)
    if total == 0:
        return
    r = data.draw(st.integers(0, total - 1))
    combo = unrank_combination(p, q, r)
    assert len(combo) == q
    assert all(0 <= c < p for c in combo)
    assert list(combo) == sorted(set(combo))
    assert rank_combination(p, combo) == r


@given(st.integers(1, 10), st.integers(1, 5))
def test_unrank_is_monotone_in_rank(p, q):
    total = comb(p, q)
    if total < 2:
        return
    previous = None
    for r in range(total):
        combo = unrank_combination(p, q, r)
        if previous is not None:
            assert combo > previous  # lexicographic order
        previous = combo


# ---------------------------------------------------------------------- #
# edge tasks
# ---------------------------------------------------------------------- #
@given(
    st.integers(0, 6),
    st.integers(0, 6),
    st.integers(1, 3),
    st.integers(1, 8),
)
@settings(max_examples=60)
def test_edge_task_groups_partition_all_sets(p1, p2, depth, gs):
    side1 = tuple(range(2, 2 + p1))
    side2 = tuple(range(20, 20 + p2))
    task = EdgeTask(0, 1, side1, side2, depth)
    collected = []
    while not task.done:
        group = task.next_group(gs)
        task.advance(len(group))
        collected.extend(group)
    expected = [tuple(side1[i] for i in c) for c in combinations(range(p1), depth)]
    expected += [tuple(side2[i] for i in c) for c in combinations(range(p2), depth)]
    assert collected == expected
    assert len(collected) == task.total_tests


# ---------------------------------------------------------------------- #
# dataset encoding / contingency counts
# ---------------------------------------------------------------------- #
@st.composite
def discrete_rows(draw):
    n_vars = draw(st.integers(2, 5))
    arities = [draw(st.integers(2, 4)) for _ in range(n_vars)]
    m = draw(st.integers(1, 60))
    rows = [[draw(st.integers(0, a - 1)) for a in arities] for _ in range(m)]
    return np.array(rows, dtype=np.int64), arities


@given(discrete_rows())
@settings(max_examples=40)
def test_layout_roundtrip_property(data):
    rows, arities = data
    vm = DiscreteDataset.from_rows(rows, arities=arities, layout="variable-major")
    sm = DiscreteDataset.from_rows(rows, arities=arities, layout="sample-major")
    np.testing.assert_array_equal(vm.as_rows(), sm.as_rows())
    for i in range(len(arities)):
        np.testing.assert_array_equal(vm.column(i), sm.column(i))


@given(discrete_rows(), st.data())
@settings(max_examples=40, deadline=None)
def test_layouts_identical_through_batched_kernel(data, draw):
    """Sample-major and variable-major layouts produce bit-identical
    results through the batched group kernel and a shared
    :class:`EncodedDataset` (and both equal the looped reference)."""
    from repro.citests.gsquare import GSquareTest
    from repro.datasets.encoded import EncodedDataset

    rows, arities = data
    n_vars = len(arities)
    x = draw.draw(st.integers(0, n_vars - 1))
    y = draw.draw(st.integers(0, n_vars - 1).filter(lambda v: v != x))
    pool = [v for v in range(n_vars) if v not in (x, y)]
    sets = []
    for _ in range(draw.draw(st.integers(2, 5))):
        size = draw.draw(st.integers(0, len(pool)))
        subset = draw.draw(st.permutations(pool))[:size] if pool else []
        sets.append(tuple(sorted(subset)))

    outcomes = []
    for layout in ("variable-major", "sample-major"):
        ds = DiscreteDataset.from_rows(rows, arities=arities, layout=layout)
        encoded = EncodedDataset(ds)
        for batch in (True, False):
            tester = GSquareTest(ds, encoded=encoded, batch_groups=batch)
            res = tester.test_group(x, y, sets)
            outcomes.append([(r.statistic, r.dof, r.p_value, r.independent) for r in res])
    reference = outcomes[0]
    for other in outcomes[1:]:
        assert other == reference  # bitwise equality across layouts and paths


@given(discrete_rows())
@settings(max_examples=40)
def test_encode_columns_injective(data):
    rows, arities = data
    ds = DiscreteDataset.from_rows(rows, arities=arities)
    cols = ds.columns(range(len(arities)))
    codes, n_cfg = encode_columns(cols, list(arities))
    assert codes.max(initial=0) < n_cfg
    # Decoding by repeated divmod must reproduce the original columns.
    decoded = np.zeros_like(rows)
    rem = codes.copy()
    for j in range(len(arities) - 1, -1, -1):
        decoded[:, j] = rem % arities[j]
        rem //= arities[j]
    np.testing.assert_array_equal(decoded, rows)


@given(discrete_rows())
@settings(max_examples=30)
def test_contingency_total_is_sample_count(data):
    rows, arities = data
    ds = DiscreteDataset.from_rows(rows, arities=arities)
    x, y = 0, 1
    zs = list(range(2, len(arities)))
    counts, _ = contingency_table(
        ds.column(x),
        ds.column(y),
        ds.columns(zs),
        arities[x],
        arities[y],
        [arities[z] for z in zs],
    )
    assert counts.sum() == ds.n_samples


# ---------------------------------------------------------------------- #
# graphs
# ---------------------------------------------------------------------- #
@given(st.integers(2, 10), st.data())
@settings(max_examples=40)
def test_random_dag_properties(n, data):
    max_edges = n * (n - 1) // 2
    e = data.draw(st.integers(0, min(max_edges, 3 * n)))
    seed = data.draw(st.integers(0, 2**31 - 1))
    edges = random_dag(n, e, rng=seed, max_parents=None)
    assert len(edges) == e
    assert is_acyclic(n, edges)


@given(st.integers(2, 9), st.data())
@settings(max_examples=30)
def test_dseparation_symmetry_property(n, data):
    e = data.draw(st.integers(0, min(n * (n - 1) // 2, 2 * n)))
    seed = data.draw(st.integers(0, 2**31 - 1))
    edges = random_dag(n, e, rng=seed, max_parents=None)
    oracle = DSeparationOracle(n, edges)
    x = data.draw(st.integers(0, n - 1))
    y = data.draw(st.integers(0, n - 1))
    if x == y:
        return
    pool = [v for v in range(n) if v not in (x, y)]
    z = data.draw(st.sets(st.sampled_from(pool), max_size=len(pool)) if pool else st.just(set()))
    assert oracle.query(x, y, z) == oracle.query(y, x, z)


@given(st.integers(2, 9), st.data())
@settings(max_examples=30)
def test_cpdag_skeleton_preserved_property(n, data):
    e = data.draw(st.integers(0, min(n * (n - 1) // 2, 2 * n)))
    seed = data.draw(st.integers(0, 2**31 - 1))
    edges = random_dag(n, e, rng=seed, max_parents=None)
    cpdag = dag_to_cpdag(n, edges)
    assert cpdag.skeleton_edges() == {(min(u, v), max(u, v)) for u, v in edges}
    # Directed CPDAG edges agree with the DAG's orientation.
    for u, v in cpdag.directed_edges():
        assert (u, v) in edges


@given(st.integers(1, 8))
def test_complete_graph_edge_count(n):
    g = UndirectedGraph.complete(n)
    assert g.n_edges == n * (n - 1) // 2
    assert len(list(g.edges())) == g.n_edges


# ---------------------------------------------------------------------- #
# end-to-end: oracle PC-stable recovers the CPDAG, any gs / grouping
# ---------------------------------------------------------------------- #
@given(st.integers(4, 9), st.data())
@settings(max_examples=25, deadline=None)
def test_oracle_pc_recovers_cpdag_property(n, data):
    from repro.citests.oracle import OracleCITest
    from repro.core.orientation import orient_skeleton
    from repro.core.skeleton import learn_skeleton

    e = data.draw(st.integers(0, min(n * (n - 1) // 2, 2 * n)))
    seed = data.draw(st.integers(0, 2**31 - 1))
    gs = data.draw(st.sampled_from([1, 2, 4, 7]))
    grouped = data.draw(st.booleans())
    edges = random_dag(n, e, rng=seed, max_parents=None)
    tester = OracleCITest(n, edges)
    graph, sepsets, _ = learn_skeleton(tester, n, gs=gs, group_endpoints=grouped)
    cpdag = orient_skeleton(graph, sepsets)
    assert cpdag == dag_to_cpdag(n, edges)
