"""Combination unranking tests (vs itertools ground truth)."""

from __future__ import annotations

from itertools import combinations
from math import comb

import pytest

from repro.core.combinadic import (
    iter_combination_indices,
    rank_combination,
    unrank_combination,
)


class TestUnrank:
    @pytest.mark.parametrize("p,q", [(5, 2), (6, 3), (8, 1), (7, 0), (4, 4), (10, 4)])
    def test_matches_itertools_everywhere(self, p, q):
        expected = list(combinations(range(p), q))
        got = [unrank_combination(p, q, r) for r in range(comb(p, q))]
        assert got == expected

    def test_rank_zero_is_prefix(self):
        assert unrank_combination(9, 3, 0) == (0, 1, 2)

    def test_last_rank_is_suffix(self):
        assert unrank_combination(9, 3, comb(9, 3) - 1) == (6, 7, 8)

    def test_empty_combination(self):
        assert unrank_combination(5, 0, 0) == ()
        assert unrank_combination(0, 0, 0) == ()

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            unrank_combination(5, 2, comb(5, 2))
        with pytest.raises(ValueError):
            unrank_combination(5, 2, -1)
        with pytest.raises(ValueError):
            unrank_combination(-1, 0, 0)

    def test_q_exceeds_p_has_no_ranks(self):
        with pytest.raises(ValueError):
            unrank_combination(3, 5, 0)  # C(3,5) = 0, rank 0 invalid


class TestRank:
    @pytest.mark.parametrize("p,q", [(6, 2), (7, 3), (5, 5)])
    def test_inverse_of_unrank(self, p, q):
        for r in range(comb(p, q)):
            assert rank_combination(p, unrank_combination(p, q, r)) == r

    def test_invalid_combination_rejected(self):
        with pytest.raises(ValueError):
            rank_combination(5, (2, 2))  # not strictly increasing
        with pytest.raises(ValueError):
            rank_combination(5, (1, 7))  # out of range


class TestIterator:
    @pytest.mark.parametrize("p,q,start,count", [(8, 3, 0, 10), (8, 3, 20, 30), (6, 2, 14, 5)])
    def test_yields_consecutive_ranks(self, p, q, start, count):
        expected = list(combinations(range(p), q))[start : start + count]
        got = list(iter_combination_indices(p, q, start, count))
        assert got == expected

    def test_count_clamped_at_end(self):
        total = comb(5, 2)
        got = list(iter_combination_indices(5, 2, total - 2, 100))
        assert len(got) == 2

    def test_zero_count(self):
        assert list(iter_combination_indices(5, 2, 0, 0)) == []

    def test_invalid_start(self):
        with pytest.raises(ValueError):
            list(iter_combination_indices(5, 2, comb(5, 2), 1))

    def test_depth_zero_group(self):
        assert list(iter_combination_indices(4, 0, 0, 3)) == [()]
