"""EdgeTask, WorkPool and SepSetStore tests."""

from __future__ import annotations

from math import comb

import pytest

from repro.core.edges import EdgeTask
from repro.core.sepsets import SepSetStore
from repro.core.workpool import WorkPool


class TestEdgeTask:
    def test_counts(self):
        t = EdgeTask(0, 1, side1=(2, 3, 4), side2=(5, 6), depth=2)
        assert t.c1 == comb(3, 2)
        assert t.c2 == comb(2, 2)
        assert t.total_tests == 4
        assert t.remaining == 4
        assert not t.done

    def test_depth_zero_single_marginal(self):
        t = EdgeTask(0, 1, side1=(2, 3), side2=(4,), depth=0)
        assert t.total_tests == 1
        assert t.conditioning_set(0) == ()

    def test_conditioning_sets_span_both_sides(self):
        t = EdgeTask(0, 1, side1=(2, 3, 4), side2=(5, 6), depth=2)
        sets = [t.conditioning_set(r) for r in range(t.total_tests)]
        assert sets == [(2, 3), (2, 4), (3, 4), (5, 6)]

    def test_conditioning_set_out_of_range(self):
        t = EdgeTask(0, 1, side1=(2, 3), side2=(), depth=1)
        with pytest.raises(ValueError):
            t.conditioning_set(2)

    def test_next_group_advances_nothing(self):
        t = EdgeTask(0, 1, side1=(2, 3, 4), side2=(5, 6), depth=2)
        group = t.next_group(3)
        assert group == [(2, 3), (2, 4), (3, 4)]
        assert t.progress == 0  # caller advances explicitly
        t.advance(3)
        assert t.next_group(5) == [(5, 6)]

    def test_group_crossing_side_boundary(self):
        t = EdgeTask(0, 1, side1=(2, 3, 4), side2=(5, 6), depth=2)
        t.advance(2)
        assert t.next_group(2) == [(3, 4), (5, 6)]

    def test_advance_overflow(self):
        t = EdgeTask(0, 1, side1=(2,), side2=(), depth=1)
        with pytest.raises(ValueError):
            t.advance(2)

    def test_materialised_sets(self):
        t = EdgeTask(0, 1, side1=(2, 3), side2=(4, 5), depth=1)
        assert t.materialised_sets() == [(2,), (3,), (4,), (5,)]

    def test_empty_sides_no_work_at_depth(self):
        t = EdgeTask(0, 1, side1=(), side2=(), depth=1)
        assert t.total_tests == 0
        assert t.done

    def test_endpoint_order_enforced(self):
        with pytest.raises(ValueError):
            EdgeTask(2, 1, side1=(), side2=(), depth=0)
        with pytest.raises(ValueError):
            EdgeTask(1, 1, side1=(), side2=(), depth=0)

    def test_group_size_validation(self):
        t = EdgeTask(0, 1, side1=(2,), side2=(), depth=1)
        with pytest.raises(ValueError):
            t.next_group(0)


class TestWorkPool:
    def make_task(self, u=0, v=1):
        return EdgeTask(u, v, side1=(2, 3), side2=(), depth=1)

    def test_lifo_order(self):
        pool = WorkPool()
        a, b = self.make_task(0, 1), self.make_task(0, 2)
        pool.push(a)
        pool.push(b)
        assert pool.pop() is b
        assert pool.pop() is a

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            WorkPool().pop()

    def test_pop_many(self):
        pool = WorkPool()
        tasks = [self.make_task(0, i) for i in range(1, 6)]
        for t in tasks:
            pool.push(t)
        got = pool.pop_many(3)
        assert got == tasks[-1:-4:-1]
        assert len(pool) == 2

    def test_pop_many_drains(self):
        pool = WorkPool()
        pool.push(self.make_task())
        assert len(pool.pop_many(10)) == 1
        assert not pool

    def test_pop_many_validates(self):
        with pytest.raises(ValueError):
            WorkPool().pop_many(0)

    def test_statistics(self):
        pool = WorkPool()
        pool.push(self.make_task())
        pool.pop()
        pool.push(self.make_task())
        assert pool.n_pushes == 2
        assert pool.n_pops == 1


class TestSepSetStore:
    def test_record_and_get_unordered(self):
        s = SepSetStore()
        s.record(3, 1, (5, 2))
        assert s.get(1, 3) == (2, 5)  # sorted, unordered key
        assert s.get(3, 1) == (2, 5)
        assert s.contains(1, 3)

    def test_missing_pair(self):
        s = SepSetStore()
        assert s.get(0, 1) is None
        assert not s.contains(0, 1)

    def test_separates_with(self):
        s = SepSetStore()
        s.record(0, 1, (4,))
        assert s.separates_with(0, 1, 4)
        assert not s.separates_with(0, 1, 5)
        assert not s.separates_with(0, 2, 4)

    def test_empty_sepset_recorded(self):
        s = SepSetStore()
        s.record(0, 1, ())
        assert s.contains(0, 1)
        assert s.get(0, 1) == ()

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError):
            SepSetStore().record(1, 1, ())

    def test_len_and_equality(self):
        a = SepSetStore()
        b = SepSetStore()
        a.record(0, 1, (2,))
        assert len(a) == 1
        assert a != b
        b.record(1, 0, (2,))
        assert a == b

    def test_overwrite_keeps_latest(self):
        s = SepSetStore()
        s.record(0, 1, (2,))
        s.record(0, 1, (3,))
        assert s.get(0, 1) == (3,)
