"""Score-based learning tests: decomposable scores and hill climbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.sampling import forward_sample
from repro.graphs.dag import is_acyclic, v_structures_of_dag
from repro.graphs.metrics import skeleton_metrics
from repro.networks.classic import cancer, sprinkler
from repro.networks.fit import fit_cpts, log_likelihood
from repro.score.hillclimb import hill_climb
from repro.score.scores import AICScore, BDeuScore, BICScore, LogLikelihoodScore


@pytest.fixture(scope="module")
def sprinkler_sample():
    # Large enough that greedy search reliably reaches the generating
    # equivalence class (at smaller m the BIC optimum can differ).
    return forward_sample(sprinkler(), 20000, rng=0)


class TestScores:
    def test_loglik_score_matches_fitted_likelihood(self, sprinkler_sample):
        data = sprinkler_sample
        net = sprinkler()
        score = LogLikelihoodScore(data)
        total = score.total_score([net.parents(i) for i in range(4)])
        fitted = fit_cpts(4, net.edges(), data, pseudo_count=0.0)
        assert total == pytest.approx(log_likelihood(fitted, data), rel=1e-9)

    def test_loglik_monotone_in_parents(self, sprinkler_sample):
        score = LogLikelihoodScore(sprinkler_sample)
        assert score.local_score(3, (1, 2)) >= score.local_score(3, (1,))
        assert score.local_score(3, (1,)) >= score.local_score(3, ())

    def test_bic_penalises_parameters(self, sprinkler_sample):
        ll = LogLikelihoodScore(sprinkler_sample)
        bic = BICScore(sprinkler_sample)
        gap0 = ll.local_score(3, ()) - bic.local_score(3, ())
        gap2 = ll.local_score(3, (1, 2)) - bic.local_score(3, (1, 2))
        assert gap2 > gap0  # more parents, bigger penalty

    def test_bic_prefers_true_parents_of_wetgrass(self, sprinkler_sample):
        bic = BICScore(sprinkler_sample)
        true_score = bic.local_score(3, (1, 2))
        assert true_score > bic.local_score(3, ())
        assert true_score > bic.local_score(3, (0,))

    def test_aic_between_ll_and_bic_for_large_m(self, sprinkler_sample):
        # log(m)/2 > 1 for m > e^2, so BIC penalises harder than AIC.
        aic = AICScore(sprinkler_sample)
        bic = BICScore(sprinkler_sample)
        ll = LogLikelihoodScore(sprinkler_sample)
        s_aic = aic.local_score(3, (1, 2))
        s_bic = bic.local_score(3, (1, 2))
        s_ll = ll.local_score(3, (1, 2))
        assert s_bic < s_aic < s_ll

    def test_bdeu_score_equivalence_of_markov_equivalent_dags(self, sprinkler_sample):
        """BDeu is score-equivalent: Markov-equivalent DAGs score equally."""
        bdeu = BDeuScore(sprinkler_sample, equivalent_sample_size=10.0)
        # Sprinkler's true DAG vs the equivalent DAG reversing Cloudy edges.
        dag_a = [(0, 1), (0, 2), (1, 3), (2, 3)]
        dag_b = [(1, 0), (0, 2), (1, 3), (2, 3)]  # same skeleton & v-structure
        assert v_structures_of_dag(4, dag_a) == v_structures_of_dag(4, dag_b)

        def total(edges):
            parents = [[] for _ in range(4)]
            for u, v in edges:
                parents[v].append(u)
            return bdeu.total_score(parents)

        assert total(dag_a) == pytest.approx(total(dag_b), rel=1e-9)

    def test_bdeu_invalid_ess(self, sprinkler_sample):
        with pytest.raises(ValueError):
            BDeuScore(sprinkler_sample, equivalent_sample_size=0)

    def test_cache_hits(self, sprinkler_sample):
        score = BICScore(sprinkler_sample)
        score.local_score(0, (1,))
        before = score.n_evaluations
        score.local_score(0, (1,))
        assert score.n_evaluations == before
        assert score.cache_size() >= 1

    def test_parent_order_irrelevant(self, sprinkler_sample):
        score = BICScore(sprinkler_sample)
        assert score.local_score(3, (2, 1)) == score.local_score(3, (1, 2))


class TestHillClimb:
    def test_recovers_sprinkler_equivalence_class(self, sprinkler_sample):
        res = hill_climb(sprinkler_sample, score="bic")
        net = sprinkler()
        assert skeleton_metrics(res.edges, net.edges()).f1 == 1.0
        assert v_structures_of_dag(4, res.edges) == v_structures_of_dag(4, net.edges())

    def test_result_is_dag(self, sprinkler_sample):
        res = hill_climb(sprinkler_sample, score="bdeu")
        assert is_acyclic(sprinkler_sample.n_variables, res.edges)

    def test_score_trace_monotone(self, sprinkler_sample):
        res = hill_climb(sprinkler_sample)
        assert all(b > a for a, b in zip(res.score_trace, res.score_trace[1:], strict=False))

    def test_max_parents_respected(self):
        data = forward_sample(cancer(), 4000, rng=1)
        res = hill_climb(data, max_parents=1)
        indeg = np.zeros(data.n_variables, dtype=int)
        for _, v in res.edges:
            indeg[v] += 1
        assert indeg.max() <= 1

    def test_restarts_never_worse(self, sprinkler_sample):
        base = hill_climb(sprinkler_sample, random_restarts=0)
        restarted = hill_climb(sprinkler_sample, random_restarts=2, rng=1)
        assert restarted.score >= base.score - 1e-9
        assert restarted.n_restarts_used == 2

    def test_start_edges_honoured(self, sprinkler_sample):
        start = [(0, 1), (0, 2), (1, 3), (2, 3)]
        res = hill_climb(sprinkler_sample, start_edges=start)
        assert res.score >= BICScore(sprinkler_sample).total_score(
            [[], [0], [0], [1, 2]]
        ) - 1e-9

    def test_cyclic_start_rejected(self, sprinkler_sample):
        with pytest.raises(ValueError):
            hill_climb(sprinkler_sample, start_edges=[(0, 1), (1, 0)])

    def test_unknown_score_rejected(self, sprinkler_sample):
        with pytest.raises(ValueError):
            hill_climb(sprinkler_sample, score="vibes")

    def test_agrees_with_constraint_based_on_easy_problem(self, sprinkler_sample):
        from repro.core.learn import learn_structure

        hc = hill_climb(sprinkler_sample, score="bic")
        pc = learn_structure(sprinkler_sample)
        hc_skel = {(min(u, v), max(u, v)) for u, v in hc.edges}
        assert hc_skel == set(pc.skeleton.edges())
