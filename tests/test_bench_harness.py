"""Bench harness tests: workloads, rendering, timing, perf reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.runner import time_call
from repro.bench.tables import format_seconds, render_series, render_table
from repro.bench.workloads import (
    OVERALL_NETWORKS,
    is_full_mode,
    make_workload,
    quick_scale,
)
from repro.simcpu.perfcounters import perf_report


class TestWorkloads:
    def test_deterministic(self):
        a = make_workload("alarm", 500)
        b = make_workload("alarm", 500)
        np.testing.assert_array_equal(a.dataset.values, b.dataset.values)
        assert a.network.edges() == b.network.edges()

    def test_sample_count(self):
        wl = make_workload("insurance", 321)
        assert wl.dataset.n_samples == 321

    def test_quick_scale_full_for_small_nets(self):
        assert quick_scale("alarm") == 1.0
        assert quick_scale("insurance") == 1.0
        assert quick_scale("munin2") < 0.2

    def test_label_includes_scale(self):
        wl = make_workload("munin1", 100)
        if not is_full_mode():
            assert "@" in wl.label
        wl_full = make_workload("munin1", 100, scale=1.0)
        assert wl_full.label == "munin1"

    def test_full_mode_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert is_full_mode()
        assert quick_scale("munin2") == 1.0
        monkeypatch.setenv("REPRO_FULL", "0")
        assert not is_full_mode()

    def test_overall_networks_in_catalog(self):
        from repro.networks.catalog import catalog_names

        for name in OVERALL_NETWORKS:
            assert name in catalog_names()


class TestTables:
    def test_render_table_alignment(self):
        out = render_table(["a", "bbbb"], [["x", 1], ["yyyy", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded to equal width

    def test_render_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])

    def test_render_series(self):
        out = render_series("t", [1, 2], {"s1": [0.5, 1.0], "s2": [2.0, 3.0]})
        assert "s1" in out and "s2" in out
        assert "0.50" in out

    def test_render_series_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("t", [1, 2], {"s": [1.0]})

    def test_format_seconds_scales(self):
        assert format_seconds(5e-7).endswith("us")
        assert format_seconds(0.005).endswith("ms")
        assert format_seconds(3.2) == "3.20s"
        assert format_seconds(300).endswith("min")
        assert format_seconds(10000).endswith("h")

    def test_format_seconds_negative(self):
        with pytest.raises(ValueError):
            format_seconds(-1)


class TestTimeCall:
    def test_returns_result_and_timing(self):
        result, timing = time_call(lambda: 42, repeats=3)
        assert result == 42
        assert timing.repeats == 3
        assert 0 <= timing.best_s <= timing.mean_s

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            time_call(lambda: 1, repeats=0)


class TestPerfReport:
    @pytest.fixture(scope="class")
    def counters(self):
        from repro.citests.gsquare import GSquareTest
        from repro.core.skeleton import learn_skeleton
        from repro.datasets.sampling import forward_sample
        from repro.networks.generators import random_network

        net = random_network(15, 20, rng=0, max_parents=3)
        data = forward_sample(net, 2000, rng=1)
        tester = GSquareTest(data)
        learn_skeleton(tester, data.n_variables)
        return data, tester.counters

    def test_friendly_layout_lower_miss_rate(self, counters):
        data, ctrs = counters
        friendly = perf_report("f", data.n_variables, data.n_samples, ctrs, variable_major=True)
        unfriendly = perf_report(
            "u", data.n_variables, data.n_samples, ctrs, variable_major=False
        )
        assert friendly.l1_miss_rate < unfriendly.l1_miss_rate
        assert friendly.ll_accesses < unfriendly.ll_accesses

    def test_report_row_fields(self, counters):
        data, ctrs = counters
        report = perf_report("x", data.n_variables, data.n_samples, ctrs, variable_major=True)
        row = report.row()
        assert set(row) == {
            "impl",
            "L1 accesses",
            "L1 miss rate",
            "LL accesses",
            "LL miss rate",
            "FLOPS",
            "CPU util",
        }
        assert row["impl"] == "x"

    def test_deterministic_given_seed(self, counters):
        data, ctrs = counters
        a = perf_report("x", data.n_variables, data.n_samples, ctrs, variable_major=True, rng=5)
        b = perf_report("x", data.n_variables, data.n_samples, ctrs, variable_major=True, rng=5)
        assert a == b
