"""Tests for parameter fitting, PDAG->DAG extension and inference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.sampling import forward_sample
from repro.graphs.dag import dag_to_cpdag, is_acyclic, v_structures_of_dag  # noqa: F401
from repro.graphs.extension import NoConsistentExtensionError, pdag_to_dag
from repro.graphs.pdag import PDAG
from repro.inference.variable_elimination import Factor, VariableElimination
from repro.networks.classic import asia, cancer, sprinkler
from repro.networks.fit import fit_cpts, log_likelihood


class TestFitCpts:
    def test_recovers_generating_cpts(self):
        net = sprinkler()
        data = forward_sample(net, 100000, rng=0)
        fitted = fit_cpts(net.n_nodes, net.edges(), data, pseudo_count=0.0)
        for i in range(net.n_nodes):
            np.testing.assert_allclose(fitted.cpt(i).table, net.cpt(i).table, atol=0.02)
            assert fitted.cpt(i).parents == net.cpt(i).parents

    def test_pseudo_count_smooths(self, rng):
        # A configuration never observed gets a non-degenerate row.
        rows = np.array([[0, 0]] * 50)  # X always 0
        from repro.datasets.dataset import DiscreteDataset

        data = DiscreteDataset.from_rows(rows, arities=[2, 2])
        fitted = fit_cpts(2, [(0, 1)], data, pseudo_count=1.0)
        table = fitted.cpt(1).table
        np.testing.assert_allclose(table[1], [0.5, 0.5])  # X=1 never seen
        assert table[0, 0] > 0.9

    def test_zero_pseudo_count_unseen_config_uniform(self):
        rows = np.array([[0, 1]] * 30)
        from repro.datasets.dataset import DiscreteDataset

        data = DiscreteDataset.from_rows(rows, arities=[2, 2])
        fitted = fit_cpts(2, [(0, 1)], data, pseudo_count=0.0)
        np.testing.assert_allclose(fitted.cpt(1).table[1], [0.5, 0.5])
        np.testing.assert_allclose(fitted.cpt(1).table[0], [0.0, 1.0])

    def test_validation(self, sprinkler_data):
        with pytest.raises(ValueError):
            fit_cpts(3, [], sprinkler_data)
        with pytest.raises(ValueError):
            fit_cpts(4, [], sprinkler_data, pseudo_count=-1)

    def test_log_likelihood_improves_with_true_structure(self):
        net = cancer()
        data = forward_sample(net, 5000, rng=2)
        true_fit = fit_cpts(net.n_nodes, net.edges(), data)
        empty_fit = fit_cpts(net.n_nodes, [], data)
        assert log_likelihood(true_fit, data) > log_likelihood(empty_fit, data)

    def test_log_likelihood_matches_manual(self):
        net = sprinkler()
        data = forward_sample(net, 500, rng=3)
        ll = log_likelihood(net, data)
        manual = sum(net.log_probability(row) for row in data.as_rows())
        assert ll == pytest.approx(manual, rel=1e-9)

    def test_log_likelihood_size_mismatch(self, sprinkler_data):
        with pytest.raises(ValueError):
            log_likelihood(asia(), sprinkler_data)


class TestPdagToDag:
    @pytest.mark.parametrize("factory", [sprinkler, asia, cancer])
    def test_extension_of_true_cpdag_is_equivalent(self, factory):
        net = factory()
        cpdag = dag_to_cpdag(net.n_nodes, net.edges())
        dag = pdag_to_dag(cpdag)
        assert is_acyclic(net.n_nodes, dag)
        # Same skeleton.
        assert {(min(u, v), max(u, v)) for u, v in dag} == {
            (min(u, v), max(u, v)) for u, v in net.edges()
        }
        # Same v-structures (hence same equivalence class).
        assert v_structures_of_dag(net.n_nodes, dag) == v_structures_of_dag(
            net.n_nodes, net.edges()
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_random_cpdag_extensions(self, seed):
        from repro.networks.generators import random_dag

        n = 9
        edges = random_dag(n, 12, rng=seed, max_parents=None)
        cpdag = dag_to_cpdag(n, edges)
        dag = pdag_to_dag(cpdag)
        assert is_acyclic(n, dag)
        assert v_structures_of_dag(n, dag) == v_structures_of_dag(n, edges)

    def test_fully_directed_input_passes_through(self):
        p = PDAG(3)
        p.add_directed(0, 1)
        p.add_directed(1, 2)
        assert sorted(pdag_to_dag(p)) == [(0, 1), (1, 2)]

    def test_fully_undirected_chain(self):
        p = PDAG(3)
        p.add_undirected(0, 1)
        p.add_undirected(1, 2)
        dag = pdag_to_dag(p)
        assert is_acyclic(3, dag)
        assert v_structures_of_dag(3, dag) == set()  # no new collider

    def test_inconsistent_pdag_rejected(self):
        # Directed 3-cycle cannot extend.
        p = PDAG(3)
        p.add_directed(0, 1)
        p.add_directed(1, 2)
        p.add_directed(2, 0)
        with pytest.raises(NoConsistentExtensionError):
            pdag_to_dag(p)

    def test_input_not_mutated(self):
        p = PDAG(3)
        p.add_undirected(0, 1)
        snapshot = p.copy()
        pdag_to_dag(p)
        assert p == snapshot


class TestFactor:
    def test_multiply_broadcasts(self):
        a = Factor((0,), np.array([0.5, 0.5]))
        b = Factor((1,), np.array([0.25, 0.75]))
        prod = a.multiply(b)
        assert prod.variables == (0, 1)
        np.testing.assert_allclose(prod.values, np.outer([0.5, 0.5], [0.25, 0.75]))

    def test_multiply_shared_variable(self):
        a = Factor((0, 1), np.arange(4).reshape(2, 2).astype(float))
        b = Factor((1,), np.array([2.0, 3.0]))
        prod = a.multiply(b)
        np.testing.assert_allclose(prod.values, a.values * np.array([2.0, 3.0]))

    def test_sum_out(self):
        a = Factor((0, 1), np.arange(6).reshape(2, 3).astype(float))
        out = a.sum_out(0)
        assert out.variables == (1,)
        np.testing.assert_allclose(out.values, a.values.sum(axis=0))

    def test_reduce(self):
        a = Factor((0, 1), np.arange(4).reshape(2, 2).astype(float))
        red = a.reduce(0, 1)
        assert red.variables == (1,)
        np.testing.assert_allclose(red.values, [2.0, 3.0])

    def test_reduce_missing_variable_is_noop(self):
        a = Factor((0,), np.array([1.0, 2.0]))
        assert a.reduce(5, 0) is a

    def test_normalised(self):
        a = Factor((0,), np.array([1.0, 3.0]))
        np.testing.assert_allclose(a.normalised().values, [0.25, 0.75])

    def test_zero_factor_rejected(self):
        with pytest.raises(ValueError):
            Factor((0,), np.zeros(2)).normalised()

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Factor((0, 1), np.zeros(3))

    def test_duplicate_variable_rejected(self):
        with pytest.raises(ValueError):
            Factor((0, 0), np.zeros((2, 2)))


def brute_marginal(net, var, evidence):
    """Enumerate the full joint (small networks only)."""
    n = net.n_nodes
    arities = [int(a) for a in net.arities]
    probs = np.zeros(arities[var])
    assignment = [0] * n

    def rec(i):
        if i == n:
            for k, v in evidence.items():
                if assignment[k] != v:
                    return
            probs[assignment[var]] += np.exp(net.log_probability(assignment))
            return
        for val in range(arities[i]):
            assignment[i] = val
            rec(i + 1)

    rec(0)
    return probs / probs.sum()


class TestVariableElimination:
    @pytest.mark.parametrize("factory", [sprinkler, cancer])
    def test_prior_marginals_match_brute_force(self, factory):
        net = factory()
        ve = VariableElimination(net)
        for var in range(net.n_nodes):
            np.testing.assert_allclose(
                ve.marginal(var), brute_marginal(net, var, {}), atol=1e-10
            )

    def test_posterior_matches_brute_force(self):
        net = sprinkler()
        ve = VariableElimination(net)
        for evidence in ({3: 1}, {3: 0, 0: 1}, {1: 1}):
            for var in range(4):
                if var in evidence:
                    continue
                np.testing.assert_allclose(
                    ve.marginal(var, evidence),
                    brute_marginal(net, var, evidence),
                    atol=1e-10,
                )

    def test_asia_diagnostic_query(self):
        net = asia()
        ve = VariableElimination(net)
        X, D, L = 6, 7, 3
        # Positive x-ray and dyspnoea raise P(LungCancer).
        prior = ve.marginal(L)[1]
        posterior = ve.marginal(L, {X: 1, D: 1})[1]
        assert posterior > 3 * prior

    def test_joint_query(self):
        net = sprinkler()
        ve = VariableElimination(net)
        joint = ve.query([1, 2], {0: 1})
        assert joint.values.shape == (2, 2)
        assert joint.values.sum() == pytest.approx(1.0)

    def test_query_validation(self):
        ve = VariableElimination(sprinkler())
        with pytest.raises(ValueError):
            ve.query([0], {0: 1})  # query var in evidence
        with pytest.raises(ValueError):
            ve.query([99])
        with pytest.raises(ValueError):
            ve.query([0], {1: 7})  # out-of-range evidence value

    def test_impossible_evidence(self):
        # Root is always 0 and the child copies it, so child = 1 is an
        # impossible observation.
        from repro.networks.bayesnet import CPT, DiscreteBayesianNetwork

        cpts = [
            CPT(parents=(), table=np.array([[1.0, 0.0]])),
            CPT(parents=(0,), table=np.array([[1.0, 0.0], [0.0, 1.0]])),
        ]
        net = DiscreteBayesianNetwork([2, 2], cpts)
        ve = VariableElimination(net)
        with pytest.raises(ValueError, match="probability 0"):
            ve.marginal(0, {1: 1})

    def test_deterministic_chain_posterior(self):
        from repro.networks.bayesnet import CPT, DiscreteBayesianNetwork

        cpts = [
            CPT(parents=(), table=np.array([[0.3, 0.7]])),
            CPT(parents=(0,), table=np.array([[1.0, 0.0], [0.0, 1.0]])),
        ]
        net = DiscreteBayesianNetwork([2, 2], cpts)
        ve = VariableElimination(net)
        np.testing.assert_allclose(ve.marginal(0, {1: 1}), [0.0, 1.0])
        np.testing.assert_allclose(ve.marginal(1), [0.3, 0.7])


class TestRelaxedExtension:
    def test_inconsistent_pdag_gets_dag(self):
        from repro.graphs.extension import relaxed_extension

        p = PDAG(3)
        p.add_directed(0, 1)
        p.add_directed(1, 2)
        p.add_directed(2, 0)  # conflict cycle
        dag = pdag_to_dag(p, strict=False)
        assert is_acyclic(3, dag)
        assert {(min(a, b), max(a, b)) for a, b in dag} == {(0, 1), (1, 2), (0, 2)}
        assert is_acyclic(3, relaxed_extension(p))

    def test_consistent_input_prefers_dor_tarsi(self):
        net = sprinkler()
        cpdag = dag_to_cpdag(net.n_nodes, net.edges())
        strict_dag = pdag_to_dag(cpdag, strict=True)
        relaxed_dag = pdag_to_dag(cpdag, strict=False)
        assert sorted(strict_dag) == sorted(relaxed_dag)
        assert v_structures_of_dag(4, relaxed_dag) == v_structures_of_dag(4, net.edges())

    def test_relaxed_preserves_consistent_arrows(self):
        from repro.graphs.extension import relaxed_extension

        p = PDAG(4)
        p.add_directed(0, 1)
        p.add_undirected(1, 2)
        p.add_directed(2, 3)
        dag = relaxed_extension(p)
        assert (0, 1) in dag
        assert (2, 3) in dag
        assert is_acyclic(4, dag)

    def test_learned_data_pipeline_never_fails(self):
        # The exact situation that motivated relaxed mode: learned CPDAGs
        # with statistically inconsistent orientations.
        from repro.bench.workloads import make_workload
        from repro.core.learn import learn_structure

        wl = make_workload("insurance", 2000, scale=0.6)
        res = learn_structure(wl.dataset, alpha=0.01, max_depth=3, dof_adjust="slices")
        dag = pdag_to_dag(res.cpdag, strict=False)
        assert is_acyclic(wl.dataset.n_variables, dag)
        assert {(min(a, b), max(a, b)) for a, b in dag} == set(res.skeleton.edges())
