"""Tests for the trace-replay workload layer (repro.engine.workload) and
the weighted-fair lane scheduler it exercises.

Covers the ISSUE-8 satellite surface: seeded generator determinism
(same seed → byte-identical trace), zipf/burst shape sanity, save/load/
replay-vs-generate equivalence, the latency harness, and fairness
properties of the deficit-round-robin dispatcher (a weighted lane gets
its share; no ready lane is starved).
"""

from __future__ import annotations

import json

import pytest
from _timeouts import hard_timeout

from repro.engine import (
    EngineServer,
    Trace,
    WorkloadSpec,
    generate_trace,
    merge_totals,
    replay,
    summarize_latencies,
    verify_trace,
)
from repro.engine.server import _LaneScheduler, _Pending
from repro.engine.workload import percentile

DRILL_TIMEOUT_S = 120.0


def _exact_manifest(server: EngineServer) -> None:
    """The run document's totals must equal the sum of its parts."""
    doc = server.manifest()
    parts = [s["totals"] for s in doc["sessions"]] + [doc["unrouted"]["totals"]]
    assert doc["totals"] == merge_totals(parts)


def _strip_timing(obj):
    if isinstance(obj, dict):
        return {k: _strip_timing(v) for k, v in obj.items() if k != "elapsed_s"}
    if isinstance(obj, list):
        return [_strip_timing(v) for v in obj]
    return obj


@pytest.fixture()
def quad_datasets(asia_data, sprinkler_data, small_random_data, cancer_net):
    """Four tenant datasets matching the default spec's d0..d3."""
    from repro.datasets.sampling import forward_sample

    return {
        "d0": asia_data,
        "d1": small_random_data,
        "d2": sprinkler_data,
        "d3": forward_sample(cancer_net, 2000, rng=17),
    }


def _fresh_server(datasets: dict, **kwargs) -> EngineServer:
    srv = EngineServer(alpha=0.05, max_sessions=8, **kwargs)
    for ds_id, data in datasets.items():
        srv.register(ds_id, data)
    return srv


@pytest.fixture()
def quad_server(quad_datasets):
    srv = _fresh_server(quad_datasets)
    yield srv
    srv.close()


# --------------------------------------------------------------------- #
# generator determinism & shape
# --------------------------------------------------------------------- #
class TestGenerator:
    def test_same_seed_byte_identical(self):
        spec = WorkloadSpec(n_requests=120, seed=5, error_rate=0.1, arrival="bursty")
        assert generate_trace(spec).dumps() == generate_trace(spec).dumps()

    def test_different_seed_differs(self):
        a = generate_trace(WorkloadSpec(n_requests=120, seed=5))
        b = generate_trace(WorkloadSpec(n_requests=120, seed=6))
        assert a.dumps() != b.dumps()

    def test_zipf_skew_orders_tenants(self):
        trace = generate_trace(WorkloadSpec(n_requests=2000, seed=1, zipf_s=1.3))
        counts = {d: 0 for d in trace.spec.datasets}
        for rec in trace.records:
            counts[rec.tenant] += 1
        ordered = [counts[d] for d in trace.spec.datasets]
        # First tenant is the hot one, and clearly hotter than the coldest.
        assert ordered[0] == max(ordered)
        assert ordered[0] > 2 * ordered[-1]

    def test_arrivals_are_monotone_and_bursty_clusters(self):
        spec = WorkloadSpec(n_requests=256, seed=2, arrival="bursty", burst=16)
        trace = generate_trace(spec)
        at = [rec.at_s for rec in trace.records]
        assert at == sorted(at)
        # Within a burst the offsets are identical; gaps appear only at
        # burst boundaries => far fewer distinct arrival times than requests.
        assert len(set(at)) <= len(at) / spec.burst + 1

    def test_poisson_gaps_vary(self):
        trace = generate_trace(WorkloadSpec(n_requests=256, seed=2, arrival="poisson"))
        at = [rec.at_s for rec in trace.records]
        gaps = {round(b - a, 6) for a, b in zip(at, at[1:], strict=False)}
        assert len(gaps) > 100  # exponential gaps, essentially all distinct

    def test_mix_and_error_injection(self):
        spec = WorkloadSpec(n_requests=1000, seed=3, error_rate=0.15)
        trace = generate_trace(spec)
        ops = [rec.request["op"] for rec in trace.records]
        assert {"learn", "blanket", "stats"} <= set(ops)
        bad = [
            rec
            for rec in trace.records
            if rec.request.get("gs") == 0
            or "::missing" in str(rec.request.get("dataset"))
            or (rec.request["op"] == "blanket" and "target" not in rec.request)
        ]
        # ~15% of 1000 with three rotating variants; loose two-sided bound.
        assert 80 <= len(bad) <= 250

    def test_relearn_repeats_a_prior_learn_verbatim(self):
        spec = WorkloadSpec(
            n_requests=400, seed=4, mix=(("learn", 0.5), ("relearn", 0.5))
        )
        trace = generate_trace(spec)
        seen: dict[str, list[dict]] = {}
        repeats = 0
        for rec in trace.records:
            key = json.dumps(rec.request, sort_keys=True)
            if key in seen.get(rec.tenant, []):
                repeats += 1
            seen.setdefault(rec.tenant, []).append(key)
        assert repeats > 50  # relearns (and repeated learns) hit the cache

    def test_bad_specs_rejected(self):
        for bad in (
            dict(n_requests=0),
            dict(datasets=()),
            dict(arrival="nope"),
            dict(rate=0.0),
            dict(error_rate=1.5),
            dict(mix=(("frobnicate", 1.0),)),
            dict(mix=(("learn", -1.0),)),
            dict(alphas=()),
        ):
            with pytest.raises(ValueError):
                WorkloadSpec(**bad)


# --------------------------------------------------------------------- #
# trace format
# --------------------------------------------------------------------- #
class TestTraceFormat:
    def test_save_load_round_trip(self, tmp_path):
        trace = generate_trace(WorkloadSpec(n_requests=64, seed=7, error_rate=0.05))
        path = tmp_path / "t.jsonl"
        trace.save(path)
        loaded = Trace.loads(path.read_text(encoding="utf-8"))
        assert loaded.dumps() == trace.dumps()
        assert loaded.spec == trace.spec

    def test_loaded_spec_regenerates_identically(self, tmp_path):
        trace = generate_trace(WorkloadSpec(n_requests=64, seed=7, error_rate=0.05))
        loaded = Trace.loads(trace.dumps())
        assert generate_trace(loaded.spec).dumps() == trace.dumps()

    def test_verify_detects_tampering(self, tmp_path):
        trace = generate_trace(WorkloadSpec(n_requests=32, seed=9))
        path = tmp_path / "t.jsonl"
        trace.save(path)
        ok, _ = verify_trace(path)
        assert ok
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[3] = lines[3].replace('"op":"', '"op":"x')
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        ok, message = verify_trace(path)
        assert not ok and "regenerate" in message

    def test_malformed_headers_rejected(self):
        with pytest.raises(ValueError):
            Trace.loads("")
        with pytest.raises(ValueError):
            Trace.loads('{"kind":"something-else"}\n')
        with pytest.raises(ValueError):
            Trace.loads(
                '{"kind":"fastbns-workload-trace","version":999,"n_requests":0,"spec":{}}\n'
            )

    def test_header_record_count_checked(self):
        trace = generate_trace(WorkloadSpec(n_requests=8, seed=1))
        text = "\n".join(trace.dumps().splitlines()[:-1]) + "\n"  # drop one record
        with pytest.raises(ValueError, match="claims"):
            Trace.loads(text)


# --------------------------------------------------------------------- #
# percentiles
# --------------------------------------------------------------------- #
class TestLatencySummary:
    def test_percentile_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100
        assert percentile([], 50) == 0.0
        assert percentile([42.0], 99) == 42.0

    def test_summary_shape_and_order(self):
        s = summarize_latencies([0.004, 0.001, 0.002, 0.010])
        assert s["n"] == 4
        assert s["p50_ms"] <= s["p95_ms"] <= s["p99_ms"] <= s["max_ms"]
        assert s["max_ms"] == pytest.approx(10.0)
        empty = summarize_latencies([])
        assert empty == {
            "n": 0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
            "max_ms": 0.0, "mean_ms": 0.0,
        }


# --------------------------------------------------------------------- #
# replay harness
# --------------------------------------------------------------------- #
class TestReplay:
    def test_threaded_replay_matches_sequential_oracle(self, quad_datasets):
        """Replaying concurrently changes latency, never payloads."""
        spec = WorkloadSpec(n_requests=48, seed=11, error_rate=0.1, n_targets=4)
        trace = generate_trace(spec)
        with hard_timeout(DRILL_TIMEOUT_S, "replay equivalence"):
            threaded_srv = _fresh_server(quad_datasets)
            oracle_srv = _fresh_server(quad_datasets)
            try:
                threaded = replay(threaded_srv, trace, threads=3, window=16)
                oracle = replay(oracle_srv, trace, threads=1)
                assert _strip_timing(oracle.responses) == _strip_timing(
                    threaded.responses
                )
                assert threaded.n_requests == len(trace)
                _exact_manifest(threaded_srv)
            finally:
                threaded_srv.close()
                oracle_srv.close()

    def test_timings_align_with_trace_and_percentiles_order(self, quad_server):
        trace = generate_trace(WorkloadSpec(n_requests=32, seed=13, n_targets=4))
        with hard_timeout(DRILL_TIMEOUT_S, "replay timings"):
            report = replay(quad_server, trace, threads=2, window=8)
        assert len(report.timings) == len(trace)
        lat = report.latency()
        assert lat["n"] == len(trace)
        assert 0 <= lat["p50_ms"] <= lat["p95_ms"] <= lat["p99_ms"] <= lat["max_ms"]
        tenants = set(report.per_tenant())
        assert tenants <= set(trace.spec.datasets) and tenants
        for t in report.timings:
            assert t["t_in"] <= t["t_start"] <= t["t_done"]

    def test_all_error_trace_drains_with_exact_manifest(self, quad_server):
        spec = WorkloadSpec(n_requests=24, seed=17, error_rate=1.0)
        trace = generate_trace(spec)
        with hard_timeout(DRILL_TIMEOUT_S, "all-error replay"):
            report = replay(quad_server, trace, threads=2, window=8)
        assert report.n_errors == len(trace)
        _exact_manifest(quad_server)

    def test_report_dict_is_json_serialisable(self, quad_server):
        trace = generate_trace(WorkloadSpec(n_requests=16, seed=19, n_targets=4))
        report = replay(quad_server, trace, threads=2)
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["n_requests"] == 16
        assert {"p50_ms", "p95_ms", "p99_ms", "max_ms"} <= set(doc["latency"])
        assert doc["trace"]["kind"] == "fastbns-workload-trace"


# --------------------------------------------------------------------- #
# weighted-fair scheduler (unit level)
# --------------------------------------------------------------------- #
def _drain_schedule(sched: _LaneScheduler, n: int) -> list[object]:
    """Serve ``n`` requests single-worker, releasing after each pick."""
    order: list[object] = []
    for _ in range(n):
        picked = sched.take()
        assert picked is not None
        key, _pending = picked
        order.append(key)
        sched.release(key)
    return order


class TestLaneScheduler:
    def _loaded(self, per_lane: dict[str, int], weights: dict[str, float] | None = None):
        sched = _LaneScheduler()
        weights = weights or {}
        for key, n in per_lane.items():
            for i in range(n):
                sched.push(key, _Pending({"i": i}), weight=weights.get(key, 1.0))
        return sched

    def test_equal_weights_round_robin(self):
        sched = self._loaded({"a": 3, "b": 3, "c": 3})
        order = _drain_schedule(sched, 9)
        # Each rotation serves each ready lane exactly once.
        assert order == ["a", "b", "c"] * 3

    def test_weight_two_serves_double_share(self):
        sched = self._loaded({"a": 8, "b": 4}, weights={"a": 2.0})
        order = _drain_schedule(sched, 12)
        while order and order[-1] == "a":  # tail where only "a" remains
            order.pop()
        a_share = order.count("a")
        b_share = order.count("b")
        # Under contention "a" is served ~2x as often as "b".
        assert b_share > 0 and 1.5 <= a_share / b_share <= 3.0

    def test_busy_lane_is_skipped_not_blocking(self):
        sched = self._loaded({"a": 2, "b": 2})
        key1, _ = sched.take()  # lane now busy (no release yet)
        key2, _ = sched.take()  # must move on to the other lane
        assert {key1, key2} == {"a", "b"}
        # Per-lane serialisation: with both lanes busy nothing is ready
        # until a release, after which that lane's second request flows.
        sched.release("a")
        picked = sched.take()
        assert picked is not None and picked[0] == "a"

    def test_sub_unit_weights_still_work_conserving(self):
        sched = self._loaded({"a": 2}, weights={"a": 0.25})
        order = _drain_schedule(sched, 2)
        assert order == ["a", "a"]  # never idles despite <1 credit per visit

    def test_no_lane_starved_under_hot_load(self):
        # One hot lane with 60 queued, three cold with 2 each: every cold
        # request is served within the first few rotations.
        sched = self._loaded({"hot": 60, "c1": 2, "c2": 2, "c3": 2})
        order = _drain_schedule(sched, 66)
        for cold in ("c1", "c2", "c3"):
            last = max(i for i, k in enumerate(order) if k == cold)
            # Both cold requests done well before the hot backlog ends.
            assert last < 16, f"{cold} served too late: position {last}"

    def test_push_after_close_raises(self):
        sched = _LaneScheduler()
        sched.close()
        with pytest.raises(RuntimeError):
            sched.push("a", _Pending({}))

    def test_take_returns_none_when_closed_and_drained(self):
        sched = self._loaded({"a": 1})
        sched.close()
        picked = sched.take()
        assert picked is not None  # queued request still handed out
        sched.release("a")
        assert sched.take() is None


# --------------------------------------------------------------------- #
# server-level fairness
# --------------------------------------------------------------------- #
class TestServerFairness:
    def test_lane_weights_validated_and_reported(self, asia_data):
        srv = EngineServer(lane_weights={"a": 2.0})
        try:
            srv.register("a", asia_data)
            srv.set_lane_weight("b", 0.5)
            with pytest.raises(ValueError):
                srv.set_lane_weight("c", 0.0)
            with pytest.raises(ValueError):
                srv.set_lane_weight("c", float("nan"))
            with pytest.raises(ValueError):
                srv.set_lane_weight("", 1.0)
            assert srv.stats()["dispatch"]["lane_weights"] == {"a": 2.0, "b": 0.5}
        finally:
            srv.close()

    def test_weighted_replay_is_payload_identical(self, quad_datasets):
        """Weights shape scheduling order only — responses are unchanged."""
        trace = generate_trace(WorkloadSpec(n_requests=32, seed=23, n_targets=4))
        with hard_timeout(DRILL_TIMEOUT_S, "weighted replay"):
            # The oracle gets the same weights: they surface in `stats`
            # payloads (deterministically) but never alter sequential
            # execution — identical configs must answer identically.
            weighted_srv = _fresh_server(quad_datasets, lane_weights={"d3": 4.0})
            oracle_srv = _fresh_server(quad_datasets, lane_weights={"d3": 4.0})
            try:
                weighted = replay(weighted_srv, trace, threads=3, window=32)
                sequential = replay(oracle_srv, trace, threads=1)
                assert _strip_timing(sequential.responses) == _strip_timing(
                    weighted.responses
                )
                served = weighted_srv.lane_stats()
                # Every dispatched request is accounted to a lane.
                assert sum(v["n_served"] for v in served.values()) >= len(trace)
            finally:
                weighted_srv.close()
                oracle_srv.close()
