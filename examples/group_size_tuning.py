"""Tuning the CI-test group size (gs) — the paper's Fig. 4 trade-off.

gs controls how many CI tests a work item executes before re-checking the
edge's status: larger groups reuse the encoded X/Y columns (fewer memory
passes) but run redundant tests past the first independence acceptance.
This example measures both sides of the trade-off on a real workload and
reports the sweet spot (the paper finds gs = 6..8 works well).

Run:
    python examples/group_size_tuning.py
"""

from __future__ import annotations

from repro import learn_structure
from repro.datasets.sampling import forward_sample
from repro.networks.catalog import get_network


def main() -> None:
    network = get_network("insurance")
    data = forward_sample(network, 10000, rng=5)
    print(f"Workload: insurance analog ({network.n_nodes} nodes), m={data.n_samples}\n")

    base_tests = None
    best = (float("inf"), None)
    print(f"{'gs':>4} | {'CI tests':>9} | {'redundant':>9} | {'inflation':>9} | time")
    print("-" * 55)
    for gs in (1, 2, 4, 6, 8, 10, 12, 16):
        result = learn_structure(data, gs=gs)
        if base_tests is None:
            base_tests = result.n_ci_tests
        inflation = 100.0 * (result.n_ci_tests - base_tests) / base_tests
        seconds = result.elapsed["skeleton"]
        if seconds < best[0]:
            best = (seconds, gs)
        print(
            f"{gs:>4} | {result.n_ci_tests:>9} | {result.stats.n_redundant_tests:>9} | "
            f"{inflation:>8.1f}% | {seconds:.3f}s"
        )

    print(f"\nFastest at gs = {best[1]} ({best[0]:.3f}s).")
    print(
        "All gs values produce the identical structure — only the work\n"
        "schedule changes (verified by the test-suite's invariance tests)."
    )


if __name__ == "__main__":
    main()
