"""Fig. 1 as running code: the three granularities of parallelism.

Builds the exact situation of the paper's Fig. 1 — four edges with skewed
CI-test workloads (8, 6, 2, 4 potential tests) — and shows how each
granularity schedules the work across two threads, reproducing the
figure's load-imbalance story with concrete numbers.

Run:
    python examples/granularities_illustrated.py
"""

from __future__ import annotations

from repro.core.trace import DepthTrace, EdgeWorkRecord, GroupRecord, TestRecord
from repro.simcpu import CostModel, MachineSpec, simulate


def fig1_trace() -> list[DepthTrace]:
    """The paper's Fig. 1: E0..E3 with 8/6/2/4 potential CI tests; E3's
    first test accepts independence, so its remaining 3 tests never run."""
    m = 1000
    spec = [
        ("E0", 8, None),  # all 8 tests run
        ("E1", 6, None),
        ("E2", 2, None),
        ("E3", 4, 0),  # accepted at test 0: tests 1..3 unnecessary
    ]
    edges = []
    for idx, (_, total, accept_at) in enumerate(spec):
        executed = total if accept_at is None else accept_at + 1
        groups = [
            GroupRecord(
                tests=[
                    TestRecord(
                        depth=1,
                        m=m,
                        cells=8,
                        independent=(accept_at is not None and k == accept_at),
                    )
                ]
            )
            for k in range(executed)
        ]
        edges.append(
            EdgeWorkRecord(
                u=2 * idx, v=2 * idx + 1, total_possible=total, groups=groups,
                removed=accept_at is not None,
            )
        )
    return [DepthTrace(depth=1, n_edges_start=4, edges=edges)]


def main() -> None:
    trace = fig1_trace()
    executed = [(f"E{i}", e.n_tests, e.total_possible) for i, e in enumerate(trace[0].edges)]
    print("Fig. 1 workload (two threads):")
    for name, ran, total in executed:
        note = "" if ran == total else f"  ({total - ran} tests saved by early termination)"
        print(f"  {name}: {ran}/{total} CI tests executed{note}")

    # Use negligible fixed overheads: this is the figure's idealised story.
    machine = MachineSpec(spawn_overhead_s=0.0, region_overhead_s=0.0)
    model = CostModel(machine, cache_friendly=True)

    seq = simulate(trace, model, "sequential", 1)
    print(f"\nsequential makespan: {seq.makespan_units:,.0f} units")
    print(f"{'scheme':>14} | {'makespan':>10} | {'speedup':>7} | per-thread busy units")
    print("-" * 75)
    for scheme in ("edge", "ci", "sample"):
        sim = simulate(trace, model, scheme, 2)
        busy = ", ".join(f"{b:,.0f}" for b in sim.thread_busy_units)
        print(
            f"{sim.scheme:>14} | {sim.makespan_units:>10,.0f} | "
            f"{sim.speedup_over(seq):>6.2f}x | [{busy}]"
        )

    print(
        "\nEdge-level assigns {E0, E1} to thread 0 and {E2, E3} to thread 1:\n"
        "thread 0 carries 14 of the 17 executed tests while thread 1 idles —\n"
        "exactly the imbalance drawn in the paper's Fig. 1.  The CI-level\n"
        "work pool splits test-by-test and both threads stay busy."
    )


if __name__ == "__main__":
    main()
