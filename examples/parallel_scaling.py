"""Parallel execution and the multi-core simulator.

Demonstrates the three granularities of parallelism on a benchmark
network:

1. runs the *real* parallel backends (process/thread workers) and checks
   they reproduce the sequential result exactly;
2. records the execution trace and replays it through the discrete-event
   multi-core simulator to project the thread-scaling the paper measured
   on its 52-core testbed (Figs. 2 and 5).

Run:
    python examples/parallel_scaling.py
"""

from __future__ import annotations

import os

from repro import TraceRecorder, learn_structure
from repro.bench.tables import render_series
from repro.datasets.sampling import forward_sample
from repro.networks.catalog import get_network
from repro.simcpu import CostModel, MachineSpec, calibrate_seconds_per_unit, simulate


def main() -> None:
    network = get_network("alarm")
    data = forward_sample(network, 5000, rng=3)
    print(f"Workload: alarm analog ({network.n_nodes} nodes), m={data.n_samples}")

    # ---------------------------------------------------------------- #
    # 1. Real parallel backends: identical output, measured wall-clock
    # ---------------------------------------------------------------- #
    recorder = TraceRecorder()
    sequential = learn_structure(data, recorder=recorder)
    print(f"\nsequential        : {sequential.elapsed['skeleton']:.3f}s, "
          f"{sequential.n_ci_tests} CI tests")

    n_workers = min(4, os.cpu_count() or 1)
    for parallelism in ("ci", "edge"):
        result = learn_structure(
            data, n_jobs=n_workers, parallelism=parallelism, backend="process"
        )
        same = result.cpdag == sequential.cpdag
        print(
            f"{parallelism + '-level':18s}: {result.elapsed['skeleton']:.3f}s with "
            f"{n_workers} processes  (identical output: {same})"
        )
    print(
        "\n(On a single-core container the real backends cannot speed up —\n"
        " they demonstrate correctness; scaling is projected below.)"
    )

    # ---------------------------------------------------------------- #
    # 2. Simulated thread scaling from the recorded trace
    # ---------------------------------------------------------------- #
    model = CostModel(MachineSpec(), cache_friendly=True)
    spu = calibrate_seconds_per_unit(model, recorder.depths, sequential.elapsed["skeleton"])
    model = CostModel(model.machine.calibrated(spu), cache_friendly=True)
    seq_sim = simulate(recorder.depths, model, "sequential", 1)

    threads = (1, 2, 4, 8, 16, 32)
    series = {}
    for scheme, label in (("ci", "CI-level (Fast-BNS)"), ("edge", "edge-level"), ("sample", "sample-level")):
        series[label] = [
            simulate(recorder.depths, model, scheme, t).speedup_over(seq_sim) for t in threads
        ]
    print()
    print(
        render_series(
            "threads",
            list(threads),
            series,
            title="Projected speedup over sequential (simulated, calibrated to this host)",
        )
    )
    print(
        "\nThe ordering matches the paper's Fig. 2: the dynamic work pool\n"
        "(CI-level) scales best; the static edge partition saturates from\n"
        "load imbalance; sample-level collapses under per-test overhead."
    )


if __name__ == "__main__":
    main()
