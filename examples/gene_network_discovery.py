"""Causal-discovery workload: gene-regulatory-network style problem.

The paper's motivation (Sec. I) includes inferring gene regulatory networks
from expression data — high-dimensional problems where constraint-based
learners shine.  This example builds a synthetic "regulatory" network with
hub regulators (transcription-factor-like nodes with many targets — the
degree skew that motivates the dynamic work pool), discretises expression
into low/medium/high, learns the network back, and reports how accuracy
and work scale with sample size.

Run:
    python examples/gene_network_discovery.py
"""

from __future__ import annotations

import numpy as np

from repro import forward_sample, learn_structure, skeleton_metrics
from repro.networks.bayesnet import CPT, DiscreteBayesianNetwork
from repro.networks.generators import random_dag


def build_regulatory_network(n_genes: int = 40, n_regulations: int = 55, seed: int = 7):
    """Hub-skewed regulatory network with *strong* regulation: each
    regulator state shifts the target's expression distribution (an
    activator/repressor model), so edges are statistically visible —
    unlike random Dirichlet CPTs, whose effects can vanish."""
    arity = 3  # low / medium / high expression
    edges = random_dag(n_genes, n_regulations, rng=seed, max_parents=2, hub_bias=1.5)
    parents: list[list[int]] = [[] for _ in range(n_genes)]
    for p, c in edges:
        parents[c].append(p)
    rng = np.random.default_rng(seed)
    base_profiles = np.array([[0.70, 0.20, 0.10], [0.15, 0.70, 0.15], [0.10, 0.20, 0.70]])
    cpts = []
    for gene in range(n_genes):
        ps = tuple(sorted(parents[gene]))
        n_cfg = arity ** len(ps)
        table = np.empty((n_cfg, arity))
        noise = 0.12
        for cfg in range(n_cfg):
            # Each regulator independently pushes the target towards its
            # own state (product-of-experts); avoids parity-style effects
            # that are invisible to marginal tests.
            rem = cfg
            profile = np.ones(arity)
            for _ in ps:
                profile = profile * base_profiles[rem % arity]
                rem //= arity
            profile = profile / profile.sum()
            table[cfg] = (1 - noise) * profile + noise / arity
        if not ps:
            table = np.tile(rng.dirichlet([4.0, 4.0, 4.0]), (1, 1))
        cpts.append(CPT(parents=ps, table=table))
    return DiscreteBayesianNetwork(
        [arity] * n_genes, cpts, names=tuple(f"gene_{i:03d}" for i in range(n_genes))
    )


def main() -> None:
    network = build_regulatory_network()
    degrees = np.zeros(network.n_nodes, dtype=int)
    for u, v in network.edges():
        degrees[u] += 1
        degrees[v] += 1
    print(
        f"Regulatory network: {network.n_nodes} genes, {network.n_edges} regulations, "
        f"max degree {degrees.max()} (hub), median degree {int(np.median(degrees))}"
    )

    print(f"\n{'m':>7} | {'CI tests':>9} | {'depth':>5} | {'F1':>5} | {'prec':>5} | {'recall':>6} | time")
    print("-" * 65)
    # max_depth caps conditioning-set size: with hub degrees ~20, deep
    # G^2 tests would have thousands of degrees of freedom and (at these
    # sample sizes) spuriously "accept" independence, deleting true hub
    # edges — the standard practice for high-dimensional biology data is a
    # shallow-depth PC pass (cf. the TCGA pipelines in the paper's related
    # work).
    for m in (500, 2000, 8000):
        data = forward_sample(network, m, rng=11)
        result = learn_structure(data, alpha=0.01, gs=6, max_depth=2, dof_adjust="slices")
        metrics = skeleton_metrics(result.skeleton.edges(), network.edges())
        print(
            f"{m:>7} | {result.n_ci_tests:>9} | {result.stats.max_depth:>5} | "
            f"{metrics.f1:>5.2f} | {metrics.precision:>5.2f} | {metrics.recall:>6.2f} | "
            f"{result.elapsed['total']:.2f}s"
        )

    # Show the strongest hub's learned neighbourhood.
    data = forward_sample(network, 8000, rng=11)
    result = learn_structure(data, alpha=0.01, gs=6, max_depth=2, dof_adjust="slices")
    hub = int(np.argmax(degrees))
    learned_nbrs = sorted(
        result.names[v] for v in result.skeleton.neighbors(hub)
    )
    true_nbrs = sorted(
        network.names[v if u == hub else u]
        for u, v in network.edges()
        if hub in (u, v)
    )
    print(f"\nHub gene {network.names[hub]}:")
    print(f"  true targets/regulators   ({len(true_nbrs)}): {', '.join(true_nbrs[:8])}...")
    print(f"  learned neighbourhood     ({len(learned_nbrs)}): {', '.join(learned_nbrs[:8])}...")
    overlap = len(set(learned_nbrs) & set(true_nbrs))
    print(f"  overlap: {overlap}/{len(true_nbrs)}")


if __name__ == "__main__":
    main()
