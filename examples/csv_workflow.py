"""Working from CSV files: encoding, splitting, model selection.

The workflow for users with their own categorical data:

1. read a labelled CSV (here: synthesised insurance-style records written
   to a temporary file, so the example is self-contained),
2. hold out a test split,
3. learn structures with both families — constraint-based Fast-BNS and
   score-based hill-climbing — on the training split,
4. fit CPTs and pick the model with the better *held-out* log-likelihood.

Run:
    python examples/csv_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import fit_cpts, forward_sample, learn_structure, log_likelihood, pdag_to_dag
from repro.datasets.io import read_csv, train_test_split, write_csv
from repro.networks.catalog import get_network
from repro.score import hill_climb


def main() -> None:
    # --- 1. a self-contained "user CSV" -------------------------------- #
    network = get_network("insurance", scale=0.6)
    raw = forward_sample(network, 8000, rng=9)
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "records.csv"
        write_csv(raw, str(csv_path))
        data, codec = read_csv(str(csv_path))
    print(
        f"Loaded {data.n_samples} records x {data.n_variables} columns "
        f"(arities {min(codec.arities())}-{max(codec.arities())})"
    )

    # --- 2. split ------------------------------------------------------- #
    train, test = train_test_split(data, test_fraction=0.2, rng=1)
    print(f"train: {train.n_samples}, test: {test.n_samples}\n")

    # --- 3. two learners ------------------------------------------------- #
    pc = learn_structure(train, alpha=0.01, gs=6, max_depth=3, dof_adjust="slices")
    # strict=False: statistical errors can leave conflicting arrows with
    # no consistent extension; the relaxed mode still returns a usable DAG.
    pc_dag = pdag_to_dag(pc.cpdag, strict=False)
    hc = hill_climb(train, score="bic", max_parents=4)

    # --- 4. held-out comparison ------------------------------------------ #
    models = {
        f"Fast-BNS ({pc.n_ci_tests} CI tests)": pc_dag,
        f"hill-climb BIC ({hc.n_moves_evaluated} moves)": hc.edges,
    }
    print(f"{'model':42s} | edges | held-out LL/record")
    print("-" * 75)
    best = (None, -float("inf"))
    for label, edges in models.items():
        fitted = fit_cpts(train.n_variables, edges, train, pseudo_count=1.0)
        held_out = log_likelihood(fitted, test) / test.n_samples
        print(f"{label:42s} | {len(edges):>5} | {held_out:.4f}")
        if held_out > best[1]:
            best = (label, held_out)
    print(f"\nselected: {best[0]} (held-out log-likelihood {best[1]:.4f})")
    print(
        "\nHeld-out likelihood is the model-agnostic referee between the\n"
        "two learning families; on hub-dense data the score-based search\n"
        "often wins on fit while Fast-BNS wins on CI-test economy."
    )


if __name__ == "__main__":
    main()
