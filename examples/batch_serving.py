"""Batch serving: drive a persistent LearningSession with mixed traffic.

Where ``quickstart.py`` runs one cold learn, this example plays the
production scenario the ``repro.engine`` subsystem targets: many clients
querying the *same* dataset — relearns at different significance levels,
Markov-blanket lookups for several targets, and plenty of repeats.  A
:class:`LearningSession` keeps the sufficient-statistics cache warm across
requests and a :class:`BatchServer` answers repeated requests from its
result cache without recomputing anything.

Run:
    python examples/batch_serving.py
"""

from __future__ import annotations

import time

from repro import forward_sample
from repro.engine import BatchServer, LearningSession
from repro.networks.classic import asia


def main() -> None:
    # 1. One dataset, one session ---------------------------------------- #
    network = asia()
    data = forward_sample(network, n_samples=10000, rng=0)
    session = LearningSession(data, test="g2", alpha=0.05, cache_bytes=32 << 20)
    server = BatchServer(session)
    print(f"session over {data.n_samples} samples of {data.n_variables} variables")
    print(f"dataset fingerprint: {session.fingerprint}\n")

    # 2. A mixed request stream with repeats ------------------------------ #
    targets = [data.names[1], data.names[4], data.names[6]]
    stream = (
        [{"op": "learn", "alpha": a} for a in (0.05, 0.01, 0.05, 0.001, 0.05)]
        + [{"op": "blanket", "target": t} for t in targets]
        + [{"op": "blanket", "target": targets[0], "algorithm": "grow-shrink"}]
        + [{"op": "learn", "alpha": 0.01, "gs": 4}]
    )

    with session:
        manifest = server.new_manifest()
        t0 = time.perf_counter()
        responses = server.serve(stream, manifest=manifest)
        first_pass = time.perf_counter() - t0

        for req, resp in zip(stream, responses, strict=True):
            tag = "cache" if resp["cached"] else f"{resp['elapsed_s'] * 1e3:6.1f}ms"
            if resp["op"] == "learn":
                r = resp["result"]
                detail = (
                    f"alpha={req.get('alpha', session.alpha):<5} "
                    f"-> {len(r['directed'])} directed + "
                    f"{len(r['undirected'])} undirected edges"
                )
            else:
                r = resp["result"]
                detail = f"MB({r['target']}) = {{{', '.join(r['blanket'])}}}"
            print(f"  [{tag:>8}] {resp['op']:<7} {detail}")

        # 3. Replay the whole stream: pure result-cache traffic ----------- #
        t0 = time.perf_counter()
        server.serve(stream)
        second_pass = time.perf_counter() - t0

        stats = server.stats()
        cache = stats["stats_cache"]
        print(f"\nfirst pass : {first_pass:.3f}s ({stats['n_computed']} computed)")
        print(
            f"second pass: {second_pass:.3f}s "
            f"({stats['n_result_cache_hits']} result-cache hits, "
            f"{first_pass / max(second_pass, 1e-9):.0f}x faster)"
        )
        print(
            f"stats cache: {cache['hits']} hits / {cache['misses']} misses "
            f"({cache['hit_rate'] * 100:.0f}% hit rate, "
            f"{cache['current_bytes'] / 1e6:.1f} MB resident)"
        )
        print(f"manifest   : {manifest.totals()}")


if __name__ == "__main__":
    main()
