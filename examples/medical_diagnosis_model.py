"""Learning a medical-diagnosis model and using it with background knowledge.

Healthcare is the paper's flagship application domain (Sec. I cites BN use
in healthcare and interpretable ML).  This example:

1. learns the Cancer diagnosis network from data at increasing sample
   sizes, showing how weak risk-factor edges need more data than strong
   symptom edges;
2. exports the learned network structure to BIF-compatible ground truth
   comparison and prints a clinician-readable report;
3. demonstrates Meek rule R4 via the background-knowledge flag.

Run:
    python examples/medical_diagnosis_model.py
"""

from __future__ import annotations

from repro import forward_sample, learn_structure
from repro.graphs.dag import dag_to_cpdag
from repro.graphs.metrics import arrowhead_metrics, skeleton_metrics
from repro.networks.classic import cancer


def main() -> None:
    network = cancer()
    names = network.names
    print("Ground truth (Korb & Nicholson's Cancer network):")
    for u, v in network.edges():
        print(f"  {names[u]} -> {names[v]}")

    truth = dag_to_cpdag(network.n_nodes, network.edges())

    print(f"\n{'samples':>8} | {'skeleton F1':>11} | {'arrows ok':>9} | learned edges")
    print("-" * 78)
    for m in (1000, 10000, 80000):
        data = forward_sample(network, m, rng=21)
        result = learn_structure(data, alpha=0.05)
        sk = skeleton_metrics(result.skeleton.edges(), network.edges())
        ar = arrowhead_metrics(result.cpdag, truth)
        edges = []
        for a, b in sorted(result.directed_edge_names()):
            edges.append(f"{a}->{b}")
        for u, v in sorted(result.cpdag.undirected_edges()):
            edges.append(f"{names[u]}--{names[v]}")
        print(
            f"{m:>8} | {sk.f1:>11.2f} | {ar.true_positives:>4}/{ar.true_positives + ar.false_negatives:<4} | "
            + ", ".join(edges)
        )

    print(
        "\nThe strong symptom edges (Cancer->Xray, Cancer->Dyspnoea) appear\n"
        "first; the weak risk-factor edge Pollution->Cancer (odds shift of\n"
        "only a few percent) needs tens of thousands of records — the\n"
        "sample-size scaling the paper's Fig. 3 sweeps."
    )

    # Background-knowledge orientation (Meek R4 becomes relevant only with
    # externally-supplied arrows; show the API).
    data = forward_sample(network, 80000, rng=21)
    result_r4 = learn_structure(data, alpha=0.05, apply_r4=True)
    assert result_r4.cpdag.skeleton_edges() == learn_structure(data).cpdag.skeleton_edges()
    print("\nWith apply_r4=True the orientation closure also applies Meek's")
    print("rule 4 (a no-op without background knowledge, as Meek proved).")

    # Causal what-if: observing a positive X-ray raises P(Cancer), but
    # *forcing* a positive X-ray (do-operator: graph surgery) cannot.
    from repro import interventional_marginal
    from repro.inference import VariableElimination

    C, X = names.index("Cancer"), names.index("Xray")
    ve = VariableElimination(network)
    print("\nCausal vs observational reasoning on the true model:")
    print(f"  P(Cancer=1)              = {ve.marginal(C)[1]:.4f}")
    print(f"  P(Cancer=1 | Xray=+)     = {ve.marginal(C, {X: 1})[1]:.4f}  (diagnostic)")
    print(f"  P(Cancer=1 | do(Xray=+)) = {interventional_marginal(network, C, {X: 1})[1]:.4f}"
          "  (forcing the test result changes nothing)")


if __name__ == "__main__":
    main()
