"""Full pipeline: structure learning -> DAG extension -> parameter fitting
-> probabilistic inference.

Demonstrates the complete workflow a downstream user runs on their own
data: learn the CPDAG with Fast-BNS, pick a DAG from the equivalence class
(Dor-Tarsi consistent extension), estimate its CPTs, and answer
diagnostic queries with exact variable-elimination inference — then
validates every stage against the generating model.

Run:
    python examples/end_to_end_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    VariableElimination,
    fit_cpts,
    forward_sample,
    learn_structure,
    log_likelihood,
    pdag_to_dag,
)
from repro.networks.classic import asia


def main() -> None:
    truth = asia()
    names = truth.names
    data = forward_sample(truth, 50000, rng=42)
    print(f"Data: {data.n_samples} records over {data.n_variables} variables\n")

    # Stage 1: structure -------------------------------------------------- #
    result = learn_structure(data, alpha=0.01, gs=6)
    print(
        f"[structure] {result.skeleton.n_edges} edges "
        f"({result.cpdag.n_directed} compelled), {result.n_ci_tests} CI tests, "
        f"{result.elapsed['total']:.2f}s"
    )

    # Stage 2: pick a DAG from the equivalence class ----------------------- #
    dag_edges = pdag_to_dag(result.cpdag)
    print(f"[extension] consistent DAG with {len(dag_edges)} directed edges")

    # Stage 3: parameters -------------------------------------------------- #
    model = fit_cpts(data.n_variables, dag_edges, data, pseudo_count=1.0)
    ll_learned = log_likelihood(model, data) / data.n_samples
    ll_truth = log_likelihood(truth, data) / data.n_samples
    print(
        f"[parameters] per-record log-likelihood: learned {ll_learned:.4f} "
        f"vs generating model {ll_truth:.4f}"
    )

    # Stage 4: inference --------------------------------------------------- #
    ve_learned = VariableElimination(model)
    ve_truth = VariableElimination(truth)
    S, L, B, X, D = (names.index(n) for n in ("Smoking", "LungCancer", "Bronchitis", "Xray", "Dysp"))

    queries = [
        ("P(LungCancer | Xray=+, Dysp=+)", L, {X: 1, D: 1}),
        ("P(LungCancer | Xray=-, Dysp=+)", L, {X: 0, D: 1}),
        ("P(Bronchitis | Dysp=+, Smoking=+)", B, {D: 1, S: 1}),
        ("P(Smoking | LungCancer=+)", S, {L: 1}),
    ]
    print(f"\n{'query':38s} | learned | true model")
    print("-" * 62)
    worst = 0.0
    for label, var, evidence in queries:
        p_learned = ve_learned.marginal(var, evidence)[1]
        p_truth = ve_truth.marginal(var, evidence)[1]
        worst = max(worst, abs(p_learned - p_truth))
        print(f"{label:38s} |  {p_learned:5.3f}  |  {p_truth:5.3f}")
    print(f"\nlargest posterior deviation: {worst:.3f}")
    print(
        "\nThe learned model reproduces the generating model's diagnostic\n"
        "posteriors despite never seeing the true graph — the end-to-end\n"
        "guarantee the library provides."
    )

    # Sanity: the learned model's samples look like the original data.
    resampled = forward_sample(model, 50000, rng=1)
    for var in (L, B, D):
        a = float(np.mean(data.column(var)))
        b = float(np.mean(resampled.column(var)))
        assert abs(a - b) < 0.02, (names[var], a, b)
    print("resampling check passed: learned model reproduces marginals.")


if __name__ == "__main__":
    main()
