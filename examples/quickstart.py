"""Quickstart: learn a Bayesian-network structure with Fast-BNS.

Samples data from the classic Asia (chest-clinic) network, learns the
CPDAG back with Fast-BNS, and compares it to the ground truth.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import FastBNS, dag_to_cpdag, forward_sample, shd, skeleton_metrics
from repro.networks.classic import asia


def main() -> None:
    # 1. Ground-truth network and synthetic data ------------------------- #
    network = asia()
    print(f"True network: {network.n_nodes} nodes, {network.n_edges} edges")
    data = forward_sample(network, n_samples=10000, rng=0)
    print(f"Sampled {data.n_samples} complete observations\n")

    # 2. Learn the structure --------------------------------------------- #
    learner = FastBNS(alpha=0.05, gs=4)
    result = learner.fit(data)

    print(f"CI tests performed : {result.n_ci_tests}")
    print(f"max depth reached  : {result.stats.max_depth}")
    print(f"skeleton time      : {result.elapsed['skeleton']:.3f}s")
    print(f"orientation time   : {result.elapsed['orientation']:.3f}s\n")

    # 3. Inspect the learned CPDAG ---------------------------------------- #
    print("Learned CPDAG:")
    for a, b in sorted(result.directed_edge_names()):
        print(f"  {a} -> {b}")
    for u, v in sorted(result.cpdag.undirected_edges()):
        print(f"  {result.names[u]} -- {result.names[v]}")

    # 4. Score against the ground truth ----------------------------------- #
    truth_cpdag = dag_to_cpdag(network.n_nodes, network.edges())
    metrics = skeleton_metrics(result.skeleton.edges(), network.edges())
    print(f"\nskeleton F1 : {metrics.f1:.3f} "
          f"(precision {metrics.precision:.3f}, recall {metrics.recall:.3f})")
    print(f"SHD to true CPDAG: {shd(result.cpdag, truth_cpdag)}")
    print("\nNote: Asia contains near-invisible edges (P(Asia)=0.01) that no"
          "\nconstraint-based learner can find at this sample size.")


if __name__ == "__main__":
    main()
