"""Server bench: mixed-dataset serving through the EngineServer.

The status quo below the server layer is single-dataset tooling: facing a
request stream that interleaves datasets, a ``fastbns batch``-era client
must tear down and respawn a :class:`LearningSession` at every dataset
switch — losing the worker pool, the sufficient-statistics cache and the
result cache each time ("every dataset pays a full session spin-up
because nothing above LearningSession manages more than one").  The
:class:`EngineServer` keeps every dataset's session live under its LRU
budget and dispatches different datasets' requests on concurrent lanes.

This bench serves the same interleaved multi-round stream both ways and
asserts

* the server is at least 1.5x faster than the sequential per-dataset
  loop (2 datasets, ``n_jobs=2`` sessions, 2 dispatcher threads),
* response payloads are byte-identical between the two paths (the JSON
  rendering of every result, fingerprint and error matches per request —
  routing and concurrency change *where* requests run, never answers),
* session eviction verifiably closes worker pools, and the run leaks no
  ``/dev/shm`` blocks once the server closes.
"""

from __future__ import annotations

import json
import os
import time

from repro.bench.tables import render_table
from repro.bench.workloads import make_workload
from repro.engine import BatchServer, EngineServer, LearningSession

NETWORKS = (("alarm", 1000), ("insurance", 1000))
N_JOBS = 2
THREADS = 2
ROUNDS = 3
SHM_DIR = "/dev/shm"


def _request_stream(labels) -> list[dict]:
    """ROUNDS identical rounds of per-dataset blocks: every dataset switch
    costs the sequential client a session respawn, and every round after
    the first is pure result-cache traffic for the server."""
    stream = []
    for _ in range(ROUNDS):
        for label in labels:
            stream += [
                {"op": "learn", "dataset": label, "alpha": 0.05},
                {"op": "learn", "dataset": label, "alpha": 0.01},
                {"op": "blanket", "dataset": label, "target": 0},
            ]
    return stream


def _serve_sequential_loop(datasets: dict, requests: list[dict]) -> list[dict]:
    """The pre-server client: one live session at a time, respawned at
    every dataset switch (session config identical to the server's)."""
    responses = []
    current = None
    session = server = None
    try:
        for raw in requests:
            label = raw["dataset"]
            if label != current:
                if session is not None:
                    session.close()
                session = LearningSession(datasets[label], alpha=0.05, n_jobs=N_JOBS)
                server = BatchServer(session)
                current = label
            resp = server.handle({k: v for k, v in raw.items() if k != "dataset"})
            resp["dataset"] = label
            responses.append(resp)
    finally:
        if session is not None:
            session.close()
    return responses


def _shm_entries() -> set[str] | None:
    try:
        return set(os.listdir(SHM_DIR))
    except OSError:
        return None


def _payload_key(resp: dict) -> str:
    """Everything a client consumes, minus timing/caching metadata."""
    return json.dumps(
        {k: resp[k] for k in ("op", "dataset", "fingerprint", "result", "error")},
        sort_keys=True,
    )


def test_server_mixed_dataset_throughput(benchmark, record, record_json):
    workloads = {name: make_workload(name, m) for name, m in NETWORKS}
    datasets = {wl.label: wl.dataset for wl in workloads.values()}
    requests = _request_stream(list(datasets))
    shm_before = _shm_entries()

    def run() -> dict:
        t0 = time.perf_counter()
        sequential = _serve_sequential_loop(datasets, requests)
        t_seq = time.perf_counter() - t0

        server = EngineServer(alpha=0.05, n_jobs=N_JOBS, max_sessions=len(datasets))
        with server:
            for label, dataset in datasets.items():
                server.register(label, dataset)
            t0 = time.perf_counter()
            concurrent = server.serve(requests, threads=THREADS)
            t_conc = time.perf_counter() - t0

            # Eviction probe: a third dataset over budget evicts the LRU
            # session; its pool must be shut down and its id must revive
            # on re-touch with identical answers.
            extra = make_workload("hepar2", 500)
            server.register(extra.label, extra.dataset)
            victim_label = requests[0]["dataset"]
            victim_slot = server._slots[server._id_fp[victim_label]]
            server.handle({"op": "learn", "dataset": extra.label, "max_depth": 1})
            eviction = {
                "victim_retired": victim_slot.retired,
                "victim_closed": victim_slot.session.closed,
                "victim_pool_gone": victim_slot.session._pool is None,
                "revived_identical": _payload_key(
                    server.handle(dict(requests[0]))
                ) == _payload_key(concurrent[0]),
                "evictions": server.stats()["sessions"]["evictions"],
            }
            stats = server.stats()
        return {
            "sequential_s": t_seq,
            "concurrent_s": t_conc,
            "sequential": sequential,
            "concurrent": concurrent,
            "eviction": eviction,
            "stats": stats,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    # Byte-identical payloads, request by request.
    for seq, conc in zip(out["sequential"], out["concurrent"], strict=True):
        assert _payload_key(seq) == _payload_key(conc)

    # The server actually reused sessions: exactly one spin-up per dataset
    # during the stream (plus the eviction probe's two).
    assert out["stats"]["sessions"]["spinups"] == len(datasets) + 2
    assert out["stats"]["totals"]["n_result_cache_hits"] > 0

    # Eviction closed the pool; answers revived from the source.
    assert all(out["eviction"].values()), out["eviction"]

    # No /dev/shm leaks once every session is closed.
    shm_after = _shm_entries()
    if shm_before is not None:
        leaked = shm_after - shm_before
        assert not leaked, f"leaked shared-memory blocks: {sorted(leaked)}"

    speedup = out["sequential_s"] / max(out["concurrent_s"], 1e-9)
    assert speedup >= 1.5, f"server only {speedup:.2f}x over the sequential loop"

    labels = list(datasets)
    text = render_table(
        ["serving mode", "requests", "seconds", "sessions spawned", "result hits"],
        [
            [
                "sequential per-dataset loop",
                len(requests),
                f"{out['sequential_s']:.3f}",
                ROUNDS * len(labels),
                "-",
            ],
            [
                f"EngineServer ({THREADS} threads)",
                len(requests),
                f"{out['concurrent_s']:.3f}",
                len(labels),
                out["stats"]["totals"]["n_result_cache_hits"],
            ],
            ["speedup", "", f"{speedup:.1f}x", "", ""],
        ],
        title=(
            f"Multi-dataset serving — {' + '.join(labels)}, "
            f"{ROUNDS} rounds, n_jobs={N_JOBS}"
        ),
    )
    record("server_throughput", text)
    record_json(
        "server",
        {
            "networks": labels,
            "n_datasets": len(labels),
            "n_requests": len(requests),
            "rounds": ROUNDS,
            "n_jobs": N_JOBS,
            "threads": THREADS,
            "sequential_s": out["sequential_s"],
            "concurrent_s": out["concurrent_s"],
            "speedup": speedup,
            "requests_per_s": len(requests) / out["concurrent_s"],
            "result_cache_hits": out["stats"]["totals"]["n_result_cache_hits"],
            "evictions": out["eviction"]["evictions"],
        },
    )
