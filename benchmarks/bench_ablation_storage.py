"""Ablation: cache-friendly (variable-major) vs sample-major storage.

Two measurements:

* **real**: the G^2 kernel timed on both layouts on this host (NumPy
  column gathers are contiguous vs strided — the same locality contrast
  the paper engineered in C++);
* **modelled**: the paper's T3/T4 ratio from the cost model, which the
  test-suite pins at 5.57 for d = 2.
"""

from __future__ import annotations

from repro.bench.tables import render_table
from repro.bench.workloads import make_workload
from repro.citests.gsquare import GSquareTest
from repro.simcpu.costmodel import CostModel
from repro.simcpu.machine import MachineSpec


def _kernel(dataset, n_tests=60):
    tester = GSquareTest(dataset)
    n = dataset.n_variables
    for i in range(n_tests):
        x = i % n
        y = (i + 1) % n
        z = ((i + 2) % n, (i + 3) % n)
        tester.test(x, y, tuple(v for v in z if v not in (x, y)))


def test_storage_layout_variable_major(benchmark):
    wl = make_workload("hepar2", 5000)
    data = wl.dataset.with_layout("variable-major")
    benchmark(lambda: _kernel(data))


def test_storage_layout_sample_major(benchmark):
    wl = make_workload("hepar2", 5000)
    data = wl.dataset.with_layout("sample-major")
    benchmark(lambda: _kernel(data))


def test_storage_model_ratio(benchmark, record):
    def compute():
        spec = MachineSpec()
        friendly = CostModel(spec, cache_friendly=True)
        unfriendly = CostModel(spec, cache_friendly=False)
        rows = []
        for d in range(5):
            m = 5000
            ratio = unfriendly.gather_units(m, d + 2) / friendly.gather_units(m, d + 2)
            rows.append([d, f"{ratio:.2f}"])
        return render_table(
            ["depth", "S_cache (T3/T4)"],
            rows,
            title="Ablation: modelled cache-storage speedup per depth",
        )

    text = benchmark.pedantic(compute, rounds=1, iterations=1)
    record("ablation_storage_model", text)
    assert "5.5" in text  # the paper's 5.57 at B=64, ratio 8
