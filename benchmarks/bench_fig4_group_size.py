"""Fig. 4 bench: group-size (gs) effect on CI-test counts and runtime.

Entirely *measured* (no simulation): gs changes which tests execute.
Shape assertions encode the paper's Fig. 4: the CI-test count inflation is
monotone in gs, stays modest (<~10%) for gs <= 8, and grows much faster
beyond.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig4
from repro.bench.workloads import is_full_mode

NETWORKS = (
    ("alarm", "insurance", "hepar2", "munin1") if is_full_mode() else ("alarm", "insurance")
)
GROUP_SIZES = (1, 2, 4, 6, 8, 12, 16)
N_SAMPLES = 10000 if is_full_mode() else 5000


def test_fig4_group_size_sweep(benchmark, record):
    out = benchmark.pedantic(
        lambda: experiment_fig4(
            networks=NETWORKS, n_samples=N_SAMPLES, group_sizes=GROUP_SIZES
        ),
        rounds=1,
        iterations=1,
    )
    record("fig4_group_size", out.text)
    for label, data in out.data.items():
        inflation = dict(zip(data["group_sizes"], data["inflation_pct"], strict=True))
        assert inflation[1] == 0.0
        # Monotone non-decreasing in gs.
        values = data["inflation_pct"]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:], strict=False)), label
        # Paper: moderate inflation up to gs = 8, faster growth beyond.
        assert inflation[16] >= inflation[8], label
