"""Local-discovery bench: Markov-blanket algorithms vs the global skeleton.

Quantifies the related-work trade-off (refs [31], [32]): per-target MB
discovery needs orders of magnitude fewer CI tests than the global
skeleton when only a few targets matter (feature selection), at some
accuracy cost on data.
"""

from __future__ import annotations

from repro.bench.tables import render_table
from repro.bench.workloads import make_workload
from repro.citests.gsquare import GSquareTest
from repro.core.learn import learn_structure
from repro.core.markov_blanket import iamb, true_markov_blanket


def test_markov_blanket_locality(benchmark, record):
    def compute():
        wl = make_workload("alarm", 5000)
        data = wl.dataset
        truth_edges = wl.network.edges()
        global_run = learn_structure(data)

        tester = GSquareTest(data, alpha=0.01)
        n = data.n_variables
        targets = list(range(0, n, max(1, n // 8)))[:8]
        rows = []
        total_mb_tests = 0
        hits = total = 0
        for target in targets:
            res = iamb(tester, n, target, max_conditioning=3)
            truth = true_markov_blanket(n, truth_edges, target)
            total_mb_tests += res.n_tests
            hits += len(res.blanket & truth)
            total += len(truth)
            rows.append(
                [
                    wl.network.names[target],
                    len(truth),
                    len(res.blanket),
                    len(res.blanket & truth),
                    res.n_tests,
                ]
            )
        text = render_table(
            ["target", "|MB| true", "|MB| found", "overlap", "CI tests"],
            rows,
            title=(
                f"IAMB per-target discovery on {wl.label} (m=5000); "
                f"global skeleton needed {global_run.n_ci_tests} tests"
            ),
        )
        return (total_mb_tests, global_run.n_ci_tests, hits, total), text

    (mb_tests, global_tests, hits, total), text = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    record("markov_blanket_locality", text)
    # Locality claim: 8 blankets cost far less than the global skeleton.
    assert mb_tests < global_tests / 2
    assert hits / max(total, 1) > 0.5
