"""Store bench: warm restart against a durable store vs. a cold process.

The persistence claim is also operational: a *restarted* process pointed
at the same ``--store`` file should answer a previously-served stream
from SQLite — no skeleton learns, no contingency tables, no CI tests —
and the payloads must be byte-identical to what the cold run produced.
This bench runs the same mixed stream through two fresh session+server
pairs (the second simulating a restart by reopening the store file) and
asserts

* the warm restart is at least 50x faster than the cold run,
* every valid warm response is served ``cached: true`` from the store,
* warm payloads are byte-identical (JSON text equality) to cold ones, and
* the warm session never learned a skeleton.
"""

from __future__ import annotations

import json
import time

from repro.bench.tables import render_table
from repro.bench.workloads import make_workload
from repro.engine import BatchServer, LearningSession

NETWORK = "alarm"
N_SAMPLES = 2000


def _request_stream(names) -> list[dict]:
    """Mixed learns and blankets with repeats — the serving workload."""
    base = [
        {"op": "learn", "alpha": 0.05},
        {"op": "learn", "alpha": 0.01},
        {"op": "learn", "alpha": 0.05, "gs": 2},
        {"op": "blanket", "target": names[0]},
        {"op": "blanket", "target": names[len(names) // 2]},
        {"op": "blanket", "target": names[-1]},
    ]
    return base + [dict(r) for r in base]


def test_persistent_store_warm_restart(benchmark, record, record_json, tmp_path):
    wl = make_workload(NETWORK, N_SAMPLES)
    requests = _request_stream(wl.dataset.names)
    store_path = str(tmp_path / "bench_store.sqlite")

    def run() -> dict:
        # Cold: empty store, everything computed and written through.
        with LearningSession(wl.dataset, alpha=0.05, store=store_path) as session:
            server = BatchServer(session)
            t0 = time.perf_counter()
            cold = server.serve(requests)
            t_cold = time.perf_counter() - t0
            cold_learns = session.n_skeleton_learns
        # Warm restart: new process state, same store file.
        with LearningSession(wl.dataset, alpha=0.05, store=store_path) as session:
            server = BatchServer(session)
            t0 = time.perf_counter()
            warm = server.serve(requests)
            t_warm = time.perf_counter() - t0
            stats = server.stats()
            warm_learns = session.n_skeleton_learns
        return {
            "cold_s": t_cold,
            "warm_s": t_warm,
            "cold": cold,
            "warm": warm,
            "stats": stats,
            "cold_learns": cold_learns,
            "warm_learns": warm_learns,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    # Byte-identical payloads across the restart; everything served cached.
    for c, w in zip(out["cold"], out["warm"], strict=True):
        assert json.dumps(c["result"]) == json.dumps(w["result"])
        assert w["cached"]
    assert out["cold_learns"] > 0
    assert out["warm_learns"] == 0, "warm restart relearned a skeleton"

    stats = out["stats"]
    store_block = stats["store"]
    assert store_block["n_store_result_hits"] > 0, "store never hit"
    speedup = out["cold_s"] / max(out["warm_s"], 1e-9)
    assert speedup >= 50.0, f"warm restart only {speedup:.1f}x faster than cold"

    text = render_table(
        ["run", "requests", "seconds", "store hits", "skeleton learns"],
        [
            ["cold start", len(requests), f"{out['cold_s']:.3f}", "-", out["cold_learns"]],
            [
                "warm restart",
                len(requests),
                f"{out['warm_s']:.3f}",
                store_block["n_store_result_hits"],
                out["warm_learns"],
            ],
            ["speedup", "", f"{speedup:.1f}x", "", ""],
        ],
        title=f"Persistent store — {wl.label}, m={N_SAMPLES}, restart vs cold",
    )
    record("persistent_store", text)
    record_json(
        "store",
        {
            "network": wl.label,
            "n_samples": N_SAMPLES,
            "n_requests": len(requests),
            "cold_s": out["cold_s"],
            "warm_s": out["warm_s"],
            "speedup": speedup,
            "store_result_hits": store_block["n_store_result_hits"],
            "cold_skeleton_learns": out["cold_learns"],
            "warm_skeleton_learns": out["warm_learns"],
        },
    )
