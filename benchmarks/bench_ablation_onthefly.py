"""Ablation: on-the-fly conditioning-set generation vs materialisation.

The paper's fourth optimisation avoids storing every edge's subset list.
This bench measures the storage the baseline would need (ints materialised
across the run) and the runtimes of both modes; results are identical
(property-tested), so this is purely a resource comparison.
"""

from __future__ import annotations

from repro.bench.tables import render_table
from repro.bench.workloads import make_workload
from repro.citests.gsquare import GSquareTest
from repro.core.skeleton import learn_skeleton


def _run(dataset, onthefly: bool):
    tester = GSquareTest(dataset)
    return learn_skeleton(tester, dataset.n_variables, onthefly=onthefly)


def test_onthefly_mode(benchmark):
    data = make_workload("alarm", 5000).dataset
    _, _, stats = benchmark.pedantic(lambda: _run(data, True), rounds=1, iterations=1)
    assert stats.materialised_set_ints == 0


def test_materialised_mode(benchmark):
    data = make_workload("alarm", 5000).dataset
    _, _, stats = benchmark.pedantic(lambda: _run(data, False), rounds=1, iterations=1)
    assert stats.materialised_set_ints > 0


def test_onthefly_memory_table(benchmark, record):
    def compute():
        rows = []
        for name in ("alarm", "insurance"):
            data = make_workload(name, 5000).dataset
            _, _, mat = _run(data, False)
            ints = mat.materialised_set_ints
            rows.append([name, f"{ints:,}", f"{ints * 8 / 1024:.0f} KiB", "0 B"])
        return render_table(
            ["network", "materialised ints", "baseline memory", "on-the-fly memory"],
            rows,
            title="Ablation: conditioning-set storage (baseline vs on-the-fly)",
        )

    text = benchmark.pedantic(compute, rounds=1, iterations=1)
    record("ablation_onthefly", text)
