"""Table I bench: measurable properties of the three parallelism
granularities (load balance, atomic operations, per-item workload).

The paper's Table I is qualitative (check marks); this bench quantifies
each claimed property on a real execution trace.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_table1


def test_table1_granularity_properties(benchmark, record):
    out = benchmark.pedantic(
        lambda: experiment_table1(network="alarm", n_samples=5000),
        rounds=1,
        iterations=1,
    )
    record("table1_granularity_properties", out.text)
    imb = out.data["imbalance"]
    # Load balance: the dynamic pool beats the static edge partition.
    assert imb["ci-level"] < imb["edge-level"]
    # Atomic operations: only sample-level needs them, one per sample/test.
    assert out.data["atomic_ops_sample_level"] == out.data["n_tests"] * 5000
