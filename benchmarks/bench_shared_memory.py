"""Zero-copy shared-memory dataset plane vs pickled dataset shipping.

The :class:`~repro.parallel.backends.WorkerPool` can transport the dataset
to process workers two ways: the classic path re-creates it per worker
(pickled under ``spawn``; inherited-then-privately-widened under
``fork``), the shared-memory plane (:mod:`repro.datasets.shm`) exports the
int64-widened columns once and ships only block names — workers attach
read-only views of the same physical pages.

This bench builds an Alarm workload large enough that the data dominates a
worker's footprint and, at ``n_jobs >= 4``, asserts the plane's two
claims:

* **per-worker memory shrinks** — after every worker fully materialises
  its encoding layer, the mean per-worker *private* footprint
  (``Private_Clean + Private_Dirty`` of ``smaps_rollup``; plain RSS
  counts shared pages in every attacher) is at most
  ``MEMORY_RATIO_CEILING`` of the pickled path's;
* **pool start gets faster** — time from constructing the pool to every
  worker serving from a fully-warm layer (the pickled path pays one
  widening pass *per worker*, the plane one *total*) does not regress,
  and the measured speedup is recorded;
* **results are bit-identical** — the attached plane serves the same
  bits: identical verdicts from both pools and identical
  statistic/dof/p-value floats from testers over attached vs private
  encodings.

Emits ``BENCH_shared_memory.json`` (per-path footprints, start times,
speedup) for cross-PR trend tracking.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.tables import render_table
from repro.bench.workloads import make_workload
from repro.citests.gsquare import GSquareTest
from repro.datasets.encoded import EncodedDataset
from repro.datasets.shm import shared_memory_available
from repro.parallel.backends import WorkerPool

NETWORK = "alarm"
N_SAMPLES = 120_000  # ~35 MB int64 plane: data dominates worker footprints
N_JOBS = 4
ROUNDS = 2  # best-of-N pool starts per path
#: Mean per-worker private footprint with the plane must be at most this
#: fraction of the pickled path's (measured ~0.15: the widened plane is
#: shared while pickled workers each hold a private copy).
MEMORY_RATIO_CEILING = 0.6
#: Start-time floor: the plane must not be meaningfully slower.  Slightly
#: below 1.0 so scheduler noise on a sub-second measurement cannot flip
#: the gate; the measured speedup (one widening pass total instead of one
#: per worker) is asserted softly and recorded in the JSON artefact.
START_SPEEDUP_FLOOR = 0.9

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="platform provides no usable shared memory"
)


@pytest.fixture(scope="module")
def dataset():
    return make_workload(NETWORK, N_SAMPLES).dataset


def _probe_jobs(n_vars: int) -> list:
    """A small eval round touching several endpoint pairs."""
    return [
        (u, u + 1, ((), (u + 2,) if u + 2 < n_vars else ()))
        for u in range(0, min(n_vars - 1, 8), 2)
    ]


def _start_and_warm(dataset, use_shm: bool) -> tuple[float, list[dict], list]:
    """One measured pool start: construct + every worker fully warm."""
    t0 = time.perf_counter()
    with WorkerPool(dataset, N_JOBS, use_shm=use_shm) as pool:
        assert pool.uses_shm is use_shm
        warm = pool.warm_up()
        elapsed = time.perf_counter() - t0
        verdicts = pool.eval_groups(_probe_jobs(dataset.n_variables))
    return elapsed, warm, verdicts


def test_shared_plane_memory_and_start(dataset, record, record_json):
    runs = {True: [], False: []}
    for _ in range(ROUNDS):
        for use_shm in (False, True):
            runs[use_shm].append(_start_and_warm(dataset, use_shm))

    # Bit-identical serving across transports, every round.
    baseline_verdicts = runs[False][0][2]
    for per_path in runs.values():
        for _, _, verdicts in per_path:
            assert verdicts == baseline_verdicts

    # Checksums prove every worker materialised the same columns.
    checksums = {w["checksum"] for per_path in runs.values() for _, warm, _ in per_path for w in warm}
    assert len(checksums) == 1

    start_pickled = min(t for t, _, _ in runs[False])
    start_shm = min(t for t, _, _ in runs[True])
    speedup = start_pickled / start_shm

    def mean_private_kb(per_path) -> float | None:
        vals = [w["private_kb"] for _, warm, _ in per_path for w in warm]
        if any(v is None for v in vals):
            return None
        return float(np.mean(vals))

    private_pickled = mean_private_kb(runs[False])
    private_shm = mean_private_kb(runs[True])

    rows = [
        ["pickled", f"{start_pickled:.3f}", _fmt_kb(private_pickled)],
        ["shm plane", f"{start_shm:.3f}", _fmt_kb(private_shm)],
        ["ratio", f"{speedup:.2f}x faster", _fmt_ratio(private_shm, private_pickled)],
    ]
    record(
        "shared_memory",
        render_table(
            ["transport", "pool start+warm (s)", "mean private/worker"],
            rows,
            title=f"Shared-memory dataset plane — {NETWORK}, m={N_SAMPLES}, n_jobs={N_JOBS}",
        ),
    )
    record_json(
        "shared_memory",
        {
            "network": NETWORK,
            "n_samples": N_SAMPLES,
            "n_jobs": N_JOBS,
            "start_s_pickled": start_pickled,
            "start_s_shm": start_shm,
            "start_speedup": speedup,
            "private_kb_per_worker_pickled": private_pickled,
            "private_kb_per_worker_shm": private_shm,
            "memory_ratio": (
                None if private_pickled in (None, 0) else private_shm / private_pickled
            ),
        },
    )

    assert speedup >= START_SPEEDUP_FLOOR, (
        f"shm pool start regressed: {start_shm:.3f}s vs pickled {start_pickled:.3f}s"
    )
    if private_pickled is None:  # non-Linux: no smaps_rollup
        pytest.skip("per-worker private memory not measurable on this platform")
    assert private_shm <= MEMORY_RATIO_CEILING * private_pickled, (
        f"per-worker private memory did not shrink: shm {private_shm:.0f} KiB "
        f"vs pickled {private_pickled:.0f} KiB"
    )


def test_attached_plane_serves_identical_pvalues(dataset):
    """Tester over an attached plane == tester over private encodings, bit for bit."""
    export = EncodedDataset(dataset).export_shm()
    try:
        attached = EncodedDataset.attach_shm(export.handle)
        local = GSquareTest(dataset, encoded=EncodedDataset(dataset))
        remote = GSquareTest(attached.dataset, encoded=attached)
        n = dataset.n_variables
        groups = [
            (0, 1, [(), (2,), (3,), (2, 3)]),
            (4, 5, [(6,), (7,), (6, 7)]),
            (n - 2, n - 1, [(), (0,), (0, 1)]),
        ]
        for x, y, sets in groups:
            for a, b in zip(local.test_group(x, y, sets), remote.test_group(x, y, sets), strict=True):
                assert (a.statistic, a.dof, a.p_value, a.independent) == (
                    b.statistic, b.dof, b.p_value, b.independent
                )
        del attached, remote
    finally:
        export.close()


def _fmt_kb(v: float | None) -> str:
    return "n/a" if v is None else f"{v / 1024:.1f} MiB"


def _fmt_ratio(num: float | None, den: float | None) -> str:
    if num is None or den in (None, 0):
        return "n/a"
    return f"{num / den:.2f}x"
