"""Table II bench: build every benchmark network and verify its shape.

Regenerates the paper's Table II (network roster with node/edge counts) and
benchmarks catalog construction.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_table2
from repro.networks.catalog import get_network


def test_table2_networks(benchmark, record):
    out = benchmark.pedantic(experiment_table2, rounds=1, iterations=1)
    record("table2_networks", out.text)
    for name, row in out.data.items():
        assert row["paper_nodes"] == row["built_nodes"], name
        assert row["paper_edges"] == row["built_edges"], name


def test_catalog_build_speed_alarm(benchmark):
    net = benchmark(lambda: get_network("alarm"))
    assert net.n_nodes == 37


def test_catalog_build_speed_munin1(benchmark):
    net = benchmark.pedantic(lambda: get_network("munin1"), rounds=2, iterations=1)
    assert net.n_nodes == 186
