"""Ablation: dynamic work pool vs static partition, and robustness of the
Fig. 5 trend to the per-depth overhead constant.

* The scheduling ablation isolates S_CI: same trace, same cost model, only
  the scheduler differs (the paper's eq. (1) vs eq. (2) contrast).
* The overhead sweep shows the small-network speedup cap is not an
  artefact of one constant.
"""

from __future__ import annotations

import dataclasses

from repro.bench.experiments import traced_run
from repro.bench.tables import render_series
from repro.bench.workloads import make_workload
from repro.simcpu.costmodel import CostModel
from repro.simcpu.scheduler import simulate


def test_workpool_vs_static_partition(benchmark, record):
    def compute():
        run = traced_run(make_workload("alarm", 5000))
        threads = (2, 4, 8, 16, 32)
        series = {
            "dynamic pool (CI-level)": [run.speedup("ci", t) for t in threads],
            "static partition (edge-level)": [run.speedup("edge", t) for t in threads],
        }
        return series, render_series(
            "threads",
            list(threads),
            series,
            title="Ablation: scheduling policy only (same trace, same costs)",
        )

    series, text = benchmark.pedantic(compute, rounds=1, iterations=1)
    record("ablation_workpool", text)
    for a, b in zip(series["static partition (edge-level)"], series["dynamic pool (CI-level)"], strict=True):
        assert b >= a * 0.99


def test_region_overhead_sensitivity(benchmark, record):
    def compute():
        run = traced_run(make_workload("alarm", 5000))
        overheads = (1e-4, 1e-3, 3e-3, 1e-2)
        speedups = []
        for ro in overheads:
            spec = dataclasses.replace(run.model.machine, region_overhead_s=ro)
            model = CostModel(spec, cache_friendly=True)
            seq = simulate(run.trace.depths, model, "sequential", 1)
            ci = simulate(run.trace.depths, model, "ci", 32)
            speedups.append(ci.speedup_over(seq))
        series = {"speedup at t=32": speedups}
        return speedups, render_series(
            "region overhead (s)",
            [f"{o:g}" for o in overheads],
            series,
            title="Ablation: per-depth overhead vs small-network speedup",
        )

    speedups, text = benchmark.pedantic(compute, rounds=1, iterations=1)
    record("ablation_region_overhead", text)
    # More fixed serial overhead => lower speedup, monotonically.
    assert all(b <= a + 1e-9 for a, b in zip(speedups, speedups[1:], strict=False))
