"""Fig. 5 bench: Fast-BNS-par/seq speedup across network sizes.

Shape assertion encodes the paper's Fig. 5 claim: large networks achieve
high speedups (good scalability), while the smallest networks are capped
by fixed parallel overhead.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig5


def test_fig5_network_size(benchmark, record):
    out = benchmark.pedantic(lambda: experiment_fig5(n_samples=5000), rounds=1, iterations=1)
    record("fig5_network_size", out.text)
    speedups = {label: row["speedup"] for label, row in out.data.items()}
    assert all(s > 3.0 for s in speedups.values())
    # Scalability claim: the biggest-workload networks reach high speedup.
    assert max(speedups.values()) > 10.0
