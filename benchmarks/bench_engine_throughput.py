"""Engine bench: cold vs. warm request streams through the batch server.

The engine's claim is operational, not statistical: a stream of repeated
and related requests (same dataset, different alphas/targets) served by a
persistent :class:`LearningSession` + :class:`BatchServer` should be far
cheaper the second time — identical requests answered from the result
cache, related ones from the sufficient-statistics cache.  This bench
serves the same mixed learn/blanket stream twice and asserts

* the warm pass is at least 2x faster than the cold pass,
* the stats/result caches registered actual hits, and
* warm payloads are identical to cold payloads, which are themselves
  identical to the uncached ``learn_structure`` path.
"""

from __future__ import annotations

import time

from repro.bench.tables import render_table
from repro.bench.workloads import make_workload
from repro.core.learn import learn_structure
from repro.engine import BatchServer, LearningSession

NETWORK = "alarm"
N_SAMPLES = 2000


def _request_stream(names) -> list[dict]:
    """A repeated-query workload: relearns across alphas plus blanket
    queries for a handful of targets, with every request issued twice."""
    base = [
        {"op": "learn", "alpha": 0.05},
        {"op": "learn", "alpha": 0.01},
        {"op": "learn", "alpha": 0.05, "gs": 2},
        {"op": "blanket", "target": names[0]},
        {"op": "blanket", "target": names[len(names) // 2]},
        {"op": "blanket", "target": names[-1]},
    ]
    return base + [dict(r) for r in base]


def test_engine_throughput(benchmark, record, record_json):
    wl = make_workload(NETWORK, N_SAMPLES)
    requests = _request_stream(wl.dataset.names)

    def run() -> dict:
        session = LearningSession(wl.dataset, alpha=0.05)
        server = BatchServer(session)
        with session:
            t0 = time.perf_counter()
            cold = server.serve(requests)
            t_cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            warm = server.serve(requests)
            t_warm = time.perf_counter() - t0
            stats = server.stats()
        return {
            "cold_s": t_cold,
            "warm_s": t_warm,
            "cold": cold,
            "warm": warm,
            "stats": stats,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    # Warm payloads identical to cold, cold identical to the uncached path.
    for c, w in zip(out["cold"], out["warm"], strict=True):
        assert c["result"] == w["result"]
        assert w["cached"]
    ref = learn_structure(wl.dataset, method="fast-bns", alpha=0.05)
    learned = out["cold"][0]["result"]
    names = wl.dataset.names
    assert learned["directed"] == sorted(
        [names[u], names[v]] for u, v in ref.cpdag.directed_edges()
    )
    assert learned["undirected"] == sorted(
        [names[u], names[v]] for u, v in ref.cpdag.undirected_edges()
    )

    stats = out["stats"]
    assert stats["stats_cache"]["hits"] > 0, "stats cache never hit"
    assert stats["n_result_cache_hits"] > 0, "result cache never hit"
    speedup = out["cold_s"] / max(out["warm_s"], 1e-9)
    assert speedup >= 2.0, f"warm pass only {speedup:.1f}x faster than cold"

    text = render_table(
        ["stream", "requests", "seconds", "result hits", "stats-cache hit rate"],
        [
            ["cold", len(requests), f"{out['cold_s']:.3f}", "-", "-"],
            [
                "warm",
                len(requests),
                f"{out['warm_s']:.3f}",
                stats["n_result_cache_hits"],
                f"{stats['stats_cache']['hit_rate'] * 100:.1f}%",
            ],
            ["speedup", "", f"{speedup:.1f}x", "", ""],
        ],
        title=f"Engine throughput — {wl.label}, m={N_SAMPLES}, cold vs warm stream",
    )
    record("engine_throughput", text)
    record_json(
        "engine_throughput",
        {
            "network": wl.label,
            "n_samples": N_SAMPLES,
            "n_requests": len(requests),
            "cold_s": out["cold_s"],
            "warm_s": out["warm_s"],
            "cold_requests_per_s": len(requests) / out["cold_s"],
            "warm_requests_per_s": len(requests) / out["warm_s"],
            "speedup": speedup,
            "result_cache_hits": stats["n_result_cache_hits"],
            "stats_cache_hit_rate": stats["stats_cache"]["hit_rate"],
        },
    )
