"""Table III bench: overall sequential + parallel comparison.

Regenerates the paper's headline table: Fast-BNS versus the bnlearn /
pcalg / tetrad / parallel-PC analogs, sequential and parallel.  Sequential
columns are measured on this host; parallel columns are simulated at t=32
from the measured traces (see EXPERIMENTS.md).

Shape assertions encode the paper's claims:
* Fast-BNS-seq at least ties the bnlearn analog on every network and does
  strictly fewer CI tests (paper reports 1.4x - 7.2x against bnlearn's
  R/C implementation; against our *vectorised* reference the sequential
  gap is smaller because NumPy's column gathers absorb most of the
  storage-layout penalty — see EXPERIMENTS.md);
* both are orders of magnitude faster than the interpreted pcalg/tetrad
  analog;
* Fast-BNS-par faster than bnlearn-par and parallel-PC analogs.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_table3
from repro.bench.workloads import OVERALL_NETWORKS, is_full_mode

NETWORKS = OVERALL_NETWORKS if is_full_mode() else ("alarm", "insurance", "hepar2")


def test_table3_overall_comparison(benchmark, record):
    out = benchmark.pedantic(
        lambda: experiment_table3(networks=NETWORKS, n_samples=5000),
        rounds=1,
        iterations=1,
    )
    record("table3_overall", out.text)
    for label, row in out.data.items():
        # Allow timing ties within noise; the deterministic saving is the
        # CI-test count, asserted below.
        assert row["fastbns_seq_s"] < row["bnlearn_seq_s"] * 1.15, label
        assert row["naive_seq_s"] > 5 * row["fastbns_seq_s"], label
        assert row["fastbns_par_s"] < row["bnlearn_par_s"], label
        assert row["fastbns_par_s"] < row["parallel_pc_s"], label
        assert row["n_tests_fast"] <= row["n_tests_ref"], label
