"""Table IV bench: simulated perf counters (cache behaviour, FLOPS, CPU
utilisation) for Fast-BNS-par / Fast-BNS-seq / bnlearn-par analog.

Shape assertions encode the paper's observations: Fast-BNS has fewer cache
accesses and drastically lower miss rates than the bnlearn analog, and the
parallel version raises CPU utilisation.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_table4
from repro.bench.workloads import is_full_mode

NETWORKS = ("hepar2", "munin1") if is_full_mode() else ("hepar2",)


def test_table4_perf_counters(benchmark, record):
    out = benchmark.pedantic(
        lambda: experiment_table4(networks=NETWORKS, n_samples=5000),
        rounds=1,
        iterations=1,
    )
    record("table4_perf_counters", out.text)
    for label, reports in out.data.items():
        fast_par = reports["Fast-BNS-par"]
        fast_seq = reports["Fast-BNS-seq"]
        bn_par = reports["bnlearn-par*"]
        assert fast_par.l1_accesses < bn_par.l1_accesses, label
        assert fast_par.l1_miss_rate < bn_par.l1_miss_rate, label
        assert fast_par.ll_miss_rate < 1.0, label
        assert fast_par.cpu_utilization > fast_seq.cpu_utilization, label
