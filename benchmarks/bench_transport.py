"""Transport bench: one shared socket server vs per-client engines.

The pre-transport serving story is one producer per process: ``fastbns
serve`` reads a single stdin stream, so a second user needs a second
engine — its own sessions, its own caches, its own spin-ups.  The socket
transport (``--listen``) multiplexes many connections over one warm
:class:`~repro.engine.server.EngineServer`, each connection driving its
own streaming dispatcher (ordered responses, bounded in-flight window,
backpressure from the window instead of whole-stream buffering).

This bench serves the same interleaved two-dataset request stream to two
clients both ways and asserts the architectural win:

* **baseline — single-connection sequential**: each client gets a
  dedicated engine behind its own socket and drives it lockstep
  (response *i* read before request *i+1*), one client after the other —
  two engines, every distinct request computed twice;
* **shared socket server**: one engine, both clients connected at once,
  each pipelining its stream through the per-connection window — every
  distinct request computed once, repeat traffic (including the *other*
  client's) served from the shared result cache.

Asserts >= 1.5x throughput for the shared server, payload-identical
responses per client (op/dataset/fingerprint/result/error — ``cached``
legitimately differs: that flag *is* the sharing), and that the shared
run computed each distinct request exactly once.  Records
``BENCH_transport.json`` for the README table.
"""

from __future__ import annotations

import json
import threading
import time

from repro.bench.tables import render_table
from repro.bench.workloads import make_workload
from repro.engine import EngineClient, EngineServer, EngineTransport

NETWORKS = (("alarm", 800), ("insurance", 800))
ROUNDS = 2
THREADS = 2
WINDOW = 32
TIMEOUT = 120.0


def _client_stream(labels) -> list[dict]:
    """One user's traffic: ROUNDS rounds interleaving both datasets.

    Round 1 computes, later rounds are repeat traffic; on the shared
    server the *second* client's round 1 is already repeat traffic too.
    """
    return [
        {"op": "learn", "dataset": label, "alpha": alpha, "max_depth": 2}
        for _ in range(ROUNDS)
        for alpha in (0.05, 0.01)
        for label in labels
    ]


def _payload(resp: dict) -> str:
    """Everything a client consumes, minus timing and cache provenance."""
    return json.dumps(
        {k: resp[k] for k in ("op", "dataset", "fingerprint", "result", "error")},
        sort_keys=True,
    )


def _fresh_transport(datasets) -> tuple[EngineServer, EngineTransport]:
    server = EngineServer(alpha=0.05, max_sessions=len(datasets))
    for label, dataset in datasets.items():
        server.register(label, dataset)
    transport = EngineTransport(server, "127.0.0.1:0", threads=THREADS, window=WINDOW)
    transport.start()
    return server, transport


def test_transport_shared_server_throughput(benchmark, record, record_json):
    workloads = {name: make_workload(name, m) for name, m in NETWORKS}
    datasets = {wl.label: wl.dataset for wl in workloads.values()}
    stream = _client_stream(list(datasets))
    n_clients = 2
    n_distinct = 2 * len(datasets)  # two alphas per dataset

    def run() -> dict:
        # Baseline: a dedicated engine per client, driven lockstep over a
        # single connection, one client after the other.
        t0 = time.perf_counter()
        sequential: list[list[dict]] = []
        for _ in range(n_clients):
            server, transport = _fresh_transport(datasets)
            with server:
                try:
                    with EngineClient(transport.describe(), timeout=TIMEOUT) as client:
                        sequential.append([client.request(req) for req in stream])
                finally:
                    transport.shutdown(timeout=TIMEOUT)
        t_seq = time.perf_counter() - t0

        # Shared: one engine, both clients concurrent and pipelined.
        server, transport = _fresh_transport(datasets)
        with server:
            address = transport.describe()
            results: list[list[dict] | None] = [None] * n_clients
            errors: list = []

            def drive(index: int) -> None:
                try:
                    with EngineClient(address, timeout=TIMEOUT) as client:
                        for req in stream:
                            client.send(req)
                        results[index] = client.drain()
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            workers = [
                threading.Thread(target=drive, args=(i,)) for i in range(n_clients)
            ]
            t0 = time.perf_counter()
            for w in workers:
                w.start()
            for w in workers:
                w.join(timeout=TIMEOUT)
            t_conc = time.perf_counter() - t0
            assert not errors, errors
            assert all(not w.is_alive() for w in workers), "client hung"
            transport.shutdown(timeout=TIMEOUT)
            stats = server.stats()
        return {
            "sequential_s": t_seq,
            "concurrent_s": t_conc,
            "sequential": sequential,
            "concurrent": results,
            "stats": stats,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    # Payload-identical responses for every client, request by request —
    # sharing changes who computes, never what anyone receives.
    for baseline, shared in zip(out["sequential"], out["concurrent"], strict=True):
        assert [_payload(a) for a in baseline] == [_payload(b) for b in shared]

    # The shared server computed each distinct request exactly once; the
    # per-client engines each computed all of them.
    totals = out["stats"]["totals"]
    assert totals["n_computed"] == n_distinct
    assert totals["n_result_cache_hits"] == n_clients * len(stream) - n_distinct

    speedup = out["sequential_s"] / max(out["concurrent_s"], 1e-9)
    assert speedup >= 1.5, f"shared socket server only {speedup:.2f}x over per-client engines"

    labels = list(datasets)
    n_total = n_clients * len(stream)
    text = render_table(
        ["serving mode", "requests", "seconds", "req/s", "computed"],
        [
            [
                "per-client engines, lockstep",
                n_total,
                f"{out['sequential_s']:.3f}",
                f"{n_total / out['sequential_s']:.1f}",
                n_clients * n_distinct,
            ],
            [
                f"shared socket server ({n_clients} clients, window={WINDOW})",
                n_total,
                f"{out['concurrent_s']:.3f}",
                f"{n_total / out['concurrent_s']:.1f}",
                totals["n_computed"],
            ],
            ["speedup", "", f"{speedup:.1f}x", "", ""],
        ],
        title=(
            f"Socket transport — {' + '.join(labels)}, {n_clients} clients, "
            f"{ROUNDS} rounds, {THREADS} dispatch threads/conn"
        ),
    )
    record("transport_throughput", text)
    record_json(
        "transport",
        {
            "networks": labels,
            "n_requests": n_total,
            "rounds": ROUNDS,
            "threads": THREADS,
            "window": WINDOW,
            "n_clients": n_clients,
            "sequential_s": out["sequential_s"],
            "concurrent_s": out["concurrent_s"],
            "speedup": speedup,
            "requests_per_s": n_total / out["concurrent_s"],
            "result_cache_hits": totals["n_result_cache_hits"],
        },
    )
