"""Process-plane bench: fingerprint-sharded workers vs lockstep engines.

The socket transport (``bench_transport``) buys sharing — one engine,
every distinct request computed once — but the engine still runs under a
single GIL: JSON parsing, response assembly and lane dispatch for *all*
clients contend in one process, which caps the shared server near 2x two
lockstep engines.  The process plane (``fastbns serve --processes N``,
:class:`~repro.engine.procserve.ProcessPlane`) splits the serve path
itself: a router passes accepted connections to N forked workers, each
with its own engine and GIL, with sessions sharded over the workers by
dataset content fingerprint.

This bench serves the same interleaved two-dataset streams both ways:

* **baseline — two lockstep engines**: each client gets a dedicated
  single-process engine behind its own socket and drives it lockstep,
  one client after the other (every distinct request computed twice);
* **process plane**: one ``--processes 4`` plane, both clients connected
  at once and pipelining; fingerprint sharding still computes every
  distinct request exactly once, *and* different datasets' work runs in
  different processes.

Asserts payload-identical responses per client, exactly-once compute in
the merged manifest (totals the exact sum of the per-worker parts), zero
``/dev/shm`` leakage, and the throughput gate — >= 3x the lockstep
baseline on a >= 4-core box, >= 1.5x on smaller hosts (a 1-core
container cannot show CPU parallelism, only sharing + overlap).

A second phase replays an arrival-paced open-loop trace (the
``fastbns workload replay --pace --connect`` path) against the plane and
records end-to-end p50/p95/p99 into ``BENCH_serve_processes.json`` for
the README table.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.bench.tables import render_table
from repro.bench.workloads import make_workload
from repro.engine import (
    EngineClient,
    EngineServer,
    EngineTransport,
    ProcessPlane,
    WorkloadSpec,
    generate_trace,
    merge_totals,
    replay_client,
)

NETWORKS = (("alarm", 800), ("insurance", 800))
ROUNDS = 2
THREADS = 2
WINDOW = 32
PROCESSES = 4
N_CLIENTS = 2
TIMEOUT = 180.0
MIN_SPEEDUP = 3.0 if (os.cpu_count() or 1) >= 4 else 1.5
SHM_DIR = "/dev/shm"
# Open-loop replay paced below this box's service rate: percentiles then
# measure service latency under dispatch contention, not queue depth.
PACED_REQUESTS = 200
PACED_RATE = 25.0


def _client_stream(labels) -> list[dict]:
    """One user's traffic: ROUNDS rounds interleaving both datasets."""
    return [
        {"op": "learn", "dataset": label, "alpha": alpha, "max_depth": 2}
        for _ in range(ROUNDS)
        for alpha in (0.05, 0.01)
        for label in labels
    ]


def _payload(resp: dict) -> str:
    """Everything a client consumes, minus timing and cache provenance."""
    return json.dumps(
        {k: resp[k] for k in ("op", "dataset", "fingerprint", "result", "error")},
        sort_keys=True,
    )


def _shm_entries() -> set[str] | None:
    try:
        return set(os.listdir(SHM_DIR))
    except OSError:
        return None


def _lockstep_baseline(datasets, stream) -> tuple[float, list[list[dict]]]:
    """Two dedicated engines, driven lockstep one client after the other."""
    t0 = time.perf_counter()
    responses: list[list[dict]] = []
    for _ in range(N_CLIENTS):
        server = EngineServer(alpha=0.05, max_sessions=len(datasets))
        for label, dataset in datasets.items():
            server.register(label, dataset)
        transport = EngineTransport(
            server, "127.0.0.1:0", threads=THREADS, window=WINDOW
        )
        transport.start()
        with server:
            try:
                with EngineClient(transport.describe(), timeout=TIMEOUT) as client:
                    responses.append([client.request(req) for req in stream])
            finally:
                transport.shutdown(timeout=TIMEOUT)
    return time.perf_counter() - t0, responses


def test_process_plane_throughput(benchmark, record, record_json):
    workloads = {name: make_workload(name, m) for name, m in NETWORKS}
    datasets = {wl.label: wl.dataset for wl in workloads.values()}
    stream = _client_stream(list(datasets))
    n_distinct = 2 * len(datasets)  # two alphas per dataset
    shm_before = _shm_entries()

    def run() -> dict:
        t_seq, sequential = _lockstep_baseline(datasets, stream)

        plane = ProcessPlane(
            "127.0.0.1:0",
            processes=PROCESSES,
            registrations=list(datasets.items()),
            server_kwargs=dict(alpha=0.05, max_sessions=len(datasets)),
            threads=THREADS,
            window=WINDOW,
        )
        plane.start()
        address = plane.describe()
        results: list[list[dict] | None] = [None] * N_CLIENTS
        errors: list = []

        def drive(index: int) -> None:
            try:
                with EngineClient(address, timeout=TIMEOUT) as client:
                    for req in stream:
                        client.send(req)
                    results[index] = client.drain()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        clients = [
            threading.Thread(target=drive, args=(i,)) for i in range(N_CLIENTS)
        ]
        t0 = time.perf_counter()
        for c in clients:
            c.start()
        for c in clients:
            c.join(timeout=TIMEOUT)
        t_plane = time.perf_counter() - t0
        assert not errors, errors
        assert all(not c.is_alive() for c in clients), "client hung"

        # Phase 2: arrival-paced open-loop replay against the same plane
        # (the `workload replay --pace --connect` path) for latency SLOs.
        trace = generate_trace(
            WorkloadSpec(
                n_requests=PACED_REQUESTS,
                datasets=tuple(datasets),
                seed=42,
                rate=PACED_RATE,
                n_targets=8,
                error_rate=0.0,
            )
        )
        with EngineClient(address, timeout=TIMEOUT) as client:
            paced = replay_client(client, trace, pace=True)

        plane.shutdown()
        return {
            "sequential_s": t_seq,
            "plane_s": t_plane,
            "sequential": sequential,
            "plane": results,
            "merged": plane.manifest(),
            "paced": paced,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    # Payload-identical responses for every client, request by request —
    # splitting the serve path across processes changes who computes,
    # never what anyone receives.
    for baseline, sharded in zip(out["sequential"], out["plane"], strict=True):
        assert [_payload(a) for a in baseline] == [_payload(b) for b in sharded]

    # Exactly-once compute, and merged totals that are the exact sum of
    # the per-worker manifests (the plane's accounting invariant).
    merged = out["merged"]
    parts = [
        w["manifest"]["totals"] for w in merged["workers"] if w["manifest"]
    ]
    assert merged["totals"] == merge_totals(parts)
    n_paced = len(out["paced"].responses)
    n_paced_queries = sum(
        1 for rec in out["paced"].trace.records if rec.request.get("op") != "stats"
    )
    assert n_paced == PACED_REQUESTS
    assert (
        merged["totals"]["n_requests"]
        == N_CLIENTS * len(stream) + n_paced_queries
    )
    assert merged["totals"]["n_computed"] <= n_distinct + n_paced_queries
    # The two throughput clients' repeat traffic all hit the owner-side
    # result caches: distinct learn requests were computed once, total.
    assert (
        merged["totals"]["n_result_cache_hits"]
        >= N_CLIENTS * len(stream) - n_distinct
    )

    if shm_before is not None:
        leaked = _shm_entries() - shm_before
        assert not leaked, f"leaked shm blocks: {sorted(leaked)}"

    speedup = out["sequential_s"] / max(out["plane_s"], 1e-9)
    assert speedup >= MIN_SPEEDUP, (
        f"process plane only {speedup:.2f}x over lockstep engines "
        f"(gate {MIN_SPEEDUP}x on {os.cpu_count()} cpu(s))"
    )

    lat = out["paced"].latency()
    labels = list(datasets)
    n_total = N_CLIENTS * len(stream)
    text = render_table(
        ["serving mode", "requests", "seconds", "req/s", "notes"],
        [
            [
                "two lockstep engines",
                n_total,
                f"{out['sequential_s']:.3f}",
                f"{n_total / out['sequential_s']:.1f}",
                "every distinct request computed twice",
            ],
            [
                f"process plane ({PROCESSES} workers, {N_CLIENTS} clients)",
                n_total,
                f"{out['plane_s']:.3f}",
                f"{n_total / out['plane_s']:.1f}",
                "fingerprint-sharded, computed once",
            ],
            ["speedup", "", f"{speedup:.1f}x", "", f"gate {MIN_SPEEDUP}x"],
            [
                "paced open-loop replay",
                n_paced,
                f"{out['paced'].wall_s:.3f}",
                f"{out['paced'].requests_per_s:.1f}",
                f"p50/p95/p99 {lat['p50_ms']:.1f}/{lat['p95_ms']:.1f}/"
                f"{lat['p99_ms']:.1f} ms",
            ],
        ],
        title=(
            f"Process plane — {' + '.join(labels)}, {PROCESSES} workers, "
            f"{THREADS} dispatch threads/conn, window={WINDOW}"
        ),
    )
    record("serve_processes", text)
    record_json(
        "serve_processes",
        {
            "networks": labels,
            "processes": PROCESSES,
            "n_clients": N_CLIENTS,
            "n_requests": n_total,
            "rounds": ROUNDS,
            "threads": THREADS,
            "window": WINDOW,
            "cpu_count": os.cpu_count(),
            "min_speedup_gate": MIN_SPEEDUP,
            "sequential_s": out["sequential_s"],
            "plane_s": out["plane_s"],
            "speedup": speedup,
            "requests_per_s": n_total / out["plane_s"],
            "paced_requests": n_paced,
            "paced_rate": PACED_RATE,
            "paced_requests_per_s": out["paced"].requests_per_s,
            "latency": lat,
        },
    )
