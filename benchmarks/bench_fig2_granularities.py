"""Fig. 2 bench: execution time of CI-, edge- and sample-level parallelism
across thread counts (simulated from measured traces).

Shape assertions encode the paper's Fig. 2: CI-level is fastest at every
thread count beyond 1, sample-level is the worst overall, and the CI-level
advantage over edge-level grows with thread count.
"""

from __future__ import annotations

from repro.bench.experiments import THREAD_SWEEP, experiment_fig2
from repro.bench.workloads import is_full_mode

NETWORKS = (
    ("alarm", "insurance", "hepar2", "munin1", "diabetes", "link")
    if is_full_mode()
    else ("alarm", "insurance", "hepar2")
)


def test_fig2_granularity_sweep(benchmark, record):
    out = benchmark.pedantic(
        lambda: experiment_fig2(networks=NETWORKS, n_samples=5000),
        rounds=1,
        iterations=1,
    )
    record("fig2_granularities", out.text)
    for label, series in out.data.items():
        ci = series["CI-level"]
        edge = series["Edge-level"]
        sample = series["Sample-level"]
        for i, t in enumerate(THREAD_SWEEP):
            if t == 1:
                continue
            assert ci[i] <= edge[i], (label, t)
            assert ci[i] < sample[i], (label, t)
        # The paper: edge-level loses >20% to CI-level at high t.
        assert ci[-1] < 0.8 * edge[-1], label
