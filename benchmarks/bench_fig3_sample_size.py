"""Fig. 3 bench: Fast-BNS-par/seq speedup across sample sizes.

Shape assertions encode the paper's Fig. 3: smooth speedup growth with
thread count for every sample size, with larger sample sizes achieving
equal-or-higher peak speedup (bigger per-test workloads amortise parallel
overhead better).
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig3
from repro.bench.workloads import is_full_mode

NETWORKS = (
    ("alarm", "insurance", "hepar2", "munin1") if is_full_mode() else ("alarm", "insurance")
)
SAMPLE_SIZES = (5000, 10000, 15000)


def test_fig3_sample_size_sweep(benchmark, record):
    out = benchmark.pedantic(
        lambda: experiment_fig3(networks=NETWORKS, sample_sizes=SAMPLE_SIZES),
        rounds=1,
        iterations=1,
    )
    record("fig3_sample_size", out.text)
    for label, series in out.data.items():
        for m, speedups in series.items():
            # Monotone through the moderate thread counts (paper: "smooth
            # improvement in speedups for all the sample sizes").
            for a, b in zip(speedups[:4], speedups[1:5], strict=False):
                assert b > a * 0.95, (label, m)
            assert max(speedups) > 4.0, (label, m)
        largest = series[f"m={SAMPLE_SIZES[-1]}"]
        smallest = series[f"m={SAMPLE_SIZES[0]}"]
        # Larger sample size: equal or better peak speedup (within noise).
        assert max(largest) > 0.85 * max(smallest), label
