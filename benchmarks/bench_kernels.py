"""Micro-benchmarks of the computational kernels.

These are conventional pytest-benchmark measurements (multiple rounds) of
the inner loops whose cost the simulator models: contingency filling, the
G^2 statistic, combination unranking and forward sampling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.citests.gsquare import GSquareTest
from repro.core.combinadic import unrank_combination
from repro.datasets.sampling import forward_sample
from repro.networks.catalog import get_network


@pytest.fixture(scope="module")
def alarm_data():
    return forward_sample(get_network("alarm"), 5000, rng=0)


def test_kernel_g2_marginal(benchmark, alarm_data):
    tester = GSquareTest(alarm_data)
    benchmark(lambda: tester.test(0, 1, ()))


def test_kernel_g2_depth2(benchmark, alarm_data):
    tester = GSquareTest(alarm_data)
    benchmark(lambda: tester.test(0, 1, (2, 3)))


def test_kernel_g2_group8(benchmark, alarm_data):
    tester = GSquareTest(alarm_data)
    sets = [(2 + i,) for i in range(8)]
    benchmark(lambda: tester.test_group(0, 1, sets))


def test_kernel_unrank(benchmark):
    benchmark(lambda: unrank_combination(30, 4, 12345))


def test_kernel_forward_sample(benchmark):
    net = get_network("insurance")
    benchmark.pedantic(lambda: forward_sample(net, 2000, rng=1), rounds=3, iterations=1)


def test_kernel_column_gather_layouts(benchmark, alarm_data):
    sm = alarm_data.with_layout("sample-major")

    def gather():
        for i in range(10):
            np.ascontiguousarray(sm.column(i))

    benchmark(gather)
