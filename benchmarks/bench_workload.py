"""Workload bench: replay the committed golden trace, assert SLOs and
weighted-fair starvation bounds (ISSUE 8).

Two measurements over the trace-replay layer:

* **golden-trace replay** — the committed seeded trace
  (``benchmarks/traces/workload_500.jsonl``: 512 requests, 4 tenants,
  zipf-skewed popularity, poisson arrivals, 2% injected errors) replayed
  through the streaming dispatcher.  Asserts the trace is fresh against
  its embedded spec (byte-compare), payload-identical responses vs a
  sequential oracle, an exact manifest, and records throughput plus
  p50/p95/p99 completion latency into ``BENCH_workload.json`` — the
  regression-stable traffic number PRs compare.
* **weighted-fair starvation bound** — three hot tenants saturate two
  dispatcher threads with blanket queries while one cold weighted lane
  trickles requests.  Asserts the cold tenant's p99 completion latency
  stays within ``3x`` its solo-run p99 (the ISSUE's SLO), with
  payload-identical responses, and records the ratio into
  ``BENCH_workload_fairness.json``.

Both checks end with the standard `/dev/shm` leak sweep.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.bench.tables import render_table
from repro.datasets.sampling import forward_sample
from repro.engine import EngineServer, load_trace, replay, summarize_latencies, verify_trace
from repro.networks.generators import random_network

TRACE_PATH = pathlib.Path(__file__).parent / "traces" / "workload_500.jsonl"
SHM_DIR = "/dev/shm"
THREADS = 2

#: (n_variables, n_samples) per trace tenant d0..d3 — deterministic
#: synthetic networks; every tenant covers the trace's 8 target indices.
TENANT_SHAPES = ((16, 900), (10, 400), (9, 400), (8, 400))


def _shm_entries() -> set[str] | None:
    try:
        return set(os.listdir(SHM_DIR))
    except OSError:
        return None


def _payload(resp: dict) -> str:
    return json.dumps(
        {k: _strip_timing(resp[k]) for k in ("op", "dataset", "fingerprint", "result", "error")},
        sort_keys=True,
    )


def _strip_timing(obj):
    """Drop elapsed_s recursively — stats admin payloads nest timings."""
    if isinstance(obj, dict):
        return {k: _strip_timing(v) for k, v in obj.items() if k != "elapsed_s"}
    if isinstance(obj, list):
        return [_strip_timing(v) for v in obj]
    return obj


def _tenant_datasets() -> dict:
    datasets = {}
    for i, (n_vars, n_samples) in enumerate(TENANT_SHAPES):
        net = random_network(
            n_vars, n_vars + 4, rng=4200 + i, arity_range=(2, 3), max_parents=3
        )
        datasets[f"d{i}"] = forward_sample(net, n_samples, rng=4300 + i)
    return datasets


def _fresh_server(datasets, **kwargs) -> EngineServer:
    srv = EngineServer(alpha=0.05, max_sessions=8, **kwargs)
    for ds_id, data in datasets.items():
        srv.register(ds_id, data)
    return srv


# --------------------------------------------------------------------- #
# golden-trace replay
# --------------------------------------------------------------------- #
def test_workload_trace_replay(benchmark, record, record_json):
    fresh, message = verify_trace(TRACE_PATH)
    assert fresh, message
    trace = load_trace(TRACE_PATH)
    assert len(trace) >= 500 and len(trace.spec.datasets) == 4

    datasets = _tenant_datasets()
    shm_before = _shm_entries()

    def run() -> dict:
        streamed_srv = _fresh_server(datasets)
        oracle_srv = _fresh_server(datasets)
        try:
            streamed = replay(streamed_srv, trace, threads=THREADS, window=64)
            t0 = time.perf_counter()
            oracle = replay(oracle_srv, trace, threads=1)
            sequential_s = time.perf_counter() - t0
            doc = streamed_srv.manifest()
            return {
                "streamed": streamed,
                "oracle": oracle,
                "sequential_s": sequential_s,
                "manifest": doc,
            }
        finally:
            streamed_srv.close()
            oracle_srv.close()

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    streamed, oracle = out["streamed"], out["oracle"]

    # Concurrency changes latency, never payloads.
    assert [_payload(r) for r in streamed.responses] == [
        _payload(r) for r in oracle.responses
    ]
    assert streamed.n_requests == len(trace)
    assert streamed.n_errors > 0  # the 2% injected errors actually landed

    # Exact manifest across every lane the replay touched.
    from repro.engine import merge_totals

    doc = out["manifest"]
    parts = [s["totals"] for s in doc["sessions"]] + [doc["unrouted"]["totals"]]
    assert doc["totals"] == merge_totals(parts)

    if shm_before is not None:
        leaked = _shm_entries() - shm_before
        assert not leaked, f"leaked shared-memory blocks: {sorted(leaked)}"

    lat = streamed.latency()
    record_json(
        "workload",
        {
            "trace": str(TRACE_PATH.name),
            "n_requests": streamed.n_requests,
            "n_errors": streamed.n_errors,
            "n_cached": streamed.n_cached,
            "threads": THREADS,
            "wall_s": streamed.wall_s,
            "sequential_s": out["sequential_s"],
            "requests_per_s": streamed.requests_per_s,
            "latency": lat,
            "per_tenant": streamed.per_tenant(),
        },
    )
    record(
        "workload_replay",
        render_table(
            ["stream", "requests", "seconds", "req/s", "p50 ms", "p95 ms", "p99 ms"],
            [
                [
                    f"golden trace x{THREADS} threads",
                    streamed.n_requests,
                    f"{streamed.wall_s:.2f}",
                    f"{streamed.requests_per_s:.0f}",
                    f"{lat['p50_ms']:.2f}",
                    f"{lat['p95_ms']:.2f}",
                    f"{lat['p99_ms']:.2f}",
                ],
            ],
            title="golden-trace replay (512 requests, 4 zipf tenants)",
        ),
    )


# --------------------------------------------------------------------- #
# weighted-fair starvation bound
# --------------------------------------------------------------------- #
N_HOT_EACH = 60
N_COLD = 12
COLD_WEIGHT = 4.0


HOT_TENANTS = ("d1", "d2", "d3")
COLD_TENANT = "d0"  # the largest network: its own compute dominates queue wait


def _fairness_stream() -> tuple[list[dict], list[str]]:
    """Three hot tenants saturating, one cold tenant trickling.

    Every blanket carries a unique (target, alpha) pair so each request
    is real compute — repeated queries would collapse into cache hits
    and the dispatcher would never be contended.  The cold tenant sends
    one request per 15 hot ones.
    """
    requests: list[dict] = []
    tenants: list[str] = []
    cold_sent = 0
    for i in range(N_HOT_EACH):
        for hot in HOT_TENANTS:
            requests.append(
                {"op": "blanket", "dataset": hot, "target": i % 8,
                 "alpha": round(0.02 + 0.001 * i, 6)}
            )
            tenants.append(hot)
        if i % 5 == 4 and cold_sent < N_COLD:
            requests.append(
                {"op": "blanket", "dataset": COLD_TENANT, "target": cold_sent % 8,
                 "alpha": round(0.03 + 0.001 * cold_sent, 6)}
            )
            tenants.append(COLD_TENANT)
            cold_sent += 1
    return requests, tenants


def _run_with_timings(server, requests) -> tuple[list[dict], list[dict]]:
    timings: list[dict] = []
    responses = list(
        server.serve_iter(iter(requests), threads=THREADS, window=4096, timings=timings)
    )
    return responses, timings


def _completion_by_tenant(tenants, timings) -> dict[str, list[float]]:
    by: dict[str, list[float]] = {}
    for tenant, t in zip(tenants, timings, strict=True):
        by.setdefault(tenant, []).append(t["t_done"] - t["t_in"])
    return by


def test_workload_weighted_fairness(record, record_json):
    datasets = _tenant_datasets()
    requests, tenants = _fairness_stream()
    cold_requests = [r for r, t in zip(requests, tenants, strict=True) if t == COLD_TENANT]
    shm_before = _shm_entries()

    # Solo baseline: the cold tenant alone on an idle server.
    solo_srv = _fresh_server(datasets)
    try:
        _, solo_timings = _run_with_timings(solo_srv, cold_requests)
    finally:
        solo_srv.close()
    solo_lat = summarize_latencies([t["t_done"] - t["t_in"] for t in solo_timings])

    # Contended: hot tenants saturate both workers, cold lane weighted.
    mixed_srv = _fresh_server(datasets, lane_weights={COLD_TENANT: COLD_WEIGHT})
    oracle_srv = _fresh_server(datasets, lane_weights={COLD_TENANT: COLD_WEIGHT})
    try:
        mixed_responses, mixed_timings = _run_with_timings(mixed_srv, requests)
        oracle_responses = list(oracle_srv.serve_iter(iter(requests), threads=1))
        assert [_payload(r) for r in mixed_responses] == [
            _payload(r) for r in oracle_responses
        ]
        lanes = mixed_srv.lane_stats()
    finally:
        mixed_srv.close()
        oracle_srv.close()

    by_tenant = _completion_by_tenant(tenants, mixed_timings)
    mixed_lat = summarize_latencies(by_tenant[COLD_TENANT])
    hot_lat = summarize_latencies(
        [v for hot in HOT_TENANTS for v in by_tenant[hot]]
    )

    # THE starvation bound: under full hot-tenant saturation the weighted
    # cold lane's p99 stays within 3x its solo p99.
    ratio = mixed_lat["p99_ms"] / max(solo_lat["p99_ms"], 1e-9)
    assert ratio <= 3.0, (
        f"cold tenant starved: mixed p99 {mixed_lat['p99_ms']:.2f}ms vs "
        f"solo {solo_lat['p99_ms']:.2f}ms ({ratio:.2f}x > 3x)"
    )
    # And the bound is doing work: the hot lanes really were saturating
    # (their p99 under contention dwarfs the cold solo p99).
    assert hot_lat["p99_ms"] > solo_lat["p99_ms"]
    assert sum(v["n_served"] for v in lanes.values()) == len(requests)

    if shm_before is not None:
        leaked = _shm_entries() - shm_before
        assert not leaked, f"leaked shared-memory blocks: {sorted(leaked)}"

    record_json(
        "workload_fairness",
        {
            "threads": THREADS,
            "cold_weight": COLD_WEIGHT,
            "n_hot_requests": 3 * N_HOT_EACH,
            "n_cold_requests": N_COLD,
            "latency": mixed_lat,  # cold tenant, under contention
            "cold_solo": solo_lat,
            "hot_mixed": hot_lat,
            "cold_p99_ratio": ratio,
        },
    )
    record(
        "workload_fairness",
        render_table(
            ["tenant", "n", "p50 ms", "p95 ms", "p99 ms"],
            [
                ["cold solo", solo_lat["n"], f"{solo_lat['p50_ms']:.2f}",
                 f"{solo_lat['p95_ms']:.2f}", f"{solo_lat['p99_ms']:.2f}"],
                ["cold under saturation", mixed_lat["n"], f"{mixed_lat['p50_ms']:.2f}",
                 f"{mixed_lat['p95_ms']:.2f}", f"{mixed_lat['p99_ms']:.2f}"],
                ["hot (3 tenants)", hot_lat["n"], f"{hot_lat['p50_ms']:.2f}",
                 f"{hot_lat['p95_ms']:.2f}", f"{hot_lat['p99_ms']:.2f}"],
            ],
            title=f"weighted-fair lanes: cold p99 ratio {ratio:.2f}x (bound 3x)",
        ),
    )
