"""Ablation: endpoint grouping on/off.

Measures the CI-test savings from treating Vi - Vj and Vj - Vi as one work
item (paper Sec. IV-C) on real workloads, and checks the measured saving
against the paper's S_grouping = 2 / (2 - rho_d) model evaluated on the
run's own deletion ratios.
"""

from __future__ import annotations

from repro.bench.tables import render_table
from repro.bench.workloads import make_workload


def _run(dataset, grouped: bool):
    # Use the same tester/layout for both so only grouping differs.
    from repro.citests.gsquare import GSquareTest
    from repro.core.skeleton import learn_skeleton

    tester = GSquareTest(dataset)
    return learn_skeleton(tester, dataset.n_variables, group_endpoints=grouped)


def test_grouping_on(benchmark):
    data = make_workload("alarm", 5000).dataset
    _, _, stats = benchmark.pedantic(lambda: _run(data, True), rounds=1, iterations=1)
    assert stats.n_tests > 0


def test_grouping_off(benchmark):
    data = make_workload("alarm", 5000).dataset
    _, _, stats = benchmark.pedantic(lambda: _run(data, False), rounds=1, iterations=1)
    assert stats.n_tests > 0


def test_grouping_saving_table(benchmark, record):
    def compute():
        rows = []
        for name in ("alarm", "insurance"):
            data = make_workload(name, 5000).dataset
            _, _, on = _run(data, True)
            _, _, off = _run(data, False)
            saving = 100.0 * (off.n_tests - on.n_tests) / off.n_tests
            rows.append([name, off.n_tests, on.n_tests, f"{saving:.1f}%"])
        return render_table(
            ["network", "tests (ungrouped)", "tests (grouped)", "saving"],
            rows,
            title="Ablation: endpoint-grouping CI-test savings (measured)",
        )

    text = benchmark.pedantic(compute, rounds=1, iterations=1)
    record("ablation_grouping", text)
