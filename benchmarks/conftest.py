"""Shared benchmark fixtures.

Every bench regenerates one paper artefact and both prints it and saves it
under ``benchmarks/results/``.  Quick mode (default) uses the scaled-down
Table II stand-ins; set ``REPRO_FULL=1`` for published-size networks (hours
of runtime, mirroring the paper's 48-hour budget).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record(results_dir):
    """Persist an experiment artefact and echo it to the terminal."""

    def _record(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record
