"""Shared benchmark fixtures.

Every bench regenerates one paper artefact and both prints it and saves it
under ``benchmarks/results/``.  Quick mode (default) uses the scaled-down
Table II stand-ins; set ``REPRO_FULL=1`` for published-size networks (hours
of runtime, mirroring the paper's 48-hour budget).

Perf-tracking benches additionally persist machine-readable
``BENCH_<name>.json`` artefacts (ops/sec, speedup ratios) through the
``record_json`` fixture, so the performance trajectory is diffable across
PRs without parsing the human-readable tables.
"""

from __future__ import annotations

import json
import pathlib
import platform

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record(results_dir):
    """Persist an experiment artefact and echo it to the terminal."""

    def _record(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record


@pytest.fixture(scope="session")
def record_json(results_dir):
    """Persist a machine-readable ``BENCH_<name>.json`` perf artefact.

    The payload is augmented with the interpreter/platform fingerprint so
    cross-PR comparisons know when the substrate changed under them.
    """

    def _record(name: str, payload: dict) -> None:
        doc = {
            "bench": name,
            "python": platform.python_version(),
            "machine": platform.machine(),
            **payload,
        }
        path = results_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"[bench-json] {path}")

    return _record
