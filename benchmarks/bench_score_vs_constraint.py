"""Related-work bench: score-based search vs constraint-based Fast-BNS.

The paper's Sec. II argues constraint-based methods scale better to
high-dimensional problems while score-based greedy search risks local
optima.  This bench quantifies the contrast on the benchmark stand-ins:
accuracy (skeleton F1 vs ground truth), work, and runtime.

Expected outcome (and an honest finding of this reproduction): on these
hub-dense, multi-valued stand-ins the greedy BIC search attains *higher*
skeleton F1 than PC — PC removes an edge on the first accepting test among
hundreds of deep conditioning sets, so its recall suffers from multiple
testing on high-degree nodes (a known constraint-based weakness; the paper
makes no accuracy claims because Fast-BNS's output is identical to
PC-stable's by construction).  PC's advantage is work growth: polynomial
CI tests versus the move-evaluation explosion of search as n grows.
"""

from __future__ import annotations

from repro.bench.tables import render_table
from repro.bench.workloads import make_workload
from repro.core.learn import learn_structure
from repro.graphs.metrics import skeleton_metrics
from repro.score.hillclimb import hill_climb


def test_score_vs_constraint_accuracy(benchmark, record):
    def compute():
        rows = []
        results = {}
        for name in ("alarm", "insurance"):
            wl = make_workload(name, 5000)
            truth = wl.network.edges()
            pc = learn_structure(wl.dataset, dof_adjust="slices", max_depth=3)
            hc = hill_climb(wl.dataset, score="bic", max_parents=4)
            pc_f1 = skeleton_metrics(pc.skeleton.edges(), truth).f1
            hc_f1 = skeleton_metrics(hc.edges, truth).f1
            rows.append(
                [
                    wl.label,
                    f"{pc_f1:.2f}",
                    f"{pc.elapsed['total']:.2f}s",
                    f"{pc.n_ci_tests}",
                    f"{hc_f1:.2f}",
                    f"{hc.elapsed_s:.2f}s",
                    f"{hc.n_moves_evaluated}",
                ]
            )
            results[wl.label] = (pc_f1, hc_f1)
        text = render_table(
            [
                "network",
                "Fast-BNS F1",
                "time",
                "CI tests",
                "hill-climb F1",
                "time",
                "moves eval'd",
            ],
            rows,
            title="Score-based vs constraint-based (m=5000, BIC, ground-truth F1)",
        )
        return results, text

    results, text = benchmark.pedantic(compute, rounds=1, iterations=1)
    record("score_vs_constraint", text)
    for label, (pc_f1, hc_f1) in results.items():
        assert pc_f1 > 0.4, label
        assert hc_f1 > 0.7, label
