"""Batched group-CI kernel vs the looped per-set path.

The batched kernel (:func:`repro.citests.contingency.group_ci_counts` plus
the stacked statistic reductions in :mod:`repro.citests.tablebase`) builds
all ``gs`` contingency tables of an edge group with one offset-stacked
``bincount`` and finishes the whole group with a single ``gammaincc``
call, where the looped path pays one ``bincount``, one statistic reduction
and one ``gammaincc`` per conditioning set.

This bench extracts the real multi-set group workload of a Fast-BNS
skeleton run on a Table II network (single-set groups are excluded — both
paths treat them identically, so they only dilute the kernel comparison),
then re-evaluates that exact group stream through both paths and asserts:

* results are **bit-identical** — every statistic/dof/p-value equal, no
  tolerance — and full learns produce identical skeletons and sepsets;
* the batched kernel is >= 1.5x faster at a group size >= 4 (the gain
  grows with gs: more per-set dispatch amortized per group), and is never
  slower at any measured gs.

Emits ``BENCH_kernel_batching.json`` with per-gs ops/sec and speedups.
"""

from __future__ import annotations

import time

from repro.bench.tables import render_table
from repro.bench.workloads import make_workload
from repro.citests.gsquare import GSquareTest
from repro.core.skeleton import learn_skeleton

NETWORK = "alarm"  # Table II network, quick-mode scale 1.0
N_SAMPLES = 2000
GROUP_SIZES = (4, 8)
ROUNDS = 5  # best-of-N per path: absorbs scheduler noise on shared CI runners
TARGET_SPEEDUP = 1.5
#: Per-gs floor: "never meaningfully slower".  Slightly below 1.0 so a
#: noisy-neighbor stall on a sub-second measurement cannot flip the gate
#: (measured margins are ~1.3x at gs=4 and ~1.7x at gs=8).
NO_REGRESSION_FLOOR = 0.9


class _GroupRecorder:
    """Tester proxy that records every ``test_group`` work item."""

    def __init__(self, inner):
        self.inner = inner
        self.groups: list[tuple[int, int, list[tuple[int, ...]]]] = []
        self.alpha = inner.alpha
        self.counters = inner.counters
        self.dataset = inner.dataset

    def test(self, x, y, s):
        return self.inner.test(x, y, s)

    def test_group(self, x, y, sets):
        self.groups.append((x, y, [tuple(s) for s in sets]))
        return self.inner.test_group(x, y, sets)


def _collect_groups(dataset, gs):
    recorder = _GroupRecorder(GSquareTest(dataset))
    graph, sepsets, _ = learn_skeleton(
        recorder, dataset.n_variables, gs=gs, group_endpoints=True
    )
    multi = [g for g in recorder.groups if len(g[2]) >= 2]
    return multi, graph, sepsets


def _time_stream(dataset, groups, batch):
    best = float("inf")
    results = None
    for _ in range(ROUNDS):
        tester = GSquareTest(dataset, batch_groups=batch)
        t0 = time.perf_counter()
        out = [tester.test_group(x, y, sets) for x, y, sets in groups]
        best = min(best, time.perf_counter() - t0)
        results = out
    return best, results


def test_kernel_batching(record, record_json):
    wl = make_workload(NETWORK, N_SAMPLES)
    dataset = wl.dataset

    rows = []
    payload = {"network": wl.label, "n_samples": N_SAMPLES, "group_sizes": {}}
    speedups = {}
    for gs in GROUP_SIZES:
        groups, graph, sepsets = _collect_groups(dataset, gs)
        n_tests = sum(len(g[2]) for g in groups)

        t_looped, r_looped = _time_stream(dataset, groups, batch=False)
        t_batched, r_batched = _time_stream(dataset, groups, batch=True)

        # Bit-identical group evaluations: exact equality, no tolerance.
        for group_b, group_l in zip(r_batched, r_looped):
            for b, lo in zip(group_b, group_l):
                assert b.statistic == lo.statistic
                assert b.dof == lo.dof
                assert b.p_value == lo.p_value
                assert b.independent == lo.independent

        # Bit-identical learns: the full skeleton phase agrees both ways.
        for batch in (True, False):
            tester = GSquareTest(dataset, batch_groups=batch)
            g2, s2, _ = learn_skeleton(
                tester, dataset.n_variables, gs=gs, group_endpoints=True
            )
            assert set(g2.edges()) == set(graph.edges())
            assert s2.as_dict() == sepsets.as_dict()

        speedup = t_looped / t_batched
        speedups[gs] = speedup
        assert speedup >= NO_REGRESSION_FLOOR, (
            f"batched kernel slower at gs={gs}: {speedup:.2f}x"
        )
        rows.append(
            [
                gs,
                len(groups),
                n_tests,
                f"{n_tests / t_looped:,.0f}",
                f"{n_tests / t_batched:,.0f}",
                f"{speedup:.2f}x",
            ]
        )
        payload["group_sizes"][str(gs)] = {
            "n_groups": len(groups),
            "n_tests": n_tests,
            "looped_s": t_looped,
            "batched_s": t_batched,
            "looped_tests_per_s": n_tests / t_looped,
            "batched_tests_per_s": n_tests / t_batched,
            "speedup": speedup,
        }

    best = max(speedups.values())
    payload["best_speedup"] = best
    assert best >= TARGET_SPEEDUP, (
        f"batched group kernel only {best:.2f}x faster than the looped "
        f"per-set path at gs >= 4 (target {TARGET_SPEEDUP}x)"
    )

    text = render_table(
        ["gs", "groups", "tests", "looped tests/s", "batched tests/s", "speedup"],
        rows,
        title=(
            f"Batched group kernel vs looped per-set path — {wl.label}, "
            f"m={N_SAMPLES} (bit-identical results)"
        ),
    )
    record("kernel_batching", text)
    record_json("kernel_batching", payload)
