"""Arena-backed fused multi-group CI kernel vs the looped per-set oracle.

The fused kernel (:meth:`repro.citests.tablebase.ContingencyTableTest.
test_groups`) evaluates *many* edge groups per call: cell codes for every
(set, group) row are offset-stacked into one arena-backed matrix, counted
with one ``bincount`` per cache-sized wave, reduced with one stacked
elementwise pass per table shape and finished with one ``gammaincc`` per
wave — where the looped path pays one ``bincount``, one reduction and one
``gammaincc`` per conditioning set.  All large scratch comes from a
reusable :class:`~repro.citests.arena.KernelArena`, so a warm worker
performs zero large allocations per group evaluation.

This bench extracts the real multi-set group workload of a Fast-BNS
skeleton run on a Table II network (single-set groups are excluded — both
paths treat them identically, so they only dilute the kernel comparison),
then re-evaluates that exact group stream through both paths and asserts:

* results are **bit-identical** — every statistic/dof/p-value equal, no
  tolerance — and full learns produce identical skeletons and sepsets;
* the pure-Python fused path is >= 3x faster than the looped oracle at a
  group size >= 8 (the gain grows with gs: more per-set dispatch amortized
  per kernel call), and is never slower at any measured gs;
* the arena performs **zero growth events** across warm rounds — the
  steady-state "no large allocations" claim as a measured artefact, backed
  by per-path ``tracemalloc`` numbers in the JSON payload.

The optional native path (auto-detected C backend, ``REPRO_NATIVE=0``
disables) is timed and reported separately when present; it is never part
of the speedup gate, which measures the pure-Python arena+fusion kernel.

Measurement protocol: each path keeps its own shared
:class:`~repro.datasets.encoded.EncodedDataset` (and the fused paths one
:class:`~repro.citests.arena.KernelArena`) across rounds — mirroring how
workers hold them for a whole learning run — with one untimed warmup
round, then best-of-``ROUNDS`` with the paths interleaved so scheduler
noise hits them evenly.

Emits ``BENCH_kernel_batching.json`` with per-gs ops/sec, speedups, the
native timings and the steady-state allocation profile.
"""

from __future__ import annotations

import gc
import time
import tracemalloc

from repro.bench.tables import render_table
from repro.bench.workloads import make_workload
from repro.citests.arena import KernelArena
from repro.citests.gsquare import GSquareTest
from repro.citests.native import native_available
from repro.core.skeleton import learn_skeleton
from repro.datasets.encoded import EncodedDataset

NETWORK = "alarm"  # Table II network, quick-mode scale 1.0
N_SAMPLES = 2000
GROUP_SIZES = (4, 8, 16)
#: Groups per ``test_groups`` call — the adaptive scheduler's steady-state
#: dispatch size.  Above the cache-blocked wave cap the chunk size barely
#: matters (waves are split internally); 64 matches production dispatch.
CHUNK = 64
ROUNDS = 7  # best-of-N per path: absorbs scheduler noise on shared CI runners
TARGET_SPEEDUP = 3.0
#: The >=3x gate applies at gs >= 8 (ISSUE acceptance); gs=4 groups carry
#: too little per-call work to amortize the fused plan stage that far.
TARGET_GROUP_SIZES = (8, 16)
#: Per-gs floor: "never meaningfully slower".  Slightly below 1.0 so a
#: noisy-neighbor stall on a sub-second measurement cannot flip the gate.
NO_REGRESSION_FLOOR = 0.9
#: ``tracemalloc`` block-size threshold for the "large allocation" count
#: (64 KiB — well above result objects, well below any kernel buffer).
LARGE_BLOCK_BYTES = 64 * 1024


class _GroupRecorder:
    """Tester proxy that records every ``test_group`` work item."""

    def __init__(self, inner):
        self.inner = inner
        self.groups: list[tuple[int, int, list[tuple[int, ...]]]] = []
        self.alpha = inner.alpha
        self.counters = inner.counters
        self.dataset = inner.dataset

    def test(self, x, y, s):
        return self.inner.test(x, y, s)

    def test_group(self, x, y, sets):
        self.groups.append((x, y, [tuple(s) for s in sets]))
        return self.inner.test_group(x, y, sets)


def _collect_groups(dataset, gs):
    recorder = _GroupRecorder(GSquareTest(dataset))
    graph, sepsets, _ = learn_skeleton(
        recorder, dataset.n_variables, gs=gs, group_endpoints=True
    )
    multi = [g for g in recorder.groups if len(g[2]) >= 2]
    return multi, graph, sepsets


class _LoopedPath:
    """Per-round looped oracle over a shared encoding layer."""

    name = "looped"

    def __init__(self, dataset, groups):
        self.dataset = dataset
        self.groups = groups
        self.encoded = EncodedDataset(dataset)

    def run(self):
        tester = GSquareTest(self.dataset, batch_groups=False, encoded=self.encoded)
        groups = self.groups
        t0 = time.perf_counter()
        out = [tester.test_group(x, y, sets) for x, y, sets in groups]
        return time.perf_counter() - t0, out


class _FusedPath:
    """Per-round fused kernel over a shared encoding layer and arena."""

    def __init__(self, dataset, groups, native):
        self.name = "native" if native else "fused"
        self.dataset = dataset
        self.groups = groups
        self.native = native
        self.encoded = EncodedDataset(dataset)
        self.arena = KernelArena()

    def run(self):
        tester = GSquareTest(self.dataset, encoded=self.encoded, arena=self.arena)
        tester.use_native = self.native
        groups = self.groups
        t0 = time.perf_counter()
        out = []
        for i in range(0, len(groups), CHUNK):
            out.extend(tester.test_groups(groups[i : i + CHUNK]))
        return time.perf_counter() - t0, out


def _steady_state_allocs(path):
    """Trace one warm pass: net/peak bytes and net-new large blocks.

    The path's arena and memos are already warm (warmup + timed rounds ran
    first), so everything the trace sees is steady-state per-pass churn —
    the allocations the arena exists to eliminate.  Traced outside the
    timed rounds: tracing itself slows execution.
    """
    gc.collect()
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        base, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        path.run()
        gc.collect()
        current, peak = tracemalloc.get_traced_memory()
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()

    # Each ``Snapshot.traces`` entry is one live block: the delta counts
    # large buffers that survived the pass (arena-backed paths add none —
    # their big scratch was allocated before tracing began).
    def _large(snapshot):
        return sum(1 for t in snapshot.traces if t.size >= LARGE_BLOCK_BYTES)

    return {
        "net_kib": (current - base) / 1024.0,
        "peak_kib": (peak - base) / 1024.0,
        "large_blocks_delta": _large(after) - _large(before),
    }


def _assert_identical(got, oracle):
    """Exact equality, no tolerance, on every field of every result."""
    assert len(got) == len(oracle)
    for group_g, group_o in zip(got, oracle, strict=True):
        for g, o in zip(group_g, group_o, strict=True):
            assert g.statistic == o.statistic
            assert g.dof == o.dof
            assert g.p_value == o.p_value
            assert g.independent == o.independent


def test_kernel_batching(record, record_json):
    wl = make_workload(NETWORK, N_SAMPLES)
    dataset = wl.dataset
    has_native = native_available()

    rows = []
    payload = {
        "network": wl.label,
        "n_samples": N_SAMPLES,
        "chunk": CHUNK,
        "rounds": ROUNDS,
        "native_backend": has_native,
        "target_speedup": TARGET_SPEEDUP,
        "target_group_sizes": list(TARGET_GROUP_SIZES),
        "group_sizes": {},
    }
    speedups = {}
    for gs in GROUP_SIZES:
        groups, graph, sepsets = _collect_groups(dataset, gs)
        n_tests = sum(len(g[2]) for g in groups)

        paths = [
            _LoopedPath(dataset, groups),
            _FusedPath(dataset, groups, native=False),
        ]
        if has_native:
            paths.append(_FusedPath(dataset, groups, native=True))

        # One untimed warmup pass per path (arena growth ramp, memo fills),
        # then best-of-ROUNDS with the paths interleaved per round.
        results = {}
        for path in paths:
            _, results[path.name] = path.run()
        fused_arena = paths[1].arena
        grows_warm = fused_arena.n_grows
        best = dict.fromkeys(results, float("inf"))
        for _ in range(ROUNDS):
            for path in paths:
                elapsed, out = path.run()
                best[path.name] = min(best[path.name], elapsed)
                _assert_identical(out, results[path.name])

        # Zero large allocations steady-state: every warm round reuses the
        # arena buffers grown during warmup — no further growth events.
        assert fused_arena.n_grows == grows_warm, (
            f"arena grew during warm rounds at gs={gs}: "
            f"{grows_warm} -> {fused_arena.n_grows}"
        )

        # Bit-identical results: fused (and native, when present) vs the
        # looped per-set oracle — exact equality, no tolerance.
        _assert_identical(results["fused"], results["looped"])
        if has_native:
            _assert_identical(results["native"], results["looped"])

        # Bit-identical learns: the full skeleton phase agrees both ways.
        for batch in (True, False):
            tester = GSquareTest(dataset, batch_groups=batch)
            g2, s2, _ = learn_skeleton(
                tester, dataset.n_variables, gs=gs, group_endpoints=True
            )
            assert set(g2.edges()) == set(graph.edges())
            assert s2.as_dict() == sepsets.as_dict()

        allocs = {path.name: _steady_state_allocs(path) for path in paths}

        t_looped = best["looped"]
        t_fused = best["fused"]
        speedup = t_looped / t_fused
        speedups[gs] = speedup
        assert speedup >= NO_REGRESSION_FLOOR, (
            f"fused kernel slower at gs={gs}: {speedup:.2f}x"
        )
        native_speedup = t_looped / best["native"] if has_native else None
        rows.append(
            [
                gs,
                len(groups),
                n_tests,
                f"{n_tests / t_looped:,.0f}",
                f"{n_tests / t_fused:,.0f}",
                f"{speedup:.2f}x",
                f"{native_speedup:.2f}x" if native_speedup else "—",
            ]
        )
        payload["group_sizes"][str(gs)] = {
            "n_groups": len(groups),
            "n_tests": n_tests,
            "looped_s": t_looped,
            "batched_s": t_fused,
            "looped_tests_per_s": n_tests / t_looped,
            "batched_tests_per_s": n_tests / t_fused,
            "speedup": speedup,
            "native_s": best.get("native"),
            "native_speedup": native_speedup,
            "arena": fused_arena.stats(),
            "steady_state_allocs": allocs,
        }

    best = max(speedups[gs] for gs in TARGET_GROUP_SIZES)
    payload["best_speedup"] = best
    assert best >= TARGET_SPEEDUP, (
        f"fused group kernel only {best:.2f}x faster than the looped "
        f"per-set oracle at gs >= 8 (target {TARGET_SPEEDUP}x)"
    )

    text = render_table(
        ["gs", "groups", "tests", "looped tests/s", "fused tests/s", "speedup", "native"],
        rows,
        title=(
            f"Fused multi-group kernel vs looped per-set oracle — {wl.label}, "
            f"m={N_SAMPLES} (bit-identical results)"
        ),
    )
    record("kernel_batching", text)
    record_json("kernel_batching", payload)
