"""Shared encoded-dataset layer.

Every CI test starts by re-deriving the same integer encodings from the
raw category columns: the endpoint pair is folded into per-sample cell
codes ``x * ry + y`` and each column is widened to int64 before any
mixed-radix arithmetic.  Across a learning run the same ``(x, y)`` pairs
and the same columns are encoded thousands of times — pure re-computation,
because encodings depend only on the data.

:class:`EncodedDataset` memoizes exactly those two artefacts for one
:class:`~repro.datasets.dataset.DiscreteDataset`:

* ``col64(i)`` — the int64-widened (contiguous, read-only) column of
  variable ``i``, computed once per variable;
* ``xy_codes(x, y)`` — the per-sample endpoint cell codes, memoized per
  ordered pair under a bounded LRU (pairs are quadratic in the variable
  count, so the table is capped, unlike the linear ``col64`` cache).

One instance is meant to be shared by everything testing against the same
dataset: the sequential engine's testers, every parallel worker (the
:class:`~repro.parallel.backends.WorkerPool` ships one instance per worker
at pool start), and a :class:`~repro.engine.session.LearningSession`'s
whole tester family.  Encodings are bit-identical to the unshared path —
the memoized arrays hold the same values the testers would have derived
inline — so sharing changes speed and nothing else.

The memoization is deliberately **not** credited in the CI-test work
counters (:class:`~repro.citests.base.CITestCounters`): those model the
paper's abstract per-test data-access machine (Sec. IV-D) and must stay
comparable across PRs and to the paper's Table IV, whereas this layer is a
constant-factor implementation optimisation.

Shared-memory lifecycle
-----------------------
For process workers the layer doubles as the repo's **zero-copy dataset
plane** (see :mod:`repro.datasets.shm`): :meth:`EncodedDataset.export_shm`
publishes the widened columns (and memoized pair codes) into
``multiprocessing.shared_memory`` blocks and returns a
:class:`~repro.datasets.shm.ShmExport` whose picklable ``handle`` is all a
worker needs; :meth:`EncodedDataset.attach_shm` maps those blocks
read-only and serves every accessor zero-copy.  The creator owns the
blocks (``ShmExport.close`` unlinks; the
:class:`~repro.parallel.backends.WorkerPool` calls it at shutdown and a
finalizer backstops crashes); attachers only ever ``close()`` their
mapping.  When shared memory is unavailable, callers fall back to shipping
the pickled dataset — attach-served encodings are bit-identical to locally
derived ones, so the fallback changes memory traffic and nothing else.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .dataset import DiscreteDataset

__all__ = ["EncodedDataset"]

#: Default cap on memoized endpoint-pair encodings.  Each entry costs
#: ``8 * n_samples`` bytes; 512 pairs over a 10k-sample dataset is ~40 MB,
#: the same order as the default sufficient-statistics cache budget.
DEFAULT_MAX_XY_ENTRIES = 512


class EncodedDataset:
    """Memoized integer encodings over one dataset (see module docstring).

    Parameters
    ----------
    dataset:
        The dataset to encode.  The instance never copies or re-layouts
        the data; it only caches derived arrays.
    max_xy_entries:
        LRU bound on memoized ``(x, y)`` pair encodings (``0`` disables
        pair memoization entirely; ``col64`` is always memoized).
    memoize:
        ``False`` turns every accessor into a fresh computation — used by
        the baseline learners (``pc-stable`` and friends), which must keep
        re-deriving encodings per test the way the reference
        implementations do: memoizing contiguous widened columns would
        quietly erase part of the storage-layout (cache-friendliness)
        contrast the paper measures.
    """

    def __init__(
        self,
        dataset: DiscreteDataset,
        max_xy_entries: int = DEFAULT_MAX_XY_ENTRIES,
        memoize: bool = True,
    ) -> None:
        if max_xy_entries < 0:
            raise ValueError("max_xy_entries must be >= 0")
        self.dataset = dataset
        self.max_xy_entries = int(max_xy_entries)
        self.memoize = bool(memoize)
        self._col64: dict[int, np.ndarray] = {}
        self._cols_matrix: np.ndarray | None = None
        self._xy: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
        #: Conditioning-set code memos shared by every (memoizing) fused
        #: tester over this dataset: radix codes keyed by set tuple, plus
        #: the derived ``codes * (rx * ry)`` rows keyed ``(set, scale)``.
        #: Owned here — like ``xy_codes`` — because the values depend only
        #: on the data, so warm rows survive tester construction; the
        #: fused kernel (:mod:`repro.citests.tablebase`) fills and bounds
        #: them.
        self.z_rows: dict[tuple[int, ...], np.ndarray] = {}
        self.z_scaled: dict[tuple[tuple[int, ...], int], np.ndarray] = {}
        #: Attacher-side :class:`~repro.datasets.shm.AttachedBlocks` keeping
        #: the shared mappings alive; ``None`` for ordinary instances.
        self.shm = None

    # ------------------------------------------------------------------ #
    # memoized encodings
    # ------------------------------------------------------------------ #
    def col64(self, i: int) -> np.ndarray:
        """Variable ``i`` widened to a contiguous, read-only int64 array."""
        i = int(i)
        arr = self._col64.get(i)
        if arr is None:
            arr = np.ascontiguousarray(self.dataset.column(i), dtype=np.int64)
            arr.setflags(write=False)
            if self.memoize:
                self._col64[i] = arr
        return arr

    def xy_codes(self, x: int, y: int) -> np.ndarray:
        """Per-sample endpoint cell codes ``x * ry + y`` (read-only).

        Bit-identical to the inline ``column(x).astype(int64) * ry +
        column(y)`` every tester would otherwise compute per group.
        """
        key = (int(x), int(y))
        codes = self._xy.get(key)
        if codes is not None:
            # The instance may be shared across worker threads (thread
            # backend); a concurrent eviction between the get and this
            # recency refresh is harmless — the codes are already in hand.
            try:
                self._xy.move_to_end(key)
            except KeyError:
                pass
            return codes
        ry = self.dataset.arity(key[1])
        codes = self.col64(key[0]) * ry
        codes += self.col64(key[1])
        codes.setflags(write=False)
        if self.memoize and self.max_xy_entries > 0:
            self._xy[key] = codes
            while len(self._xy) > self.max_xy_entries:
                try:
                    self._xy.popitem(last=False)
                except KeyError:  # concurrent eviction drained the table
                    break
        return codes

    def cols_matrix(self) -> np.ndarray:
        """All columns stacked as one read-only ``(n_vars, m)`` matrix.

        Stored in the smallest unsigned dtype covering the largest arity
        (the dtype-narrowing tier of the fused kernel: gathers move
        1–2 bytes per sample instead of 8).  Values equal ``column(i)``
        exactly, so any arithmetic over gathered rows matches the widened
        per-column path bit for bit once cast.  Built lazily, memoized
        under ``memoize=True`` like ``col64``.
        """
        mat = getattr(self, "_cols_matrix", None)
        if mat is None:
            ds = self.dataset
            from .dataset import smallest_uint_dtype

            max_arity = max(
                (int(ds.arity(i)) for i in range(ds.n_variables)), default=1
            )
            mat = np.empty((ds.n_variables, ds.n_samples), dtype=smallest_uint_dtype(max_arity - 1))
            for i in range(ds.n_variables):
                mat[i] = ds.column(i)
            mat.setflags(write=False)
            if self.memoize:
                self._cols_matrix = mat
        return mat

    def encode_z(self, s, rz) -> tuple[np.ndarray, int]:
        """Mixed-radix codes of the conditioning tuple ``s`` (fresh array).

        Uses the memoized widened columns, so repeated encodings of
        overlapping tuples skip the per-column dtype widening; the codes
        themselves are not memoized here (the sufficient-statistics cache
        owns tuple-level code reuse, with exact work accounting).
        """
        from ..citests.contingency import encode_columns

        return encode_columns([self.col64(v) for v in s], list(rz))

    def encode_z_group(self, sets, rz_per_set) -> np.ndarray:
        """Vectorized mixed-radix codes of several same-depth tuples.

        Returns a ``(n_sets, m)`` int64 array whose row ``k`` is bit-
        identical to ``encode_z(sets[k], rz_per_set[k])[0]``: the radix
        combine runs level by level over the whole group (one multiply and
        one add per level) instead of set by set.  All tuples must share
        one depth ``>= 1``.

        Intended for the batched kernel's dense sets, whose radix products
        are bounded by ``compress_threshold * m`` — there is no int64
        overflow fallback here (cf. ``encode_columns``).
        """
        d = len(sets[0])
        if d < 1 or any(len(s) != d for s in sets):
            raise ValueError("encode_z_group requires same-depth tuples of size >= 1")
        codes = self._gather64([s[0] for s in sets])
        for j in range(1, d):
            codes *= np.array([int(rz[j]) for rz in rz_per_set], dtype=np.int64)[:, None]
            codes += self._gather64([s[j] for s in sets])
        return codes

    def _gather64(self, variables) -> np.ndarray:
        """``(len(variables), m)`` int64 matrix of the named columns.

        Row-wise memcpy of the memoized widened columns — cheaper than
        ``np.stack``'s generic machinery for the small row counts of a
        group.
        """
        out = np.empty((len(variables), self.dataset.n_samples), dtype=np.int64)
        for k, v in enumerate(variables):
            out[k] = self.col64(v)
        return out

    # ------------------------------------------------------------------ #
    # shared-memory dataset plane
    # ------------------------------------------------------------------ #
    def export_shm(self):
        """Publish this layer into shared memory (module docstring).

        Returns a :class:`~repro.datasets.shm.ShmExport`; ship its
        ``handle`` to workers and call ``close()`` when the last worker is
        gone.  A non-memoizing (baseline) layer refuses to export: the
        attach side is a fully warmed memoizing layer, which would erase
        the re-derivation behaviour baselines exist to measure.
        """
        if not self.memoize:
            raise ValueError("cannot export a non-memoizing (baseline) encoding layer")
        from .shm import export_encoded

        return export_encoded(self)

    @classmethod
    def attach_shm(cls, handle) -> "EncodedDataset":
        """Attach an exported plane zero-copy (module docstring).

        The returned instance's dataset values *are* the shared columns
        plane; ``col64`` is pre-warmed for every variable and ``xy_codes``
        for every pair the exporter had memoized.  ``instance.shm`` holds
        the mappings — see :meth:`detach_shm`.
        """
        from .shm import attach_encoded

        return attach_encoded(handle)

    def detach_shm(self) -> None:
        """Drop cached views and close this attacher's mappings.

        Safe on ordinary instances (no-op).  After detaching the instance
        must not be used — its dataset's values vanish with the mapping.
        """
        if self.shm is None:
            return
        self._col64.clear()
        self._cols_matrix = None
        self._xy.clear()
        shm, self.shm = self.shm, None
        shm.close()

    def memoized_pairs(self) -> list[tuple[int, int]]:
        """Keys of the currently memoized endpoint-pair encodings (in
        recency order, coldest first — the exporter's pair plane order)."""
        return list(self._xy.keys())

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, int]:
        """Sizes of the memoization tables (for tests and diagnostics)."""
        return {
            "n_col64": len(self._col64),
            "n_xy": len(self._xy),
            "nbytes": sum(a.nbytes for a in self._col64.values())
            + sum(a.nbytes for a in self._xy.values()),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EncodedDataset(n_variables={self.dataset.n_variables}, "
            f"n_samples={self.dataset.n_samples}, "
            f"n_col64={len(self._col64)}, n_xy={len(self._xy)})"
        )
