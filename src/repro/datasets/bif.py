"""Reader/writer for the BIF (Bayesian Interchange Format) network format.

The benchmark networks of the paper's Table II are distributed as ``.bif``
files in the bnlearn repository.  This module parses that dialect so real
files can be dropped into the reproduction when available; the synthetic
catalog (:mod:`repro.networks.catalog`) is used otherwise.

Supported constructs::

    network <name> { ... }
    variable <name> {
      type discrete [ <k> ] { v1, v2, ... };
    }
    probability ( <child> | <p1>, <p2> ) {
      (pv1, pv2) 0.2, 0.8;
      ...
    }
    probability ( <root> ) {
      table 0.3, 0.7;
    }
"""

from __future__ import annotations

import re

import numpy as np

from ..networks.bayesnet import CPT, DiscreteBayesianNetwork

__all__ = ["parse_bif", "write_bif", "load_bif"]

_TOKEN_RE = re.compile(
    r"""
    //[^\n]* | \#[^\n]*          # comments
    | [{}();,|\[\]]              # punctuation
    | "[^"]*"                    # quoted string
    | [^\s{}();,|\[\]]+          # atoms (names, numbers)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[str]:
    tokens = []
    for match in _TOKEN_RE.finditer(text):
        tok = match.group(0)
        if tok.startswith("//") or tok.startswith("#"):
            continue
        if tok.startswith('"') and tok.endswith('"'):
            tok = tok[1:-1]
        tokens.append(tok)
    return tokens


class _Cursor:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ValueError("unexpected end of BIF input")
        self.pos += 1
        return tok

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise ValueError(f"expected {token!r}, got {got!r} at token {self.pos - 1}")

    def skip_block(self) -> None:
        """Skip a balanced ``{ ... }`` block (used for ``property`` etc.)."""
        self.expect("{")
        depth = 1
        while depth:
            tok = self.next()
            if tok == "{":
                depth += 1
            elif tok == "}":
                depth -= 1


def parse_bif(text: str) -> DiscreteBayesianNetwork:
    """Parse BIF text into a :class:`DiscreteBayesianNetwork`.

    Variable value labels are mapped to integer codes in declaration order.
    """
    cur = _Cursor(_tokenize(text))
    names: list[str] = []
    levels: dict[str, list[str]] = {}
    prob_blocks: list[tuple[str, list[str], dict[tuple[str, ...], list[float]]]] = []

    while cur.peek() is not None:
        tok = cur.next()
        if tok == "network":
            cur.next()  # network name
            cur.skip_block()
        elif tok == "variable":
            name = cur.next()
            cur.expect("{")
            values: list[str] = []
            while cur.peek() != "}":
                inner = cur.next()
                if inner == "type":
                    kind = cur.next()
                    if kind != "discrete":
                        raise ValueError(f"only discrete variables supported, got {kind!r}")
                    cur.expect("[")
                    cur.next()  # declared cardinality, re-derived from labels
                    cur.expect("]")
                    cur.expect("{")
                    while cur.peek() != "}":
                        v = cur.next()
                        if v != ",":
                            values.append(v)
                    cur.expect("}")
                    cur.expect(";")
                elif inner == "property":
                    while cur.next() != ";":
                        pass
                else:
                    raise ValueError(f"unexpected token {inner!r} in variable block")
            cur.expect("}")
            if not values:
                raise ValueError(f"variable {name!r} has no declared values")
            names.append(name)
            levels[name] = values
        elif tok == "probability":
            cur.expect("(")
            child = cur.next()
            parents: list[str] = []
            nxt = cur.next()
            if nxt == "|":
                while True:
                    parents.append(cur.next())
                    sep = cur.next()
                    if sep == ")":
                        break
                    if sep != ",":
                        raise ValueError(f"expected ',' or ')' in parent list, got {sep!r}")
            elif nxt != ")":
                raise ValueError(f"expected '|' or ')' after child name, got {nxt!r}")
            cur.expect("{")
            rows: dict[tuple[str, ...], list[float]] = {}
            while cur.peek() != "}":
                inner = cur.next()
                if inner == "table":
                    probs: list[float] = []
                    while True:
                        t = cur.next()
                        if t == ";":
                            break
                        if t != ",":
                            probs.append(float(t))
                    rows[()] = probs
                elif inner == "(":
                    cfg: list[str] = []
                    while True:
                        t = cur.next()
                        if t == ")":
                            break
                        if t != ",":
                            cfg.append(t)
                    probs = []
                    while True:
                        t = cur.next()
                        if t == ";":
                            break
                        if t != ",":
                            probs.append(float(t))
                    rows[tuple(cfg)] = probs
                elif inner == "property":
                    while cur.next() != ";":
                        pass
                else:
                    raise ValueError(f"unexpected token {inner!r} in probability block")
            cur.expect("}")
            prob_blocks.append((child, parents, rows))
        else:
            raise ValueError(f"unexpected top-level token {tok!r}")

    index = {name: i for i, name in enumerate(names)}
    arities = [len(levels[name]) for name in names]
    cpts: list[CPT | None] = [None] * len(names)

    for child, parents, rows in prob_blocks:
        if child not in index:
            raise ValueError(f"probability block for undeclared variable {child!r}")
        child_idx = index[child]
        parent_idx = [index[p] for p in parents]
        n_cfg = int(np.prod([arities[p] for p in parent_idx], dtype=np.int64))
        table = np.full((n_cfg, arities[child_idx]), np.nan)
        if not parents:
            if () not in rows:
                raise ValueError(f"root variable {child!r} missing 'table' row")
            table[0] = rows[()]
        else:
            level_code = [
                {lab: k for k, lab in enumerate(levels[p])} for p in parents
            ]
            for cfg_labels, probs in rows.items():
                if len(cfg_labels) != len(parents):
                    raise ValueError(
                        f"{child!r}: configuration {cfg_labels} does not match parents {parents}"
                    )
                code = 0
                for j, lab in enumerate(cfg_labels):
                    if lab not in level_code[j]:
                        raise ValueError(f"{child!r}: unknown level {lab!r} of {parents[j]!r}")
                    code = code * arities[parent_idx[j]] + level_code[j][lab]
                table[code] = probs
        if np.isnan(table).any():
            raise ValueError(f"{child!r}: some parent configurations have no probabilities")
        cpts[child_idx] = CPT(parents=tuple(parent_idx), table=table)

    for i, cpt in enumerate(cpts):
        if cpt is None:
            raise ValueError(f"variable {names[i]!r} has no probability block")
    return DiscreteBayesianNetwork(arities, [c for c in cpts if c is not None], names)


def load_bif(path: str) -> DiscreteBayesianNetwork:
    """Parse a ``.bif`` file from disk."""
    with open(path, encoding="utf-8") as fh:
        return parse_bif(fh.read())


def _level_labels(arity: int) -> list[str]:
    return [f"s{k}" for k in range(arity)]


def write_bif(network: DiscreteBayesianNetwork, name: str = "network") -> str:
    """Serialise a network to BIF text (integer levels become ``s0, s1, ...``).

    Round-trips with :func:`parse_bif` up to level naming.
    """
    lines: list[str] = [f"network {name} {{", "}"]
    for i in range(network.n_nodes):
        arity = int(network.arities[i])
        labels = ", ".join(_level_labels(arity))
        lines.append(f"variable {network.names[i]} {{")
        lines.append(f"  type discrete [ {arity} ] {{ {labels} }};")
        lines.append("}")
    for i in range(network.n_nodes):
        cpt = network.cpt(i)
        if not cpt.parents:
            lines.append(f"probability ( {network.names[i]} ) {{")
            row = ", ".join(f"{p:.10g}" for p in cpt.table[0])
            lines.append(f"  table {row};")
            lines.append("}")
            continue
        parent_names = ", ".join(network.names[p] for p in cpt.parents)
        lines.append(f"probability ( {network.names[i]} | {parent_names} ) {{")
        parent_arities = [int(network.arities[p]) for p in cpt.parents]
        for cfg in range(cpt.n_parent_configs):
            # decode mixed-radix cfg (first parent most significant)
            rem = cfg
            codes: list[int] = []
            for a in reversed(parent_arities):
                codes.append(rem % a)
                rem //= a
            codes.reverse()
            labels = ", ".join(f"s{c}" for c in codes)
            row = ", ".join(f"{p:.10g}" for p in cpt.table[cfg])
            lines.append(f"  ({labels}) {row};")
        lines.append("}")
    return "\n".join(lines) + "\n"
