"""Vectorised forward (ancestral) sampling from a discrete Bayesian network.

Datasets in the paper are drawn from benchmark networks (Table II): 5 000 to
15 000 complete samples per network.  Forward sampling visits nodes in
topological order; for each node the parent configuration of every sample is
encoded as a mixed-radix integer so that the whole column can be drawn with
one vectorised inverse-CDF lookup instead of a per-sample Python loop.
"""

from __future__ import annotations

import numpy as np

from ..networks.bayesnet import DiscreteBayesianNetwork
from .dataset import DiscreteDataset, smallest_uint_dtype

__all__ = ["forward_sample"]


def forward_sample(
    network: DiscreteBayesianNetwork,
    n_samples: int,
    rng: np.random.Generator | int | None = None,
    layout: str = "variable-major",
) -> DiscreteDataset:
    """Draw ``n_samples`` complete observations from ``network``.

    Parameters
    ----------
    network:
        The generating Bayesian network.
    n_samples:
        Number of complete samples (no missing values, as in the paper).
    rng:
        ``numpy`` generator or seed; a seed gives reproducible datasets.
    layout:
        Storage layout of the returned :class:`DiscreteDataset`.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    n = network.n_nodes
    arities = network.arities
    dtype = smallest_uint_dtype(int(arities.max()) - 1)
    data = np.empty((n, n_samples), dtype=dtype)

    for node in network.topological_order():
        cpt = network.cpt(node)
        if not cpt.parents:
            cfg = np.zeros(n_samples, dtype=np.int64)
        else:
            cfg = np.zeros(n_samples, dtype=np.int64)
            for p in cpt.parents:
                cfg *= int(arities[p])
                cfg += data[p].astype(np.int64)
        # Inverse-CDF sampling: one uniform per sample, compared against the
        # row-wise cumulative distribution of this node's CPT.
        cdf = np.cumsum(cpt.table, axis=1)
        cdf[:, -1] = 1.0  # guard against floating-point undershoot
        u = rng.random(n_samples)
        # searchsorted per distinct parent config would be a Python loop over
        # configs; instead gather each sample's CDF row and compare once.
        rows = cdf[cfg]  # (n_samples, arity)
        data[node] = (u[:, None] >= rows).sum(axis=1).astype(dtype)

    ds = DiscreteDataset(
        values=data,
        arities=arities,
        layout="variable-major",
        names=network.names,
    )
    return ds.with_layout(layout)
