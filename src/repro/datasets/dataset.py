"""Discrete dataset container with configurable memory layout.

The paper's third optimisation ("cache-friendly data storage", Sec. IV-C)
transposes the sample matrix so that each *variable* occupies one contiguous
row.  Contingency-table construction gathers a handful of variable columns
for every sample; with row-major (sample-major) storage those gathers are
strided and every access is a potential cache miss, while with
variable-major storage each gather is a contiguous read.

:class:`DiscreteDataset` supports both layouts so that baselines can be run
with the cache-unfriendly layout the paper criticises and Fast-BNS with the
friendly one.  ``column(i)`` always returns a 1-D array of the ``m`` values
of variable ``i``; whether that array is a contiguous view or a strided copy
depends on the layout, which is exactly the effect under study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["DiscreteDataset", "Layout", "smallest_uint_dtype"]

Layout = str  # "variable-major" | "sample-major"

_VALID_LAYOUTS = ("variable-major", "sample-major")


def smallest_uint_dtype(max_value: int) -> np.dtype:
    """Smallest unsigned integer dtype able to hold ``max_value``.

    Minimising element width maximises the number of values per cache line,
    which is part of the memory-efficiency story of Fast-BNS.
    """
    if max_value < 0:
        raise ValueError("max_value must be non-negative")
    for dtype in (np.uint8, np.uint16, np.uint32):
        if max_value <= np.iinfo(dtype).max:
            return np.dtype(dtype)
    return np.dtype(np.uint64)


@dataclass(frozen=True)
class DiscreteDataset:
    """Complete-data discrete dataset.

    Parameters
    ----------
    values:
        Integer-coded observations.  Shape ``(n_variables, n_samples)`` when
        ``layout == "variable-major"`` (the Fast-BNS layout) or
        ``(n_samples, n_variables)`` when ``layout == "sample-major"``.
    arities:
        Number of categories of each variable; ``values[i]`` (or column ``i``)
        must lie in ``[0, arities[i])``.
    names:
        Optional variable names, default ``V0..V{n-1}``.
    """

    values: np.ndarray
    arities: np.ndarray
    layout: Layout = "variable-major"
    names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.layout not in _VALID_LAYOUTS:
            raise ValueError(f"layout must be one of {_VALID_LAYOUTS}, got {self.layout!r}")
        values = np.asarray(self.values)
        if values.ndim != 2:
            raise ValueError("values must be a 2-D array")
        arities = np.asarray(self.arities, dtype=np.int64)
        if arities.ndim != 1:
            raise ValueError("arities must be 1-D")
        n_vars = values.shape[0] if self.layout == "variable-major" else values.shape[1]
        if arities.shape[0] != n_vars:
            raise ValueError(
                f"arities has {arities.shape[0]} entries but data has {n_vars} variables"
            )
        if np.any(arities < 1):
            raise ValueError("every variable needs arity >= 1")
        if values.size:
            per_var_max = (
                values.max(axis=1) if self.layout == "variable-major" else values.max(axis=0)
            )
            if np.any(per_var_max >= arities):
                bad = int(np.argmax(per_var_max >= arities))
                raise ValueError(
                    f"variable {bad} has value {int(per_var_max[bad])} "
                    f">= its arity {int(arities[bad])}"
                )
            if values.min() < 0:
                raise ValueError("values must be non-negative category codes")
        names = self.names or tuple(f"V{i}" for i in range(n_vars))
        if len(names) != n_vars:
            raise ValueError(f"{len(names)} names for {n_vars} variables")
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "arities", arities)
        object.__setattr__(self, "names", tuple(names))

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(
        cls,
        rows: np.ndarray | Sequence[Sequence[int]],
        arities: Sequence[int] | np.ndarray | None = None,
        names: Iterable[str] | None = None,
        layout: Layout = "variable-major",
    ) -> "DiscreteDataset":
        """Build from a ``(n_samples, n_variables)`` matrix of category codes.

        ``arities`` defaults to ``max+1`` per column.  The data is converted
        to the requested ``layout`` with the smallest sufficient dtype.
        """
        rows = np.asarray(rows)
        if rows.ndim != 2:
            raise ValueError("rows must be 2-D (n_samples, n_variables)")
        if arities is None:
            if rows.shape[0] == 0:
                raise ValueError("cannot infer arities from an empty dataset")
            arities = rows.max(axis=0).astype(np.int64) + 1
        arities = np.asarray(arities, dtype=np.int64)
        dtype = smallest_uint_dtype(int(arities.max()) - 1 if arities.size else 0)
        if layout == "variable-major":
            values = np.ascontiguousarray(rows.T, dtype=dtype)
        else:
            values = np.ascontiguousarray(rows, dtype=dtype)
        return cls(
            values=values,
            arities=arities,
            layout=layout,
            names=tuple(names) if names is not None else (),
        )

    @classmethod
    def _from_validated(
        cls,
        values: np.ndarray,
        arities: np.ndarray,
        layout: Layout,
        names: tuple[str, ...],
    ) -> "DiscreteDataset":
        """Trusted constructor bypassing ``__post_init__`` validation.

        For data that has already passed validation in this process tree —
        the shared-memory attach path (:mod:`.shm`), where re-scanning the
        whole plane per attaching worker would cost the O(n x m) pass the
        plane exists to avoid.  Callers guarantee shapes, bounds and name
        count; nothing is checked here.
        """
        self = cls.__new__(cls)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "arities", np.asarray(arities, dtype=np.int64))
        object.__setattr__(self, "layout", layout)
        object.__setattr__(self, "names", tuple(names))
        return self

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def n_variables(self) -> int:
        return self.values.shape[0] if self.layout == "variable-major" else self.values.shape[1]

    @property
    def n_samples(self) -> int:
        return self.values.shape[1] if self.layout == "variable-major" else self.values.shape[0]

    def arity(self, i: int) -> int:
        return int(self.arities[i])

    def column(self, i: int) -> np.ndarray:
        """Values of variable ``i`` for all samples.

        Contiguous view under ``variable-major`` layout; strided access under
        ``sample-major`` layout (the cache-unfriendly pattern the paper
        measures).  No copy is forced in either case so the layout's memory
        behaviour is preserved.
        """
        if self.layout == "variable-major":
            return self.values[i]
        return self.values[:, i]

    def columns(self, idx: Sequence[int]) -> list[np.ndarray]:
        return [self.column(int(i)) for i in idx]

    def as_rows(self) -> np.ndarray:
        """Return a ``(n_samples, n_variables)`` copy regardless of layout."""
        if self.layout == "variable-major":
            return np.ascontiguousarray(self.values.T)
        return np.array(self.values, copy=True)

    # ------------------------------------------------------------------ #
    # layout conversion & subsetting
    # ------------------------------------------------------------------ #
    def with_layout(self, layout: Layout) -> "DiscreteDataset":
        """Return the same data in the requested layout (no-op when equal)."""
        if layout not in _VALID_LAYOUTS:
            raise ValueError(f"layout must be one of {_VALID_LAYOUTS}, got {layout!r}")
        if layout == self.layout:
            return self
        return DiscreteDataset(
            values=np.ascontiguousarray(self.values.T),
            arities=self.arities,
            layout=layout,
            names=self.names,
        )

    def take_samples(self, n: int) -> "DiscreteDataset":
        """First ``n`` samples (used by sample-size sweeps, Fig. 3)."""
        if not 0 < n <= self.n_samples:
            raise ValueError(f"n must be in [1, {self.n_samples}], got {n}")
        values = (
            np.ascontiguousarray(self.values[:, :n])
            if self.layout == "variable-major"
            else np.ascontiguousarray(self.values[:n, :])
        )
        return DiscreteDataset(values, self.arities, self.layout, self.names)

    def select_variables(self, idx: Sequence[int]) -> "DiscreteDataset":
        idx = list(int(i) for i in idx)
        values = (
            np.ascontiguousarray(self.values[idx, :])
            if self.layout == "variable-major"
            else np.ascontiguousarray(self.values[:, idx])
        )
        return DiscreteDataset(
            values,
            self.arities[idx],
            self.layout,
            tuple(self.names[i] for i in idx),
        )

    def index_of(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(f"no variable named {name!r}") from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiscreteDataset(n_variables={self.n_variables}, n_samples={self.n_samples}, "
            f"layout={self.layout!r})"
        )
