"""Dataset I/O: CSV with automatic categorical encoding, train/test split.

Real-world categorical data arrives as labelled CSV columns.  ``read_csv``
maps each column's labels to integer codes (recorded in a
:class:`CategoricalCodec` so predictions/reports can be translated back),
producing the :class:`DiscreteDataset` the learners consume.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass

import numpy as np

from .dataset import DiscreteDataset

__all__ = [
    "CategoricalCodec",
    "read_csv",
    "read_codes_csv",
    "write_csv",
    "train_test_split",
]


@dataclass(frozen=True)
class CategoricalCodec:
    """Per-variable label <-> code mappings of an encoded dataset."""

    names: tuple[str, ...]
    levels: tuple[tuple[str, ...], ...]

    def encode(self, variable: int, label: str) -> int:
        try:
            return self.levels[variable].index(label)
        except ValueError:
            raise KeyError(
                f"unknown level {label!r} of variable {self.names[variable]!r}"
            ) from None

    def decode(self, variable: int, code: int) -> str:
        return self.levels[variable][code]

    def arities(self) -> list[int]:
        return [len(lv) for lv in self.levels]


def read_csv(
    source: str | io.TextIOBase,
    layout: str = "variable-major",
) -> tuple[DiscreteDataset, CategoricalCodec]:
    """Read a header-ed CSV of categorical values.

    Labels are coded in order of first appearance per column (purely
    numeric columns still become categorical codes — discretise
    continuous data upstream).  Returns the dataset and its codec.
    """
    close = False
    if isinstance(source, str):
        fh: io.TextIOBase = open(source, encoding="utf-8", newline="")
        close = True
    else:
        fh = source
    try:
        reader = csv.reader(fh)
        try:
            names = [c.strip() for c in next(reader)]
        except StopIteration:
            raise ValueError("empty CSV: no header row") from None
        n_vars = len(names)
        level_maps: list[dict[str, int]] = [{} for _ in range(n_vars)]
        codes: list[list[int]] = []
        for line_no, row in enumerate(reader, start=2):
            if not row or all(not c.strip() for c in row):
                continue
            if len(row) != n_vars:
                raise ValueError(f"line {line_no}: expected {n_vars} columns, got {len(row)}")
            encoded = []
            for j, raw in enumerate(row):
                label = raw.strip()
                code = level_maps[j].setdefault(label, len(level_maps[j]))
                encoded.append(code)
            codes.append(encoded)
        if not codes:
            raise ValueError("CSV contains a header but no data rows")
    finally:
        if close:
            fh.close()

    rows = np.asarray(codes, dtype=np.int64)
    codec = CategoricalCodec(
        names=tuple(names),
        levels=tuple(tuple(m.keys()) for m in level_maps),
    )
    dataset = DiscreteDataset.from_rows(
        rows, arities=codec.arities(), names=names, layout=layout
    )
    return dataset, codec


def read_codes_csv(path: str, layout: str = "variable-major") -> DiscreteDataset:
    """Read a header-ed CSV of *integer category codes* (the CLI format).

    Unlike :func:`read_csv` no label encoding happens — cells must already
    be integer codes.  ``ndmin=2`` keeps single-column files 2-D
    (``np.loadtxt`` otherwise returns a 1-D vector that
    :meth:`DiscreteDataset.from_rows` rejects), and the header is validated
    against the data width so a malformed file fails with a line-zero
    message instead of a misaligned dataset.
    """
    with open(path, encoding="utf-8") as fh:
        header = fh.readline()
    if not header.strip():
        raise ValueError(f"{path}: empty CSV — expected a header row of variable names")
    names = [c.strip() for c in header.split(",")]
    if any(not n for n in names):
        raise ValueError(f"{path}: header has empty variable names: {header.strip()!r}")
    import warnings

    with warnings.catch_warnings():
        # loadtxt warns on zero data rows; the ValueError below is clearer.
        warnings.simplefilter("ignore", UserWarning)
        rows = np.loadtxt(path, delimiter=",", skiprows=1, dtype=np.int64, ndmin=2)
    if rows.size == 0:
        raise ValueError(f"{path}: CSV contains a header but no data rows")
    if rows.shape[1] != len(names):
        raise ValueError(
            f"{path}: header names {len(names)} column(s) "
            f"({', '.join(names)}) but the data has {rows.shape[1]}"
        )
    return DiscreteDataset.from_rows(rows, names=names, layout=layout)


def write_csv(
    dataset: DiscreteDataset,
    destination: str | io.TextIOBase,
    codec: CategoricalCodec | None = None,
) -> None:
    """Write a dataset back to CSV (labels from ``codec`` when given,
    integer codes otherwise)."""
    close = False
    if isinstance(destination, str):
        fh: io.TextIOBase = open(destination, "w", encoding="utf-8", newline="")
        close = True
    else:
        fh = destination
    try:
        writer = csv.writer(fh)
        writer.writerow(dataset.names)
        rows = dataset.as_rows()
        for row in rows:
            if codec is None:
                writer.writerow([int(v) for v in row])
            else:
                writer.writerow([codec.decode(j, int(v)) for j, v in enumerate(row)])
    finally:
        if close:
            fh.close()


def train_test_split(
    dataset: DiscreteDataset,
    test_fraction: float = 0.2,
    rng: np.random.Generator | int | None = 0,
) -> tuple[DiscreteDataset, DiscreteDataset]:
    """Random split into train/test datasets (same layout and names)."""
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    m = dataset.n_samples
    n_test = max(1, int(round(m * test_fraction)))
    if n_test >= m:
        raise ValueError("split leaves no training samples")
    perm = rng.permutation(m)
    rows = dataset.as_rows()
    train_rows = rows[perm[n_test:]]
    test_rows = rows[perm[:n_test]]
    make = lambda r: DiscreteDataset.from_rows(  # noqa: E731
        r, arities=list(dataset.arities), names=dataset.names, layout=dataset.layout
    )
    return make(train_rows), make(test_rows)
