"""Dataset substrate: discrete data containers, sampling and I/O."""

from .bif import load_bif, parse_bif, write_bif
from .dataset import DiscreteDataset, smallest_uint_dtype
from .encoded import EncodedDataset
from .io import CategoricalCodec, read_csv, train_test_split, write_csv
from .sampling import forward_sample

__all__ = [
    "DiscreteDataset",
    "EncodedDataset",
    "smallest_uint_dtype",
    "forward_sample",
    "read_csv",
    "write_csv",
    "CategoricalCodec",
    "train_test_split",
    "parse_bif",
    "write_bif",
    "load_bif",
]
