"""repro.datasets — the data substrate: containers, encodings, I/O.

Layers, bottom-up (each documented in its module):

* :class:`DiscreteDataset` (:mod:`.dataset`) — integer-coded complete
  data in either storage layout (variable-major is the paper's
  cache-friendly layout; sample-major is the baseline regime the paper
  criticises — the contrast is itself an experiment);
* :class:`EncodedDataset` (:mod:`.encoded`) — memoizes the derived
  artefacts every CI test needs (int64-widened columns, endpoint-pair
  codes) once per dataset, shared by testers, sessions and workers;
* the **shared-memory dataset plane** (:mod:`.shm`) — publishes an
  encoding layer into ``multiprocessing.shared_memory`` so process
  workers attach zero-copy views instead of receiving pickled arrays;
* sampling (:mod:`.sampling`), CSV codecs (:mod:`.io`) and BIF network
  I/O (:mod:`.bif`).

Shared-memory lifecycle in one paragraph: the *creator* calls
:meth:`EncodedDataset.export_shm` and owns the returned
:class:`~repro.datasets.shm.ShmExport` — its picklable ``handle`` is all
that crosses process boundaries, and its ``close()`` (tied to
:meth:`WorkerPool.shutdown <repro.parallel.backends.WorkerPool.shutdown>`
/ :meth:`LearningSession.close <repro.engine.session.LearningSession.close>`,
with a finalizer backstop) unlinks the blocks exactly once.  *Attachers*
call :meth:`EncodedDataset.attach_shm` and only ever close their own
mapping.  When the platform provides no usable shared memory
(:func:`~repro.datasets.shm.shared_memory_available`), every caller falls
back to pickled dataset shipping — bit-identical results, different
memory/start-up cost.
"""

from .bif import load_bif, parse_bif, write_bif
from .dataset import DiscreteDataset, smallest_uint_dtype
from .encoded import EncodedDataset
from .io import CategoricalCodec, read_codes_csv, read_csv, train_test_split, write_csv
from .sampling import forward_sample
from .shm import ShmDatasetHandle, ShmExport, shared_memory_available

__all__ = [
    # containers & encodings
    "DiscreteDataset",
    "EncodedDataset",
    "smallest_uint_dtype",
    # shared-memory dataset plane
    "ShmDatasetHandle",
    "ShmExport",
    "shared_memory_available",
    # sampling & I/O
    "forward_sample",
    "read_csv",
    "read_codes_csv",
    "write_csv",
    "CategoricalCodec",
    "train_test_split",
    "parse_bif",
    "write_bif",
    "load_bif",
]
