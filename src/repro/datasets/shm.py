"""Zero-copy shared-memory dataset plane.

The paper's OpenMP threads share one in-memory dataset for the whole
parallel region.  The process-based :class:`~repro.parallel.backends.WorkerPool`
originally re-created that dataset once *per worker* (pickled through the
pool initializer under ``spawn``; copy-on-write-then-privately-widened
under ``fork``), costing ``O(n_jobs x dataset)`` memory and a per-worker
encoding pass before the first CI test.  This module publishes the encoded
dataset once, into ``multiprocessing.shared_memory`` blocks, so every
worker maps the *same* physical pages:

* the **columns plane** — one ``(n_variables, n_samples)`` int64 block
  holding every variable's widened column (the arrays
  :meth:`~repro.datasets.encoded.EncodedDataset.col64` memoizes);
* the optional **pair plane** — the endpoint cell codes
  (:meth:`~repro.datasets.encoded.EncodedDataset.xy_codes`) memoized at
  export time, packed into a second block so workers start with a warm
  pair cache.

What crosses the process boundary is a :class:`ShmDatasetHandle` — block
names, shapes and arities, a few hundred bytes — instead of the arrays.
Workers attach read-only views (:func:`attach_encoded`); no data is copied
at attach and per-worker private memory stays flat no matter how large the
dataset is.

Lifecycle
---------
:func:`export_encoded` returns a :class:`ShmExport` that owns the blocks.
Exactly one process — the creator — may :meth:`ShmExport.close` (which
unlinks); attachers call :meth:`AttachedBlocks.close` (which never
unlinks).  The :class:`~repro.parallel.backends.WorkerPool` ties the
export to its own ``shutdown`` and a ``weakref.finalize`` guarantees the
unlink even when the pool is garbage-collected after a worker crash, so an
interrupted learning run cannot leak ``/dev/shm`` segments.  When shared
memory is unavailable on the platform (:func:`shared_memory_available`),
callers fall back to the classic pickled-dataset shipping transparently —
results are bit-identical either way, only the memory/start-up cost moves.

Attached segments are unregistered from the per-process
``resource_tracker`` (Python < 3.13 registers them on attach, which would
make the *attaching* process unlink the creator's block at exit —
bpo-39959); ownership stays with the creator alone.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING

import numpy as np

from .dataset import DiscreteDataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .encoded import EncodedDataset

__all__ = [
    "ShmDatasetHandle",
    "ShmRawHandle",
    "ShmExport",
    "AttachedBlocks",
    "export_encoded",
    "attach_encoded",
    "try_export_encoded",
    "export_dataset",
    "attach_dataset",
    "try_export_dataset",
    "shared_memory_available",
]


def shared_memory_available() -> bool:
    """True when POSIX/Windows shared memory actually works here.

    Probes by round-tripping one tiny block — containerised environments
    sometimes expose the API but mount no usable backing store.
    """
    try:
        block = shared_memory.SharedMemory(create=True, size=16)
    except (OSError, PermissionError, ValueError):
        return False
    try:
        block.buf[0] = 1
        ok = block.buf[0] == 1
    finally:
        block.close()
        block.unlink()
    return bool(ok)


#: Safety margin on top of the requested export size when probing free
#: shared-memory capacity (other writers, tmpfs block rounding).
_CAPACITY_MARGIN_BYTES = 1 << 20


def _check_capacity(nbytes: int) -> None:
    """Refuse an export that could not actually be written.

    On Linux, ``SharedMemory(create=True, size=N)`` succeeds even when
    ``/dev/shm`` is smaller than ``N`` — ``ftruncate`` reserves no pages —
    and the subsequent plane *writes* die with SIGBUS, which no ``except``
    clause can catch (the classic undersized-container ``/dev/shm``
    failure).  Probing free space up front turns that crash into an
    ``OSError`` the transport policy's pickled fallback handles.
    Best-effort: silently passes where the probe is unavailable.
    """
    try:
        st = os.statvfs("/dev/shm")
    except (OSError, AttributeError):  # non-Linux or no tmpfs mount
        return
    free = st.f_bavail * st.f_frsize
    if nbytes + _CAPACITY_MARGIN_BYTES > free:
        raise OSError(
            f"shared memory export needs {nbytes} bytes but /dev/shm has "
            f"only {free} free; falling back to pickled shipping"
        )


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach without registering with this process's resource tracker.

    On Python < 3.13 attaching registers the segment with the tracker,
    and the tracker unlinks everything it knows at process exit — a
    short-lived worker would destroy the creator's live block
    (bpo-39959).  Ownership is the creator's alone, so registration is
    suppressed for the duration of the attach (worker init is
    single-threaded, and the patch window is a few syscalls wide).
    """
    try:  # pragma: no cover - interpreter internals
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shared_memory(name: str, rtype: str) -> None:
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = _skip_shared_memory
    except (ImportError, AttributeError):  # interpreter without the tracker
        original = None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        if original is not None:
            from multiprocessing import resource_tracker

            resource_tracker.register = original


@dataclass(frozen=True)
class ShmDatasetHandle:
    """Picklable description of an exported dataset plane.

    This is the *entire* payload a worker receives: block names + shapes +
    arities/names, a few hundred bytes regardless of ``n_samples``.
    """

    columns_block: str
    n_variables: int
    n_samples: int
    arities: tuple[int, ...]
    names: tuple[str, ...]
    pairs_block: str | None
    pair_keys: tuple[tuple[int, int], ...]
    max_xy_entries: int

    @property
    def nbytes(self) -> int:
        """Bytes of shared payload the handle points at (not carries)."""
        per_col = 8 * self.n_samples
        return per_col * (self.n_variables + len(self.pair_keys))


@dataclass(frozen=True)
class ShmRawHandle:
    """Picklable description of a raw-dtype dataset export.

    For consumers that only need the dataset's values — the sample-level
    scheme's slice counters — the values block keeps the original
    (smallest-sufficient) dtype, so the shared copy is never wider than
    the private copies it replaces.
    """

    values_block: str
    dtype: str
    n_variables: int
    n_samples: int
    layout: str
    arities: tuple[int, ...]
    names: tuple[str, ...]

    @property
    def nbytes(self) -> int:
        return np.dtype(self.dtype).itemsize * self.n_variables * self.n_samples


class ShmExport:
    """Creator-side owner of the exported blocks.

    ``close()`` (idempotent) releases the creator mapping and unlinks the
    segments; a ``weakref.finalize`` does the same if the owner is dropped
    without closing, so crashes cannot leak ``/dev/shm``.
    """

    def __init__(
        self, handle: ShmDatasetHandle, blocks: list[shared_memory.SharedMemory]
    ) -> None:
        self.handle = handle
        self._blocks = blocks
        self._finalizer = weakref.finalize(self, _close_blocks, blocks, True)

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Release the creator mapping and unlink the segments."""
        self._finalizer()

    def __enter__(self) -> "ShmExport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getstate__(self):
        # SharedMemory pickles by *name*: an unpickled copy would attach
        # in the child and its __del__ could unmap/unlink the creator's
        # live segments.  Only the handle may cross process boundaries.
        raise TypeError("ShmExport is process-local; ship ShmExport.handle instead")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else f"{self.handle.nbytes} shared bytes"
        return f"ShmExport({self.handle.columns_block!r}, {state})"


class AttachedBlocks:
    """Attacher-side holder keeping the mapped blocks alive.

    Arrays served by an attached :class:`EncodedDataset` are views into
    these mappings, and ``SharedMemory.__del__`` *unmaps* them — numpy
    holds only an object reference to the mmap, not a buffer export, so
    garbage-collecting the blocks would pull physical pages out from
    under live arrays.  The holder is therefore pinned both on the
    encoding layer (``encoded.shm``) and on the attached dataset itself,
    and must not be closed while any view is in use.  ``close()`` never
    unlinks — that is the creator's job.
    """

    def __init__(self, blocks: list[shared_memory.SharedMemory]) -> None:
        self._blocks = blocks

    def close(self) -> None:
        for block in self._blocks:
            try:
                block.close()
            except BufferError:  # a live view still pins the mapping
                pass
        self._blocks = []

    def __getstate__(self):
        # See ShmExport.__getstate__: a pickled copy's __del__ would
        # unmap pages under the live views this holder exists to pin.
        raise TypeError("AttachedBlocks is process-local; re-attach from the handle instead")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AttachedBlocks(n={len(self._blocks)})"


def _close_blocks(blocks: list[shared_memory.SharedMemory], unlink: bool) -> None:
    for block in blocks:
        try:
            block.close()
        except BufferError:  # pragma: no cover - creator views are transient
            pass
        if unlink:
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def export_encoded(encoded: "EncodedDataset") -> ShmExport:
    """Publish ``encoded``'s int64 plane into shared memory.

    Every column is widened (through the layer's own memoization, so an
    already-warm layer exports without re-deriving anything) and copied
    into the columns plane; currently-memoized endpoint-pair codes ride
    along in the pair plane.  Raises ``OSError`` when the platform cannot
    provide shared memory — callers treat that as "use the pickled path".
    """
    ds = encoded.dataset
    n, m = ds.n_variables, ds.n_samples
    n_pairs = len(encoded.memoized_pairs())
    _check_capacity(8 * m * (n + n_pairs))
    blocks: list[shared_memory.SharedMemory] = []
    try:
        col_block = shared_memory.SharedMemory(create=True, size=max(8 * n * m, 8))
        blocks.append(col_block)
        plane = np.ndarray((n, m), dtype=np.int64, buffer=col_block.buf)
        for i in range(n):
            plane[i] = encoded.col64(i)

        pair_keys = tuple(encoded.memoized_pairs())
        pairs_block_name = None
        if pair_keys:
            pair_block = shared_memory.SharedMemory(
                create=True, size=max(8 * len(pair_keys) * m, 8)
            )
            blocks.append(pair_block)
            pair_plane = np.ndarray((len(pair_keys), m), dtype=np.int64, buffer=pair_block.buf)
            for k, (x, y) in enumerate(pair_keys):
                pair_plane[k] = encoded.xy_codes(x, y)
            pairs_block_name = pair_block.name
    except BaseException:
        _close_blocks(blocks, unlink=True)
        raise

    handle = ShmDatasetHandle(
        columns_block=col_block.name,
        n_variables=n,
        n_samples=m,
        arities=tuple(int(a) for a in ds.arities),
        names=ds.names,
        pairs_block=pairs_block_name,
        pair_keys=pair_keys,
        max_xy_entries=encoded.max_xy_entries,
    )
    return ShmExport(handle, blocks)


def _apply_transport_policy(export_fn, use_shm: bool | None):
    """The one shm-vs-pickled transport policy, shared by every pool.

    ``None`` (auto) attempts the export and returns ``None`` on platform
    failures (the caller then ships the dataset pickled); ``True``
    requires it (errors surface); ``False`` never exports.  Keeping the
    policy here stops the worker pools from growing divergent fallback
    rules.

    Fault site ``"shm.export"`` fires before each attempt, so drills can
    fake ``/dev/shm`` exhaustion and exercise both fallback and surfaced
    failure through this exact policy.
    """
    if use_shm is False:
        return None

    def _attempt():
        from ..engine.faults import injector

        injector.fire("shm.export")
        return export_fn()

    if use_shm:
        return _attempt()
    try:
        return _attempt()
    except (OSError, PermissionError, ValueError):
        return None


def try_export_encoded(encoded: "EncodedDataset", use_shm: bool | None = None):
    """Transport policy (see :func:`_apply_transport_policy`) over the
    full encoding-layer export."""
    return _apply_transport_policy(encoded.export_shm, use_shm)


def try_export_dataset(dataset: DiscreteDataset, use_shm: bool | None = None):
    """Transport policy over the raw-dtype values export."""
    return _apply_transport_policy(lambda: export_dataset(dataset), use_shm)


def attach_encoded(handle: ShmDatasetHandle) -> "EncodedDataset":
    """Map an exported plane and wrap it as a ready-to-serve layer.

    Zero-copy: the returned :class:`EncodedDataset` (and its
    ``DiscreteDataset``, whose values *are* the shared plane) serve
    read-only views into the mapped blocks.  The holder keeping the
    mappings alive is reachable as ``encoded.shm`` — drop every view
    before closing it.
    """
    from .encoded import EncodedDataset

    blocks: list[shared_memory.SharedMemory] = []
    try:
        col_block = _attach_block(handle.columns_block)
        blocks.append(col_block)
        plane = np.ndarray(
            (handle.n_variables, handle.n_samples), dtype=np.int64, buffer=col_block.buf
        )
        plane.setflags(write=False)
        # Trusted path: the handle can only come from export_encoded over
        # an already-validated dataset, and __post_init__'s bounds scan
        # would re-read the whole plane in every attaching worker.
        dataset = DiscreteDataset._from_validated(
            plane,
            np.asarray(handle.arities, dtype=np.int64),
            "variable-major",
            handle.names,
        )
        encoded = EncodedDataset(dataset, max_xy_entries=handle.max_xy_entries)
        for i in range(handle.n_variables):
            encoded._col64[i] = plane[i]
        if handle.pairs_block is not None:
            pair_block = _attach_block(handle.pairs_block)
            blocks.append(pair_block)
            pair_plane = np.ndarray(
                (len(handle.pair_keys), handle.n_samples),
                dtype=np.int64,
                buffer=pair_block.buf,
            )
            pair_plane.setflags(write=False)
            for k, key in enumerate(handle.pair_keys):
                if len(encoded._xy) < handle.max_xy_entries:
                    encoded._xy[tuple(key)] = pair_plane[k]
    except BaseException:
        _close_blocks(blocks, unlink=False)
        raise
    holder = AttachedBlocks(blocks)
    encoded.shm = holder
    # Pin the holder on the (frozen) dataset too: anything keeping the
    # dataset alive — a tester, a module-global in a worker — then keeps
    # the mapping alive, even if the encoding layer itself is dropped.
    object.__setattr__(dataset, "_shm_holder", holder)
    return encoded


def export_dataset(dataset: DiscreteDataset) -> ShmExport:
    """Publish a dataset's raw values (original dtype) into shared memory.

    The lean sibling of :func:`export_encoded` for consumers that never
    touch the encoding layer (the sample-level scheme): no int64 widening,
    so the shared copy is exactly as large as one private copy.  Same
    ownership contract (:class:`ShmExport`, creator-only unlink).
    """
    values = np.ascontiguousarray(dataset.values)
    _check_capacity(values.nbytes)
    block = shared_memory.SharedMemory(create=True, size=max(values.nbytes, 8))
    try:
        np.ndarray(values.shape, dtype=values.dtype, buffer=block.buf)[...] = values
    except BaseException:
        _close_blocks([block], unlink=True)
        raise
    handle = ShmRawHandle(
        values_block=block.name,
        dtype=values.dtype.str,
        n_variables=dataset.n_variables,
        n_samples=dataset.n_samples,
        layout=dataset.layout,
        arities=tuple(int(a) for a in dataset.arities),
        names=dataset.names,
    )
    return ShmExport(handle, [block])


def attach_dataset(handle: ShmRawHandle) -> DiscreteDataset:
    """Map a raw export as a read-only :class:`DiscreteDataset`.

    The attached blocks holder is pinned on the dataset (as in
    :func:`attach_encoded`); keeping the dataset alive keeps the mapping
    alive.
    """
    block = _attach_block(handle.values_block)
    try:
        shape = (
            (handle.n_variables, handle.n_samples)
            if handle.layout == "variable-major"
            else (handle.n_samples, handle.n_variables)
        )
        values = np.ndarray(shape, dtype=np.dtype(handle.dtype), buffer=block.buf)
        values.setflags(write=False)
        dataset = DiscreteDataset._from_validated(
            values,
            np.asarray(handle.arities, dtype=np.int64),
            handle.layout,
            handle.names,
        )
    except BaseException:
        _close_blocks([block], unlink=False)
        raise
    object.__setattr__(dataset, "_shm_holder", AttachedBlocks([block]))
    return dataset
