"""Parameter estimation: fit CPTs to data for a known DAG.

Completes the learning pipeline: PC-stable/Fast-BNS produces a CPDAG, a
consistent extension (:func:`repro.graphs.extension.pdag_to_dag`) picks a
DAG from the equivalence class, and this module estimates its conditional
probability tables by maximum likelihood with optional Dirichlet (add-
alpha) smoothing — the classical BDeu-style pseudo-count estimator.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..citests.contingency import encode_columns
from ..datasets.dataset import DiscreteDataset
from .bayesnet import CPT, DiscreteBayesianNetwork

__all__ = ["fit_cpts", "log_likelihood"]


def fit_cpts(
    n_nodes: int,
    edges: Sequence[tuple[int, int]],
    data: DiscreteDataset,
    pseudo_count: float = 1.0,
    names: Sequence[str] | None = None,
) -> DiscreteBayesianNetwork:
    """Maximum-likelihood CPTs (with Dirichlet smoothing) for a DAG.

    Parameters
    ----------
    n_nodes, edges:
        The DAG structure, ``(parent, child)`` pairs.
    data:
        Complete discrete observations; ``data.arities`` defines each
        node's category count.
    pseudo_count:
        Added to every cell before normalising (``0`` gives the raw MLE;
        rows never observed then fall back to the uniform distribution).
    names:
        Node names for the resulting network (defaults to the dataset's).
    """
    if n_nodes != data.n_variables:
        raise ValueError("n_nodes must equal the dataset's variable count")
    if pseudo_count < 0:
        raise ValueError("pseudo_count must be >= 0")
    parents: list[list[int]] = [[] for _ in range(n_nodes)]
    for p, c in edges:
        parents[c].append(p)
    arities = data.arities
    cpts: list[CPT] = []
    for node in range(n_nodes):
        ps = tuple(sorted(parents[node]))
        arity = int(arities[node])
        if ps:
            rz = [int(arities[p]) for p in ps]
            cfg_codes, n_cfg = encode_columns(data.columns(ps), rz)
            cell = cfg_codes * arity + data.column(node)
        else:
            n_cfg = 1
            cell = data.column(node).astype(np.int64)
        counts = np.bincount(cell, minlength=n_cfg * arity).reshape(n_cfg, arity)
        table = counts.astype(np.float64) + pseudo_count
        row_sums = table.sum(axis=1, keepdims=True)
        empty = row_sums[:, 0] == 0
        table[empty] = 1.0 / arity  # unobserved config, zero smoothing
        row_sums = table.sum(axis=1, keepdims=True)
        table /= row_sums
        cpts.append(CPT(parents=ps, table=table))
    return DiscreteBayesianNetwork(
        arities, cpts, names=tuple(names) if names is not None else data.names
    )


def log_likelihood(network: DiscreteBayesianNetwork, data: DiscreteDataset) -> float:
    """Total log-likelihood of complete data under the network (vectorised
    per node: one gather over the parent-configuration codes)."""
    if network.n_nodes != data.n_variables:
        raise ValueError("network and dataset sizes differ")
    total = 0.0
    for node in range(network.n_nodes):
        cpt = network.cpt(node)
        if cpt.parents:
            rz = [int(network.arities[p]) for p in cpt.parents]
            cfg_codes, _ = encode_columns(data.columns(cpt.parents), rz)
        else:
            cfg_codes = np.zeros(data.n_samples, dtype=np.int64)
        probs = cpt.table[cfg_codes, data.column(node).astype(np.int64)]
        if np.any(probs <= 0):
            return float("-inf")
        total += float(np.log(probs).sum())
    return total
