"""Random discrete Bayesian network generators.

The paper evaluates on eight benchmark networks (Table II).  Where the
original ``.bif`` files are unavailable this module generates deterministic
synthetic stand-ins matched on the quantities that drive PC-stable cost:
node count, edge count, degree distribution shape, and variable arities.

The DAG sampler draws a uniformly random topological order and then selects
``n_edges`` distinct (ancestor, descendant) pairs, optionally biased so that
a few hub nodes concentrate degree (benchmark networks are far from
degree-regular, and skewed degree is precisely what causes the edge-level
load imbalance the paper attacks).
"""

from __future__ import annotations

import numpy as np

from .bayesnet import CPT, DiscreteBayesianNetwork

__all__ = ["random_dag", "random_cpts", "random_network", "chain_network", "naive_bayes_network"]


def random_dag(
    n_nodes: int,
    n_edges: int,
    rng: np.random.Generator | int | None = None,
    max_parents: int | None = 6,
    hub_bias: float = 1.5,
) -> list[tuple[int, int]]:
    """Sample a random DAG as a list of directed edges ``(parent, child)``.

    Parameters
    ----------
    n_nodes, n_edges:
        Size of the graph; ``n_edges`` must not exceed what ``max_parents``
        and the complete DAG allow.
    rng:
        Seed or generator for determinism.
    max_parents:
        Cap on in-degree (CPT size is exponential in parent count, so
        benchmark-like networks keep this small).  ``None`` disables the cap.
    hub_bias:
        Exponent >= 0 skewing parent selection towards earlier-ordered nodes;
        larger values produce stronger hubs (more load imbalance).  ``0``
        gives uniform attachment.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    max_possible = n_nodes * (n_nodes - 1) // 2
    if max_parents is not None:
        max_possible = min(max_possible, sum(min(i, max_parents) for i in range(n_nodes)))
    if not 0 <= n_edges <= max_possible:
        raise ValueError(f"n_edges must be in [0, {max_possible}], got {n_edges}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    order = rng.permutation(n_nodes)
    # position[v] = rank of v in the topological order
    position = np.empty(n_nodes, dtype=np.int64)
    position[order] = np.arange(n_nodes)

    parent_count = np.zeros(n_nodes, dtype=np.int64)
    chosen: set[tuple[int, int]] = set()
    edges: list[tuple[int, int]] = []

    # Candidate children weighted uniformly; candidate parents weighted by
    # rank**(-hub_bias) so early nodes become hubs.
    attempts = 0
    max_attempts = 200 * max(n_edges, 1) + 1000
    while len(edges) < n_edges:
        attempts += 1
        if attempts > max_attempts:
            # Fall back to deterministic fill over remaining legal pairs.
            for child_rank in range(1, n_nodes):
                child = int(order[child_rank])
                if max_parents is not None and parent_count[child] >= max_parents:
                    continue
                for parent_rank in range(child_rank):
                    parent = int(order[parent_rank])
                    if (parent, child) in chosen:
                        continue
                    chosen.add((parent, child))
                    edges.append((parent, child))
                    parent_count[child] += 1
                    if len(edges) == n_edges or (
                        max_parents is not None and parent_count[child] >= max_parents
                    ):
                        break
                if len(edges) == n_edges:
                    break
            if len(edges) < n_edges:
                raise RuntimeError("could not place the requested number of edges")
            break
        child_rank = int(rng.integers(1, n_nodes))
        child = int(order[child_rank])
        if max_parents is not None and parent_count[child] >= max_parents:
            continue
        if hub_bias > 0:
            weights = (np.arange(1, child_rank + 1, dtype=np.float64)) ** (-hub_bias)
            weights /= weights.sum()
            parent_rank = int(rng.choice(child_rank, p=weights))
        else:
            parent_rank = int(rng.integers(0, child_rank))
        parent = int(order[parent_rank])
        if (parent, child) in chosen:
            continue
        chosen.add((parent, child))
        edges.append((parent, child))
        parent_count[child] += 1
    return edges


def random_cpts(
    arities: np.ndarray,
    edges: list[tuple[int, int]],
    rng: np.random.Generator | int | None = None,
    concentration: float = 0.5,
) -> list[CPT]:
    """Draw Dirichlet CPTs for a given structure.

    ``concentration < 1`` yields peaked conditional distributions, which keep
    dependencies detectable by G^2 tests at paper-scale sample sizes; near-
    uniform CPTs would make edges statistically invisible and collapse the
    learned skeleton.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    n = len(arities)
    parents: list[list[int]] = [[] for _ in range(n)]
    for p, c in edges:
        parents[c].append(p)
    cpts = []
    for i in range(n):
        ps = tuple(sorted(parents[i]))
        n_cfg = int(np.prod([arities[p] for p in ps], dtype=np.int64))
        alpha = np.full(int(arities[i]), concentration)
        table = rng.dirichlet(alpha, size=n_cfg)
        # Avoid exact zeros so log-probabilities stay finite.
        table = np.clip(table, 1e-6, None)
        table /= table.sum(axis=1, keepdims=True)
        cpts.append(CPT(parents=ps, table=table))
    return cpts


def random_network(
    n_nodes: int,
    n_edges: int,
    rng: np.random.Generator | int | None = None,
    arity_range: tuple[int, int] = (2, 4),
    max_parents: int | None = 6,
    hub_bias: float = 1.5,
    concentration: float = 0.5,
    names: tuple[str, ...] | None = None,
) -> DiscreteBayesianNetwork:
    """Random network with ``n_nodes`` nodes, ``n_edges`` edges and arities
    drawn uniformly from ``arity_range`` (inclusive)."""
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    lo, hi = arity_range
    if lo < 2 and n_nodes > 0:
        raise ValueError("arities below 2 carry no information")
    arities = rng.integers(lo, hi + 1, size=n_nodes)
    edges = random_dag(n_nodes, n_edges, rng, max_parents=max_parents, hub_bias=hub_bias)
    cpts = random_cpts(arities, edges, rng, concentration=concentration)
    return DiscreteBayesianNetwork(arities, cpts, names)


def chain_network(
    n_nodes: int,
    arity: int = 2,
    rng: np.random.Generator | int | None = None,
    concentration: float = 0.4,
) -> DiscreteBayesianNetwork:
    """Markov chain ``V0 -> V1 -> ... -> V{n-1}`` (a minimal-degree workload)."""
    arities = np.full(n_nodes, arity, dtype=np.int64)
    edges = [(i, i + 1) for i in range(n_nodes - 1)]
    cpts = random_cpts(arities, edges, rng, concentration=concentration)
    return DiscreteBayesianNetwork(arities, cpts)


def naive_bayes_network(
    n_children: int,
    arity: int = 2,
    rng: np.random.Generator | int | None = None,
    concentration: float = 0.4,
) -> DiscreteBayesianNetwork:
    """Star network ``V0 -> Vi`` for all i (a maximal-hub workload: the
    extreme of the load imbalance motivating the dynamic work pool)."""
    n = n_children + 1
    arities = np.full(n, arity, dtype=np.int64)
    edges = [(0, i) for i in range(1, n)]
    cpts = random_cpts(arities, edges, rng, concentration=concentration)
    return DiscreteBayesianNetwork(arities, cpts)
