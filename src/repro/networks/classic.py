"""Hand-coded classic benchmark networks with exact published structure.

These small textbook networks have exact, well-known structures and CPTs, so
they serve as ground truth for correctness tests (oracle recovery, data
recovery at large sample sizes) independent of the synthetic generators.

* ``sprinkler`` — the 4-node Cloudy/Sprinkler/Rain/WetGrass network
  (Pearl; Russell & Norvig).
* ``asia`` — Lauritzen & Spiegelhalter's 8-node chest-clinic network.
* ``cancer`` — the 5-node Pollution/Smoker/Cancer/Xray/Dyspnoea network
  (Korb & Nicholson).
"""

from __future__ import annotations

import numpy as np

from .bayesnet import CPT, DiscreteBayesianNetwork

__all__ = ["sprinkler", "asia", "cancer"]


def sprinkler() -> DiscreteBayesianNetwork:
    """Cloudy -> {Sprinkler, Rain} -> WetGrass.  All variables binary
    (0 = false, 1 = true)."""
    names = ("Cloudy", "Sprinkler", "Rain", "WetGrass")
    arities = [2, 2, 2, 2]
    cpts = [
        CPT(parents=(), table=np.array([[0.5, 0.5]])),
        # P(Sprinkler | Cloudy): sprinkler likely when not cloudy
        CPT(parents=(0,), table=np.array([[0.5, 0.5], [0.9, 0.1]])),
        # P(Rain | Cloudy)
        CPT(parents=(0,), table=np.array([[0.8, 0.2], [0.2, 0.8]])),
        # P(WetGrass | Sprinkler, Rain), rows ordered (S,R) = 00,01,10,11
        CPT(
            parents=(1, 2),
            table=np.array(
                [
                    [1.00, 0.00],
                    [0.10, 0.90],
                    [0.10, 0.90],
                    [0.01, 0.99],
                ]
            ),
        ),
    ]
    return DiscreteBayesianNetwork(arities, cpts, names)


def asia() -> DiscreteBayesianNetwork:
    """Lauritzen & Spiegelhalter (1988) chest-clinic network.

    Nodes (all binary, 0 = no, 1 = yes)::

        Asia -> TB                    Smoking -> LungCancer
        TB -> Either <- LungCancer    Smoking -> Bronchitis
        Either -> Xray                Either -> Dysp <- Bronchitis
    """
    names = ("Asia", "TB", "Smoking", "LungCancer", "Bronchitis", "Either", "Xray", "Dysp")
    A, T, S, L, B, E, X, D = range(8)
    arities = [2] * 8
    cpts = [None] * 8
    cpts[A] = CPT(parents=(), table=np.array([[0.99, 0.01]]))
    cpts[T] = CPT(parents=(A,), table=np.array([[0.99, 0.01], [0.95, 0.05]]))
    cpts[S] = CPT(parents=(), table=np.array([[0.5, 0.5]]))
    cpts[L] = CPT(parents=(S,), table=np.array([[0.99, 0.01], [0.90, 0.10]]))
    cpts[B] = CPT(parents=(S,), table=np.array([[0.70, 0.30], [0.40, 0.60]]))
    # Either = TB or LungCancer (deterministic OR, softened slightly so that
    # every configuration has positive probability; exact zeros break G^2
    # degrees of freedom and the original network is near-deterministic).
    eps = 1e-3
    cpts[E] = CPT(
        parents=(T, L),
        table=np.array(
            [
                [1 - eps, eps],
                [eps, 1 - eps],
                [eps, 1 - eps],
                [eps, 1 - eps],
            ]
        ),
    )
    cpts[X] = CPT(parents=(E,), table=np.array([[0.95, 0.05], [0.02, 0.98]]))
    cpts[D] = CPT(
        parents=(B, E),
        table=np.array(
            [
                [0.9, 0.1],
                [0.3, 0.7],
                [0.2, 0.8],
                [0.1, 0.9],
            ]
        ),
    )
    return DiscreteBayesianNetwork(arities, cpts, names)  # type: ignore[arg-type]


def cancer() -> DiscreteBayesianNetwork:
    """Korb & Nicholson's Cancer network:
    Pollution -> Cancer <- Smoker; Cancer -> {Xray, Dyspnoea}."""
    names = ("Pollution", "Smoker", "Cancer", "Xray", "Dyspnoea")
    P, S, C, X, D = range(5)
    arities = [2] * 5
    cpts = [None] * 5
    cpts[P] = CPT(parents=(), table=np.array([[0.9, 0.1]]))  # 0 = low, 1 = high
    cpts[S] = CPT(parents=(), table=np.array([[0.7, 0.3]]))
    cpts[C] = CPT(
        parents=(P, S),
        table=np.array(
            [
                [0.999, 0.001],
                [0.97, 0.03],
                [0.95, 0.05],
                [0.92, 0.08],
            ]
        ),
    )
    cpts[X] = CPT(parents=(C,), table=np.array([[0.8, 0.2], [0.1, 0.9]]))
    cpts[D] = CPT(parents=(C,), table=np.array([[0.7, 0.3], [0.35, 0.65]]))
    return DiscreteBayesianNetwork(arities, cpts, names)  # type: ignore[arg-type]
