"""Bayesian networks: representation, generators, classics, Table II catalog."""

from .bayesnet import CPT, DiscreteBayesianNetwork
from .catalog import TABLE_II, NetworkSpec, catalog_names, get_network, spec
from .classic import asia, cancer, sprinkler
from .fit import fit_cpts, log_likelihood
from .generators import (
    chain_network,
    naive_bayes_network,
    random_cpts,
    random_dag,
    random_network,
)

__all__ = [
    "CPT",
    "DiscreteBayesianNetwork",
    "random_dag",
    "random_cpts",
    "random_network",
    "chain_network",
    "naive_bayes_network",
    "fit_cpts",
    "log_likelihood",
    "asia",
    "cancer",
    "sprinkler",
    "TABLE_II",
    "NetworkSpec",
    "catalog_names",
    "get_network",
    "spec",
]
