"""Catalog of benchmark-network stand-ins matching the paper's Table II.

The paper draws its datasets from eight published networks.  Their ``.bif``
files are not redistributable inside this offline reproduction, so the
catalog provides seeded synthetic stand-ins matched on the characteristics
that determine PC-stable cost: node count, edge count, typical arity and a
hub-skewed degree distribution (see the substitution table in
EXPERIMENTS.md at the repository root).

Every entry is deterministic: the same name always yields the same network
and therefore the same sampled datasets.

``scale`` < 1 selects proportionally smaller variants (same density) so the
full experiment matrix stays tractable on small machines; the benchmark
harness uses ``scale`` for its default quick mode and full size under
``REPRO_FULL=1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .bayesnet import DiscreteBayesianNetwork
from .generators import random_network

__all__ = ["NetworkSpec", "TABLE_II", "catalog_names", "get_network", "spec"]


@dataclass(frozen=True)
class NetworkSpec:
    """Shape parameters of one Table II benchmark network."""

    name: str
    n_nodes: int
    n_edges: int
    max_samples: int
    arity_range: tuple[int, int]
    seed: int
    max_parents: int
    hub_bias: float = 1.5

    def scaled(self, scale: float) -> "NetworkSpec":
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        if scale == 1.0:
            return self
        n_nodes = max(8, round(self.n_nodes * scale))
        # Keep the edge density (edges per node) of the original network.
        density = self.n_edges / self.n_nodes
        n_edges = max(n_nodes - 1, round(density * n_nodes))
        n_edges = min(n_edges, n_nodes * (n_nodes - 1) // 2)
        return NetworkSpec(
            name=f"{self.name}@{scale:g}",
            n_nodes=n_nodes,
            n_edges=n_edges,
            max_samples=self.max_samples,
            arity_range=self.arity_range,
            seed=self.seed,
            max_parents=self.max_parents,
            hub_bias=self.hub_bias,
        )

    def build(self) -> DiscreteBayesianNetwork:
        names = tuple(f"{self.name.split('@')[0]}_{i}" for i in range(self.n_nodes))
        return random_network(
            self.n_nodes,
            self.n_edges,
            rng=self.seed,
            arity_range=self.arity_range,
            max_parents=self.max_parents,
            hub_bias=self.hub_bias,
            names=names,
        )


# Table II of the paper.  Arity ranges reflect the published networks:
# Alarm/Insurance/Hepar2 are mostly 2-4-valued; the Munin family contains
# larger-domain variables but we cap at 5 to keep CPT stand-ins faithful in
# spirit without exploding contingency tables.
TABLE_II: dict[str, NetworkSpec] = {
    "alarm": NetworkSpec("alarm", 37, 46, 15000, (2, 4), seed=101, max_parents=4),
    "insurance": NetworkSpec("insurance", 27, 52, 15000, (2, 5), seed=102, max_parents=5),
    "hepar2": NetworkSpec("hepar2", 70, 123, 15000, (2, 4), seed=103, max_parents=6),
    "munin1": NetworkSpec("munin1", 186, 273, 15000, (2, 5), seed=104, max_parents=3),
    "diabetes": NetworkSpec("diabetes", 413, 602, 5000, (2, 5), seed=105, max_parents=2),
    "link": NetworkSpec("link", 724, 1125, 5000, (2, 4), seed=106, max_parents=3),
    "munin2": NetworkSpec("munin2", 1003, 1244, 5000, (2, 5), seed=107, max_parents=3),
    "munin3": NetworkSpec("munin3", 1041, 1306, 5000, (2, 5), seed=108, max_parents=3),
}


def catalog_names() -> list[str]:
    """Benchmark names in the order of Table II."""
    return list(TABLE_II)


def spec(name: str, scale: float = 1.0) -> NetworkSpec:
    """Spec for a catalog entry, optionally scaled down (see module docs)."""
    key = name.lower()
    if key not in TABLE_II:
        raise KeyError(f"unknown benchmark network {name!r}; choose from {catalog_names()}")
    return TABLE_II[key].scaled(scale)


def get_network(name: str, scale: float = 1.0) -> DiscreteBayesianNetwork:
    """Deterministically build a (possibly scaled) Table II stand-in."""
    return spec(name, scale).build()
