"""Discrete Bayesian network: DAG structure plus conditional probability tables.

This is the substrate that generates the benchmark datasets of the paper's
Table II.  A network couples

* a DAG over ``n`` discrete variables (parents stored per node), and
* one CPT per node: an array of shape ``(n_parent_configs, arity)`` whose
  rows are the conditional distributions ``P(V_i | parent config)``, with
  parent configurations enumerated in mixed-radix order (first parent most
  significant), matching :func:`repro.citests.contingency.encode_columns`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["DiscreteBayesianNetwork", "CPT"]


@dataclass(frozen=True)
class CPT:
    """Conditional probability table of one node.

    ``table[c, v]`` is ``P(node = v | parents take configuration c)`` where
    ``c`` is the mixed-radix encoding of the parent values (first listed
    parent most significant).
    """

    parents: tuple[int, ...]
    table: np.ndarray

    def __post_init__(self) -> None:
        table = np.asarray(self.table, dtype=np.float64)
        if table.ndim != 2:
            raise ValueError("CPT table must be 2-D (n_parent_configs, arity)")
        if np.any(table < -1e-12):
            raise ValueError("CPT entries must be non-negative")
        sums = table.sum(axis=1)
        if not np.allclose(sums, 1.0, atol=1e-8):
            raise ValueError("CPT rows must each sum to 1")
        object.__setattr__(self, "parents", tuple(int(p) for p in self.parents))
        object.__setattr__(self, "table", table)

    @property
    def arity(self) -> int:
        return self.table.shape[1]

    @property
    def n_parent_configs(self) -> int:
        return self.table.shape[0]


class DiscreteBayesianNetwork:
    """Immutable discrete Bayesian network.

    Parameters
    ----------
    arities:
        Per-node category counts.
    cpts:
        One :class:`CPT` per node; ``cpts[i].parents`` are the parent node
        indices of node ``i`` and the table row count must equal the product
        of the parents' arities.
    names:
        Optional node names.
    """

    def __init__(
        self,
        arities: Sequence[int],
        cpts: Sequence[CPT],
        names: Iterable[str] | None = None,
    ) -> None:
        self._arities = np.asarray(arities, dtype=np.int64)
        if np.any(self._arities < 1):
            raise ValueError("arities must be >= 1")
        n = self._arities.shape[0]
        if len(cpts) != n:
            raise ValueError(f"{len(cpts)} CPTs for {n} nodes")
        self._names = tuple(names) if names is not None else tuple(f"V{i}" for i in range(n))
        if len(self._names) != n:
            raise ValueError(f"{len(self._names)} names for {n} nodes")
        for i, cpt in enumerate(cpts):
            if cpt.arity != self._arities[i]:
                raise ValueError(
                    f"node {i}: CPT arity {cpt.arity} != declared arity {self._arities[i]}"
                )
            for p in cpt.parents:
                if not 0 <= p < n:
                    raise ValueError(f"node {i}: parent {p} out of range")
                if p == i:
                    raise ValueError(f"node {i} cannot be its own parent")
            expected = int(np.prod([self._arities[p] for p in cpt.parents], dtype=np.int64))
            if cpt.n_parent_configs != expected:
                raise ValueError(
                    f"node {i}: CPT has {cpt.n_parent_configs} parent configs, expected {expected}"
                )
        self._cpts = tuple(cpts)
        self._order = self._topological_order()

    # ------------------------------------------------------------------ #
    # structure accessors
    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        return self._arities.shape[0]

    @property
    def arities(self) -> np.ndarray:
        return self._arities

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def cpt(self, i: int) -> CPT:
        return self._cpts[i]

    def parents(self, i: int) -> tuple[int, ...]:
        return self._cpts[i].parents

    def edges(self) -> list[tuple[int, int]]:
        """Directed edges ``(parent, child)`` in node order."""
        out: list[tuple[int, int]] = []
        for child in range(self.n_nodes):
            for parent in self._cpts[child].parents:
                out.append((parent, child))
        return out

    @property
    def n_edges(self) -> int:
        return sum(len(c.parents) for c in self._cpts)

    def topological_order(self) -> tuple[int, ...]:
        return self._order

    def _topological_order(self) -> tuple[int, ...]:
        n = self.n_nodes
        indeg = [len(self._cpts[i].parents) for i in range(n)]
        children: list[list[int]] = [[] for _ in range(n)]
        for child in range(n):
            for p in self._cpts[child].parents:
                children[p].append(child)
        stack = [i for i in range(n) if indeg[i] == 0]
        order: list[int] = []
        while stack:
            u = stack.pop()
            order.append(u)
            for v in children[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    stack.append(v)
        if len(order) != n:
            raise ValueError("parent structure contains a directed cycle")
        return tuple(order)

    # ------------------------------------------------------------------ #
    # probability computations
    # ------------------------------------------------------------------ #
    def log_probability(self, assignment: Sequence[int] | Mapping[int, int]) -> float:
        """Log joint probability of one complete assignment."""
        if isinstance(assignment, Mapping):
            values = [assignment[i] for i in range(self.n_nodes)]
        else:
            values = list(assignment)
        if len(values) != self.n_nodes:
            raise ValueError("assignment must cover every node")
        total = 0.0
        for i in range(self.n_nodes):
            cpt = self._cpts[i]
            cfg = 0
            for p in cpt.parents:
                cfg = cfg * int(self._arities[p]) + int(values[p])
            prob = cpt.table[cfg, int(values[i])]
            if prob <= 0.0:
                return float("-inf")
            total += float(np.log(prob))
        return total

    def to_networkx(self):
        """Directed graph view (requires networkx)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.n_nodes))
        g.add_edges_from(self.edges())
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiscreteBayesianNetwork(n_nodes={self.n_nodes}, n_edges={self.n_edges}, "
            f"max_arity={int(self._arities.max()) if self.n_nodes else 0})"
        )
