"""AST rule engine: file walker, rule registry, and the Analyzer driver.

The engine parses every ``*.py`` file under the requested paths once into
:class:`SourceModule` records and hands them to two kinds of rules:

* **module rules** (:class:`ModuleRule`) look at one file at a time —
  the REPRO00x invariant pack lives here (:mod:`repro.analysis.rules`);
* **project rules** (:class:`ProjectRule`) see the whole module set at
  once — the inter-procedural lock-order graph needs cross-file context
  (:mod:`repro.analysis.lockgraph`).

Findings come back sorted and already filtered through the
``# repro: ignore`` pragmas of their module (project rules anchor each
finding to a concrete file/line, so suppression stays local and
reviewable even for whole-graph properties).
"""

from __future__ import annotations

import ast
import os
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from .findings import Finding, SuppressionIndex, normalize_path

__all__ = [
    "SourceModule",
    "ModuleRule",
    "ProjectRule",
    "Analyzer",
    "all_rules",
    "iter_python_files",
    "load_module",
    "module_rule",
    "project_rule",
]


@dataclass
class SourceModule:
    """One parsed source file."""

    path: str  # path as given on the command line (for reports)
    relpath: str  # normalized repo-relative id (for graph nodes)
    text: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: SuppressionIndex | None = None

    @property
    def suppression_index(self) -> SuppressionIndex:
        if self.suppressions is None:
            self.suppressions = SuppressionIndex(self.lines)
        return self.suppressions


class ModuleRule:
    """A rule evaluated one module at a time."""

    rule_id = "REPRO000"
    severity = "error"
    title = ""

    def check(self, module: SourceModule) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, module: SourceModule, node: ast.AST | int, message: str, **detail) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            file=module.path,
            line=line,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            detail=detail,
        )


class ProjectRule:
    """A rule evaluated over the whole module set."""

    rule_id = "REPRO000"
    severity = "error"
    title = ""

    def check_project(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        raise NotImplementedError  # pragma: no cover


_MODULE_RULES: dict[str, ModuleRule] = {}
_PROJECT_RULES: dict[str, ProjectRule] = {}


def module_rule(cls):
    """Class decorator registering a :class:`ModuleRule` by its id."""
    inst = cls()
    _MODULE_RULES[inst.rule_id] = inst
    return cls


def project_rule(cls):
    """Class decorator registering a :class:`ProjectRule` by its id."""
    inst = cls()
    _PROJECT_RULES[inst.rule_id] = inst
    return cls


def all_rules() -> dict[str, object]:
    """Every registered rule, keyed by id (triggers rule-module import)."""
    _ensure_rules_loaded()
    merged: dict[str, object] = dict(_MODULE_RULES)
    merged.update(_PROJECT_RULES)
    return merged


def _ensure_rules_loaded() -> None:
    # Import-time registration; local import breaks the cycle
    # (rules.py/lockgraph.py import the decorators from this module).
    from . import lockgraph, rules  # noqa: F401


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield ``*.py`` files under each path (files pass through as-is)."""
    seen: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in {"__pycache__", ".git", ".pytest_cache"}
            )
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(dirpath, name)
                if full not in seen:
                    seen.add(full)
                    yield full


def load_module(path: str) -> SourceModule:
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    tree = ast.parse(text, filename=path)
    return SourceModule(
        path=path,
        relpath=normalize_path(path),
        text=text,
        tree=tree,
        lines=text.splitlines(),
    )


class Analyzer:
    """Drive the registered rules over a set of paths.

    Parameters
    ----------
    select:
        Optional iterable of rule ids to run (default: all registered).
    lockgraph:
        Include the project-level lock-order rules (default True).
    """

    def __init__(self, select: Iterable[str] | None = None, lockgraph: bool = True) -> None:
        _ensure_rules_loaded()
        wanted = {r.upper() for r in select} if select is not None else None
        if wanted is not None:
            known = set(_MODULE_RULES) | set(_PROJECT_RULES)
            unknown = wanted - known
            if unknown:
                raise ValueError(
                    f"unknown rule id(s): {', '.join(sorted(unknown))}"
                    f" (known: {', '.join(sorted(known))})"
                )
        self._module_rules = [
            rule for rid, rule in sorted(_MODULE_RULES.items()) if wanted is None or rid in wanted
        ]
        self._project_rules = [
            rule
            for rid, rule in sorted(_PROJECT_RULES.items())
            if (wanted is None or rid in wanted) and lockgraph
        ]
        self.n_files = 0
        self.n_suppressed = 0
        self.parse_errors: list[Finding] = []

    def run(self, paths: Sequence[str]) -> list[Finding]:
        modules: list[SourceModule] = []
        for path in iter_python_files(paths):
            try:
                modules.append(load_module(path))
            except (SyntaxError, UnicodeDecodeError) as exc:
                line = getattr(exc, "lineno", None) or 1
                self.parse_errors.append(
                    Finding(
                        file=path,
                        line=int(line),
                        rule_id="PARSE",
                        severity="error",
                        message=f"could not parse: {exc.msg if hasattr(exc, 'msg') else exc}",
                    )
                )
        self.n_files = len(modules)
        return self.run_modules(modules)

    def run_modules(self, modules: Sequence[SourceModule]) -> list[Finding]:
        by_relpath = {m.relpath: m for m in modules}
        raw: list[Finding] = list(self.parse_errors)
        for module in modules:
            for rule in self._module_rules:
                raw.extend(rule.check(module))
        for prule in self._project_rules:
            raw.extend(prule.check_project(list(modules)))

        kept: list[Finding] = []
        for finding in raw:
            module = by_relpath.get(normalize_path(finding.file))
            if module is not None and module.suppression_index.is_suppressed(
                finding.line, finding.rule_id
            ):
                self.n_suppressed += 1
                continue
            kept.append(finding)
        kept.sort(key=lambda f: (f.file, f.line, f.rule_id))
        return kept
