"""Closed-form speedup model of the paper's Sec. IV-D.

Implements equations (1) and (2) and the three component speedups:

* ``S_CI`` — CI-level parallelism with the dynamic work pool, from the
  worst-case edge-level schedule (all heavy edges land on one thread,
  eq. (1)) versus the evenly-spread pool schedule (eq. (2));
* ``S_grouping = 2 / (2 - rho_d)`` — endpoint grouping, where ``rho_d`` is
  the depth's edge-deletion ratio;
* ``S_cache = T3 / T4`` — cache-friendly storage, with
  ``T3 = T_DRAM (d + 2) B/4`` and
  ``T4 = T_DRAM (d + 2) + T_cache (d + 2)(B/4 - 1)``.

The overall model is the product ``S = S_CI * S_grouping * S_cache``; the
paper's worked example (t = 4, d = 2, |Ed| = 1200, rho = 0.6, mean degree
10, B = 64, T_DRAM/T_cache = 8) evaluates to S_CI = 3.87, S_grouping =
1.43, S_cache = 5.57, S = 30.8 — asserted by the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
__all__ = ["SpeedupModel", "SpeedupBreakdown", "paper_worked_example"]


@dataclass(frozen=True)
class SpeedupBreakdown:
    s_ci: float
    s_grouping: float
    s_cache: float

    @property
    def overall(self) -> float:
        return self.s_ci * self.s_grouping * self.s_cache


@dataclass(frozen=True)
class SpeedupModel:
    """Scenario parameters of the Sec. IV-D analysis.

    Attributes mirror the paper's symbols: ``n_threads`` (t), ``depth``
    (d), ``n_edges`` (|Ed|), ``deletion_ratio`` (rho_d), per-edge endpoint
    degrees (``a1``, ``a2``; by default both the mean degree), cache line
    size ``B`` and the DRAM/cache cost ratio.
    """

    n_threads: int
    depth: int
    n_edges: int
    deletion_ratio: float
    mean_degree: float
    cache_line_bytes: int = 64
    value_bytes: int = 4
    dram_cache_ratio: float = 8.0

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if not 0 <= self.deletion_ratio <= 1:
            raise ValueError("deletion_ratio must be in [0, 1]")
        if self.depth < 0:
            raise ValueError("depth must be >= 0")

    # ------------------------------------------------------------------ #
    def tests_per_edge(self) -> float:
        """``C(a1, d) + C(a2, d)`` with both degrees at the mean degree."""
        a = int(round(self.mean_degree))
        return float(comb(a, self.depth) + comb(a, self.depth))

    def edge_level_time(self, t_ci: float = 1.0) -> float:
        """Equation (1): worst-case edge-level makespan — the ``|Ed| / t``
        edges that run *all* their CI tests land on a single thread."""
        heavy_edges = self.n_edges // self.n_threads
        return t_ci * heavy_edges * self.tests_per_edge()

    def ci_level_time(self, t_ci: float = 1.0) -> float:
        """Equation (2): the pool spreads the same work evenly; the other
        ``(t - 1) |Ed| / t`` edges each cost one test."""
        heavy_edges = self.n_edges // self.n_threads
        heavy_work = heavy_edges * self.tests_per_edge()
        light_work = (self.n_threads - 1) * self.n_edges / self.n_threads
        return t_ci * (heavy_work + light_work) / self.n_threads

    @property
    def s_ci(self) -> float:
        return self.edge_level_time() / self.ci_level_time()

    # ------------------------------------------------------------------ #
    @property
    def s_grouping(self) -> float:
        """``2 |Ed| / (2 |Ed| - rho_d |Ed|) = 2 / (2 - rho_d)``."""
        return 2.0 / (2.0 - self.deletion_ratio)

    # ------------------------------------------------------------------ #
    @property
    def values_per_line(self) -> int:
        return self.cache_line_bytes // self.value_bytes

    def t3(self) -> float:
        """Cache-unfriendly time for one line's worth of samples."""
        return self.dram_cache_ratio * (self.depth + 2) * self.values_per_line

    def t4(self) -> float:
        """Cache-friendly time for the same samples: one miss per column
        plus hits for the rest."""
        d2 = self.depth + 2
        return self.dram_cache_ratio * d2 + 1.0 * d2 * (self.values_per_line - 1)

    @property
    def s_cache(self) -> float:
        return self.t3() / self.t4()

    # ------------------------------------------------------------------ #
    def breakdown(self) -> SpeedupBreakdown:
        return SpeedupBreakdown(self.s_ci, self.s_grouping, self.s_cache)


def paper_worked_example() -> SpeedupModel:
    """The exact scenario evaluated at the end of Sec. IV-D."""
    return SpeedupModel(
        n_threads=4,
        depth=2,
        n_edges=1200,
        deletion_ratio=0.6,
        mean_degree=10,
        cache_line_bytes=64,
        value_bytes=4,
        dram_cache_ratio=8.0,
    )


def breakdown_from_run(
    depth_stats,
    n_threads: int,
    mean_degree: float,
    cache_line_bytes: int = 64,
    dram_cache_ratio: float = 8.0,
) -> list[tuple[int, SpeedupBreakdown]]:
    """Evaluate the model on measured per-depth statistics of a real run.

    ``depth_stats`` is a sequence of
    :class:`repro.core.result.DepthStats`; returns one breakdown per depth
    with ``d >= 1`` (depth 0 uses edge-level parallelism by design).
    """
    out: list[tuple[int, SpeedupBreakdown]] = []
    for ds in depth_stats:
        if ds.depth < 1 or ds.n_edges_start == 0:
            continue
        model = SpeedupModel(
            n_threads=n_threads,
            depth=ds.depth,
            n_edges=ds.n_edges_start,
            deletion_ratio=ds.deletion_ratio,
            mean_degree=mean_degree,
            cache_line_bytes=cache_line_bytes,
            dram_cache_ratio=dram_cache_ratio,
        )
        out.append((ds.depth, model.breakdown()))
    return out

