"""The project-invariant rule pack (REPRO001..REPRO006).

Each rule codifies an invariant this repo already paid to learn — the
docstring of every rule names the PR that motivated it.  Rules are
deliberately heuristic: they run on the AST only, favour few false
positives over perfect recall, and every deliberate exception is an
inline ``# repro: ignore[RULE]`` with a trailing reason (the pragma is
the audit trail).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from .astutil import ImportMap, dotted_name, resolve_call_name, terminal_name
from .engine import Finding, ModuleRule, SourceModule, module_rule

__all__ = ["DETERMINISM_PATHS", "RESPONSE_PATHS"]

#: Modules whose outputs are fingerprinted, cached, or replayed —
#: byte-stable behaviour is part of their contract (PRs 1/2/6/8).
DETERMINISM_PATHS = (
    "repro/citests/",
    "repro/core/",
    "repro/datasets/encoded",
    "repro/engine/fingerprint",
    "repro/engine/workload",
)

#: Modules that construct protocol responses (PR 4 uniform schema).
RESPONSE_PATHS = ("repro/engine/",)


def _in_paths(module: SourceModule, prefixes: tuple[str, ...]) -> bool:
    return module.relpath.startswith(prefixes)


@module_rule
class ShmUnlinkRule(ModuleRule):
    """REPRO001 — every ``SharedMemory(create=True)`` needs owned cleanup.

    Motivated by PR 3: segments that outlive their creator leak
    ``/dev/shm`` until reboot, and the resource-tracker workaround means
    nobody else will unlink them either.  A module that creates segments
    must both call ``.unlink()`` somewhere and register a
    ``weakref.finalize`` backstop so the unlink survives abandoned owners.
    """

    rule_id = "REPRO001"
    severity = "error"
    title = "SharedMemory(create=True) without unlink + weakref.finalize backstop"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        imports = ImportMap(module.tree)
        creates: list[ast.Call] = []
        has_unlink = False
        has_finalize = False
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                if node.attr == "unlink":
                    has_unlink = True
                elif node.attr == "finalize":
                    has_finalize = True
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node, imports) or ""
            if not name.endswith("SharedMemory"):
                continue
            for kw in node.keywords:
                if kw.arg == "create" and isinstance(kw.value, ast.Constant) and kw.value.value:
                    creates.append(node)
        if creates and not (has_unlink and has_finalize):
            missing = []
            if not has_unlink:
                missing.append("an .unlink() call")
            if not has_finalize:
                missing.append("a weakref.finalize backstop")
            for call in creates:
                yield self.finding(
                    module,
                    call,
                    "SharedMemory(create=True) but the module has no "
                    + " or ".join(missing)
                    + "; tie the unlink to shutdown/close with a weakref.finalize backstop",
                )


#: (canonical dotted prefix, allowed tails) — calls matching a prefix are
#: nondeterministic unless the next segment is in the allow set.
_SEEDED_FACTORIES = {"default_rng", "Generator", "SeedSequence", "Random", "bit_generator"}
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid4",
    "uuid.uuid1",
    "secrets.token_bytes",
    "secrets.token_hex",
}


@module_rule
class DeterminismRule(ModuleRule):
    """REPRO002 — no unseeded randomness or wall-clock in deterministic paths.

    Motivated by PRs 2/6/8: kernels are compared bit-for-bit against the
    looped oracle, responses replay byte-identical from the store, and
    golden traces must regenerate exactly.  One ``time.time()`` or
    ``np.random.rand()`` in those paths silently breaks all three
    contracts.  Seeded constructors (``random.Random(seed)``,
    ``np.random.default_rng(seed)``) are the sanctioned sources.
    """

    rule_id = "REPRO002"
    severity = "error"
    title = "unseeded randomness / wall-clock read in a fingerprinted path"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if not _in_paths(module, DETERMINISM_PATHS):
            return
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node, imports)
            if name is None:
                continue
            if name in _WALL_CLOCK:
                yield self.finding(
                    module, node, f"wall-clock/entropy read {name}() in a deterministic path"
                )
                continue
            for prefix in ("numpy.random.", "random."):
                if name.startswith(prefix):
                    tail = name[len(prefix):].split(".")[0]
                    if tail not in _SEEDED_FACTORIES:
                        yield self.finding(
                            module,
                            node,
                            f"global-state randomness {name}() in a deterministic path; "
                            "thread an explicit seeded Random/default_rng through instead",
                        )
                    break


@module_rule
class ResponseSchemaRule(ModuleRule):
    """REPRO003 — protocol responses carry both ``result`` and ``error``.

    Motivated by PR 4: every response sets both keys with exactly one
    null, so clients can branch on one field without ``KeyError`` races
    and manifests can count errors by key presence.  A dict literal that
    sets one key without the other is a schema drift in the making.
    """

    rule_id = "REPRO003"
    severity = "error"
    title = "response dict sets only one of 'result'/'error'"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if not _in_paths(module, RESPONSE_PATHS):
            return
        for node in ast.walk(module.tree):
            keys: set[str] = set()
            if isinstance(node, ast.Dict):
                keys = {
                    k.value for k in node.keys if isinstance(k, ast.Constant)
                    and isinstance(k.value, str)
                }
            elif isinstance(node, ast.Call) and dotted_name(node.func) == "dict":
                keys = {kw.arg for kw in node.keywords if kw.arg}
            present = keys & {"result", "error"}
            if len(present) == 1:
                missing = ({"result", "error"} - present).pop()
                yield self.finding(
                    module,
                    node,
                    f"response dict sets {present.pop()!r} without {missing!r}; "
                    "the protocol schema requires both keys with exactly one null",
                )


_HANDLE_MARKERS = ("sqlite3.Connection", "SharedMemory")


@module_rule
class PickleSeverRule(ModuleRule):
    """REPRO004 — classes holding sqlite/shm handles define ``__getstate__``.

    Motivated by PRs 6/7: a live ``sqlite3.Connection`` or
    ``SharedMemory`` mapping silently rides along when an object is
    pickled to a worker (or fork-inherited), and either crashes the
    child or double-closes the parent's handle.  The store, spill tier,
    stats cache, and kernel arena all sever those members in
    ``__getstate__``; any class that opens such a handle must do the same
    (or define ``__reduce__``, or refuse pickling outright).
    """

    rule_id = "REPRO004"
    severity = "error"
    title = "sqlite/shm handle holder without __getstate__"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            reason = self._holds_handle(node, imports)
            if reason is None:
                continue
            defined = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if defined & {"__getstate__", "__reduce__", "__reduce_ex__"}:
                continue
            yield self.finding(
                module,
                node,
                f"class {node.name} {reason} but defines no __getstate__/__reduce__; "
                "sever the handle (or raise) so pickling/fork cannot ship it live",
            )

    @staticmethod
    def _holds_handle(cls: ast.ClassDef, imports: ImportMap) -> str | None:
        for node in ast.walk(cls):
            if isinstance(node, ast.Call):
                name = resolve_call_name(node, imports) or ""
                if name == "sqlite3.connect":
                    return "opens a sqlite3 connection"
                if name.endswith("SharedMemory"):
                    return "opens a SharedMemory mapping"
            if isinstance(node, (ast.AnnAssign, ast.arg)) and node.annotation is not None:
                ann = ast.unparse(node.annotation)
                for marker in _HANDLE_MARKERS:
                    if marker in ann:
                        return f"is annotated as holding {marker}"
        return None


@module_rule
class ThreadLifecycleRule(ModuleRule):
    """REPRO005 — every ``threading.Thread`` is daemon or joined.

    Motivated by PRs 5/8: a forgotten non-daemon thread keeps the
    process alive after ``main`` returns — the exact hang the transport
    drain tests exist to catch.  A thread must either be created
    ``daemon=True`` or have a ``.join()`` reachable in the same module.
    """

    rule_id = "REPRO005"
    severity = "error"
    title = "threading.Thread neither daemon nor joined"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        imports = ImportMap(module.tree)
        join_targets: set[str] = set()
        loop_aliases: dict[str, str] = {}  # loop var -> iterated name
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "join":
                    target = terminal_name(node.func.value)
                    if target:
                        join_targets.add(target)
            if isinstance(node, (ast.For, ast.comprehension)):
                it = node.iter if isinstance(node, ast.For) else node.iter
                tgt = node.target
                it_name, tgt_name = terminal_name(it), terminal_name(tgt)
                if it_name and tgt_name:
                    loop_aliases[tgt_name] = it_name

        # Joining a loop variable counts as joining the iterated container.
        expanded = set(join_targets)
        for var, container in loop_aliases.items():
            if var in join_targets:
                expanded.add(container)

        for stmt in ast.walk(module.tree):
            assigned: str | None = None
            calls: list[ast.Call] = []
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                assigned = terminal_name(stmt.targets[0])
                calls = [n for n in ast.walk(stmt.value) if isinstance(n, ast.Call)]
            elif isinstance(stmt, ast.Expr):
                calls = [n for n in ast.walk(stmt.value) if isinstance(n, ast.Call)]
            for call in calls:
                if resolve_call_name(call, imports) != "threading.Thread":
                    continue
                if any(kw.arg == "daemon" for kw in call.keywords):
                    continue
                if assigned is not None and assigned in expanded:
                    continue
                yield self.finding(
                    module,
                    call,
                    "threading.Thread is neither daemon=True nor joined in this module; "
                    "a leaked non-daemon thread keeps the process alive at exit",
                )


_BROAD = {"Exception", "BaseException"}
_ACCOUNTING_CALL_FRAGMENTS = ("error", "reject", "warn", "note", "record", "fail", "exception")


@module_rule
class BroadExceptRule(ModuleRule):
    """REPRO006 — broad ``except`` must re-raise, respond, or count.

    Motivated by PRs 4/6: a bare ``except Exception: pass`` swallowed
    store failures until the manifest totals stopped adding up.  A broad
    handler is fine as a *degradation* path — but only when the failure
    is re-raised, turned into a clean error response, or incremented
    into a counter the manifest can audit.
    """

    rule_id = "REPRO006"
    severity = "error"
    title = "broad except swallows the failure without accounting"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._accounts(node):
                continue
            yield self.finding(
                module,
                node,
                "broad except neither re-raises, builds an error response, nor "
                "increments a counter; narrow it or account for the failure",
            )

    @staticmethod
    def _is_broad(type_node: ast.AST | None) -> bool:
        if type_node is None:
            return True
        names = (
            [terminal_name(e) for e in type_node.elts]
            if isinstance(type_node, ast.Tuple)
            else [terminal_name(type_node)]
        )
        return any(n in _BROAD for n in names)

    @staticmethod
    def _accounts(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            # Referencing the bound exception (``pending.exc = exc``,
            # ``q.put((_FAIL, exc))``, ``str(exc)`` in a response) means
            # the failure is captured for later handling, not swallowed.
            if (
                handler.name
                and isinstance(node, ast.Name)
                and node.id == handler.name
                and isinstance(node.ctx, ast.Load)
            ):
                return True
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                target = terminal_name(node.target) or ""
                if target.startswith("n_") or "count" in target or "error" in target:
                    return True
            if isinstance(node, ast.Call):
                name = terminal_name(node.func) or ""
                if any(frag in name.lower() for frag in _ACCOUNTING_CALL_FRAGMENTS):
                    return True
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    tname = terminal_name(tgt) or ""
                    if "error" in tname.lower():
                        return True
        return False
