"""Analytical performance models (the paper's Sec. IV-D)."""

from .speedup_model import (
    SpeedupBreakdown,
    SpeedupModel,
    breakdown_from_run,
    paper_worked_example,
)

__all__ = [
    "SpeedupModel",
    "SpeedupBreakdown",
    "paper_worked_example",
    "breakdown_from_run",
]
