"""Analysis tools: the paper's speedup model and the project linter.

Two unrelated-but-cohabiting concerns live here:

* :mod:`repro.analysis.speedup_model` — the paper's closed-form
  performance model (Sec. IV-D).
* the static-analysis subsystem behind ``fastbns analyze`` —
  :mod:`~repro.analysis.engine` (rule engine), :mod:`~repro.analysis.rules`
  (the REPRO00x invariant pack), :mod:`~repro.analysis.lockgraph`
  (inter-procedural lock-order graph), and :mod:`~repro.analysis.runtime`
  (the ``REPRO_LOCKCHECK=1`` dynamic lock-order sanitizer).
"""

from .engine import Analyzer, all_rules
from .findings import Finding, format_findings
from .speedup_model import (
    SpeedupBreakdown,
    SpeedupModel,
    breakdown_from_run,
    paper_worked_example,
)

__all__ = [
    "SpeedupModel",
    "SpeedupBreakdown",
    "paper_worked_example",
    "breakdown_from_run",
    "Analyzer",
    "Finding",
    "all_rules",
    "format_findings",
]
