"""Inter-procedural lock-order graph extraction and deadlock-risk rules.

The extractor finds every project lock *definition* (``self._lock =
threading.Lock()`` and friends), every *acquisition site* (``with
lock:`` / ``lock.acquire()``), and builds the acquisition-order graph:
an edge ``A -> B`` means some code path acquires ``B`` while holding
``A`` — directly, or through a resolvable call chain.  Two project rules
run on top:

* **LOCK001** — a cycle in the graph is a static deadlock risk: two
  threads walking the cycle from different entry points can each hold
  the lock the other wants.  The graph must stay acyclic; the global
  acquisition order *is* the concurrency policy.
* **LOCK002** — a blocking call (socket ``recv``/``accept``,
  ``time.sleep``, executor ``submit``/``result``, ``Thread.join``,
  ``queue.get``) while holding a project lock stalls every thread
  contending for it; PR 5's drain hangs all reduced to this shape.

Lock identity is the *definition site* (``repro/x.py:LINE``) — every
instance created at one site is one role, which is exactly the
granularity ordering invariants are stated at, and the same key the
runtime sanitizer (:mod:`repro.analysis.runtime`) records, so observed
edges merge onto static nodes for the combined check.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from .astutil import ImportMap, dotted_name, iter_functions, terminal_name
from .engine import Finding, ProjectRule, SourceModule, project_rule

__all__ = ["LockGraph", "extract_lock_graph", "find_cycles"]

_LOCK_FACTORIES = {"threading.Lock", "threading.RLock"}
_CONDITION_FACTORY = "threading.Condition"

#: Dotted calls that block the calling thread outright.
_BLOCKING_DOTTED = {"time.sleep", "select.select", "signal.sigwait"}
#: Attribute calls that block; ``wait``/``notify`` are deliberately absent
#: (a Condition waits under its own lock by design), and ``get`` only
#: counts when the receiver looks like a queue (dict.get is everywhere).
_BLOCKING_ATTRS = {"recv", "recv_into", "accept", "submit", "join", "sleep", "result"}
_QUEUEISH = ("queue", "_q", "jobs", "inbox")


@dataclass
class LockGraph:
    """Definition-site lock nodes and held->acquired edges."""

    #: node id ("repro/x.py:LINE") -> human label ("Class.attr [Lock]")
    nodes: dict[str, str] = field(default_factory=dict)
    #: (src node, dst node) -> example sites ("repro/y.py:LINE descr")
    edges: dict[tuple[str, str], list[str]] = field(default_factory=dict)
    #: LOCK002 candidates: (lock node, site, call description)
    blocking: list[tuple[str, str, str]] = field(default_factory=list)

    def add_edge(self, src: str, dst: str, site: str) -> None:
        if src == dst:
            return  # same role: reentrancy, not an ordering constraint
        self.edges.setdefault((src, dst), [])
        sites = self.edges[(src, dst)]
        if len(sites) < 4 and site not in sites:
            sites.append(site)

    def label(self, node: str) -> str:
        return f"{self.nodes.get(node, '?')} ({node})"


def find_cycles(edges: Iterable[tuple[str, str]]) -> list[list[str]]:
    """Cycles in the edge set, as node lists (first node repeated last).

    Tarjan SCCs (iterative) pick out the strongly connected components;
    within each multi-node component one concrete cycle is recovered by
    DFS so reports can show an actual inversion path, not just a set.
    """
    adj: dict[str, list[str]] = {}
    for src, dst in edges:
        adj.setdefault(src, []).append(dst)
        adj.setdefault(dst, [])
    for nbrs in adj.values():
        nbrs.sort()

    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    for root in sorted(adj):
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, pi = work[-1]
            if pi == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            for j in range(pi, len(adj[node])):
                nbr = adj[node][j]
                if nbr not in index:
                    work[-1] = (node, j + 1)
                    work.append((nbr, 0))
                    advanced = True
                    break
                if nbr in on_stack:
                    low[node] = min(low[node], index[nbr])
            if advanced:
                continue
            if low[node] == index[node]:
                comp = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    comp.append(top)
                    if top == node:
                        break
                if len(comp) > 1:
                    sccs.append(sorted(comp))
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    cycles = []
    for comp in sccs:
        comp_set = set(comp)
        start = comp[0]
        path = [start]
        seen = {start}
        node = start
        while True:
            nxt = next(n for n in adj[node] if n in comp_set and (n == start or n not in seen))
            path.append(nxt)
            if nxt == start:
                break
            seen.add(nxt)
            node = nxt
        cycles.append(path)
    return cycles


# ---------------------------------------------------------------------- #
# extraction
# ---------------------------------------------------------------------- #
def _module_dotted(relpath: str) -> str:
    name = relpath[:-3] if relpath.endswith(".py") else relpath
    if name.endswith("/__init__"):
        name = name[: -len("/__init__")]
    return name.replace("/", ".")


def _resolve_relative(relpath: str, level: int, module: str | None) -> str | None:
    pkg_parts = _module_dotted(relpath).split(".")[:-1]  # containing package
    if level - 1 > len(pkg_parts):
        return None
    base = pkg_parts[: len(pkg_parts) - (level - 1)]
    if module:
        base = base + module.split(".")
    return ".".join(base) if base else None


class _ProjectImports:
    """Local name -> project dotted module/function, relative imports included."""

    def __init__(self, module: SourceModule) -> None:
        self.map: dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("repro"):
                        self.map[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    origin = _resolve_relative(module.relpath, node.level, node.module)
                elif node.module and node.module.startswith("repro"):
                    origin = node.module
                else:
                    origin = None
                if origin is None:
                    continue
                for alias in node.names:
                    if alias.name != "*":
                        self.map[alias.asname or alias.name] = f"{origin}.{alias.name}"


@dataclass
class _FuncRecord:
    key: tuple  # ("fn", dotted_module, cls, name)
    relpath: str
    direct: set[str] = field(default_factory=set)  # lock nodes acquired here
    #: (held nodes at the call, callee reference, site string)
    calls: list[tuple[tuple[str, ...], tuple, str]] = field(default_factory=list)


class _Extractor:
    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules = list(modules)
        self.graph = LockGraph()
        # (dotted_module, cls, attr) -> node ; cls None = module global
        self.lock_defs: dict[tuple[str, str | None, str], str] = {}
        self.funcs: dict[tuple, _FuncRecord] = {}
        # method name -> set of (dotted_module, cls) defining it
        self.method_homes: dict[str, set[tuple[str, str | None]]] = {}

    # -- pass 1: definitions ------------------------------------------- #
    def collect_defs(self) -> None:
        for module in self.modules:
            dotted_mod = _module_dotted(module.relpath)
            imports = ImportMap(module.tree)
            aliases: list[tuple[str, str | None, str, ast.expr]] = []
            for info in iter_functions(module.tree):
                self.method_homes.setdefault(info.name, set()).add((dotted_mod, info.cls))
                for node in ast.walk(info.node):
                    if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                        continue
                    factory = imports.resolve(dotted_name(node.value.func) or "")
                    if factory not in _LOCK_FACTORIES and factory != _CONDITION_FACTORY:
                        continue
                    for tgt in node.targets:
                        attr = self._self_attr(tgt) or (
                            tgt.id if isinstance(tgt, ast.Name) else None
                        )
                        if attr is None:
                            continue
                        cls = info.cls if self._self_attr(tgt) else None
                        if factory == _CONDITION_FACTORY and node.value.args:
                            # Condition(self._lock) shares the lock: alias.
                            aliases.append((dotted_mod, cls, attr, node.value.args[0]))
                            continue
                        node_id = f"{module.relpath}:{node.value.lineno}"
                        kind = factory.rsplit(".", 1)[-1]
                        owner = cls or dotted_mod.rsplit(".", 1)[-1]
                        self.lock_defs[(dotted_mod, cls, attr)] = node_id
                        self.graph.nodes[node_id] = f"{owner}.{attr} [{kind}]"
            # module-scope assignments (rare but legal)
            for stmt in module.tree.body:
                if not (isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call)):
                    continue
                factory = imports.resolve(dotted_name(stmt.value.func) or "")
                if factory in _LOCK_FACTORIES or (
                    factory == _CONDITION_FACTORY and not stmt.value.args
                ):
                    for tgt in stmt.targets:
                        if isinstance(tgt, ast.Name):
                            node_id = f"{module.relpath}:{stmt.value.lineno}"
                            self.lock_defs[(dotted_mod, None, tgt.id)] = node_id
                            kind = factory.rsplit(".", 1)[-1]
                            self.graph.nodes[node_id] = f"{tgt.id} [{kind}]"
            for dotted_mod2, cls, attr, target_expr in aliases:
                bound = self._bind_lock_expr(target_expr, dotted_mod2, cls)
                if bound is not None:
                    self.lock_defs[(dotted_mod2, cls, attr)] = bound

    @staticmethod
    def _self_attr(node: ast.AST) -> str | None:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    # -- lock reference binding ---------------------------------------- #
    def _bind_lock_expr(self, expr: ast.expr, dotted_mod: str, cls: str | None) -> str | None:
        """Resolve an expression to a lock node id, or ``None``."""
        attr = self._self_attr(expr)
        if attr is not None:
            hit = self.lock_defs.get((dotted_mod, cls, attr))
            if hit is not None:
                return hit
            # inherited / sibling-class attribute in the same module
            return self._unique_attr_in_module(dotted_mod, attr)
        if isinstance(expr, ast.Name):
            return self.lock_defs.get((dotted_mod, None, expr.id))
        if isinstance(expr, ast.Attribute):
            # obj.lock — bind by attribute name when exactly one class in
            # the module (else the project) defines a lock by that name.
            return self._unique_attr_in_module(dotted_mod, expr.attr) or self._unique_attr(
                expr.attr
            )
        return None

    def _unique_attr_in_module(self, dotted_mod: str, attr: str) -> str | None:
        hits = {
            node
            for (mod, _cls, a), node in self.lock_defs.items()
            if mod == dotted_mod and a == attr
        }
        return hits.pop() if len(hits) == 1 else None

    def _unique_attr(self, attr: str) -> str | None:
        hits = {node for (_mod, _cls, a), node in self.lock_defs.items() if a == attr}
        return hits.pop() if len(hits) == 1 else None

    # -- pass 2: function scans ---------------------------------------- #
    def scan_functions(self) -> None:
        for module in self.modules:
            dotted_mod = _module_dotted(module.relpath)
            pimports = _ProjectImports(module)
            for info in iter_functions(module.tree):
                key = ("fn", dotted_mod, info.cls, info.name)
                record = _FuncRecord(key=key, relpath=module.relpath)
                scanner = _FunctionScanner(self, module, dotted_mod, info.cls, pimports, record)
                for stmt in info.node.body:
                    scanner.visit(stmt)
                # Keep the record that saw lock activity; duplicates (same
                # name nested twice) merge conservatively.
                if key in self.funcs:
                    self.funcs[key].direct |= record.direct
                    self.funcs[key].calls.extend(record.calls)
                else:
                    self.funcs[key] = record

    # -- pass 3: inter-procedural closure ------------------------------ #
    def propagate(self) -> None:
        trans: dict[tuple, set[str]] = {k: set(r.direct) for k, r in self.funcs.items()}
        changed = True
        while changed:
            changed = False
            for key, record in self.funcs.items():
                acc = trans[key]
                before = len(acc)
                for _held, callee, _site in record.calls:
                    target = self._resolve_callee(callee)
                    if target is not None:
                        acc |= trans.get(target, set())
                if len(acc) != before:
                    changed = True
        for record in self.funcs.values():
            for held, callee, site in record.calls:
                target = self._resolve_callee(callee)
                if target is None:
                    continue
                for dst in trans.get(target, set()):
                    for src in held:
                        self.graph.add_edge(src, dst, site)

    def _resolve_callee(self, callee: tuple) -> tuple | None:
        kind = callee[0]
        if kind == "exact":
            key = ("fn",) + callee[1:]
            return key if key in self.funcs else None
        if kind == "method":
            name = callee[1]
            homes = self.method_homes.get(name, set())
            if len(homes) == 1:
                mod, cls = next(iter(homes))
                return ("fn", mod, cls, name)
        return None


class _FunctionScanner(ast.NodeVisitor):
    """Walk one function body tracking the held-lock stack in source order."""

    def __init__(
        self,
        extractor: _Extractor,
        module: SourceModule,
        dotted_mod: str,
        cls: str | None,
        pimports: _ProjectImports,
        record: _FuncRecord,
    ) -> None:
        self.x = extractor
        self.module = module
        self.dotted_mod = dotted_mod
        self.cls = cls
        self.pimports = pimports
        self.record = record
        self.held: list[str] = []
        self._imports = ImportMap(module.tree)

    # Nested defs get their own scan via iter_functions — don't descend.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def _site(self, node: ast.AST, descr: str) -> str:
        return f"{self.module.relpath}:{node.lineno} {descr}"

    def _acquire(self, lock: str, node: ast.AST, descr: str) -> None:
        self.record.direct.add(lock)
        for src in self.held:
            self.x.graph.add_edge(src, lock, self._site(node, descr))

    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            expr = item.context_expr
            # ``with lock:`` or ``with lock.acquire_timeout():``-style —
            # bind the bare expression first, then a call's receiver.
            lock = self.x._bind_lock_expr(expr, self.dotted_mod, self.cls)
            if lock is None and isinstance(expr, ast.Call):
                self.visit(expr)
                continue
            if lock is not None:
                self._acquire(lock, item.context_expr, "with-block")
                self.held.append(lock)
                pushed += 1
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(pushed):
            self.held.pop()

    visit_AsyncWith = visit_With

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver_lock = self.x._bind_lock_expr(func.value, self.dotted_mod, self.cls)
            if func.attr == "acquire" and receiver_lock is not None:
                self._acquire(receiver_lock, node, ".acquire()")
                self.held.append(receiver_lock)
                self.generic_visit(node)
                return
            if func.attr == "release" and receiver_lock is not None:
                if receiver_lock in self.held:
                    # Release the innermost holding of that role.
                    self.held.reverse()
                    self.held.remove(receiver_lock)
                    self.held.reverse()
                self.generic_visit(node)
                return
        if self.held:
            self._note_call(node)
        self.generic_visit(node)

    def _note_call(self, node: ast.Call) -> None:
        func = node.func
        held = tuple(self.held)
        # blocking-call check
        dotted = dotted_name(func)
        resolved = self._imports.resolve(dotted) if dotted else None
        blocking = None
        if resolved in _BLOCKING_DOTTED:
            blocking = resolved
        elif isinstance(func, ast.Attribute) and func.attr in _BLOCKING_ATTRS:
            receiver = terminal_name(func.value)
            # A receiver we cannot even name (string literal ``", ".join``,
            # call result) is not a socket/executor/thread handle.
            if receiver is not None and self.x._bind_lock_expr(
                func.value, self.dotted_mod, self.cls
            ) is None:
                blocking = f"{receiver}.{func.attr}"
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "get"
            and any(tag in (terminal_name(func.value) or "").lower() for tag in _QUEUEISH)
        ):
            blocking = f"{terminal_name(func.value)}.get"
        if blocking is not None:
            self.x.graph.blocking.append(
                (held[-1], self._site(node, f"call {blocking}()"), blocking)
            )

        # inter-procedural record
        callee: tuple | None = None
        if isinstance(func, ast.Name):
            origin = self.pimports.map.get(func.id)
            if origin is not None and origin.startswith("repro"):
                mod, _, name = origin.rpartition(".")
                callee = ("exact", mod, None, name)
            else:
                callee = ("exact", self.dotted_mod, None, func.id)
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                callee = ("exact", self.dotted_mod, self.cls, func.attr)
            else:
                base = dotted_name(func.value)
                origin = self.pimports.map.get(base) if base else None
                if origin is not None and origin.startswith("repro"):
                    callee = ("exact", origin, None, func.attr)
                else:
                    callee = ("method", func.attr)
        if callee is not None:
            self.record.calls.append((held, callee, self._site(node, "via call")))


def extract_lock_graph(modules: Sequence[SourceModule]) -> LockGraph:
    """Build the project lock-order graph from parsed modules."""
    extractor = _Extractor(modules)
    extractor.collect_defs()
    extractor.scan_functions()
    extractor.propagate()
    return extractor.graph


@project_rule
class LockOrderRule(ProjectRule):
    """LOCK001 — the acquisition-order graph must be acyclic."""

    rule_id = "LOCK001"
    severity = "error"
    title = "lock-order cycle (static deadlock risk)"

    def check_project(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        graph = extract_lock_graph(modules)
        path_of = {m.relpath: m.path for m in modules}
        for cycle in find_cycles(graph.edges):
            # Anchor the finding at the first edge's first recorded site.
            first_sites = graph.edges.get((cycle[0], cycle[1]), ["?:1"])
            site = first_sites[0].split(" ")[0]
            relpath, _, line = site.rpartition(":")
            pretty = " -> ".join(graph.label(n) for n in cycle)
            sites = sorted(
                s
                for a, b in zip(cycle, cycle[1:], strict=False)
                for s in graph.edges.get((a, b), [])
            )
            yield Finding(
                file=path_of.get(relpath, relpath),
                line=int(line) if line.isdigit() else 1,
                rule_id=self.rule_id,
                severity=self.severity,
                message=f"lock-order cycle: {pretty}",
                detail={"cycle": cycle, "sites": sites},
            )


@project_rule
class BlockingUnderLockRule(ProjectRule):
    """LOCK002 — no blocking call while a project lock is held."""

    rule_id = "LOCK002"
    severity = "error"
    title = "blocking call while holding a project lock"

    def check_project(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        graph = extract_lock_graph(modules)
        path_of = {m.relpath: m.path for m in modules}
        for lock, site, call in graph.blocking:
            loc, _, _descr = site.partition(" ")
            relpath, _, line = loc.rpartition(":")
            yield Finding(
                file=path_of.get(relpath, relpath),
                line=int(line) if line.isdigit() else 1,
                rule_id=self.rule_id,
                severity=self.severity,
                message=f"blocking call {call}() while holding {graph.label(lock)}",
                detail={"lock": lock},
            )
