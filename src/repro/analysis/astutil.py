"""Small AST helpers shared by the rule pack and the lock-graph extractor."""

from __future__ import annotations

import ast
from collections.abc import Iterator

__all__ = [
    "ImportMap",
    "dotted_name",
    "resolve_call_name",
    "terminal_name",
    "iter_functions",
    "FunctionInfo",
]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> str | None:
    """The last identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class ImportMap:
    """Map local names to their imported dotted origins.

    ``import numpy as np`` makes ``np`` resolve to ``numpy``;
    ``from time import time as now`` makes ``now`` resolve to
    ``time.time``.  Used to canonicalise call names so rules match
    ``np.random.rand`` and ``numpy.random.rand`` identically.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._alias: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else alias.name.split(".")[0]
                    self._alias[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._alias[local] = f"{node.module}.{alias.name}"

    def resolve(self, name: str) -> str:
        head, sep, rest = name.partition(".")
        origin = self._alias.get(head)
        if origin is None:
            return name
        return origin + sep + rest if rest else origin


def resolve_call_name(call: ast.Call, imports: ImportMap) -> str | None:
    """Canonical dotted name of a call through the module's imports."""
    name = dotted_name(call.func)
    if name is None:
        return None
    return imports.resolve(name)


class FunctionInfo:
    """A function/method with its enclosing class name (if any)."""

    def __init__(self, node: ast.FunctionDef | ast.AsyncFunctionDef, cls: str | None) -> None:
        self.node = node
        self.cls = cls
        self.name = node.name
        self.qualname = f"{cls}.{node.name}" if cls else node.name


def iter_functions(tree: ast.Module) -> Iterator[FunctionInfo]:
    """Every function/method in the module with its class context.

    Nested functions are attributed to their enclosing class (closures
    inside a method count as part of that method's class namespace for
    call resolution — good enough for lock analysis).
    """

    def walk(node: ast.AST, cls: str | None) -> Iterator[FunctionInfo]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield FunctionInfo(child, cls)
                yield from walk(child, cls)
            else:
                yield from walk(child, cls)

    yield from walk(tree, None)
