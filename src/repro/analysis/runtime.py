"""Runtime lock-order sanitizer (``REPRO_LOCKCHECK=1``).

The static extractor (:mod:`repro.analysis.lockgraph`) cannot see
acquisition orders that only exist dynamically — locks reached through
callbacks, executors, or data-driven dispatch.  This module is the
dynamic cross-check: :func:`install` patches ``threading.Lock`` /
``threading.RLock`` so that locks *created from project code* come back
wrapped in a tracking proxy.  Each proxy records, per thread, which lock
roles were held when it was acquired; every (held -> acquired) pair
becomes an observed edge.

A lock's *role* is its creation site (``repro/x.py:LINE``) — the same
node id the static graph uses — so :func:`check` can merge observed
edges into the statically extracted graph and fail on any cycle in the
union.  Conditions need no special handling: ``threading.Condition(lock)``
receives an already-tracked proxy and every ``wait()`` release/reacquire
flows through it, keeping the held-stack honest across waits.

The proxies add one dict lookup and a few list ops per acquisition —
cheap enough to leave on for a whole concurrency test suite, which is
exactly how CI runs it (see ``tests/conftest.py``).
"""

from __future__ import annotations

import sys
import threading

from .findings import normalize_path

__all__ = [
    "LockOrderRecorder",
    "recorder",
    "install",
    "uninstall",
    "installed",
    "check",
]

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


class LockOrderRecorder:
    """Process-wide observed-edge store with a per-thread held stack."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._mutex = _REAL_LOCK()
        #: (src role, dst role) -> example "thread-name: src -> dst"
        self.edges: dict[tuple[str, str], str] = {}
        self.roles: dict[str, int] = {}  # role -> times acquired
        self.n_acquisitions = 0

    def _stack(self) -> list[tuple[str, int]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def note_acquired(self, role: str, instance: int) -> None:
        stack = self._stack()
        held_roles = {r for r, _ in stack}
        new_edges = [(r, role) for r in held_roles if r != role and (r, role) not in self.edges]
        stack.append((role, instance))
        with self._mutex:
            self.n_acquisitions += 1
            self.roles[role] = self.roles.get(role, 0) + 1
            for edge in new_edges:
                self.edges.setdefault(edge, f"observed in thread {threading.current_thread().name}")

    def note_released(self, role: str, instance: int) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == (role, instance):
                del stack[i]
                return

    def snapshot_edges(self) -> dict[tuple[str, str], str]:
        with self._mutex:
            return dict(self.edges)

    def reset(self) -> None:
        with self._mutex:
            self.edges.clear()
            self.roles.clear()
            self.n_acquisitions = 0


#: The process-wide recorder every proxy reports to.
recorder = LockOrderRecorder()


class _TrackedLock:
    """Duck-typed ``threading.Lock`` reporting acquisitions to the recorder."""

    _kind = "Lock"

    def __init__(self, role: str, inner=None) -> None:
        self._inner = inner if inner is not None else _REAL_LOCK()
        self._role = role

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            recorder.note_acquired(self._role, id(self))
        return got

    def release(self) -> None:
        self._inner.release()
        recorder.note_released(self._role, id(self))

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # Condition-compatibility hooks (threading.Condition probes for these).
    def _release_save(self):
        self.release()

    def _acquire_restore(self, _state) -> None:
        self.acquire()

    def _is_owned(self) -> bool:
        # Same probe stock Condition uses for non-RLock locks, but against
        # the raw inner lock so the probe never pollutes the recorder.
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __repr__(self) -> str:
        return f"<Tracked{self._kind} role={self._role}>"


class _TrackedRLock(_TrackedLock):
    _kind = "RLock"

    def __init__(self, role: str) -> None:
        super().__init__(role, _REAL_RLOCK())

    def _release_save(self):
        # Fully unwind reentrant holds, mirroring RLock._release_save.
        state = self._inner._release_save()
        recorder.note_released(self._role, id(self))
        return state

    def _acquire_restore(self, state) -> None:
        self._inner._acquire_restore(state)
        recorder.note_acquired(self._role, id(self))

    def _is_owned(self) -> bool:
        return self._inner._is_owned()


_STATE: dict = {"installed": False, "path_markers": ()}


def _role_for_caller(depth: int = 2) -> str | None:
    frame = sys._getframe(depth)
    filename = frame.f_code.co_filename.replace("\\", "/")
    for marker in _STATE["path_markers"]:
        if marker in filename:
            return f"{normalize_path(filename)}:{frame.f_lineno}"
    return None


def _lock_factory():
    role = _role_for_caller()
    return _REAL_LOCK() if role is None else _TrackedLock(role)


def _rlock_factory():
    role = _role_for_caller()
    return _REAL_RLOCK() if role is None else _TrackedRLock(role)


def install(path_markers: tuple[str, ...] = ("/repro/",)) -> None:
    """Patch the lock factories so project-created locks are tracked.

    ``path_markers`` are substrings matched against the *creating*
    frame's filename — only locks born in matching files get proxies, so
    stdlib and third-party internals keep raw primitives.  Idempotent;
    :func:`uninstall` restores the real factories (existing proxies keep
    working — they wrap real locks).
    """
    _STATE["path_markers"] = tuple(path_markers)
    if _STATE["installed"]:
        return
    threading.Lock = _lock_factory
    threading.RLock = _rlock_factory
    _STATE["installed"] = True


def uninstall() -> None:
    if not _STATE["installed"]:
        return
    threading.Lock = _REAL_LOCK
    threading.RLock = _REAL_RLOCK
    _STATE["installed"] = False


def installed() -> bool:
    return bool(_STATE["installed"])


def check(src_paths: tuple[str, ...] = ("src",)) -> dict:
    """Merge observed edges into the static graph and detect cycles.

    Returns a report dict::

        {"observed_edges": int, "static_edges": int, "merged_edges": int,
         "roles": int, "acquisitions": int, "cycles": [[node, ...], ...],
         "cycle_reports": ["A -> B -> A (observed ...)", ...]}

    The caller decides what to do with a non-empty ``cycles`` list (the
    pytest wiring fails the session).  Static extraction failures fall
    back to checking the observed edges alone — a dynamic-only check is
    still a real check.
    """
    from .engine import iter_python_files, load_module
    from .lockgraph import extract_lock_graph, find_cycles

    observed = recorder.snapshot_edges()
    try:
        modules = [load_module(p) for p in iter_python_files(src_paths)]
        graph = extract_lock_graph(modules)
    except OSError:
        modules, graph = [], None

    merged: dict[tuple[str, str], str] = {}
    static_count = 0
    if graph is not None:
        for (src, dst), sites in graph.edges.items():
            merged[(src, dst)] = f"static: {sites[0]}"
            static_count += 1
    for edge, descr in observed.items():
        merged.setdefault(edge, descr)

    labels = dict(graph.nodes) if graph is not None else {}
    cycles = find_cycles(merged)
    reports = []
    for cycle in cycles:
        pretty = " -> ".join(f"{labels.get(n, n)} ({n})" if n in labels else n for n in cycle)
        evidence = [merged[(a, b)] for a, b in zip(cycle, cycle[1:], strict=False) if (a, b) in merged]
        reports.append(f"{pretty} [{'; '.join(evidence)}]")
    return {
        "observed_edges": len(observed),
        "static_edges": static_count,
        "merged_edges": len(merged),
        "roles": len(recorder.roles),
        "acquisitions": recorder.n_acquisitions,
        "cycles": cycles,
        "cycle_reports": reports,
    }
