"""Finding records and suppression comments for the project linter.

A :class:`Finding` is one rule violation pinned to a file and line.  The
analyzer honours two suppression forms, mirroring ``noqa`` semantics:

* ``# repro: ignore[RULE1,RULE2]`` on the flagged line silences exactly
  those rules for that line (``# repro: ignore`` silences every rule —
  reserved for generated code, prefer the explicit form).
* ``# repro: ignore-file[RULE1,...]`` anywhere in the first ten lines of
  a module silences the named rules for the whole file.

Suppressions are deliberate, reviewable artefacts: the inline comment is
the audit trail for *why* a codified invariant does not apply at one
site, so every suppression in ``src/`` should carry a trailing reason,
e.g. ``# repro: ignore[REPRO006] - probe failure means "no backend"``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

__all__ = [
    "Finding",
    "SuppressionIndex",
    "format_findings",
    "normalize_path",
]

#: Severity levels in ascending order of gravity.
SEVERITIES = ("info", "warning", "error")

_IGNORE_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([A-Za-z0-9_,\s]*)\])?")
_IGNORE_FILE_RE = re.compile(r"#\s*repro:\s*ignore-file\[([A-Za-z0-9_,\s]*)\]")

#: ``ignore-file`` pragmas are only honoured this close to the top of a
#: module, so a file-wide waiver is always visible next to the docstring.
_FILE_PRAGMA_WINDOW = 10


def normalize_path(path: str) -> str:
    """Stable repo-relative module id shared by the static and runtime layers.

    Paths are keyed from the last ``repro`` package segment onward
    (``.../src/repro/engine/server.py`` -> ``repro/engine/server.py``) so
    lock nodes extracted statically and roles recorded at runtime agree no
    matter which working directory either ran from.  Paths outside a
    ``repro`` package fall back to their final two segments.
    """
    parts = path.replace("\\", "/").split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return "/".join(parts[-2:]) if len(parts) >= 2 else path


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    file: str
    line: int
    rule_id: str
    severity: str
    message: str
    #: Optional machine-readable extras (cycle paths, lock labels, ...).
    detail: dict = field(default_factory=dict, compare=False)

    def to_dict(self) -> dict:
        doc = {
            "file": self.file,
            "line": self.line,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }
        if self.detail:
            doc["detail"] = self.detail
        return doc

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule_id} [{self.severity}] {self.message}"


class SuppressionIndex:
    """Per-module view of ``# repro: ignore`` pragmas."""

    def __init__(self, lines: list[str]) -> None:
        self._by_line: dict[int, set[str] | None] = {}
        self._file_wide: set[str] = set()
        for lineno, text in enumerate(lines, start=1):
            if "repro:" not in text:
                continue
            m = _IGNORE_FILE_RE.search(text)
            if m and lineno <= _FILE_PRAGMA_WINDOW:
                self._file_wide.update(self._parse_rules(m.group(1)))
                continue
            m = _IGNORE_RE.search(text)
            if m:
                rules = self._parse_rules(m.group(1))
                # ``None`` means blanket: every rule suppressed on the line.
                self._by_line[lineno] = set(rules) if m.group(1) is not None else None

    @staticmethod
    def _parse_rules(raw: str | None) -> list[str]:
        if not raw:
            return []
        return [token.strip().upper() for token in raw.split(",") if token.strip()]

    def is_suppressed(self, lineno: int, rule_id: str) -> bool:
        rule_id = rule_id.upper()
        if rule_id in self._file_wide:
            return True
        if lineno in self._by_line:
            rules = self._by_line[lineno]
            return rules is None or rule_id in rules
        return False

    @property
    def n_pragmas(self) -> int:
        return len(self._by_line) + len(self._file_wide)


def format_findings(findings: list[Finding], fmt: str = "human") -> str:
    """Render findings as a human report or a JSON document."""
    if fmt == "json":
        return json.dumps(
            {
                "n_findings": len(findings),
                "findings": [f.to_dict() for f in findings],
            },
            indent=2,
            sort_keys=True,
        )
    if fmt != "human":
        raise ValueError(f"unknown format {fmt!r} (expected 'human' or 'json')")
    if not findings:
        return "no findings"
    lines = [f.render() for f in findings]
    by_rule: dict[str, int] = {}
    for f in findings:
        by_rule[f.rule_id] = by_rule.get(f.rule_id, 0) + 1
    summary = ", ".join(f"{rule} x{count}" for rule, count in sorted(by_rule.items()))
    lines.append(f"{len(findings)} finding(s): {summary}")
    return "\n".join(lines)
