"""Set-associative LRU cache simulator.

Backs the Table IV reproduction: the paper used ``perf`` hardware counters
to show that Fast-BNS's transposed storage slashes cache-miss rates versus
bnlearn's layout.  Here the same contrast is produced architecturally: the
simulator replays the exact memory-access stream of contingency-table
filling under both storage layouts through a modelled cache and counts
hits/misses.

The model is a classic set-associative cache with LRU replacement —
deliberately simple (no prefetcher), which *understates* the benefit of the
sequential-friendly layout relative to real hardware; the qualitative gap
survives, which is what Table IV demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

__all__ = ["CacheSim", "CacheStats", "column_fill_accesses", "simulate_fill_misses"]


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class CacheSim:
    """Set-associative LRU cache over byte addresses."""

    def __init__(
        self,
        size_bytes: int = 32 * 1024,
        line_bytes: int = 64,
        associativity: int = 8,
    ) -> None:
        if size_bytes % (line_bytes * associativity):
            raise ValueError("size must be a multiple of line_bytes * associativity")
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.n_sets = size_bytes // (line_bytes * associativity)
        # Each set is an ordered list of tags, most-recently-used last.
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        line = address // self.line_bytes
        set_idx = line % self.n_sets
        tag = line // self.n_sets
        ways = self._sets[set_idx]
        self.stats.accesses += 1
        try:
            ways.remove(tag)
            ways.append(tag)
            return True
        except ValueError:
            self.stats.misses += 1
            ways.append(tag)
            if len(ways) > self.associativity:
                ways.pop(0)
            return False

    def reset_stats(self) -> None:
        self.stats = CacheStats()


@dataclass(frozen=True)
class _LayoutSpec:
    """Address computation for one storage layout."""

    variable_major: bool
    n_variables: int
    n_samples: int
    value_bytes: int = 4
    base: int = 0

    def address(self, variable: int, sample: int) -> int:
        if self.variable_major:
            flat = variable * self.n_samples + sample
        else:
            flat = sample * self.n_variables + variable
        return self.base + flat * self.value_bytes


def column_fill_accesses(
    variables: Sequence[int],
    n_variables: int,
    n_samples: int,
    variable_major: bool,
    value_bytes: int = 4,
):
    """Yield the byte addresses touched when filling one contingency table.

    Mirrors the real kernel's access order: sample-by-sample, reading the
    ``d + 2`` participating variables of each sample (the C++ loop of the
    paper; NumPy gathers column-by-column but touches the same addresses —
    the per-layout locality contrast is identical).
    """
    spec = _LayoutSpec(
        variable_major=variable_major,
        n_variables=n_variables,
        n_samples=n_samples,
        value_bytes=value_bytes,
    )
    for sample in range(n_samples):
        for var in variables:
            yield spec.address(var, sample)


def simulate_fill_misses(
    variables: Sequence[int],
    n_variables: int,
    n_samples: int,
    variable_major: bool,
    cache: CacheSim | None = None,
) -> CacheStats:
    """Run one table-fill access stream through a cache; returns stats."""
    if cache is None:
        cache = CacheSim()
    cache.reset_stats()
    for addr in column_fill_accesses(variables, n_variables, n_samples, variable_major):
        cache.access(addr)
    return cache.stats
