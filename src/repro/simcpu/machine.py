"""Machine model for the multi-core discrete-event simulator.

The reproduction host may have any number of cores (the calibration pass for
this build ran on a single-core container), so thread-count sweeps
(Figs. 2, 3, 5) are reproduced by simulation: the *algorithm* runs for real
and records its exact work trace; only the concurrent execution of that
trace is modelled.  :class:`MachineSpec` holds the architectural constants
of the model, defaulting to the paper's assumptions (Sec. IV-D): 64-byte
cache lines, 4-byte values, DRAM ~8x slower than cache.

All costs are expressed in abstract *units* where one cache hit costs 1.
``seconds_per_unit`` converts units to wall-clock; it can be calibrated from
a real sequential run (see :func:`repro.simcpu.costmodel.calibrate`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineSpec", "PAPER_MACHINE"]


@dataclass(frozen=True)
class MachineSpec:
    """Architectural constants of the simulated multi-core CPU.

    Attributes
    ----------
    cache_line_bytes:
        ``B`` in the paper's cache analysis.
    value_bytes:
        Size of one stored data value (4 in the paper).
    dram_cost:
        Cost of a cache miss in units (``T_DRAM / T_cache``; the paper
        assumes 8).
    cache_cost:
        Cost of a cache hit (1 by definition of the unit).
    table_op_cost:
        Per-cell cost of allocating/scanning contingency-table cells and
        computing the statistic.
    test_overhead:
        Fixed per-CI-test cost (hypothesis decision, bookkeeping).
    spawn_overhead_s:
        Per-task dispatch cost in *seconds* (the "parallel overhead" of
        Sec. IV-A; charged per work item handed to a thread).  Expressed in
        wall-clock, not units, so that differently-calibrated cost models
        (e.g. friendly vs unfriendly storage) pay the same absolute
        scheduling overhead.
    region_overhead_s:
        Per-parallel-region cost in seconds, charged once per depth:
        thread fork/join plus the master's serial work (adjacency
        snapshot, task construction, pool setup, removal application).
        This fixed serial cost is what caps the speedup of small, fast
        networks (the Fig. 5 trend); the ablation bench sweeps it.
    atomic_factor:
        Multiplier on table updates performed with atomic operations
        (sample-level parallelism, atomic variant).
    dram_concurrency:
        Number of cache misses the memory system can service concurrently;
        beyond this many threads, miss latency scales up proportionally
        (bandwidth saturation — the main reason real machines fall short of
        linear speedup on this memory-bound workload).
    merge_cost_per_cell:
        Cost of merging one cell of a thread-private table (sample-level
        parallelism, local-tables variant).
    seconds_per_unit:
        Wall-clock calibration; defaults to an uncalibrated 1e-9.
    """

    cache_line_bytes: int = 64
    value_bytes: int = 4
    dram_cost: float = 8.0
    cache_cost: float = 1.0
    table_op_cost: float = 1.0
    test_overhead: float = 200.0
    spawn_overhead_s: float = 2e-6
    region_overhead_s: float = 3e-3
    atomic_factor: float = 4.0
    merge_cost_per_cell: float = 1.0
    dram_concurrency: float = 12.0
    seconds_per_unit: float = 1e-9

    @property
    def spawn_overhead_units(self) -> float:
        """Dispatch overhead converted into this machine's cost units."""
        return self.spawn_overhead_s / self.seconds_per_unit

    @property
    def region_overhead_units(self) -> float:
        """Per-depth overhead converted into this machine's cost units."""
        return self.region_overhead_s / self.seconds_per_unit

    @property
    def values_per_line(self) -> int:
        return max(1, self.cache_line_bytes // self.value_bytes)

    def calibrated(self, seconds_per_unit: float) -> "MachineSpec":
        return replace(self, seconds_per_unit=seconds_per_unit)


#: The configuration assumed by the paper's Sec. IV-D worked example.
PAPER_MACHINE = MachineSpec()
