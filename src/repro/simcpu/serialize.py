"""Save/load execution traces as JSON.

Traces of the big full-mode runs take minutes to produce; persisting them
lets the simulator sweeps (Figs. 2, 3, 5 and the scheduling ablations)
re-run instantly and makes results auditable (the exact replayed work is an
artefact, not transient state).
"""

from __future__ import annotations

import json
from typing import Any

from ..core.trace import DepthTrace, EdgeWorkRecord, GroupRecord, TestRecord

__all__ = ["trace_to_json", "trace_from_json", "save_trace", "load_trace"]

_FORMAT_VERSION = 1


def trace_to_json(depths: list[DepthTrace]) -> str:
    """Serialise a trace (``TraceRecorder.depths``) to a JSON string."""
    payload: dict[str, Any] = {
        "format": "fastbns-trace",
        "version": _FORMAT_VERSION,
        "depths": [
            {
                "depth": d.depth,
                "n_edges_start": d.n_edges_start,
                "n_edges_removed": d.n_edges_removed,
                "edges": [
                    {
                        "u": e.u,
                        "v": e.v,
                        "total_possible": e.total_possible,
                        "removed": e.removed,
                        "groups": [
                            [[t.depth, t.m, t.cells, int(t.independent)] for t in g.tests]
                            for g in e.groups
                        ],
                    }
                    for e in d.edges
                ],
            }
            for d in depths
        ],
    }
    return json.dumps(payload)


def trace_from_json(text: str) -> list[DepthTrace]:
    """Inverse of :func:`trace_to_json`."""
    payload = json.loads(text)
    if payload.get("format") != "fastbns-trace":
        raise ValueError("not a fastbns trace file")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported trace version {payload.get('version')!r}")
    depths: list[DepthTrace] = []
    for d in payload["depths"]:
        edges = []
        for e in d["edges"]:
            groups = [
                GroupRecord(
                    tests=[
                        TestRecord(depth=t[0], m=t[1], cells=t[2], independent=bool(t[3]))
                        for t in g
                    ]
                )
                for g in e["groups"]
            ]
            edges.append(
                EdgeWorkRecord(
                    u=e["u"],
                    v=e["v"],
                    total_possible=e["total_possible"],
                    groups=groups,
                    removed=e["removed"],
                )
            )
        depths.append(
            DepthTrace(
                depth=d["depth"],
                n_edges_start=d["n_edges_start"],
                edges=edges,
                n_edges_removed=d["n_edges_removed"],
            )
        )
    return depths


def save_trace(depths: list[DepthTrace], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_to_json(depths))


def load_trace(path: str) -> list[DepthTrace]:
    with open(path, encoding="utf-8") as fh:
        return trace_from_json(fh.read())
