"""Discrete-event schedulers replaying a real execution trace on ``t``
simulated threads.

The three schedulers implement exactly the three granularities of the
paper's Fig. 1, over the *same* recorded work (same CI tests, same early
terminations), so differences in simulated makespan isolate the scheduling
policy — precisely the comparison of the paper's Sec. V-C / Fig. 2:

* :func:`simulate_edge_level` — static contiguous partition of each depth's
  edges into ``t`` blocks; a depth ends when its slowest block ends.
* :func:`simulate_ci_level` — the Fast-BNS dynamic work pool: free threads
  pop an edge, run its next gs-group, push the edge back unless finished.
* :func:`simulate_sample_level` — every test's table fill is split ``t``
  ways; each test pays fork/join and merge (or atomic) costs.

All schedulers add ``region_overhead_s`` per depth (parallel-region
start/stop plus serial master work) and ``spawn_overhead_s`` per dispatched
work item — both wall-clock quantities converted to units via the machine's
calibration, so differently-calibrated cost models pay identical absolute
scheduling overheads.  A single
sequential thread (``t = 1``, :func:`simulate_sequential`) pays neither,
matching the paper's "Fast-BNS-seq" reference.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..core.trace import DepthTrace
from .costmodel import CostModel

__all__ = [
    "SimResult",
    "simulate_sequential",
    "simulate_edge_level",
    "simulate_ci_level",
    "simulate_sample_level",
    "simulate",
]


@dataclass
class SimResult:
    """Outcome of one simulated schedule."""

    scheme: str
    n_threads: int
    makespan_units: float
    busy_units: float
    per_depth_units: list[float] = field(default_factory=list)
    seconds_per_unit: float = 1e-9
    thread_busy_units: list[float] = field(default_factory=list)

    @property
    def load_imbalance(self) -> float:
        """Max over mean per-thread busy time (1.0 = perfectly balanced);
        the quantitative form of Table I's "load balance" column."""
        if not self.thread_busy_units:
            return 1.0
        mean = sum(self.thread_busy_units) / len(self.thread_busy_units)
        return max(self.thread_busy_units) / mean if mean > 0 else 1.0

    @property
    def seconds(self) -> float:
        return self.makespan_units * self.seconds_per_unit

    @property
    def utilization(self) -> float:
        """Fraction of thread-time spent on CI tests (the CPU-utilization
        analog of Table IV)."""
        denom = self.makespan_units * self.n_threads
        return self.busy_units / denom if denom > 0 else 0.0

    def speedup_over(self, other: "SimResult") -> float:
        return other.makespan_units / self.makespan_units if self.makespan_units else float("inf")


def simulate_sequential(trace: list[DepthTrace], model: CostModel) -> SimResult:
    """One thread, no parallel overheads: the Fast-BNS-seq reference."""
    per_depth: list[float] = []
    total = 0.0
    for depth in trace:
        units = sum(model.edge_units(edge.groups) for edge in depth.edges)
        per_depth.append(units)
        total += units
    return SimResult(
        scheme="sequential",
        n_threads=1,
        makespan_units=total,
        busy_units=total,
        per_depth_units=per_depth,
        seconds_per_unit=model.machine.seconds_per_unit,
        thread_busy_units=[total],
    )


def simulate_edge_level(
    trace: list[DepthTrace], model: CostModel, n_threads: int
) -> SimResult:
    """Static edge partition: ``|Ed| / t`` contiguous edges per thread."""
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    model = model.with_contention(n_threads)
    spec = model.machine
    per_depth: list[float] = []
    makespan = 0.0
    busy = 0.0
    thread_busy = [0.0] * n_threads
    for depth in trace:
        edge_costs = [model.edge_units(edge.groups) for edge in depth.edges]
        block = -(-len(edge_costs) // n_threads) if edge_costs else 0
        thread_times = []
        for k in range(n_threads):
            chunk = edge_costs[k * block : (k + 1) * block]
            t_time = sum(chunk) + len(chunk) * spec.spawn_overhead_units
            thread_times.append(t_time)
            thread_busy[k] += sum(chunk)
        depth_units = (max(thread_times) if thread_times else 0.0) + spec.region_overhead_units
        busy += sum(edge_costs)
        per_depth.append(depth_units)
        makespan += depth_units
    return SimResult(
        scheme="edge-level",
        n_threads=n_threads,
        makespan_units=makespan,
        busy_units=busy,
        per_depth_units=per_depth,
        seconds_per_unit=spec.seconds_per_unit,
        thread_busy_units=thread_busy,
    )


def simulate_ci_level(
    trace: list[DepthTrace], model: CostModel, n_threads: int
) -> SimResult:
    """Dynamic work pool: free threads pop edges and run one group at a
    time (event-driven list scheduling over the recorded groups)."""
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    model = model.with_contention(n_threads)
    spec = model.machine
    per_depth: list[float] = []
    makespan = 0.0
    busy = 0.0
    thread_busy = [0.0] * n_threads
    for depth in trace:
        # Pool of (edge index, next group index); LIFO like the engine.
        group_costs: list[list[float]] = [
            [model.group_units(g) for g in edge.groups] for edge in depth.edges
        ]
        stack: list[tuple[int, int]] = [(i, 0) for i in range(len(depth.edges) - 1, -1, -1)]
        # Event queue of thread free-times.
        threads = [0.0] * n_threads
        heap = [(0.0, k) for k in range(n_threads)]
        heapq.heapify(heap)
        depth_busy = 0.0
        finish = 0.0
        while stack:
            free_at, k = heapq.heappop(heap)
            edge_idx, group_idx = stack.pop()
            cost = group_costs[edge_idx][group_idx] + spec.spawn_overhead_units
            done_at = free_at + cost
            depth_busy += group_costs[edge_idx][group_idx]
            thread_busy[k] += group_costs[edge_idx][group_idx]
            finish = max(finish, done_at)
            if group_idx + 1 < len(group_costs[edge_idx]):
                stack.append((edge_idx, group_idx + 1))
            heapq.heappush(heap, (done_at, k))
            threads[k] = done_at
        depth_units = finish + spec.region_overhead_units
        busy += depth_busy
        per_depth.append(depth_units)
        makespan += depth_units
    return SimResult(
        scheme="ci-level",
        n_threads=n_threads,
        makespan_units=makespan,
        busy_units=busy,
        per_depth_units=per_depth,
        seconds_per_unit=spec.seconds_per_unit,
        thread_busy_units=thread_busy,
    )


def simulate_sample_level(
    trace: list[DepthTrace],
    model: CostModel,
    n_threads: int,
    variant: str = "local-tables",
) -> SimResult:
    """Per-test sample splitting.

    ``variant="local-tables"``: each thread fills a private table (fill
    time divided by ``t``), then tables are merged (``t * cells`` merge
    cost) with a fork/join per test.  ``variant="atomic"``: a shared table
    with atomic increments (fill cost multiplied by ``atomic_factor``,
    divided by ``t``).  Both pay ``spawn_overhead * t`` per test — the
    per-test parallel-region cost that dominates this scheme.
    """
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    if variant not in ("local-tables", "atomic"):
        raise ValueError("variant must be 'local-tables' or 'atomic'")
    model = model.with_contention(n_threads)
    spec = model.machine
    per_depth: list[float] = []
    makespan = 0.0
    busy = 0.0
    for depth in trace:
        depth_units = 0.0
        for edge in depth.edges:
            for group in edge.groups:
                for i, test in enumerate(group.tests):
                    fill = model.test_units(test, xy_reused=i > 0)
                    busy += fill
                    if variant == "atomic":
                        table_update = test.cells * spec.table_op_cost
                        fill_atomic = (
                            fill - table_update + table_update * spec.atomic_factor
                        )
                        test_time = fill_atomic / n_threads
                    else:
                        test_time = fill / n_threads
                        test_time += test.cells * spec.merge_cost_per_cell * n_threads
                    test_time += spec.spawn_overhead_units * n_threads
                    depth_units += test_time
        depth_units += spec.region_overhead_units
        per_depth.append(depth_units)
        makespan += depth_units
    return SimResult(
        scheme=f"sample-level/{variant}",
        n_threads=n_threads,
        makespan_units=makespan,
        busy_units=busy,
        per_depth_units=per_depth,
        seconds_per_unit=spec.seconds_per_unit,
        thread_busy_units=[busy / n_threads] * n_threads,
    )


def simulate(
    trace: list[DepthTrace],
    model: CostModel,
    scheme: str,
    n_threads: int,
) -> SimResult:
    """Dispatch by scheme name: ``sequential``, ``edge``, ``ci`` or
    ``sample`` (optionally ``sample/atomic``)."""
    if scheme == "sequential":
        return simulate_sequential(trace, model)
    if scheme == "edge":
        return simulate_edge_level(trace, model, n_threads)
    if scheme == "ci":
        return simulate_ci_level(trace, model, n_threads)
    if scheme == "sample":
        return simulate_sample_level(trace, model, n_threads)
    if scheme == "sample/atomic":
        return simulate_sample_level(trace, model, n_threads, variant="atomic")
    raise ValueError(f"unknown scheme {scheme!r}")
