"""Simulated performance counters (the Table IV analog).

The paper profiles Fast-BNS and bnlearn with Linux ``perf`` and reports L1
and last-level cache accesses/misses, FLOPS and CPU utilisation.  Without
hardware counters, this module assembles the same table from

* the CI testers' exact work counters (data accesses, table cells, log
  evaluations),
* the cache simulator run over sampled table-fill access streams under the
  run's storage layout, and
* the scheduler simulation's utilisation.

Miss *rates* come from sampling: tests are drawn according to the run's
per-depth test histogram, with conditioning variables drawn uniformly —
the quantity being contrasted (layout-driven locality) does not depend on
which variables are drawn, only on how their columns are strided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..citests.base import CITestCounters
from .cache import CacheSim, simulate_fill_misses
from .scheduler import SimResult

__all__ = ["PerfReport", "perf_report"]


@dataclass(frozen=True)
class PerfReport:
    """Simulated analog of one Table IV row.

    ``ci_cache_hits`` / ``ci_cache_hit_rate`` report the engine's
    sufficient-statistics cache when the run used one (zero otherwise): a
    hit skips the table-fill data scan entirely, which is why cached runs
    show fewer L1 accesses for the same test count.
    """

    label: str
    l1_accesses: float
    l1_miss_rate: float
    ll_accesses: float
    ll_miss_rate: float
    flops_per_second: float
    cpu_utilization: float
    ci_cache_hits: int = 0
    ci_cache_hit_rate: float = 0.0

    def row(self) -> dict[str, str]:
        """Formatted cells for the bench harness tables."""
        return {
            "impl": self.label,
            "L1 accesses": f"{self.l1_accesses:.2e}",
            "L1 miss rate": f"{self.l1_miss_rate * 100:.2f}%",
            "LL accesses": f"{self.ll_accesses:.2e}",
            "LL miss rate": f"{self.ll_miss_rate * 100:.2f}%",
            "FLOPS": f"{self.flops_per_second:.2e}",
            "CPU util": f"{self.cpu_utilization:.2f}",
        }


def _sample_depths(counters: CITestCounters, n_tests: int, rng: np.random.Generator):
    depths = sorted(counters.per_depth_tests)
    if not depths:
        return []
    weights = np.array([counters.per_depth_tests[d] for d in depths], dtype=np.float64)
    weights /= weights.sum()
    return list(rng.choice(depths, size=n_tests, p=weights))


def perf_report(
    label: str,
    n_variables: int,
    n_samples: int,
    counters: CITestCounters,
    variable_major: bool,
    sim: SimResult | None = None,
    n_sampled_tests: int = 24,
    max_samples_per_test: int = 4096,
    l1_kib: int = 32,
    ll_kib: int = 16 * 1024,
    rng: np.random.Generator | int | None = 0,
) -> PerfReport:
    """Build a simulated perf row for one implementation/run.

    ``counters`` must come from the run being reported; ``sim`` supplies
    utilisation and wall-clock (sequential runs may omit it: utilisation 1,
    time from the calibrated unit cost is then unavailable, so FLOPS uses
    per-access normalisation instead).
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    m_sim = min(n_samples, max_samples_per_test)
    l1 = CacheSim(size_bytes=l1_kib * 1024)
    ll = CacheSim(size_bytes=ll_kib * 1024, associativity=16)

    l1_acc = l1_miss = ll_acc = ll_miss = 0
    for depth in _sample_depths(counters, n_sampled_tests, rng):
        depth = int(depth)
        n_vars_needed = min(depth + 2, n_variables)
        variables = rng.choice(n_variables, size=n_vars_needed, replace=False)
        stats1 = simulate_fill_misses(list(variables), n_variables, m_sim, variable_major, l1)
        # LL sees only L1 misses; approximate its stream as the same
        # addresses (inclusive hierarchy upper bound on LL accesses).
        stats2 = simulate_fill_misses(list(variables), n_variables, m_sim, variable_major, ll)
        l1_acc += stats1.accesses
        l1_miss += stats1.misses
        ll_acc += stats1.misses  # accesses reaching LL = L1 misses
        ll_miss += min(stats2.misses, stats1.misses)

    l1_rate = l1_miss / l1_acc if l1_acc else 0.0
    ll_rate = ll_miss / ll_acc if ll_acc else 0.0

    total_l1_accesses = float(counters.data_accesses + counters.table_cells)
    total_ll_accesses = total_l1_accesses * l1_rate

    if sim is not None and sim.seconds > 0:
        flops = counters.log_ops * 4.0 / sim.seconds  # ~4 flops per G2 term
        util = sim.utilization * sim.n_threads
    else:
        flops = counters.log_ops * 4.0
        util = 1.0

    cache_total = counters.cache_hits + counters.cache_misses
    return PerfReport(
        label=label,
        l1_accesses=total_l1_accesses,
        l1_miss_rate=l1_rate,
        ll_accesses=total_ll_accesses,
        ll_miss_rate=ll_rate,
        flops_per_second=flops,
        cpu_utilization=util,
        ci_cache_hits=counters.cache_hits,
        ci_cache_hit_rate=counters.cache_hits / cache_total if cache_total else 0.0,
    )
