"""Per-CI-test cost model (implements the paper's Sec. IV-D accounting).

One CI test at depth ``d`` over ``m`` samples

1. gathers ``d + 2`` values per sample to fill the contingency table
   (``m * (d + 2)`` accesses).  With *cache-unfriendly* (sample-major)
   storage every access is a potential miss: cost ``T_DRAM`` each (the
   paper's ``T3``).  With *cache-friendly* (variable-major) storage only the
   first access per cache line misses: per ``B/4`` samples, ``d + 2`` misses
   plus ``(d + 2)(B/4 - 1)`` hits (the paper's ``T4``).
2. touches every contingency/marginal cell a constant number of times
   (``table_op_cost * cells``), and
3. pays a fixed decision overhead (``test_overhead``).

Within a gs-group, tests after the first reuse the already-gathered X and Y
columns, so they gather only ``d`` columns — the group-reuse saving.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.trace import GroupRecord, TestRecord
from .machine import MachineSpec

__all__ = ["CostModel", "calibrate_seconds_per_unit"]


@dataclass(frozen=True)
class CostModel:
    """Maps trace records to cost units on a given machine.

    ``contention`` scales the DRAM miss cost and is set by the schedulers
    through :meth:`with_contention` — with ``t`` threads issuing misses
    concurrently, the memory system saturates beyond
    ``machine.dram_concurrency`` outstanding misses and per-miss latency
    grows proportionally.
    """

    machine: MachineSpec
    cache_friendly: bool = True
    contention: float = 1.0

    def with_contention(self, n_threads: int) -> "CostModel":
        """Derived model for a ``t``-thread schedule (bandwidth model)."""
        factor = max(1.0, n_threads / self.machine.dram_concurrency)
        return CostModel(self.machine, self.cache_friendly, contention=factor)

    @property
    def dram_cost(self) -> float:
        return self.machine.dram_cost * self.contention

    # ------------------------------------------------------------------ #
    def gather_units(self, m: int, n_columns: int) -> float:
        """Cost of gathering ``n_columns`` values for each of ``m`` samples."""
        spec = self.machine
        if not self.cache_friendly:
            # Every access a miss (paper T3).
            return m * n_columns * self.dram_cost
        # One miss per line per column, hits otherwise (paper T4).
        lines = -(-m // spec.values_per_line)  # ceil
        misses = lines * n_columns
        hits = m * n_columns - misses
        return misses * self.dram_cost + hits * spec.cache_cost

    def test_units(self, record: TestRecord, xy_reused: bool = False) -> float:
        """Cost of one executed CI test."""
        n_columns = record.depth + (0 if xy_reused else 2)
        units = self.gather_units(record.m, n_columns)
        units += record.cells * self.machine.table_op_cost
        units += self.machine.test_overhead
        return units

    def group_units(self, group: GroupRecord) -> float:
        """Cost of a gs-group: first test gathers X, Y and Z; subsequent
        tests reuse the X/Y encoding."""
        total = 0.0
        for i, test in enumerate(group.tests):
            total += self.test_units(test, xy_reused=i > 0)
        return total

    def edge_units(self, groups: list[GroupRecord]) -> float:
        return sum(self.group_units(g) for g in groups)


def calibrate_seconds_per_unit(
    model: CostModel,
    trace_depths,
    measured_seconds: float,
) -> float:
    """Fit ``seconds_per_unit`` so the model reproduces a measured
    sequential run: total trace units / measured seconds.

    ``trace_depths`` is ``TraceRecorder.depths`` of the measured run.
    """
    total_units = 0.0
    for depth in trace_depths:
        for edge in depth.edges:
            total_units += model.edge_units(edge.groups)
    if total_units <= 0:
        raise ValueError("trace contains no work; cannot calibrate")
    return measured_seconds / total_units
