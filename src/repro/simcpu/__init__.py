"""Multi-core execution simulator.

The reproduction host cannot be assumed to have the paper's 52 hardware
threads, so thread-count experiments replay *real* execution traces (exact
CI tests, early terminations and group structure recorded by
:class:`repro.core.trace.TraceRecorder`) through discrete-event schedulers
for the three parallelism granularities, on a calibrated machine model.
See the substitution table in EXPERIMENTS.md for the faithfulness
argument.
"""

from .cache import CacheSim, CacheStats, simulate_fill_misses
from .costmodel import CostModel, calibrate_seconds_per_unit
from .machine import PAPER_MACHINE, MachineSpec
from .perfcounters import PerfReport, perf_report
from .serialize import load_trace, save_trace, trace_from_json, trace_to_json
from .scheduler import (
    SimResult,
    simulate,
    simulate_ci_level,
    simulate_edge_level,
    simulate_sample_level,
    simulate_sequential,
)

__all__ = [
    "MachineSpec",
    "PAPER_MACHINE",
    "CostModel",
    "calibrate_seconds_per_unit",
    "SimResult",
    "simulate",
    "simulate_sequential",
    "simulate_edge_level",
    "simulate_ci_level",
    "simulate_sample_level",
    "CacheSim",
    "CacheStats",
    "simulate_fill_misses",
    "PerfReport",
    "save_trace",
    "load_trace",
    "trace_to_json",
    "trace_from_json",
    "perf_report",
]
