"""Approximate inference by sampling: rejection and likelihood weighting.

Complements the exact engines for networks whose tree-width defeats
variable elimination.  Both estimators are consistent; likelihood
weighting avoids rejection's exponential waste under unlikely evidence by
clamping evidence variables and weighting each particle by the evidence
likelihood along its own sample path.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..networks.bayesnet import DiscreteBayesianNetwork

__all__ = ["rejection_sampling", "likelihood_weighting"]


def _check_query(network: DiscreteBayesianNetwork, variable: int, evidence: Mapping[int, int]):
    if not 0 <= variable < network.n_nodes:
        raise ValueError(f"variable {variable} out of range")
    if variable in evidence:
        raise ValueError("query variable cannot be evidence")
    for k, v in evidence.items():
        if not 0 <= k < network.n_nodes:
            raise ValueError(f"evidence variable {k} out of range")
        if not 0 <= v < int(network.arities[k]):
            raise ValueError(f"evidence value {v} out of range for variable {k}")


def rejection_sampling(
    network: DiscreteBayesianNetwork,
    variable: int,
    evidence: Mapping[int, int] | None = None,
    n_samples: int = 10000,
    rng: np.random.Generator | int | None = 0,
) -> np.ndarray:
    """Posterior marginal estimate by forward sampling + rejection.

    Raises ``ValueError`` when no sample survives the evidence filter
    (increase ``n_samples`` or switch to likelihood weighting).
    """
    from ..datasets.sampling import forward_sample

    evidence = {int(k): int(v) for k, v in (evidence or {}).items()}
    _check_query(network, variable, evidence)
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    data = forward_sample(network, n_samples, rng=rng)
    mask = np.ones(n_samples, dtype=bool)
    for k, v in evidence.items():
        mask &= data.column(k) == v
    kept = data.column(variable)[mask]
    if kept.size == 0:
        raise ValueError(
            "all samples rejected; evidence too unlikely for rejection sampling"
        )
    return np.bincount(kept, minlength=int(network.arities[variable])).astype(
        np.float64
    ) / kept.size


def likelihood_weighting(
    network: DiscreteBayesianNetwork,
    variable: int,
    evidence: Mapping[int, int] | None = None,
    n_samples: int = 10000,
    rng: np.random.Generator | int | None = 0,
) -> np.ndarray:
    """Posterior marginal estimate by likelihood weighting (vectorised:
    all particles advance through the topological order together)."""
    evidence = {int(k): int(v) for k, v in (evidence or {}).items()}
    _check_query(network, variable, evidence)
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    n = network.n_nodes
    arities = network.arities
    values = np.empty((n, n_samples), dtype=np.int64)
    weights = np.ones(n_samples, dtype=np.float64)

    for node in network.topological_order():
        cpt = network.cpt(node)
        if cpt.parents:
            cfg = np.zeros(n_samples, dtype=np.int64)
            for p in cpt.parents:
                cfg *= int(arities[p])
                cfg += values[p]
        else:
            cfg = np.zeros(n_samples, dtype=np.int64)
        if node in evidence:
            val = evidence[node]
            values[node] = val
            weights *= cpt.table[cfg, val]
        else:
            cdf = np.cumsum(cpt.table, axis=1)
            cdf[:, -1] = 1.0
            u = rng.random(n_samples)
            values[node] = (u[:, None] >= cdf[cfg]).sum(axis=1)

    total = weights.sum()
    if total <= 0:
        raise ValueError("evidence has probability 0 along every sampled path")
    arity = int(arities[variable])
    out = np.zeros(arity)
    np.add.at(out, values[variable], weights)
    return out / total
