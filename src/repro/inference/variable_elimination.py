"""Exact inference by variable elimination.

A small but complete inference substrate so the learned networks are
usable end-to-end (learn structure -> extend to DAG -> fit CPTs -> query).
Supports posterior marginals ``P(query | evidence)`` over discrete
networks via sum-product variable elimination with a min-degree
elimination heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from ..networks.bayesnet import DiscreteBayesianNetwork

__all__ = ["Factor", "VariableElimination"]


@dataclass(frozen=True)
class Factor:
    """A non-negative table over a tuple of variables.

    ``values`` has one axis per variable in ``variables`` (same order).
    """

    variables: tuple[int, ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != len(self.variables):
            raise ValueError("factor arity does not match its variable list")
        if len(set(self.variables)) != len(self.variables):
            raise ValueError("duplicate variable in factor")
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "variables", tuple(int(v) for v in self.variables))

    # ------------------------------------------------------------------ #
    def multiply(self, other: "Factor") -> "Factor":
        """Pointwise product with broadcasting over the union scope."""
        union = list(self.variables)
        for v in other.variables:
            if v not in union:
                union.append(v)
        a = self._expand(union)
        b = other._expand(union)
        return Factor(tuple(union), a * b)

    def _expand(self, union: Sequence[int]) -> np.ndarray:
        """View of ``values`` broadcast over the ``union`` scope."""
        src_axes = {v: i for i, v in enumerate(self.variables)}
        # Move existing axes into union order, insert size-1 axes elsewhere.
        order = [src_axes[v] for v in union if v in src_axes]
        arr = np.transpose(self.values, order) if order else self.values
        shape = []
        k = 0
        for v in union:
            if v in src_axes:
                shape.append(arr.shape[k])
                k += 1
            else:
                shape.append(1)
        return arr.reshape(shape)

    def sum_out(self, variable: int) -> "Factor":
        if variable not in self.variables:
            raise ValueError(f"variable {variable} not in factor scope")
        axis = self.variables.index(variable)
        remaining = tuple(v for v in self.variables if v != variable)
        return Factor(remaining, self.values.sum(axis=axis))

    def reduce(self, variable: int, value: int) -> "Factor":
        """Condition on ``variable = value`` (drops the axis)."""
        if variable not in self.variables:
            return self
        axis = self.variables.index(variable)
        remaining = tuple(v for v in self.variables if v != variable)
        return Factor(remaining, np.take(self.values, value, axis=axis))

    def normalised(self) -> "Factor":
        total = self.values.sum()
        if total <= 0:
            raise ValueError("factor sums to zero; evidence has probability 0")
        return Factor(self.variables, self.values / total)


class VariableElimination:
    """Sum-product variable elimination over a discrete network."""

    def __init__(self, network: DiscreteBayesianNetwork) -> None:
        self.network = network
        self._factors = [self._node_factor(i) for i in range(network.n_nodes)]

    def _node_factor(self, node: int) -> Factor:
        cpt = self.network.cpt(node)
        scope = tuple(cpt.parents) + (node,)
        shape = tuple(int(self.network.arities[v]) for v in scope)
        return Factor(scope, cpt.table.reshape(shape))

    # ------------------------------------------------------------------ #
    def query(
        self,
        variables: Sequence[int] | int,
        evidence: Mapping[int, int] | None = None,
    ) -> Factor:
        """Posterior joint ``P(variables | evidence)`` as a normalised
        factor (axes in the order given)."""
        if isinstance(variables, int):
            variables = [variables]
        query_vars = [int(v) for v in variables]
        evidence = {int(k): int(v) for k, v in (evidence or {}).items()}
        for v in query_vars:
            if v in evidence:
                raise ValueError(f"query variable {v} is fixed by evidence")
            if not 0 <= v < self.network.n_nodes:
                raise ValueError(f"variable {v} out of range")
        for k, val in evidence.items():
            if not 0 <= val < int(self.network.arities[k]):
                raise ValueError(f"evidence value {val} out of range for variable {k}")

        factors = [f for f in self._factors]
        for k, val in evidence.items():
            factors = [f.reduce(k, val) for f in factors]

        keep = set(query_vars)
        to_eliminate = {
            v
            for f in factors
            for v in f.variables
            if v not in keep
        }

        while to_eliminate:
            var = self._min_degree_choice(factors, to_eliminate)
            involved = [f for f in factors if var in f.variables]
            rest = [f for f in factors if var not in f.variables]
            product = involved[0]
            for f in involved[1:]:
                product = product.multiply(f)
            factors = rest + [product.sum_out(var)]
            to_eliminate.discard(var)

        result = factors[0]
        for f in factors[1:]:
            result = result.multiply(f)
        # Scalar factors (all variables eliminated / evidence-only) may
        # remain as 0-d arrays; the final scope must be the query scope.
        result = Factor(
            tuple(query_vars),
            result._expand(query_vars).reshape(
                tuple(int(self.network.arities[v]) for v in query_vars)
            )
            * 1.0,
        )
        return result.normalised()

    def marginal(self, variable: int, evidence: Mapping[int, int] | None = None) -> np.ndarray:
        """Posterior marginal distribution of one variable."""
        return self.query([variable], evidence).values

    @staticmethod
    def _min_degree_choice(factors: list[Factor], candidates: set[int]) -> int:
        """Eliminate the variable appearing with the fewest distinct
        neighbours (min-degree heuristic)."""
        best_var = -1
        best_degree = None
        for var in sorted(candidates):
            neighbours: set[int] = set()
            for f in factors:
                if var in f.variables:
                    neighbours.update(f.variables)
            neighbours.discard(var)
            degree = len(neighbours)
            if best_degree is None or degree < best_degree:
                best_degree = degree
                best_var = var
        return best_var
