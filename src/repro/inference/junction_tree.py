"""Junction-tree (clique-tree) exact inference.

Variable elimination re-runs the whole elimination for every query; the
junction tree calibrates once and then answers *all* single-variable
posteriors from clique marginals — the standard engine of production BN
libraries for repeated queries on a fixed evidence set.

Pipeline: moralise the DAG, triangulate with the min-fill heuristic,
extract maximal cliques from the elimination order, connect them by a
maximum-spanning tree over separator sizes (running-intersection
property), assign CPT factors to containing cliques, then calibrate with
a two-pass (collect/distribute) sum-product message schedule.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..networks.bayesnet import DiscreteBayesianNetwork
from .variable_elimination import Factor

__all__ = ["JunctionTree", "moralize", "min_fill_order", "triangulated_cliques"]


def moralize(network: DiscreteBayesianNetwork) -> list[set[int]]:
    """Moral graph adjacency: connect co-parents, drop directions."""
    n = network.n_nodes
    adj: list[set[int]] = [set() for _ in range(n)]
    for child in range(n):
        parents = network.parents(child)
        for p in parents:
            adj[p].add(child)
            adj[child].add(p)
        for i in range(len(parents)):
            for j in range(i + 1, len(parents)):
                adj[parents[i]].add(parents[j])
                adj[parents[j]].add(parents[i])
    return adj


def min_fill_order(adj: list[set[int]]) -> list[int]:
    """Elimination order by the min-fill heuristic (fewest added edges)."""
    n = len(adj)
    work = [set(s) for s in adj]
    alive = set(range(n))
    order: list[int] = []
    while alive:
        best_node = -1
        best_fill = None
        for x in sorted(alive):
            nbrs = work[x] & alive
            nbrs_list = sorted(nbrs)
            fill = 0
            for i in range(len(nbrs_list)):
                for j in range(i + 1, len(nbrs_list)):
                    if nbrs_list[j] not in work[nbrs_list[i]]:
                        fill += 1
            if best_fill is None or fill < best_fill:
                best_fill = fill
                best_node = x
        order.append(best_node)
        nbrs = sorted(work[best_node] & alive)
        for i in range(len(nbrs)):
            for j in range(i + 1, len(nbrs)):
                work[nbrs[i]].add(nbrs[j])
                work[nbrs[j]].add(nbrs[i])
        alive.discard(best_node)
    return order


def triangulated_cliques(adj: list[set[int]], order: list[int]) -> list[frozenset[int]]:
    """Maximal cliques induced by eliminating along ``order``."""
    n = len(adj)
    work = [set(s) for s in adj]
    alive = set(range(n))
    cliques: list[frozenset[int]] = []
    for x in order:
        clique = frozenset((work[x] & alive) | {x})
        nbrs = sorted(work[x] & alive)
        for i in range(len(nbrs)):
            for j in range(i + 1, len(nbrs)):
                work[nbrs[i]].add(nbrs[j])
                work[nbrs[j]].add(nbrs[i])
        alive.discard(x)
        if not any(clique <= c for c in cliques):
            cliques.append(clique)
    return cliques


class JunctionTree:
    """Calibrated clique tree over a discrete Bayesian network.

    Build once per evidence assignment (``calibrate``); afterwards every
    single-variable posterior is a clique-marginal lookup.
    """

    def __init__(self, network: DiscreteBayesianNetwork) -> None:
        self.network = network
        adj = moralize(network)
        order = min_fill_order(adj)
        self.cliques = triangulated_cliques(adj, order)
        self._edges = self._spanning_tree()
        self._neighbors: dict[int, list[int]] = {i: [] for i in range(len(self.cliques))}
        for a, b in self._edges:
            self._neighbors[a].append(b)
            self._neighbors[b].append(a)
        self._assignment = self._assign_factors()
        self._calibrated: list[Factor] | None = None
        self._evidence: dict[int, int] = {}
        self._log_z: float | None = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _spanning_tree(self) -> list[tuple[int, int]]:
        """Maximum-weight spanning tree on separator sizes (Kruskal)."""
        k = len(self.cliques)
        candidates = []
        for i in range(k):
            for j in range(i + 1, k):
                sep = len(self.cliques[i] & self.cliques[j])
                if sep:
                    candidates.append((sep, i, j))
        candidates.sort(reverse=True)
        parent = list(range(k))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        edges = []
        for _, i, j in candidates:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[ri] = rj
                edges.append((i, j))
        return edges

    def _assign_factors(self) -> list[list[int]]:
        """Map each node's CPT to one clique containing its family."""
        assignment: list[list[int]] = [[] for _ in self.cliques]
        for node in range(self.network.n_nodes):
            family = set(self.network.parents(node)) | {node}
            for idx, clique in enumerate(self.cliques):
                if family <= clique:
                    assignment[idx].append(node)
                    break
            else:
                raise RuntimeError(
                    f"triangulation lost the family of node {node} — "
                    "this is a bug in clique extraction"
                )
        return assignment

    def _node_factor(self, node: int) -> Factor:
        cpt = self.network.cpt(node)
        scope = tuple(cpt.parents) + (node,)
        shape = tuple(int(self.network.arities[v]) for v in scope)
        return Factor(scope, cpt.table.reshape(shape))

    def _clique_potential(self, idx: int, evidence: Mapping[int, int]) -> Factor:
        scope = tuple(sorted(self.cliques[idx]))
        shape = tuple(int(self.network.arities[v]) for v in scope)
        potential = Factor(scope, np.ones(shape))
        for node in self._assignment[idx]:
            potential = potential.multiply(self._node_factor(node))
        for var, val in evidence.items():
            potential = potential.reduce(var, val) if var in potential.variables else potential
        # Keep evidence variables in scope as size-restricted? Reduced axes
        # are dropped; marginals of evidence variables are the point mass.
        return potential

    # ------------------------------------------------------------------ #
    # calibration and queries
    # ------------------------------------------------------------------ #
    def calibrate(self, evidence: Mapping[int, int] | None = None) -> "JunctionTree":
        """Run the two-pass message schedule under the given evidence."""
        evidence = {int(k): int(v) for k, v in (evidence or {}).items()}
        for var, val in evidence.items():
            if not 0 <= var < self.network.n_nodes:
                raise ValueError(f"evidence variable {var} out of range")
            if not 0 <= val < int(self.network.arities[var]):
                raise ValueError(f"evidence value {val} out of range for variable {var}")
        self._evidence = evidence
        k = len(self.cliques)
        potentials = [self._clique_potential(i, evidence) for i in range(k)]

        # Message schedule: post-order collect to clique 0, pre-order
        # distribute back.  messages[(a, b)] = message from a to b.
        messages: dict[tuple[int, int], Factor] = {}

        def send(src: int, dst: int) -> None:
            product = potentials[src]
            for nbr in self._neighbors[src]:
                if nbr != dst and (nbr, src) in messages:
                    product = product.multiply(messages[(nbr, src)])
            separator = self.cliques[src] & self.cliques[dst]
            for var in product.variables:
                if var not in separator:
                    product = product.sum_out(var)
            messages[(src, dst)] = product

        # Collect (children -> root) by DFS post-order from clique 0.
        visited = [False] * k
        order: list[tuple[int, int]] = []  # (child, parent)

        def dfs(u: int, parent: int) -> None:
            visited[u] = True
            for v in self._neighbors[u]:
                if not visited[v]:
                    dfs(v, u)
            if parent >= 0:
                order.append((u, parent))

        roots = []
        for root in range(k):
            if not visited[root]:
                roots.append(root)
                dfs(root, -1)
        for child, parent in order:
            send(child, parent)
        for child, parent in reversed(order):
            send(parent, child)

        calibrated = []
        for i in range(k):
            belief = potentials[i]
            for nbr in self._neighbors[i]:
                belief = belief.multiply(messages[(nbr, i)])
            calibrated.append(belief)
        self._calibrated = calibrated
        # P(evidence) factorises over tree components: one clique each.
        log_z = 0.0
        for root in roots:
            total = float(calibrated[root].values.sum())
            if total <= 0:
                raise ValueError("evidence has probability 0")
            log_z += float(np.log(total))
        self._log_z = log_z
        return self

    @property
    def log_evidence(self) -> float:
        """Log probability of the calibrated evidence."""
        if self._log_z is None:
            raise RuntimeError("call calibrate() first")
        return self._log_z

    def marginal(self, variable: int) -> np.ndarray:
        """Posterior marginal of ``variable`` under the calibrated
        evidence."""
        if self._calibrated is None:
            raise RuntimeError("call calibrate() first")
        if variable in self._evidence:
            out = np.zeros(int(self.network.arities[variable]))
            out[self._evidence[variable]] = 1.0
            return out
        for idx, clique in enumerate(self.cliques):
            if variable in clique:
                belief = self._calibrated[idx]
                if variable not in belief.variables:
                    continue  # evidence reduced it out of this clique copy
                for var in belief.variables:
                    if var != variable:
                        belief = belief.sum_out(var)
                return belief.normalised().values
        raise ValueError(f"variable {variable} not found in any clique")
