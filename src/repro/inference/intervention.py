"""Causal interventions: the do-operator.

Learned structures are causal models; querying them under *interventions*
``do(X = x)`` (graph surgery: cut X's incoming edges, clamp its value)
differs from conditioning on observations — the textbook distinction this
module makes executable.  ``intervene`` returns the mutilated network;
``interventional_marginal`` composes it with exact inference.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..networks.bayesnet import CPT, DiscreteBayesianNetwork
from .variable_elimination import VariableElimination

__all__ = ["intervene", "interventional_marginal"]


def intervene(
    network: DiscreteBayesianNetwork,
    interventions: Mapping[int, int],
) -> DiscreteBayesianNetwork:
    """Mutilated network for ``do(X1 = x1, ..., Xk = xk)``.

    Each intervened node loses its parents and gets a point-mass CPT at
    the forced value; all other CPTs are untouched.
    """
    interventions = {int(k): int(v) for k, v in interventions.items()}
    for node, value in interventions.items():
        if not 0 <= node < network.n_nodes:
            raise ValueError(f"intervened node {node} out of range")
        if not 0 <= value < int(network.arities[node]):
            raise ValueError(f"forced value {value} out of range for node {node}")
    cpts = []
    for node in range(network.n_nodes):
        if node in interventions:
            table = np.zeros((1, int(network.arities[node])))
            table[0, interventions[node]] = 1.0
            cpts.append(CPT(parents=(), table=table))
        else:
            cpts.append(network.cpt(node))
    return DiscreteBayesianNetwork(network.arities, cpts, names=network.names)


def interventional_marginal(
    network: DiscreteBayesianNetwork,
    variable: int,
    do: Mapping[int, int],
    evidence: Mapping[int, int] | None = None,
) -> np.ndarray:
    """``P(variable | do(...), evidence)`` by graph surgery + exact
    inference."""
    if variable in do:
        raise ValueError("query variable cannot be intervened")
    mutilated = intervene(network, do)
    return VariableElimination(mutilated).marginal(variable, evidence)
