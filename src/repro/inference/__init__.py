"""Inference substrate: exact (variable elimination, junction tree),
approximate (rejection, likelihood weighting) and interventional
(do-operator) queries over discrete Bayesian networks."""

from .intervention import intervene, interventional_marginal
from .junction_tree import JunctionTree, min_fill_order, moralize, triangulated_cliques
from .sampling_inference import likelihood_weighting, rejection_sampling
from .variable_elimination import Factor, VariableElimination

__all__ = [
    "Factor",
    "VariableElimination",
    "JunctionTree",
    "moralize",
    "min_fill_order",
    "triangulated_cliques",
    "rejection_sampling",
    "likelihood_weighting",
    "intervene",
    "interventional_marginal",
]
