"""Command-line interface.

Six sub-commands::

    fastbns learn       # learn a structure from a CSV file or a benchmark
    fastbns blanket     # discover one variable's Markov blanket
    fastbns batch       # serve a JSONL stream of requests over ONE dataset
    fastbns serve       # multi-dataset JSONL server (EngineServer)
    fastbns workload    # record/replay seeded traffic traces, report SLOs
    fastbns experiment  # regenerate a paper table/figure

Examples
--------
Learn from a benchmark network's sampled data and print the CPDAG::

    python -m repro learn --network alarm --samples 5000 --gs 4

Learn from a CSV of integer-coded categories::

    python -m repro learn --csv data.csv --alpha 0.01

Serve a stream of requests against one dataset through a persistent
:class:`~repro.engine.session.LearningSession` (shared statistics cache,
long-lived workers, duplicate requests answered from the result cache),
writing one JSON result per request plus a per-run manifest::

    python -m repro batch --network alarm --requests reqs.jsonl \\
        --out results.jsonl --manifest manifest.json --jobs 4

where ``reqs.jsonl`` holds one request object per line, e.g.::

    {"op": "learn", "alpha": 0.05, "gs": 2}
    {"op": "learn", "alpha": 0.01}
    {"op": "blanket", "target": "HRBP", "algorithm": "iamb"}

``--requests -`` reads the stream from stdin instead, so the server
composes with shell pipes::

    generate_requests | python -m repro batch --network alarm \\
        --requests - --out results.jsonl

Serve *many* datasets from one long-running process — sessions are
created on first touch from registered sources, kept under an LRU budget,
and requests for different datasets run concurrently (``--threads``)::

    python -m repro serve --register icu=csv:icu.csv \\
        --register bench=network:alarm --threads 2 --jobs 4 \\
        --requests - --out results.jsonl --manifest manifest.json

where each request names its dataset (admin ops ``register`` /
``close_dataset`` / ``stats`` manage the registry in-stream)::

    {"op": "learn", "dataset": "icu", "alpha": 0.01}
    {"op": "blanket", "dataset": "bench", "target": "HRBP"}
    {"op": "register", "dataset": "b2", "source": {"kind": "bif", "path": "net.bif"}}
    {"op": "stats"}

Dispatch streams: responses are emitted per input line at every thread
count, with at most ``--window`` requests in flight — a producer that
pipes requests and waits on each response before sending the next always
makes progress.  ``--listen`` serves the same protocol over a socket to
many concurrent clients (one ordered response stream per connection)::

    python -m repro serve --register icu=csv:icu.csv \\
        --listen 127.0.0.1:7878 --threads 4 --jobs 2 --manifest manifest.json

SIGINT/SIGTERM stop intake, drain in-flight work, still write the
manifest, and exit 130/143.

``--processes N`` escapes the single-process GIL entirely: a router
process passes accepted connections to N forked serve workers, sessions
are sharded over the workers by dataset content fingerprint, per-worker
stores land next to ``--store`` as ``PATH.wK``, and ``--manifest``
merges every worker's run document with exact totals::

    python -m repro serve --register icu=csv:icu.csv \\
        --listen 127.0.0.1:7878 --processes 4 --threads 2 \\
        --store run.db --manifest manifest.json

Drive the server with realistic seeded traffic and read back latency
SLOs — record a golden trace, then replay it (in-process here; add
``--connect HOST:PORT`` to replay against a running ``serve --listen``)::

    python -m repro workload record --n-requests 500 --seed 42 \\
        --out trace.jsonl
    python -m repro workload replay --trace trace.jsonl --threads 4 \\
        --report report.json

``workload run`` generates and replays in one step, and ``workload
verify`` checks a committed trace still matches its embedded spec
byte-for-byte.  Unregistered trace datasets are materialised as seeded
synthetic networks, so both commands work with no flags at all.

Regenerate Table III (quick mode)::

    python -m repro experiment table3
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

__all__ = ["main", "build_parser"]


def _gs_argument(value: str):
    """``--gs`` parser: a positive int or the literal ``auto``."""
    if value == "auto":
        return "auto"
    try:
        gs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--gs expects an integer or 'auto', got {value!r}"
        ) from None
    if gs < 1:
        raise argparse.ArgumentTypeError("--gs must be >= 1")
    return gs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fastbns",
        description="Fast-BNS: fast parallel Bayesian network structure learning",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    learn = sub.add_parser("learn", help="learn a CPDAG from data")
    src = learn.add_mutually_exclusive_group(required=True)
    src.add_argument("--csv", help="CSV file of integer category codes (header = names)")
    src.add_argument("--bif", help="BIF network file; data is forward-sampled from it")
    src.add_argument("--network", help="benchmark network name (see `experiment table2`)")
    learn.add_argument("--samples", type=int, default=5000, help="sample count for --network/--bif")
    learn.add_argument("--seed", type=int, default=0, help="sampling seed for --bif (--network datasets are seeded by the catalog)")
    learn.add_argument("--scale", type=float, default=None, help="scale factor for --network")
    learn.add_argument(
        "--method",
        default="fast-bns",
        choices=("fast-bns", "pc-stable", "pc-stable-naive"),
    )
    learn.add_argument("--test", default="g2", choices=("g2", "chi2", "mi"))
    learn.add_argument("--alpha", type=float, default=0.05)
    learn.add_argument(
        "--gs",
        type=_gs_argument,
        default=1,
        help="CI-test group size, or 'auto' for the adaptive scheduler",
    )
    learn.add_argument("--jobs", type=int, default=1, help="worker count (1 = sequential)")
    learn.add_argument(
        "--parallelism", default="ci", choices=("ci", "edge", "sample"), help="granularity"
    )
    learn.add_argument("--backend", default="process", choices=("process", "thread"))
    learn.add_argument(
        "--no-shm",
        action="store_true",
        help="ship the dataset to process workers by pickling instead of the "
        "zero-copy shared-memory plane (results are identical)",
    )
    learn.add_argument("--max-depth", type=int, default=None)
    learn.add_argument("--quiet", action="store_true", help="print only summary counts")

    batch = sub.add_parser(
        "batch",
        help="serve a JSONL stream of learn/blanket requests over one dataset",
    )
    bsrc = batch.add_mutually_exclusive_group(required=True)
    bsrc.add_argument("--csv", help="CSV file of integer category codes (header = names)")
    bsrc.add_argument("--bif", help="BIF network file; data is forward-sampled from it")
    bsrc.add_argument("--network", help="benchmark network name (see `experiment table2`)")
    batch.add_argument("--samples", type=int, default=5000, help="sample count for --network/--bif")
    batch.add_argument("--seed", type=int, default=0, help="sampling seed for --bif (--network datasets are seeded by the catalog)")
    batch.add_argument("--scale", type=float, default=None, help="scale factor for --network")
    batch.add_argument(
        "--requests",
        required=True,
        help="JSONL file, one request object per line ('-' reads stdin, "
        "so the server composes with pipes)",
    )
    batch.add_argument("--out", required=True, help="output JSONL file, one result per line")
    batch.add_argument("--manifest", default=None, help="optional per-run manifest JSON path")
    batch.add_argument("--test", default="g2", choices=("g2", "chi2", "mi"))
    batch.add_argument("--alpha", type=float, default=0.05, help="default significance level")
    batch.add_argument("--jobs", type=int, default=1, help="worker count (1 = sequential)")
    batch.add_argument("--backend", default="process", choices=("process", "thread"))
    batch.add_argument(
        "--no-shm",
        action="store_true",
        help="ship the dataset to process workers by pickling instead of the "
        "zero-copy shared-memory plane (results are identical)",
    )
    batch.add_argument(
        "--cache-mb", type=int, default=64, help="stats-cache LRU budget in MiB"
    )
    batch.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="durable SQLite store: results, skeletons, stats spill and the "
        "manifest journal persist across runs, so a rerun over the same "
        "dataset answers repeated requests warm with byte-identical payloads",
    )

    serve = sub.add_parser(
        "serve",
        help="multi-dataset JSONL server over an LRU-bounded session registry",
    )
    serve.add_argument(
        "--register",
        action="append",
        default=[],
        metavar="ID=KIND:VALUE",
        help="pre-register a dataset source (KIND one of csv/bif/network, e.g. "
        "icu=csv:icu.csv or bench=network:alarm); repeatable — when exactly one "
        "is given it becomes the default dataset for untagged requests; more "
        "sources can be registered in-stream via the 'register' op",
    )
    serve.add_argument(
        "--requests", default="-", help="JSONL request file ('-' streams stdin)"
    )
    serve.add_argument(
        "--out",
        default="-",
        help="JSONL response file ('-' streams stdout; the run summary always "
        "goes to stderr so pipes stay clean)",
    )
    serve.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT|unix:PATH",
        help="serve the JSONL protocol over a socket instead of "
        "--requests/--out (port 0 picks an ephemeral port, printed on "
        "stderr); each connection gets ordered responses and its own "
        "dispatch window; SIGINT/SIGTERM drain in-flight work, write the "
        "manifest and exit",
    )
    serve.add_argument(
        "--manifest", default=None, help="optional run-manifest JSON path (spans all sessions)"
    )
    serve.add_argument(
        "--processes",
        type=int,
        default=0,
        metavar="N",
        help="multi-process serve plane (requires --listen): a router process "
        "plus N serve workers, each with its own engine and GIL; sessions are "
        "sharded over the workers by dataset content fingerprint (consistent "
        "hashing, so aliased ids stay on one worker), --store shards per "
        "worker as PATH.wK, and --manifest merges every worker's run "
        "document with exact totals",
    )
    serve.add_argument(
        "--router-mode",
        default="auto",
        choices=("auto", "fds", "reuseport"),
        help="how connections reach the serve workers with --processes: "
        "'fds' passes each accepted fd to a worker over a Unix socketpair "
        "(TCP and unix listeners), 'reuseport' has every worker listen on "
        "the same TCP port with SO_REUSEPORT and lets the kernel balance "
        "accepts (TCP only); 'auto' prefers fds",
    )
    serve.add_argument(
        "--threads",
        type=int,
        default=1,
        help="dispatcher threads: >1 overlaps requests for different datasets "
        "(per-dataset order is preserved; responses stream in input order)",
    )
    serve.add_argument(
        "--window",
        type=int,
        default=64,
        help="max requests dispatched but not yet answered (per connection "
        "with --listen); bounds memory and gives pipes backpressure",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=4, help="LRU budget of live sessions"
    )
    serve.add_argument(
        "--samples", type=int, default=5000, help="default sample count for bif/network sources"
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="default sampling seed for --register bif sources"
    )
    serve.add_argument("--test", default="g2", choices=("g2", "chi2", "mi"))
    serve.add_argument("--alpha", type=float, default=0.05, help="default significance level")
    serve.add_argument("--jobs", type=int, default=1, help="worker count per session")
    serve.add_argument("--backend", default="process", choices=("process", "thread"))
    serve.add_argument(
        "--no-shm",
        action="store_true",
        help="ship datasets to process workers by pickling instead of the "
        "zero-copy shared-memory plane (results are identical)",
    )
    serve.add_argument(
        "--cache-mb", type=int, default=64, help="per-session stats-cache LRU budget in MiB"
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="durable SQLite store shared by every session: evicted sessions "
        "revive warm, and a restarted server over the same path answers "
        "previously-served streams byte-identically without recomputing",
    )
    serve.add_argument(
        "--lane-weight",
        action="append",
        default=[],
        metavar="ID=WEIGHT",
        help="weighted-fair dispatch share for a dataset's lane (default 1.0); "
        "repeatable — with --threads > 1 a weight-2 lane is served ~2x as "
        "often as a weight-1 lane under contention, so cold tenants cannot "
        "be starved by a hot dataset",
    )

    wl = sub.add_parser(
        "workload",
        help="seeded traffic traces: record, replay with latency SLOs, verify",
    )
    wlsub = wl.add_subparsers(dest="workload_command", required=True)

    def add_shape(p):
        p.add_argument("--n-requests", type=int, default=500, help="trace length")
        p.add_argument(
            "--datasets",
            default="d0,d1,d2,d3",
            help="comma-separated tenant ids in popularity order (first is zipf-hottest)",
        )
        p.add_argument("--seed", type=int, default=0, help="generator seed")
        p.add_argument("--zipf", type=float, default=1.1, help="zipf skew exponent")
        p.add_argument(
            "--arrival", default="poisson", choices=("poisson", "bursty", "uniform")
        )
        p.add_argument("--rate", type=float, default=200.0, help="mean arrivals/s")
        p.add_argument("--burst", type=int, default=16, help="burst size (bursty arrivals)")
        p.add_argument(
            "--mix",
            action="append",
            default=[],
            metavar="OP=WEIGHT",
            help="op-mix weight (learn/relearn/blanket/admin); repeatable, "
            "unmentioned ops keep their default weight",
        )
        p.add_argument(
            "--error-rate", type=float, default=0.0, help="probability of an injected bad request"
        )
        p.add_argument("--max-depth", type=int, default=1, help="learn conditioning depth")
        p.add_argument(
            "--n-targets", type=int, default=8, help="blanket target index bound"
        )

    def add_serving(p):
        p.add_argument(
            "--register",
            action="append",
            default=[],
            metavar="ID=KIND:VALUE",
            help="dataset source per trace tenant (same syntax as serve); "
            "unregistered tenants get seeded synthetic networks",
        )
        p.add_argument("--threads", type=int, default=2, help="dispatcher threads")
        p.add_argument("--window", type=int, default=64, help="in-flight window")
        p.add_argument("--jobs", type=int, default=1, help="workers per session")
        p.add_argument("--backend", default="process", choices=("process", "thread"))
        p.add_argument("--no-shm", action="store_true")
        p.add_argument("--test", default="g2", choices=("g2", "chi2", "mi"))
        p.add_argument("--alpha", type=float, default=0.05)
        p.add_argument("--max-sessions", type=int, default=8)
        p.add_argument("--cache-mb", type=int, default=64)
        p.add_argument("--store", default=None, metavar="PATH")
        p.add_argument(
            "--samples",
            type=int,
            default=500,
            help="sample count for auto-materialised synthetic tenants",
        )
        p.add_argument(
            "--lane-weight",
            action="append",
            default=[],
            metavar="ID=WEIGHT",
            help="weighted-fair dispatch share per tenant lane",
        )
        p.add_argument(
            "--pace",
            action="store_true",
            help="honour the trace's arrival schedule (open loop) instead of "
            "feeding as fast as the window admits",
        )
        p.add_argument(
            "--connect",
            default=None,
            metavar="HOST:PORT|unix:PATH",
            help="replay against a running `serve --listen` over a socket "
            "instead of an in-process server",
        )
        p.add_argument(
            "--report", default=None, metavar="PATH", help="write the full report JSON here"
        )

    wrec = wlsub.add_parser("record", help="generate a seeded trace file")
    add_shape(wrec)
    wrec.add_argument("--out", required=True, help="trace JSONL path")

    wver = wlsub.add_parser(
        "verify", help="check a trace still matches its embedded spec byte-for-byte"
    )
    wver.add_argument("--trace", required=True, help="trace JSONL path")

    wrep = wlsub.add_parser("replay", help="replay a trace file, report latency SLOs")
    wrep.add_argument("--trace", required=True, help="trace JSONL path")
    add_serving(wrep)

    wrun = wlsub.add_parser("run", help="generate and replay in one step")
    add_shape(wrun)
    add_serving(wrun)
    wrun.add_argument("--out", default=None, help="also save the generated trace here")

    mb = sub.add_parser("blanket", help="discover one variable's Markov blanket")
    mbsrc = mb.add_mutually_exclusive_group(required=True)
    mbsrc.add_argument("--csv", help="CSV file of integer category codes (header = names)")
    mbsrc.add_argument("--bif", help="BIF network file; data is forward-sampled from it")
    mbsrc.add_argument("--network", help="benchmark network name (see `experiment table2`)")
    mb.add_argument("--target", required=True, help="target variable (name or index)")
    mb.add_argument("--samples", type=int, default=5000, help="sample count for --network/--bif")
    mb.add_argument("--seed", type=int, default=0, help="sampling seed for --bif (--network datasets are seeded by the catalog)")
    mb.add_argument("--scale", type=float, default=None, help="scale factor for --network")
    mb.add_argument("--algorithm", default="iamb", choices=("iamb", "grow-shrink"))
    mb.add_argument("--alpha", type=float, default=0.01)
    mb.add_argument("--max-conditioning", type=int, default=3)

    exp = sub.add_parser("experiment", help="regenerate a paper table or figure")
    exp.add_argument(
        "name",
        choices=("table1", "table2", "table3", "table4", "fig2", "fig3", "fig4", "fig5", "all"),
    )
    exp.add_argument("--samples", type=int, default=5000)

    an = sub.add_parser(
        "analyze",
        help="run the project linter + lock-order detector over source trees",
        description=(
            "Static analysis gate: the REPRO00x invariant pack plus the "
            "inter-procedural lock-order graph (LOCK001 cycles, LOCK002 "
            "blocking-under-lock). Exit 0 means zero unsuppressed findings."
        ),
    )
    an.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to analyze (default: src)"
    )
    an.add_argument("--format", choices=("human", "json"), default="human", dest="fmt")
    an.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all), e.g. REPRO006,LOCK001",
    )
    an.add_argument(
        "--no-lockgraph",
        action="store_true",
        help="skip the project-level lock-order rules (module rules only)",
    )
    an.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _load_dataset(args: argparse.Namespace):
    """Resolve the shared --csv/--bif/--network data-source options.

    Delegates to :class:`~repro.engine.server.DatasetSource` so the CLI
    and the serve registry share one implementation of source semantics —
    a ``fastbns learn --bif x`` and a registered bif source materialise
    identical datasets for identical parameters.
    """
    from .engine.server import DatasetSource

    if args.csv:
        source = DatasetSource(kind="csv", path=args.csv)
    elif args.bif:
        source = DatasetSource(
            kind="bif", path=args.bif, samples=args.samples, seed=args.seed
        )
    else:
        source = DatasetSource(
            kind="network", name=args.network, samples=args.samples, scale=args.scale
        )
    return source.load()


def _cmd_learn(args: argparse.Namespace) -> int:
    from .core.learn import learn_structure

    data = _load_dataset(args)
    result = learn_structure(
        data,
        method=args.method,
        test=args.test,
        alpha=args.alpha,
        gs=args.gs,
        n_jobs=args.jobs,
        parallelism=args.parallelism,
        backend=args.backend,
        max_depth=args.max_depth,
        use_shm=False if args.no_shm else None,
    )
    print(
        f"skeleton: {result.skeleton.n_edges} edges | "
        f"CPDAG: {result.cpdag.n_directed} directed + {result.cpdag.n_undirected} undirected | "
        f"CI tests: {result.n_ci_tests} | "
        f"time: {result.elapsed['total']:.3f}s "
        f"(skeleton {result.elapsed['skeleton']:.3f}s)"
    )
    if not args.quiet:
        print("directed edges:")
        for u, v in sorted(result.cpdag.directed_edges()):
            print(f"  {result.names[u]} -> {result.names[v]}")
        print("undirected edges:")
        for u, v in sorted(result.cpdag.undirected_edges()):
            print(f"  {result.names[u]} -- {result.names[v]}")
    return 0


class _InterruptGuard:
    """Convert SIGINT/SIGTERM into one KeyboardInterrupt, recording which.

    The serving commands use this to stop intake cleanly: the first
    signal interrupts the stream loop (in-flight lanes drain as the
    dispatch generator closes), the manifest and summary are still
    written, and the process exits with the conventional ``128 + signum``
    (130 for SIGINT, 143 for SIGTERM).  Repeat signals during the drain
    are absorbed so they cannot corrupt the manifest write.  Outside the
    main thread (or where the signal module is restricted) installation
    degrades to a no-op and a plain KeyboardInterrupt still maps to 130.
    """

    def __init__(self) -> None:
        self.signum: int | None = None
        self._saved: dict = {}
        self._absorbing = False

    def __enter__(self) -> "_InterruptGuard":
        import signal

        def handler(signum, frame):
            first = self.signum is None
            self.signum = signum
            if first and not self._absorbing:
                raise KeyboardInterrupt

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                self._saved[sig] = signal.signal(sig, handler)
            except (ValueError, OSError):  # not the main thread
                pass
        return self

    def absorb(self) -> None:
        """Stop raising on signals; record them only.

        Called once serving has ended and the manifest/summary epilogue
        begins — from here on even a *first* signal must not interrupt
        the manifest write, so the epilogue runs inside the guard with
        the handler demoted to a recorder.
        """
        self._absorbing = True

    def __exit__(self, *exc) -> None:
        import signal

        for sig, old in self._saved.items():
            try:
                signal.signal(sig, old)
            except (ValueError, OSError):
                pass

    @property
    def exit_code(self) -> int:
        import signal

        return 128 + int(self.signum if self.signum is not None else signal.SIGINT)


def _iter_jsonl(fh):
    """Frame a JSONL stream lazily; bad lines keep their response slot.

    Yields parsed objects, or :class:`~repro.engine.server.ParseFailure`
    stand-ins that the server turns into ordered error responses — one
    unparseable line never tears down the stream.
    """
    import json

    from .engine.server import ParseFailure

    for line in fh:
        if not line.strip():
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError as exc:
            yield ParseFailure(f"invalid JSON: {exc}")


def _quiet_stdout_teardown() -> None:
    """After a broken stdout pipe, stop the interpreter-exit flush from
    tracebacking: point the fd at /dev/null before Python flushes it."""
    import os

    try:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    except OSError:
        pass


def _cmd_batch(args: argparse.Namespace) -> int:
    import json

    from .engine import BatchServer, LearningSession

    data = _load_dataset(args)

    def requests():
        # Shares the serve framer: a malformed line becomes an ordered
        # error response instead of a stream-aborting traceback that
        # would lose the manifest.
        if args.requests == "-":
            yield from _iter_jsonl(sys.stdin)
        else:
            with open(args.requests, encoding="utf-8") as fh:
                yield from _iter_jsonl(fh)

    interrupted = False
    with LearningSession(
        data,
        test=args.test,
        alpha=args.alpha,
        n_jobs=args.jobs,
        backend=args.backend,
        cache_bytes=args.cache_mb << 20,
        use_shm=False if args.no_shm else None,
        store=args.store,
    ) as session, _InterruptGuard() as guard:
        server = BatchServer(session)
        # The session owns the store (path form); journalling rows as they
        # are served is what survives a crash that never writes --manifest.
        journal = session.store.journal() if session.store is not None else None
        manifest = server.new_manifest(journal=journal)
        # Stream responses as they are computed (flushed per line): an
        # interrupted run keeps everything served before the signal, and
        # `--requests -` composes with live pipes instead of slurping
        # stdin first.
        with open(args.out, "w", encoding="utf-8") as fh:
            try:
                for resp in server.serve_iter(requests(), manifest=manifest):
                    fh.write(json.dumps(resp) + "\n")
                    fh.flush()
            except KeyboardInterrupt:
                interrupted = True
        # Epilogue under the guard with signals demoted to recorders: a
        # late Ctrl-C must not truncate the manifest mid-write.
        guard.absorb()
        # With n_jobs > 1 the learn-phase tables live in the *worker*
        # caches; fold them in so the audit trail reflects where the
        # hits actually happened.
        cache_doc = session.cache_stats().as_dict()
        workers = session.worker_cache_stats()
        if workers:
            cache_doc["workers"] = workers
        if args.manifest:
            manifest.write(args.manifest, cache_stats=cache_doc)
        totals = manifest.totals()
        hits = cache_doc["hits"] + sum(w["hits"] for w in workers)
        misses = cache_doc["misses"] + sum(w["misses"] for w in workers)
        resident = cache_doc["current_bytes"] + sum(w["current_bytes"] for w in workers)
        store_part = ""
        if session.store is not None:
            store_part = (
                f" | store: {server.n_store_hits} result hits, "
                f"{session.n_skeleton_loads} skeleton loads"
            )
        print(
            ("interrupted after " if interrupted else "served ")
            + f"{totals['n_requests']} requests "
            f"({totals['n_computed']} computed, "
            f"{totals['n_result_cache_hits']} result-cache hits, "
            f"{totals['n_errors']} errors) "
            f"in {totals['elapsed_s']:.3f}s | "
            f"stats cache: {hits} hits / {misses} misses "
            f"({resident / 1e6:.1f} MB resident"
            + (f" across master + {len(workers)} workers)" if workers else ")")
            + store_part,
            file=sys.stderr if interrupted else sys.stdout,
        )
    return guard.exit_code if interrupted else 0


def _serve_summary(server, n_served: int, *, interrupted: bool) -> None:
    stats = server.stats()
    totals = stats["totals"]
    # n_served counts emitted response lines directly — a failed admin
    # op shows up in both n_admin and the unrouted error totals, so
    # summing counters would double-count it.
    # The summary goes to stderr: stdout may BE the response stream.
    print(
        ("interrupted after " if interrupted else "served ")
        + f"{n_served} requests "
        f"({totals['n_computed']} computed, "
        f"{totals['n_result_cache_hits']} result-cache hits, "
        f"{totals['n_errors']} errors, {stats['n_admin']} admin) "
        f"across {len(stats['datasets'])} dataset(s) | "
        f"sessions: {stats['sessions']['live']} live / "
        f"budget {stats['sessions']['budget']}, "
        f"{stats['sessions']['spinups']} spin-ups, "
        f"{stats['sessions']['evictions']} evictions",
        file=sys.stderr,
    )


def _serve_stream(args: argparse.Namespace, server) -> int:
    """``fastbns serve`` over --requests/--out: one streaming dispatcher.

    Responses are emitted (and flushed) per input line at every thread
    count — the dispatcher's in-flight window, not the stream length,
    bounds buffering, so a producer that pipes requests and waits on
    responses composes with the server instead of deadlocking it.
    """
    import json

    n_served = 0
    interrupted = broken_pipe = False
    in_fh = out_fh = None
    with _InterruptGuard() as guard:
        try:
            # Both opens live inside the try: a bad --out path must not
            # leak the already-opened requests file.
            in_fh = (
                sys.stdin
                if args.requests == "-"
                else open(args.requests, encoding="utf-8")
            )
            out_fh = (
                sys.stdout if args.out == "-" else open(args.out, "w", encoding="utf-8")
            )
            responses = server.serve_iter(
                _iter_jsonl(in_fh), threads=args.threads, window=args.window
            )
            try:
                for resp in responses:
                    out_fh.write(json.dumps(resp) + "\n")
                    out_fh.flush()
                    n_served += 1
            except KeyboardInterrupt:
                # Signal: stop intake; closing the generator drains the
                # dispatched lanes so the manifest accounts for them.
                interrupted = True
                responses.close()
                server.note_shutdown("signal", signum=guard.signum)
            except BrokenPipeError:
                # Consumer hung up on our stdout: stop serving, but the
                # manifest and stderr summary still land.
                broken_pipe = True
                responses.close()
                server.note_shutdown("broken-pipe")
        finally:
            if in_fh not in (None, sys.stdin):
                in_fh.close()
            if out_fh not in (None, sys.stdout):
                out_fh.close()
            elif broken_pipe:
                _quiet_stdout_teardown()
        # Epilogue still under the guard, with signals demoted to
        # recorders: a late (or repeat) Ctrl-C must not truncate the
        # manifest mid-write.
        guard.absorb()
        if args.manifest:
            server.write_manifest(args.manifest)
        _serve_summary(server, n_served, interrupted=interrupted)
    return guard.exit_code if interrupted else 0


def _serve_listen(args: argparse.Namespace, server) -> int:
    """``fastbns serve --listen``: the JSONL protocol over a socket.

    Accepts until SIGINT/SIGTERM, then drains: per-connection intake
    stops at the next line boundary, in-flight lanes finish, responses
    flush, clients read EOF — and the manifest is written as usual.
    """
    from .engine.transport import EngineTransport

    interrupted = False
    transport = EngineTransport(
        server, args.listen, threads=args.threads, window=args.window
    )
    with _InterruptGuard() as guard:
        try:
            transport.start()
            print(f"listening on {transport.describe()}", file=sys.stderr, flush=True)
            transport.wait()
        except KeyboardInterrupt:
            interrupted = True
            server.note_shutdown("signal", signum=guard.signum, drained=True)
        finally:
            # The drain and the manifest run with signals demoted to
            # recorders — a repeat Ctrl-C must not cut either short.
            guard.absorb()
            transport.shutdown(drain=True)
        if args.manifest:
            server.write_manifest(args.manifest)
        _serve_summary(server, transport.n_responses, interrupted=interrupted)
    return guard.exit_code if interrupted else 0


def _serve_processes(args: argparse.Namespace, registrations, default) -> int:
    """``fastbns serve --listen --processes N``: the multi-process plane.

    Mirrors :func:`_serve_listen`'s contract — same listening banner,
    same signal semantics (drain, manifest, ``128 + signum``) — but the
    engine work happens in N forked serve workers sharded by dataset
    content fingerprint, with the run manifest merged across workers.
    """
    import socket as _socket

    from .engine.procserve import ProcessPlane

    mode = args.router_mode
    if mode == "auto":
        mode = "fds" if hasattr(_socket, "send_fds") else "reuseport"
    interrupted = False
    plane = ProcessPlane(
        args.listen,
        processes=args.processes,
        mode=mode,
        server_kwargs=dict(
            test=args.test,
            alpha=args.alpha,
            n_jobs=args.jobs,
            backend=args.backend,
            cache_bytes=args.cache_mb << 20,
            use_shm=False if args.no_shm else None,
            max_sessions=args.max_sessions,
            default_dataset=default,
            default_samples=args.samples,
            default_seed=args.seed,
            lane_weights=_parse_lane_weights(args.lane_weight),
        ),
        registrations=registrations,
        threads=args.threads,
        window=args.window,
        store=args.store,
    )
    with _InterruptGuard() as guard:
        try:
            plane.start()
            print(f"listening on {plane.describe()}", file=sys.stderr, flush=True)
            plane.wait()
        except KeyboardInterrupt:
            interrupted = True
            plane.note_shutdown("signal", signum=guard.signum, drained=True)
        finally:
            # Same epilogue discipline as _serve_listen: signals demoted
            # to recorders while workers drain and the manifest lands.
            guard.absorb()
            plane.shutdown(drain=True)
        merged = plane.manifest()
        if args.manifest:
            plane.write_manifest(args.manifest)
        totals = merged["totals"]
        print(
            ("interrupted after " if interrupted else "served ")
            + f"{plane.n_responses} requests "
            f"({totals['n_computed']} computed, "
            f"{totals['n_result_cache_hits']} result-cache hits, "
            f"{totals['n_errors']} errors) "
            f"across {plane.processes} worker process(es) | "
            f"router: mode {plane.mode}, {plane.n_connections} connections, "
            f"{plane.n_respawns} respawns",
            file=sys.stderr,
        )
    return guard.exit_code if interrupted else 0


def _parse_registrations(entries) -> list[tuple[str, str]]:
    registrations: list[tuple[str, str]] = []
    for entry in entries:
        ds_id, sep, spec = entry.partition("=")
        if not sep or not ds_id or not spec:
            raise SystemExit(f"--register expects ID=KIND:VALUE, got {entry!r}")
        registrations.append((ds_id, spec))
    return registrations


def _parse_lane_weights(entries) -> dict[str, float]:
    weights: dict[str, float] = {}
    for entry in entries:
        ds_id, sep, value = entry.partition("=")
        try:
            weights[ds_id] = float(value)
        except ValueError:
            sep = ""
        if not sep or not ds_id:
            raise SystemExit(f"--lane-weight expects ID=WEIGHT, got {entry!r}")
    return weights


def _cmd_serve(args: argparse.Namespace) -> int:
    from .engine.server import EngineServer

    registrations = _parse_registrations(args.register)
    default = registrations[0][0] if len(registrations) == 1 else None

    if args.processes:
        if args.processes < 1:
            raise SystemExit(f"--processes must be >= 1, got {args.processes}")
        if not args.listen:
            raise SystemExit(
                "--processes requires --listen (the multi-process plane "
                "serves sockets; use --threads for --requests/--out streams)"
            )
        return _serve_processes(args, registrations, default)

    server = EngineServer(
        test=args.test,
        alpha=args.alpha,
        n_jobs=args.jobs,
        backend=args.backend,
        cache_bytes=args.cache_mb << 20,
        use_shm=False if args.no_shm else None,
        max_sessions=args.max_sessions,
        default_dataset=default,
        default_samples=args.samples,
        default_seed=args.seed,
        store=args.store,
        lane_weights=_parse_lane_weights(args.lane_weight),
    )
    with server:
        for ds_id, spec in registrations:
            server.register(ds_id, spec)
        if args.listen:
            return _serve_listen(args, server)
        return _serve_stream(args, server)


def _workload_spec(args: argparse.Namespace):
    """Build a WorkloadSpec from the shared trace-shape flags."""
    from .engine.workload import WorkloadSpec

    kwargs = {}
    if args.mix:
        mix = dict(WorkloadSpec().mix)
        for entry in args.mix:
            op, sep, value = entry.partition("=")
            try:
                mix[op] = float(value)
            except ValueError:
                sep = ""
            if not sep or not op:
                raise SystemExit(f"--mix expects OP=WEIGHT, got {entry!r}")
        kwargs["mix"] = tuple(mix.items())
    datasets = tuple(d.strip() for d in args.datasets.split(",") if d.strip())
    return WorkloadSpec(
        n_requests=args.n_requests,
        datasets=datasets,
        seed=args.seed,
        zipf_s=args.zipf,
        arrival=args.arrival,
        rate=args.rate,
        burst=args.burst,
        error_rate=args.error_rate,
        max_depth=args.max_depth,
        n_targets=args.n_targets,
        **kwargs,
    )


def _workload_register(server, spec, registrations, samples: int) -> None:
    """Register trace tenants: explicit sources win, the rest get seeded
    synthetic networks sized to cover every blanket target index."""
    explicit = dict(registrations)
    from .datasets.sampling import forward_sample
    from .networks.generators import random_network

    for i, ds_id in enumerate(spec.datasets):
        if ds_id in explicit:
            server.register(ds_id, explicit.pop(ds_id))
            continue
        n_vars = max(8, spec.n_targets)
        net = random_network(
            n_vars,
            n_vars + 2,
            rng=spec.seed * 1009 + i,
            arity_range=(2, 3),
            max_parents=3,
        )
        server.register(ds_id, forward_sample(net, samples, rng=spec.seed * 1013 + i))
    for ds_id, src in explicit.items():  # extra --register entries still land
        server.register(ds_id, src)


def _workload_summary(report, header: str) -> None:
    lat = report.latency()
    print(
        f"{header}: {report.n_requests} requests in {report.wall_s:.3f}s "
        f"({report.requests_per_s:.0f} req/s), {report.n_cached} cached, "
        f"{report.n_errors} errors",
        file=sys.stderr,
    )
    print(
        f"latency ms: p50 {lat['p50_ms']:.2f} | p95 {lat['p95_ms']:.2f} | "
        f"p99 {lat['p99_ms']:.2f} | max {lat['max_ms']:.2f}",
        file=sys.stderr,
    )
    for tenant, t in report.per_tenant().items():
        print(
            f"  {tenant}: n {t['n']}, p50 {t['p50_ms']:.2f}, "
            f"p95 {t['p95_ms']:.2f}, p99 {t['p99_ms']:.2f}",
            file=sys.stderr,
        )


def _workload_replay(args: argparse.Namespace, trace) -> int:
    import json

    from .engine.workload import replay, replay_client

    if args.connect:
        from .engine.client import EngineClient

        with EngineClient(args.connect) as client:
            report = replay_client(client, trace, pace=args.pace)
    else:
        from .engine.server import EngineServer

        server = EngineServer(
            test=args.test,
            alpha=args.alpha,
            n_jobs=args.jobs,
            backend=args.backend,
            cache_bytes=args.cache_mb << 20,
            use_shm=False if args.no_shm else None,
            max_sessions=args.max_sessions,
            store=args.store,
            lane_weights=_parse_lane_weights(args.lane_weight),
        )
        with server:
            _workload_register(
                server, trace.spec, _parse_registrations(args.register), args.samples
            )
            report = replay(
                server, trace, threads=args.threads, window=args.window, pace=args.pace
            )
    _workload_summary(report, "replay" if args.connect is None else f"replay via {args.connect}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 1 if report.n_requests != len(trace) else 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from .engine.workload import generate_trace, load_trace, verify_trace

    if args.workload_command == "record":
        trace = generate_trace(_workload_spec(args))
        trace.save(args.out)
        print(f"recorded {len(trace)} requests to {args.out}", file=sys.stderr)
        return 0
    if args.workload_command == "verify":
        fresh, message = verify_trace(args.trace)
        print(message, file=sys.stderr)
        return 0 if fresh else 1
    if args.workload_command == "replay":
        return _workload_replay(args, load_trace(args.trace))
    if args.workload_command == "run":
        trace = generate_trace(_workload_spec(args))
        if args.out:
            trace.save(args.out)
        return _workload_replay(args, trace)
    raise AssertionError("unreachable")


def _cmd_blanket(args: argparse.Namespace) -> int:
    from .engine import LearningSession

    # --network keeps the generating network around for the ground-truth
    # comparison; --csv/--bif have no ground truth, so those lines are
    # simply omitted.  All three sources share _load_dataset semantics
    # with `learn`/`batch` (satellite parity: same files, same seeds).
    network = None
    if args.network:
        from .bench.workloads import make_workload

        wl = make_workload(args.network, args.samples, scale=args.scale)
        data, network, label = wl.dataset, wl.network, wl.label
    else:
        data = _load_dataset(args)
        label = args.csv or args.bif
    try:
        target = int(args.target)
    except ValueError:
        target = data.index_of(args.target)
    if not 0 <= target < data.n_variables:
        raise SystemExit(
            f"target index {target} out of range for {data.n_variables} variables"
        )
    with LearningSession(data, alpha=args.alpha) as sess:
        result = sess.markov_blanket(
            target, algorithm=args.algorithm, max_conditioning=args.max_conditioning
        )
        cache = sess.cache_stats()
    found = sorted(data.names[v] for v in result.blanket)
    print(f"target: {data.names[target]} ({label}, m={data.n_samples})")
    print(f"blanket ({args.algorithm}, {result.n_tests} CI tests): {', '.join(found) or '-'}")
    if network is not None:
        from .core.markov_blanket import true_markov_blanket

        truth = true_markov_blanket(data.n_variables, network.edges(), target)
        expected = sorted(data.names[v] for v in truth)
        print(f"true blanket: {', '.join(expected) or '-'}")
        overlap = len(result.blanket & truth)
        print(f"overlap: {overlap}/{len(truth)}")
    print(f"stats cache: {cache.hits} hits / {cache.misses} misses")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .bench import experiments as ex

    runners = {
        "table1": lambda: ex.experiment_table1(n_samples=args.samples),
        "table2": ex.experiment_table2,
        "table3": lambda: ex.experiment_table3(n_samples=args.samples),
        "table4": lambda: ex.experiment_table4(n_samples=args.samples),
        "fig2": lambda: ex.experiment_fig2(n_samples=args.samples),
        "fig3": ex.experiment_fig3,
        "fig4": ex.experiment_fig4,
        "fig5": lambda: ex.experiment_fig5(n_samples=args.samples),
    }
    names = list(runners) if args.name == "all" else [args.name]
    for name in names:
        out = runners[name]()
        print(f"== {out.title} ==")
        print(out.text)
        print()
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis.engine import Analyzer, all_rules
    from .analysis.findings import format_findings

    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            print(f"{rule_id}  [{rule.severity}]  {rule.title}")
        return 0
    select = [r for r in args.select.split(",") if r.strip()] if args.select else None
    try:
        analyzer = Analyzer(select=select, lockgraph=not args.no_lockgraph)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings = analyzer.run(args.paths)
    print(format_findings(findings, args.fmt))
    if args.fmt == "json":
        print(
            f"analyzed {analyzer.n_files} file(s): {len(findings)} finding(s), "
            f"{analyzer.n_suppressed} suppressed",
            file=sys.stderr,
        )
    return 1 if findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "learn":
        return _cmd_learn(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "workload":
        return _cmd_workload(args)
    if args.command == "blanket":
        return _cmd_blanket(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
