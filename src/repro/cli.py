"""Command-line interface.

Four sub-commands::

    fastbns learn       # learn a structure from a CSV file or a benchmark
    fastbns blanket     # discover one variable's Markov blanket
    fastbns batch       # serve a JSONL stream of learn/blanket requests
    fastbns experiment  # regenerate a paper table/figure

Examples
--------
Learn from a benchmark network's sampled data and print the CPDAG::

    python -m repro learn --network alarm --samples 5000 --gs 4

Learn from a CSV of integer-coded categories::

    python -m repro learn --csv data.csv --alpha 0.01

Serve a stream of requests against one dataset through a persistent
:class:`~repro.engine.session.LearningSession` (shared statistics cache,
long-lived workers, duplicate requests answered from the result cache),
writing one JSON result per request plus a per-run manifest::

    python -m repro batch --network alarm --requests reqs.jsonl \\
        --out results.jsonl --manifest manifest.json --jobs 4

where ``reqs.jsonl`` holds one request object per line, e.g.::

    {"op": "learn", "alpha": 0.05, "gs": 2}
    {"op": "learn", "alpha": 0.01}
    {"op": "blanket", "target": "HRBP", "algorithm": "iamb"}

``--requests -`` reads the stream from stdin instead, so the server
composes with shell pipes::

    generate_requests | python -m repro batch --network alarm \\
        --requests - --out results.jsonl

Regenerate Table III (quick mode)::

    python -m repro experiment table3
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def _gs_argument(value: str):
    """``--gs`` parser: a positive int or the literal ``auto``."""
    if value == "auto":
        return "auto"
    try:
        gs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"--gs expects an integer or 'auto', got {value!r}")
    if gs < 1:
        raise argparse.ArgumentTypeError("--gs must be >= 1")
    return gs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fastbns",
        description="Fast-BNS: fast parallel Bayesian network structure learning",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    learn = sub.add_parser("learn", help="learn a CPDAG from data")
    src = learn.add_mutually_exclusive_group(required=True)
    src.add_argument("--csv", help="CSV file of integer category codes (header = names)")
    src.add_argument("--bif", help="BIF network file; data is forward-sampled from it")
    src.add_argument("--network", help="benchmark network name (see `experiment table2`)")
    learn.add_argument("--samples", type=int, default=5000, help="sample count for --network/--bif")
    learn.add_argument("--seed", type=int, default=0, help="sampling seed for --bif (--network datasets are seeded by the catalog)")
    learn.add_argument("--scale", type=float, default=None, help="scale factor for --network")
    learn.add_argument(
        "--method",
        default="fast-bns",
        choices=("fast-bns", "pc-stable", "pc-stable-naive"),
    )
    learn.add_argument("--test", default="g2", choices=("g2", "chi2", "mi"))
    learn.add_argument("--alpha", type=float, default=0.05)
    learn.add_argument(
        "--gs",
        type=_gs_argument,
        default=1,
        help="CI-test group size, or 'auto' for the adaptive scheduler",
    )
    learn.add_argument("--jobs", type=int, default=1, help="worker count (1 = sequential)")
    learn.add_argument(
        "--parallelism", default="ci", choices=("ci", "edge", "sample"), help="granularity"
    )
    learn.add_argument("--backend", default="process", choices=("process", "thread"))
    learn.add_argument(
        "--no-shm",
        action="store_true",
        help="ship the dataset to process workers by pickling instead of the "
        "zero-copy shared-memory plane (results are identical)",
    )
    learn.add_argument("--max-depth", type=int, default=None)
    learn.add_argument("--quiet", action="store_true", help="print only summary counts")

    batch = sub.add_parser(
        "batch",
        help="serve a JSONL stream of learn/blanket requests over one dataset",
    )
    bsrc = batch.add_mutually_exclusive_group(required=True)
    bsrc.add_argument("--csv", help="CSV file of integer category codes (header = names)")
    bsrc.add_argument("--bif", help="BIF network file; data is forward-sampled from it")
    bsrc.add_argument("--network", help="benchmark network name (see `experiment table2`)")
    batch.add_argument("--samples", type=int, default=5000, help="sample count for --network/--bif")
    batch.add_argument("--seed", type=int, default=0, help="sampling seed for --bif (--network datasets are seeded by the catalog)")
    batch.add_argument("--scale", type=float, default=None, help="scale factor for --network")
    batch.add_argument(
        "--requests",
        required=True,
        help="JSONL file, one request object per line ('-' reads stdin, "
        "so the server composes with pipes)",
    )
    batch.add_argument("--out", required=True, help="output JSONL file, one result per line")
    batch.add_argument("--manifest", default=None, help="optional per-run manifest JSON path")
    batch.add_argument("--test", default="g2", choices=("g2", "chi2", "mi"))
    batch.add_argument("--alpha", type=float, default=0.05, help="default significance level")
    batch.add_argument("--jobs", type=int, default=1, help="worker count (1 = sequential)")
    batch.add_argument("--backend", default="process", choices=("process", "thread"))
    batch.add_argument(
        "--no-shm",
        action="store_true",
        help="ship the dataset to process workers by pickling instead of the "
        "zero-copy shared-memory plane (results are identical)",
    )
    batch.add_argument(
        "--cache-mb", type=int, default=64, help="stats-cache LRU budget in MiB"
    )

    mb = sub.add_parser("blanket", help="discover one variable's Markov blanket")
    mb.add_argument("--network", required=True, help="benchmark network name")
    mb.add_argument("--target", required=True, help="target variable (name or index)")
    mb.add_argument("--samples", type=int, default=5000)
    mb.add_argument("--scale", type=float, default=None)
    mb.add_argument("--algorithm", default="iamb", choices=("iamb", "grow-shrink"))
    mb.add_argument("--alpha", type=float, default=0.01)
    mb.add_argument("--max-conditioning", type=int, default=3)

    exp = sub.add_parser("experiment", help="regenerate a paper table or figure")
    exp.add_argument(
        "name",
        choices=("table1", "table2", "table3", "table4", "fig2", "fig3", "fig4", "fig5", "all"),
    )
    exp.add_argument("--samples", type=int, default=5000)
    return parser


def _load_dataset(args: argparse.Namespace):
    """Resolve the shared --csv/--bif/--network data-source options."""
    from .datasets.dataset import DiscreteDataset

    if args.csv:
        rows = np.loadtxt(args.csv, delimiter=",", skiprows=1, dtype=np.int64)
        with open(args.csv, "r", encoding="utf-8") as fh:
            names = [c.strip() for c in fh.readline().split(",")]
        return DiscreteDataset.from_rows(rows, names=names)
    if args.bif:
        from .datasets.bif import load_bif
        from .datasets.sampling import forward_sample

        network = load_bif(args.bif)
        return forward_sample(network, args.samples, rng=args.seed)
    from .bench.workloads import make_workload

    return make_workload(args.network, args.samples, scale=args.scale).dataset


def _cmd_learn(args: argparse.Namespace) -> int:
    from .core.learn import learn_structure

    data = _load_dataset(args)
    result = learn_structure(
        data,
        method=args.method,
        test=args.test,
        alpha=args.alpha,
        gs=args.gs,
        n_jobs=args.jobs,
        parallelism=args.parallelism,
        backend=args.backend,
        max_depth=args.max_depth,
        use_shm=False if args.no_shm else None,
    )
    print(
        f"skeleton: {result.skeleton.n_edges} edges | "
        f"CPDAG: {result.cpdag.n_directed} directed + {result.cpdag.n_undirected} undirected | "
        f"CI tests: {result.n_ci_tests} | "
        f"time: {result.elapsed['total']:.3f}s "
        f"(skeleton {result.elapsed['skeleton']:.3f}s)"
    )
    if not args.quiet:
        print("directed edges:")
        for u, v in sorted(result.cpdag.directed_edges()):
            print(f"  {result.names[u]} -> {result.names[v]}")
        print("undirected edges:")
        for u, v in sorted(result.cpdag.undirected_edges()):
            print(f"  {result.names[u]} -- {result.names[v]}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    import json

    from .engine import BatchServer, LearningSession

    data = _load_dataset(args)
    if args.requests == "-":
        requests = [json.loads(line) for line in sys.stdin if line.strip()]
    else:
        with open(args.requests, "r", encoding="utf-8") as fh:
            requests = [json.loads(line) for line in fh if line.strip()]

    with LearningSession(
        data,
        test=args.test,
        alpha=args.alpha,
        n_jobs=args.jobs,
        backend=args.backend,
        cache_bytes=args.cache_mb << 20,
        use_shm=False if args.no_shm else None,
    ) as session:
        server = BatchServer(session)
        manifest = server.new_manifest()
        responses = server.serve(requests, manifest=manifest)
        with open(args.out, "w", encoding="utf-8") as fh:
            for resp in responses:
                fh.write(json.dumps(resp) + "\n")
        # With n_jobs > 1 the learn-phase tables live in the *worker*
        # caches; fold them in so the audit trail reflects where the
        # hits actually happened.
        cache_doc = session.cache_stats().as_dict()
        workers = session.worker_cache_stats()
        if workers:
            cache_doc["workers"] = workers
        if args.manifest:
            manifest.write(args.manifest, cache_stats=cache_doc)
        totals = manifest.totals()
        hits = cache_doc["hits"] + sum(w["hits"] for w in workers)
        misses = cache_doc["misses"] + sum(w["misses"] for w in workers)
        resident = cache_doc["current_bytes"] + sum(w["current_bytes"] for w in workers)
        print(
            f"served {totals['n_requests']} requests "
            f"({totals['n_computed']} computed, "
            f"{totals['n_result_cache_hits']} result-cache hits, "
            f"{totals['n_errors']} errors) "
            f"in {totals['elapsed_s']:.3f}s | "
            f"stats cache: {hits} hits / {misses} misses "
            f"({resident / 1e6:.1f} MB resident"
            + (f" across master + {len(workers)} workers)" if workers else ")")
        )
    return 0


def _cmd_blanket(args: argparse.Namespace) -> int:
    from .bench.workloads import make_workload
    from .citests.gsquare import GSquareTest
    from .core.markov_blanket import grow_shrink, iamb, true_markov_blanket

    wl = make_workload(args.network, args.samples, scale=args.scale)
    data = wl.dataset
    try:
        target = int(args.target)
    except ValueError:
        target = data.index_of(args.target)
    tester = GSquareTest(data, alpha=args.alpha)
    algorithm = iamb if args.algorithm == "iamb" else grow_shrink
    result = algorithm(
        tester, data.n_variables, target, max_conditioning=args.max_conditioning
    )
    truth = true_markov_blanket(data.n_variables, wl.network.edges(), target)
    found = sorted(data.names[v] for v in result.blanket)
    expected = sorted(data.names[v] for v in truth)
    print(f"target: {data.names[target]} ({wl.label}, m={data.n_samples})")
    print(f"blanket ({args.algorithm}, {result.n_tests} CI tests): {', '.join(found) or '-'}")
    print(f"true blanket: {', '.join(expected) or '-'}")
    overlap = len(result.blanket & truth)
    print(f"overlap: {overlap}/{len(truth)}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .bench import experiments as ex

    runners = {
        "table1": lambda: ex.experiment_table1(n_samples=args.samples),
        "table2": ex.experiment_table2,
        "table3": lambda: ex.experiment_table3(n_samples=args.samples),
        "table4": lambda: ex.experiment_table4(n_samples=args.samples),
        "fig2": lambda: ex.experiment_fig2(n_samples=args.samples),
        "fig3": ex.experiment_fig3,
        "fig4": ex.experiment_fig4,
        "fig5": lambda: ex.experiment_fig5(n_samples=args.samples),
    }
    names = list(runners) if args.name == "all" else [args.name]
    for name in names:
        out = runners[name]()
        print(f"== {out.title} ==")
        print(out.text)
        print()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "learn":
        return _cmd_learn(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "blanket":
        return _cmd_blanket(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
