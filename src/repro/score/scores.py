"""Decomposable structure scores: log-likelihood, AIC, BIC/MDL, BDeu.

The paper's related work (Sec. II) contrasts constraint-based learning
with score-based search over DAGs; Table-III-style comparisons against a
score-based learner need a real scoring substrate.  All scores here are
*decomposable* — a sum of per-node local scores that depend only on the
node and its parent set — which is what makes greedy search efficient:
one edge change re-scores at most two nodes.

Local scores are cached per ``(node, parents)`` pair; a hill-climbing run
over ``n`` nodes touches the same families repeatedly and the cache turns
re-scoring into a dictionary lookup.
"""

from __future__ import annotations

from math import lgamma, log
from collections.abc import Sequence

import numpy as np

from ..citests.contingency import encode_columns
from ..datasets.dataset import DiscreteDataset

__all__ = ["DecomposableScore", "BICScore", "AICScore", "LogLikelihoodScore", "BDeuScore"]


class DecomposableScore:
    """Base class: cached local scores over one dataset.

    Subclasses implement :meth:`_local_score` from the family's observed
    counts.  ``local_score`` handles caching; ``total_score`` sums over a
    full parent-set assignment.
    """

    def __init__(self, data: DiscreteDataset) -> None:
        self.data = data
        self._cache: dict[tuple[int, tuple[int, ...]], float] = {}
        self.n_evaluations = 0  # cache misses (true computations)

    # ------------------------------------------------------------------ #
    def local_score(self, node: int, parents: Sequence[int]) -> float:
        key = (node, tuple(sorted(int(p) for p in parents)))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        value = self._local_score(key[0], key[1])
        self._cache[key] = value
        self.n_evaluations += 1
        return value

    def total_score(self, parent_sets: Sequence[Sequence[int]]) -> float:
        return sum(self.local_score(i, ps) for i, ps in enumerate(parent_sets))

    def cache_size(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------ #
    def _family_counts(self, node: int, parents: tuple[int, ...]) -> np.ndarray:
        """Counts ``N[config, value]`` of the family (parents, node)."""
        data = self.data
        arity = int(data.arities[node])
        if parents:
            rz = [int(data.arities[p]) for p in parents]
            cfg, n_cfg = encode_columns(data.columns(parents), rz)
            cell = cfg * arity + data.column(node)
        else:
            n_cfg = 1
            cell = data.column(node).astype(np.int64)
        return np.bincount(cell, minlength=n_cfg * arity).reshape(n_cfg, arity)

    def _log_likelihood(self, node: int, parents: tuple[int, ...]) -> float:
        counts = self._family_counts(node, parents).astype(np.float64)
        row_tot = counts.sum(axis=1, keepdims=True)
        mask = counts > 0
        return float(np.sum(counts[mask] * (np.log(counts[mask]) - np.log(
            np.broadcast_to(row_tot, counts.shape)[mask]
        ))))

    def _n_free_parameters(self, node: int, parents: tuple[int, ...]) -> int:
        arity = int(self.data.arities[node])
        n_cfg = 1
        for p in parents:
            n_cfg *= int(self.data.arities[p])
        return n_cfg * (arity - 1)

    def _local_score(self, node: int, parents: tuple[int, ...]) -> float:
        raise NotImplementedError


class LogLikelihoodScore(DecomposableScore):
    """Pure maximised log-likelihood (monotone in edges; for tests and as
    the base of the penalised scores)."""

    def _local_score(self, node: int, parents: tuple[int, ...]) -> float:
        return self._log_likelihood(node, parents)


class BICScore(DecomposableScore):
    """Bayesian information criterion / MDL:
    ``LL - (log m / 2) * n_parameters`` (the paper's "BIC, MDL")."""

    def _local_score(self, node: int, parents: tuple[int, ...]) -> float:
        penalty = 0.5 * log(max(self.data.n_samples, 1))
        return self._log_likelihood(node, parents) - penalty * self._n_free_parameters(
            node, parents
        )


class AICScore(DecomposableScore):
    """Akaike information criterion: ``LL - n_parameters``."""

    def _local_score(self, node: int, parents: tuple[int, ...]) -> float:
        return self._log_likelihood(node, parents) - self._n_free_parameters(node, parents)


class BDeuScore(DecomposableScore):
    """Bayesian-Dirichlet equivalent uniform score (the paper's "BDeu").

    ``equivalent_sample_size`` spreads a uniform Dirichlet prior over the
    family's configurations; the score is the log marginal likelihood::

        sum_j [ lgamma(a_j) - lgamma(a_j + N_j)
                + sum_k ( lgamma(a_jk + N_jk) - lgamma(a_jk) ) ]

    with ``a_jk = ess / (q_i * r_i)`` and ``a_j = ess / q_i``.
    """

    def __init__(self, data: DiscreteDataset, equivalent_sample_size: float = 1.0) -> None:
        if equivalent_sample_size <= 0:
            raise ValueError("equivalent_sample_size must be > 0")
        super().__init__(data)
        self.ess = float(equivalent_sample_size)

    def _local_score(self, node: int, parents: tuple[int, ...]) -> float:
        counts = self._family_counts(node, parents)
        n_cfg, arity = counts.shape
        a_jk = self.ess / (n_cfg * arity)
        a_j = self.ess / n_cfg
        row_tot = counts.sum(axis=1)
        score = 0.0
        for j in range(n_cfg):
            score += lgamma(a_j) - lgamma(a_j + float(row_tot[j]))
            for k in range(arity):
                if counts[j, k]:
                    score += lgamma(a_jk + float(counts[j, k])) - lgamma(a_jk)
        return score
