"""Greedy hill-climbing structure search over DAGs.

The score-based comparator of the paper's related work (Sec. II): start
from a graph (empty by default), repeatedly apply the single edge change
(add / delete / reverse) with the best score improvement, stop at a local
optimum.  A tabu list plus optional random restarts mitigate the
local-optima weakness the paper calls out ("such approaches can easily get
trapped in local optima").

Because scores are decomposable, each candidate move re-scores at most two
families; the score cache makes neighbourhood evaluation cheap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from ..datasets.dataset import DiscreteDataset
from ..graphs.dag import build_children, is_acyclic
from .scores import BDeuScore, BICScore, DecomposableScore

__all__ = ["HillClimbResult", "hill_climb"]


@dataclass
class HillClimbResult:
    """Outcome of a hill-climbing search."""

    edges: list[tuple[int, int]]
    score: float
    n_iterations: int
    n_moves_evaluated: int
    n_restarts_used: int
    elapsed_s: float
    score_trace: list[float] = field(default_factory=list)

    def parent_sets(self, n_nodes: int) -> list[list[int]]:
        parents: list[list[int]] = [[] for _ in range(n_nodes)]
        for u, v in self.edges:
            parents[v].append(u)
        return parents


def _creates_cycle(n: int, children: list[set[int]], u: int, v: int) -> bool:
    """Would adding u -> v close a directed cycle? (DFS from v to u)."""
    stack = [v]
    seen = {v}
    while stack:
        w = stack.pop()
        if w == u:
            return True
        for c in children[w]:
            if c not in seen:
                seen.add(c)
                stack.append(c)
    return False


def hill_climb(
    data: DiscreteDataset,
    score: str | DecomposableScore = "bic",
    max_parents: int | None = 5,
    max_iterations: int = 10000,
    tabu_length: int = 10,
    random_restarts: int = 0,
    restart_edges: int = 2,
    start_edges: Sequence[tuple[int, int]] | None = None,
    rng: np.random.Generator | int | None = 0,
) -> HillClimbResult:
    """Greedy search maximising a decomposable score.

    Parameters
    ----------
    data:
        Complete discrete observations.
    score:
        ``"bic"``, ``"bdeu"`` or a :class:`DecomposableScore` instance.
    max_parents:
        In-degree cap (CPT size guard), ``None`` for unlimited.
    tabu_length:
        Recently reversed/undone moves are barred for this many steps.
    random_restarts:
        After converging, perturb the optimum with ``restart_edges``
        random legal edge flips and climb again; the best optimum wins.
    start_edges:
        Initial DAG (empty graph by default).
    """
    if isinstance(score, str):
        if score == "bic":
            scorer: DecomposableScore = BICScore(data)
        elif score == "bdeu":
            scorer = BDeuScore(data)
        else:
            raise ValueError(f"unknown score {score!r}; use 'bic', 'bdeu' or an instance")
    else:
        scorer = score
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    n = data.n_variables
    t0 = time.perf_counter()
    if start_edges is not None and not is_acyclic(n, list(start_edges)):
        raise ValueError("start_edges must form a DAG")

    best_global_edges: set[tuple[int, int]] | None = None
    best_global_score = -np.inf
    total_iterations = 0
    total_evaluated = 0
    score_trace: list[float] = []
    restarts_used = 0

    edges: set[tuple[int, int]] = set(start_edges or [])

    for attempt in range(random_restarts + 1):
        if attempt > 0:
            restarts_used += 1
            edges = set(best_global_edges or set())
            _perturb(edges, n, restart_edges, max_parents, rng)

        parents: list[set[int]] = [set() for _ in range(n)]
        for u, v in edges:
            parents[v].add(u)
        current = sum(scorer.local_score(i, tuple(parents[i])) for i in range(n))
        tabu: list[tuple[str, int, int]] = []

        for _ in range(max_iterations):
            total_iterations += 1
            children = build_children(n, edges)
            best_move: tuple[str, int, int] | None = None
            best_delta = 1e-10  # strictly-improving moves only

            for u in range(n):
                for v in range(n):
                    if u == v:
                        continue
                    if (u, v) in edges:
                        # delete u -> v
                        if ("add", u, v) not in tabu:
                            delta = scorer.local_score(
                                v, tuple(parents[v] - {u})
                            ) - scorer.local_score(v, tuple(parents[v]))
                            total_evaluated += 1
                            if delta > best_delta:
                                best_delta, best_move = delta, ("delete", u, v)
                        # reverse u -> v  (becomes v -> u)
                        if ("reverse", v, u) not in tabu and (
                            max_parents is None or len(parents[u]) < max_parents
                        ):
                            children_wo = build_children(n, edges - {(u, v)})
                            if not _creates_cycle(n, children_wo, v, u):
                                delta = (
                                    scorer.local_score(v, tuple(parents[v] - {u}))
                                    - scorer.local_score(v, tuple(parents[v]))
                                    + scorer.local_score(u, tuple(parents[u] | {v}))
                                    - scorer.local_score(u, tuple(parents[u]))
                                )
                                total_evaluated += 1
                                if delta > best_delta:
                                    best_delta, best_move = delta, ("reverse", u, v)
                    elif (v, u) not in edges:
                        # add u -> v
                        if ("delete", u, v) in tabu:
                            continue
                        if max_parents is not None and len(parents[v]) >= max_parents:
                            continue
                        if _creates_cycle(n, children, u, v):
                            continue
                        delta = scorer.local_score(
                            v, tuple(parents[v] | {u})
                        ) - scorer.local_score(v, tuple(parents[v]))
                        total_evaluated += 1
                        if delta > best_delta:
                            best_delta, best_move = delta, ("add", u, v)

            if best_move is None:
                break
            kind, u, v = best_move
            if kind == "add":
                edges.add((u, v))
                parents[v].add(u)
            elif kind == "delete":
                edges.discard((u, v))
                parents[v].discard(u)
            else:  # reverse
                edges.discard((u, v))
                parents[v].discard(u)
                edges.add((v, u))
                parents[u].add(v)
            current += best_delta
            score_trace.append(current)
            tabu.append(best_move)
            if len(tabu) > tabu_length:
                tabu.pop(0)

        if current > best_global_score:
            best_global_score = current
            best_global_edges = set(edges)

    assert best_global_edges is not None
    return HillClimbResult(
        edges=sorted(best_global_edges),
        score=float(best_global_score),
        n_iterations=total_iterations,
        n_moves_evaluated=total_evaluated,
        n_restarts_used=restarts_used,
        elapsed_s=time.perf_counter() - t0,
        score_trace=score_trace,
    )


def _perturb(
    edges: set[tuple[int, int]],
    n: int,
    k: int,
    max_parents: int | None,
    rng: np.random.Generator,
) -> None:
    """Apply ``k`` random legal additions/removals in place."""
    parents: list[set[int]] = [set() for _ in range(n)]
    for u, v in edges:
        parents[v].add(u)
    for _ in range(k):
        if edges and rng.random() < 0.5:
            u, v = list(edges)[int(rng.integers(len(edges)))]
            edges.discard((u, v))
            parents[v].discard(u)
            continue
        for _attempt in range(50):
            u, v = (int(x) for x in rng.choice(n, size=2, replace=False))
            if (u, v) in edges or (v, u) in edges:
                continue
            if max_parents is not None and len(parents[v]) >= max_parents:
                continue
            if _creates_cycle(n, build_children(n, edges), u, v):
                continue
            edges.add((u, v))
            parents[v].add(u)
            break
