"""Score-based structure learning (the paper's related-work comparator)."""

from .hillclimb import HillClimbResult, hill_climb
from .scores import AICScore, BDeuScore, BICScore, DecomposableScore, LogLikelihoodScore

__all__ = [
    "hill_climb",
    "HillClimbResult",
    "DecomposableScore",
    "BICScore",
    "AICScore",
    "BDeuScore",
    "LogLikelihoodScore",
]
