"""Skeleton phase of PC-stable / Fast-BNS (Algorithm 1 of the paper).

One engine drives every sequential variant through three switches that map
one-to-one onto the paper's optimisations:

``group_endpoints``
    ``True`` (Fast-BNS): one work item per undirected edge, conditioning
    sets drawn from side 1 (``adj(u) \\ {v}``) then side 2
    (``adj(v) \\ {u}``); side 2 is skipped once side 1 accepts independence.
    ``False`` (original PC-stable work decomposition): two independent work
    items per edge, one per direction, neither aware of the other's outcome
    until the end of the depth (the deferred-removal semantics a
    parallel-safe implementation without grouping must use — this is what
    the paper's ``S_grouping = 2 / (2 - rho_d)`` analysis assumes).

``gs``
    Group size: how many CI tests a work item executes before re-deciding.
    All ``gs`` tests of a group run before the decision, so ``gs > 1``
    introduces redundant tests (the Fig. 4 trade-off) while letting the
    tester reuse the encoded X/Y columns across the group.

``onthefly``
    ``True``: conditioning sets are regenerated from the progress counter by
    combination unranking (no subset storage).  ``False``: every edge's full
    subset list is materialised up front (the memory-hungry baseline);
    results are identical, only memory/bookkeeping differ and are reported
    in :class:`~repro.core.result.SkeletonStats`.

Both settings of every switch produce the *same* skeleton and separating
sets (property-tested), because the decision logic — first accepting set in
side-1-then-side-2 order wins — is shared.

Edge removals are applied at the end of each depth.  Within a depth this is
behaviourally identical to immediate removal (conditioning sets come from
the depth's frozen snapshot and every edge is an independent work item) and
it makes the engine's output invariant to work-item scheduling order, which
is exactly the property the parallel backends rely on.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from ..citests.base import ConditionalIndependenceTest
from ..graphs.undirected import UndirectedGraph
from .edges import EdgeTask
from .result import DepthStats, SkeletonStats
from .sepsets import SepSetStore
from .trace import TestRecord, TraceRecorder
from .workpool import WorkPool

__all__ = ["learn_skeleton", "build_depth_tasks", "depth_has_work", "process_edge_group"]


def build_depth_tasks(
    graph: UndirectedGraph,
    depth: int,
    group_endpoints: bool,
) -> list[EdgeTask]:
    """Work items of one depth from the graph's adjacency snapshot.

    Grouped mode yields one task per edge; ungrouped mode yields one task
    per *direction* (side 2 empty / side 1 empty respectively) except at
    depth 0 where the marginal test is unique either way.
    """
    snapshot = graph.adjacency_snapshot()
    tasks: list[EdgeTask] = []
    for u, v in sorted(graph.edges()):
        side1 = tuple(sorted(snapshot[u] - {v}))
        side2 = tuple(sorted(snapshot[v] - {u}))
        if group_endpoints or depth == 0:
            task = EdgeTask(u, v, side1, side2, depth)
            if task.total_tests > 0:
                tasks.append(task)
        else:
            t1 = EdgeTask(u, v, side1, (), depth)
            if t1.total_tests > 0:
                tasks.append(t1)
            t2 = EdgeTask(u, v, (), side2, depth)
            if t2.total_tests > 0:
                tasks.append(t2)
    return tasks


def depth_has_work(graph: UndirectedGraph, depth: int) -> bool:
    """Continuation check of Algorithm 1 line 20: some pair ``(u, v)`` must
    still satisfy ``|adj(u) \\ {v}| >= depth`` (either direction)."""
    for u, v in graph.edges():
        if graph.degree(u) - 1 >= depth or graph.degree(v) - 1 >= depth:
            return True
    return False


def process_edge_group(
    task: EdgeTask,
    tester: ConditionalIndependenceTest,
    gs: int,
    sets_override: Sequence[tuple[int, ...]] | None = None,
) -> tuple[int, tuple[int, ...] | None, list[TestRecord]]:
    """Execute the task's next group of ``gs`` CI tests.

    Returns ``(n_executed, accepting_set_or_None, test_records)`` and
    advances the task's progress.  ``sets_override`` supplies pre-
    materialised conditioning sets for the ``onthefly=False`` baseline.
    """
    if sets_override is not None:
        start = task.progress
        group_sets = list(sets_override[start : start + gs])
    else:
        group_sets = task.next_group(gs)
    if not group_sets:
        return 0, None, []
    results = tester.test_group(task.u, task.v, group_sets)
    task.advance(len(group_sets))
    accepting: tuple[int, ...] | None = None
    records: list[TestRecord] = []
    dataset = getattr(tester, "dataset", None)
    m = dataset.n_samples if dataset is not None else 1
    for res in results:
        if dataset is not None:
            nz = 1
            for var in res.s:
                nz *= dataset.arity(var)
            cells = dataset.arity(task.u) * dataset.arity(task.v) * min(nz, max(m, 1))
        else:
            cells = 0
        records.append(
            TestRecord(
                depth=task.depth,
                m=m,
                cells=cells,
                independent=res.independent,
            )
        )
        if accepting is None and res.independent:
            accepting = res.s
    return len(group_sets), accepting, records


def learn_skeleton(
    tester: ConditionalIndependenceTest,
    n_nodes: int,
    gs: int = 1,
    group_endpoints: bool = True,
    onthefly: bool = True,
    max_depth: int | None = None,
    recorder: TraceRecorder | None = None,
) -> tuple[UndirectedGraph, SepSetStore, SkeletonStats]:
    """Learn the skeleton with the sequential engine.

    Parameters are documented in the module docstring; ``max_depth`` caps
    the conditioning-set size (``None`` runs to the natural PC-stable
    termination).
    """
    if gs < 1:
        raise ValueError("gs must be >= 1")
    if n_nodes < 0:
        raise ValueError("n_nodes must be >= 0")

    t_start = time.perf_counter()
    graph = UndirectedGraph.complete(n_nodes)
    sepsets = SepSetStore()
    stats = SkeletonStats()

    depth = 0
    while True:
        if max_depth is not None and depth > max_depth:
            break
        if depth > 0 and not depth_has_work(graph, depth):
            break
        if graph.n_edges == 0:
            break

        d_stats = DepthStats(depth=depth, n_edges_start=graph.n_edges)
        t_depth = time.perf_counter()
        if recorder is not None:
            recorder.begin_depth(depth, graph.n_edges)

        tasks = build_depth_tasks(graph, depth, group_endpoints)
        materialised: dict[int, list[tuple[int, ...]]] | None = None
        if not onthefly:
            materialised = {}
            for idx, task in enumerate(tasks):
                sets = task.materialised_sets()
                materialised[idx] = sets
                stats.materialised_set_ints += sum(len(s) for s in sets)

        pool = WorkPool()
        task_index: dict[int, int] = {}
        for idx in range(len(tasks) - 1, -1, -1):
            pool.push(tasks[idx])
            task_index[id(tasks[idx])] = idx

        # first accepting conditioning set per edge, in work-item order:
        # (edge, item_rank) -> sepset; applied at depth end.
        found: dict[tuple[int, int], list[tuple[int, tuple[int, ...]]]] = {}
        item_rank: dict[int, int] = {id(t): i for i, t in enumerate(tasks)}

        while pool:
            task = pool.pop()
            override = materialised[task_index[id(task)]] if materialised is not None else None
            n_exec, accepting, records = process_edge_group(task, tester, gs, override)
            if n_exec == 0:
                continue
            d_stats.n_tests += n_exec
            d_stats.n_groups += 1
            if accepting is not None:
                # Tests executed after the accepting one (within this group)
                # are the gs redundancy of Fig. 4.
                first_idx = next(i for i, r in enumerate(records) if r.independent)
                d_stats.n_redundant_tests += n_exec - 1 - first_idx
            if recorder is not None:
                recorder.record_group(task.u, task.v, task.total_tests, records)
            if accepting is not None:
                found.setdefault((task.u, task.v), []).append(
                    (item_rank[id(task)], accepting)
                )
                continue  # edge work item finished (independence accepted)
            if not task.done:
                pool.push(task)

        # Apply removals (deferred; see module docstring).
        for (u, v), hits in found.items():
            hits.sort(key=lambda pair: pair[0])
            sepsets.record(u, v, hits[0][1])
            graph.remove_edge(u, v)
            if recorder is not None:
                recorder.mark_removed(u, v)
        d_stats.n_edges_removed = len(found)
        d_stats.elapsed_s = time.perf_counter() - t_depth
        stats.depths.append(d_stats)
        stats.n_tests += d_stats.n_tests
        stats.n_redundant_tests += d_stats.n_redundant_tests
        stats.n_groups += d_stats.n_groups
        stats.pool_pushes += pool.n_pushes
        stats.pool_pops += pool.n_pops
        if recorder is not None:
            recorder.end_depth(d_stats.n_edges_removed)

        depth += 1

    stats.elapsed_s = time.perf_counter() - t_start
    counters = getattr(tester, "counters", None)
    if counters is not None:
        stats.counters = counters.snapshot()
    return graph, sepsets, stats
