"""Per-edge work items for the skeleton phase.

An :class:`EdgeTask` bundles everything a thread needs to process one edge
at the current depth: the two endpoints, the *snapshot* candidate sets of
both endpoints (PC-stable order independence), the combination counts on
each side and the current progress ``r``.  Conditioning sets are produced by
unranking ``r`` on demand (paper Sec. IV-C) so the work pool holds no subset
lists — the task *is* the paper's ``(edge, progress)`` pool entry.

The global rank ``r`` spans side 1 (subsets of ``adj(G, Vi) \\ {Vj}``) first
and then side 2 (subsets of ``adj(G, Vj) \\ {Vi}``) — the "grouping of edges
with the same endpoints" optimisation: side 2 is reached only if side 1
never accepted independence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import comb

from .combinadic import iter_combination_indices, unrank_combination

__all__ = ["EdgeTask"]


@dataclass
class EdgeTask:
    """Work-pool entry: one undirected edge and its CI-test progress.

    Attributes
    ----------
    u, v:
        Endpoints, ``u < v``.
    side1, side2:
        Sorted candidate conditioning variables from the depth's adjacency
        snapshot: ``adj(u) \\ {v}`` and ``adj(v) \\ {u}``.
    depth:
        Conditioning-set size ``d`` at this depth.
    progress:
        Global rank of the next CI test to perform (``r`` in the paper).
    """

    u: int
    v: int
    side1: tuple[int, ...]
    side2: tuple[int, ...]
    depth: int
    progress: int = 0
    c1: int = field(init=False)
    c2: int = field(init=False)

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError("self-loop edge task")
        if self.u > self.v:
            raise ValueError("EdgeTask endpoints must satisfy u < v")
        if self.depth == 0:
            # Depth 0 needs exactly one marginal test I(u, v | {}) per edge
            # (paper Sec. IV-B: "only one CI test is required"); without this
            # both sides would contribute the same empty set twice.
            self.c1 = 1
            self.c2 = 0
        else:
            self.c1 = comb(len(self.side1), self.depth)
            self.c2 = comb(len(self.side2), self.depth)

    # ------------------------------------------------------------------ #
    @property
    def total_tests(self) -> int:
        """Upper bound ``C(|a1|, d) + C(|a2|, d)`` of CI tests for the edge
        (paper Sec. IV-D)."""
        return self.c1 + self.c2

    @property
    def remaining(self) -> int:
        return self.total_tests - self.progress

    @property
    def done(self) -> bool:
        return self.progress >= self.total_tests

    def conditioning_set(self, r: int) -> tuple[int, ...]:
        """The ``r``-th conditioning set in global (side1-then-side2) order."""
        if not 0 <= r < self.total_tests:
            raise ValueError(f"rank {r} out of range [0, {self.total_tests})")
        if r < self.c1:
            idx = unrank_combination(len(self.side1), self.depth, r)
            return tuple(self.side1[i] for i in idx)
        idx = unrank_combination(len(self.side2), self.depth, r - self.c1)
        return tuple(self.side2[i] for i in idx)

    def next_group(self, gs: int) -> list[tuple[int, ...]]:
        """The next ``gs`` conditioning sets from ``progress`` (fewer when the
        edge is nearly exhausted).  Uses the successor iterator within each
        side so only the first member of each side segment pays the
        unranking cost."""
        if gs < 1:
            raise ValueError("group size must be >= 1")
        start = self.progress
        count = min(gs, self.total_tests - start)
        out: list[tuple[int, ...]] = []
        # Side 1 segment
        if start < self.c1:
            take = min(count, self.c1 - start)
            for idx in iter_combination_indices(len(self.side1), self.depth, start, take):
                out.append(tuple(self.side1[i] for i in idx))
            start += take
            count -= take
        # Side 2 segment
        if count > 0:
            for idx in iter_combination_indices(
                len(self.side2), self.depth, start - self.c1, count
            ):
                out.append(tuple(self.side2[i] for i in idx))
        return out

    def advance(self, n: int) -> None:
        self.progress += n
        if self.progress > self.total_tests:
            raise ValueError("progress advanced past the last CI test")

    def materialised_sets(self) -> list[tuple[int, ...]]:
        """All conditioning sets of the edge, fully enumerated.

        Used by the memory-hungry baseline that the on-the-fly optimisation
        replaces (``onthefly=False`` ablation).
        """
        return [self.conditioning_set(r) for r in range(self.total_tests)]
