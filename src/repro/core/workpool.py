"""Dynamic work pool (paper Sec. IV-B).

A LIFO stack of :class:`~repro.core.edges.EdgeTask` items.  At each depth
every current edge is pushed with zero progress; schedulers repeatedly pop
edges, process the next group of ``gs`` CI tests, and push the edge back
unless it finished (independence accepted, or all conditioning sets
exhausted).  The pool therefore *monitors the processing progress of every
edge*, terminating completed edges immediately — the mechanism behind both
the load balancing and the early-termination savings.
"""

from __future__ import annotations

from .edges import EdgeTask

__all__ = ["WorkPool"]


class WorkPool:
    """LIFO pool of edge tasks with progress monitoring."""

    __slots__ = ("_stack", "_pushes", "_pops", "_peak")

    def __init__(self) -> None:
        self._stack: list[EdgeTask] = []
        self._pushes = 0
        self._pops = 0
        self._peak = 0

    def push(self, task: EdgeTask) -> None:
        self._stack.append(task)
        self._pushes += 1
        if len(self._stack) > self._peak:
            self._peak = len(self._stack)

    def pop(self) -> EdgeTask:
        if not self._stack:
            raise IndexError("pop from an empty work pool")
        self._pops += 1
        return self._stack.pop()

    def pop_many(self, k: int) -> list[EdgeTask]:
        """Pop up to ``k`` tasks (the paper pops one per thread per round)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        out: list[EdgeTask] = []
        while self._stack and len(out) < k:
            out.append(self.pop())
        return out

    def __len__(self) -> int:
        return len(self._stack)

    def __bool__(self) -> bool:
        return bool(self._stack)

    @property
    def n_pushes(self) -> int:
        return self._pushes

    @property
    def n_pops(self) -> int:
        return self._pops

    @property
    def peak_size(self) -> int:
        """High-water mark of live tasks — together with the live ``len()``
        this is the pool-pressure signal the adaptive group scheduler
        (:mod:`repro.parallel.adaptive`) reads: a pool draining below the
        worker count marks the depth's straggler tail."""
        return self._peak
