"""Execution-trace capture for the multi-core simulator.

The simulator (:mod:`repro.simcpu`) replays *exactly* the CI tests the real
algorithm executed — same edges, same per-test table sizes, same early
terminations — under different scheduling policies.  The engine emits one
:class:`TestRecord` per executed test, grouped into the gs-sized groups the
algorithm actually formed, nested in per-edge and per-depth structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TestRecord", "GroupRecord", "EdgeWorkRecord", "DepthTrace", "TraceRecorder"]


@dataclass(frozen=True)
class TestRecord:
    """One executed CI test: enough information to cost it later."""

    depth: int
    m: int
    cells: int
    independent: bool


@dataclass
class GroupRecord:
    """One gs-group executed for an edge (the unit a thread processes)."""

    tests: list[TestRecord] = field(default_factory=list)


@dataclass
class EdgeWorkRecord:
    """All work executed for one edge at one depth."""

    u: int
    v: int
    total_possible: int
    groups: list[GroupRecord] = field(default_factory=list)
    removed: bool = False

    @property
    def n_tests(self) -> int:
        return sum(len(g.tests) for g in self.groups)


@dataclass
class DepthTrace:
    depth: int
    n_edges_start: int
    edges: list[EdgeWorkRecord] = field(default_factory=list)
    n_edges_removed: int = 0


class TraceRecorder:
    """Collects the full execution trace of a skeleton run."""

    def __init__(self) -> None:
        self.depths: list[DepthTrace] = []
        self._current_depth: DepthTrace | None = None
        self._current_edges: dict[tuple[int, int], EdgeWorkRecord] = {}

    # hooks called by the engine ---------------------------------------- #
    def begin_depth(self, depth: int, n_edges: int) -> None:
        self._current_depth = DepthTrace(depth=depth, n_edges_start=n_edges)
        self._current_edges = {}

    def record_group(
        self,
        u: int,
        v: int,
        total_possible: int,
        tests: list[TestRecord],
    ) -> None:
        if self._current_depth is None:
            raise RuntimeError("record_group before begin_depth")
        key = (u, v)
        rec = self._current_edges.get(key)
        if rec is None:
            rec = EdgeWorkRecord(u=u, v=v, total_possible=total_possible)
            self._current_edges[key] = rec
            self._current_depth.edges.append(rec)
        rec.groups.append(GroupRecord(tests=list(tests)))

    def mark_removed(self, u: int, v: int) -> None:
        rec = self._current_edges.get((u, v))
        if rec is not None:
            rec.removed = True

    def end_depth(self, n_removed: int) -> None:
        if self._current_depth is None:
            raise RuntimeError("end_depth before begin_depth")
        self._current_depth.n_edges_removed = n_removed
        self.depths.append(self._current_depth)
        self._current_depth = None

    # convenience -------------------------------------------------------- #
    @property
    def n_tests(self) -> int:
        return sum(e.n_tests for d in self.depths for e in d.edges)
