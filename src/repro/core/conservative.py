"""Conservative and majority-rule v-structure identification.

Standard PC-stable orients the unshielded triple ``u - k - v`` as a
collider iff ``k`` is missing from the single recorded SepSet(u, v).  The
order-independent variants of Colombo & Maathuis (the PC-stable paper, the
paper's ref [11]) re-examine the triple against *all* separating subsets
drawn from the adjacencies of ``u`` and ``v``:

* **conservative** (CPC): collider iff ``k`` appears in *no* separating
  set; non-collider iff in *all*; otherwise the triple is *ambiguous* and
  left unoriented.
* **majority** (MPC): collider iff ``k`` appears in at most half of the
  separating sets (ambiguous only when exactly half).

Both decisions cost extra CI tests — performed here through the same
tester (and therefore counted by the same counters) as the skeleton phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from ..citests.base import ConditionalIndependenceTest
from ..graphs.pdag import PDAG
from ..graphs.undirected import UndirectedGraph
from .orientation import apply_meek_rules
from .sepsets import SepSetStore

__all__ = ["TripleClassification", "classify_triples", "orient_skeleton_robust"]


@dataclass
class TripleClassification:
    """Outcome of re-testing all unshielded triples."""

    colliders: set[tuple[int, int, int]] = field(default_factory=set)  # (u, k, v), u < v
    non_colliders: set[tuple[int, int, int]] = field(default_factory=set)
    ambiguous: set[tuple[int, int, int]] = field(default_factory=set)
    n_extra_tests: int = 0


def _separating_sets(
    tester: ConditionalIndependenceTest,
    skeleton: UndirectedGraph,
    u: int,
    v: int,
    max_size: int | None,
) -> tuple[list[frozenset[int]], int]:
    """All subsets of adj(u)\\{v} and adj(v)\\{u} that separate u from v."""
    found: list[frozenset[int]] = []
    seen: set[frozenset[int]] = set()
    n_tests = 0
    for base in (skeleton.neighbors(u) - {v}, skeleton.neighbors(v) - {u}):
        base = sorted(base)
        top = len(base) if max_size is None else min(max_size, len(base))
        for size in range(top + 1):
            for subset in combinations(base, size):
                key = frozenset(subset)
                if key in seen:
                    continue
                seen.add(key)
                res = tester.test(u, v, subset)
                n_tests += 1
                if res.independent:
                    found.append(key)
    return found, n_tests


def classify_triples(
    tester: ConditionalIndependenceTest,
    skeleton: UndirectedGraph,
    sepsets: SepSetStore,
    rule: str = "conservative",
    max_sepset_size: int | None = None,
) -> TripleClassification:
    """Classify every unshielded triple of the skeleton under CPC/MPC."""
    if rule not in ("conservative", "majority"):
        raise ValueError("rule must be 'conservative' or 'majority'")
    out = TripleClassification()
    pair_cache: dict[tuple[int, int], list[frozenset[int]]] = {}
    for k in range(skeleton.n_nodes):
        neighbors = sorted(skeleton.neighbors(k))
        for i in range(len(neighbors)):
            for j in range(i + 1, len(neighbors)):
                u, v = neighbors[i], neighbors[j]
                if skeleton.has_edge(u, v):
                    continue
                pair = (u, v)
                if pair not in pair_cache:
                    sets, n = _separating_sets(tester, skeleton, u, v, max_sepset_size)
                    if not sets:
                        # Fall back to the skeleton phase's recorded set;
                        # without any separating evidence the triple is
                        # undecidable and treated as ambiguous.
                        recorded = sepsets.get(u, v)
                        sets = [frozenset(recorded)] if recorded is not None else []
                    pair_cache[pair] = sets
                    out.n_extra_tests += n
                sets = pair_cache[pair]
                triple = (u, k, v)
                if not sets:
                    out.ambiguous.add(triple)
                    continue
                containing = sum(1 for s in sets if k in s)
                if rule == "conservative":
                    if containing == 0:
                        out.colliders.add(triple)
                    elif containing == len(sets):
                        out.non_colliders.add(triple)
                    else:
                        out.ambiguous.add(triple)
                else:  # majority
                    fraction = containing / len(sets)
                    if fraction < 0.5:
                        out.colliders.add(triple)
                    elif fraction > 0.5:
                        out.non_colliders.add(triple)
                    else:
                        out.ambiguous.add(triple)
    return out


def orient_skeleton_robust(
    tester: ConditionalIndependenceTest,
    skeleton: UndirectedGraph,
    sepsets: SepSetStore,
    rule: str = "conservative",
    max_sepset_size: int | None = None,
    apply_r4: bool = False,
) -> tuple[PDAG, TripleClassification]:
    """Orientation phase using CPC/MPC triple classification.

    Only triples classified as colliders receive arrows; ambiguous triples
    stay undirected (the conservative guarantee).  Meek rules close the
    result as usual.
    """
    classification = classify_triples(
        tester, skeleton, sepsets, rule=rule, max_sepset_size=max_sepset_size
    )
    pdag = PDAG.from_skeleton(skeleton)
    for u, k, v in sorted(classification.colliders):
        if pdag.has_undirected(u, k):
            pdag.orient(u, k)
        if pdag.has_undirected(v, k):
            pdag.orient(v, k)
    apply_meek_rules(pdag, apply_r4=apply_r4)
    return pdag, classification
