"""Object-oriented Fast-BNS front-end.

:class:`FastBNS` holds the configuration (significance level, group size,
parallelism) and exposes scikit-learn-style ``fit``.  It is a thin veneer
over :func:`repro.core.learn.learn_structure` for users who prefer a
configured-estimator workflow; the functional API remains the primary one.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..datasets.dataset import DiscreteDataset
from .learn import learn_structure
from .result import LearnResult
from .trace import TraceRecorder

__all__ = ["FastBNS"]


class FastBNS:
    """Configured Fast-BNS structure learner.

    Example
    -------
    >>> from repro import FastBNS
    >>> from repro.networks.classic import sprinkler
    >>> from repro.datasets.sampling import forward_sample
    >>> data = forward_sample(sprinkler(), 5000, rng=0)
    >>> result = FastBNS(alpha=0.05, gs=4).fit(data)
    >>> sorted(result.skeleton.edges())  # doctest: +SKIP
    """

    def __init__(
        self,
        alpha: float = 0.05,
        gs: int = 1,
        test: str = "g2",
        n_jobs: int = 1,
        parallelism: str = "ci",
        backend: str = "process",
        max_depth: int | None = None,
        dof_adjust: str = "structural",
        apply_r4: bool = False,
    ) -> None:
        self.alpha = alpha
        self.gs = gs
        self.test = test
        self.n_jobs = n_jobs
        self.parallelism = parallelism
        self.backend = backend
        self.max_depth = max_depth
        self.dof_adjust = dof_adjust
        self.apply_r4 = apply_r4
        self.result_: LearnResult | None = None

    def fit(
        self,
        data: DiscreteDataset | np.ndarray,
        arities: Sequence[int] | None = None,
        recorder: TraceRecorder | None = None,
    ) -> LearnResult:
        """Run structure learning; stores and returns the result."""
        self.result_ = learn_structure(
            data,
            arities=arities,
            method="fast-bns",
            test=self.test,
            alpha=self.alpha,
            gs=self.gs,
            n_jobs=self.n_jobs,
            parallelism=self.parallelism,
            backend=self.backend,
            max_depth=self.max_depth,
            dof_adjust=self.dof_adjust,
            apply_r4=self.apply_r4,
            recorder=recorder,
        )
        return self.result_

    @property
    def cpdag(self):
        if self.result_ is None:
            raise RuntimeError("call fit() first")
        return self.result_.cpdag

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FastBNS(alpha={self.alpha}, gs={self.gs}, test={self.test!r}, "
            f"n_jobs={self.n_jobs}, parallelism={self.parallelism!r})"
        )
