"""Result and statistics records for structure-learning runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from ..citests.base import CITestCounters
from ..graphs.pdag import PDAG
from ..graphs.undirected import UndirectedGraph
from .sepsets import SepSetStore

__all__ = ["DepthStats", "SkeletonStats", "LearnResult"]


@dataclass
class DepthStats:
    """Per-depth bookkeeping (drives the paper's rho_d deletion ratios and
    the per-depth workload analysis of Sec. IV-D)."""

    depth: int
    n_edges_start: int = 0
    n_edges_removed: int = 0
    n_tests: int = 0
    n_redundant_tests: int = 0
    n_groups: int = 0
    elapsed_s: float = 0.0
    #: Scheduled group sizes -> group counts at this depth (populated by
    #: the CI-level scheduler; shows what ``gs="auto"`` actually chose).
    gs_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def deletion_ratio(self) -> float:
        """``rho_d`` of Sec. IV-D: fraction of the depth's edges removed."""
        return self.n_edges_removed / self.n_edges_start if self.n_edges_start else 0.0


@dataclass
class SkeletonStats:
    """Aggregate skeleton-phase statistics."""

    depths: list[DepthStats] = field(default_factory=list)
    n_tests: int = 0
    n_redundant_tests: int = 0
    n_groups: int = 0
    pool_pushes: int = 0
    pool_pops: int = 0
    pool_peak: int = 0
    materialised_set_ints: int = 0
    elapsed_s: float = 0.0
    counters: CITestCounters | None = None

    @property
    def max_depth(self) -> int:
        return self.depths[-1].depth if self.depths else -1

    def tests_per_depth(self) -> dict[int, int]:
        return {d.depth: d.n_tests for d in self.depths}

    def deletion_ratios(self) -> dict[int, float]:
        return {d.depth: d.deletion_ratio for d in self.depths}


@dataclass
class LearnResult:
    """Complete output of :func:`repro.core.learn.learn_structure`.

    Attributes
    ----------
    cpdag:
        The oriented result (v-structures + Meek closure).
    skeleton:
        The undirected graph after the CI-test phase.
    sepsets:
        Separating sets recorded during skeleton learning.
    stats:
        Work statistics (CI-test counts, per-depth breakdown, timings).
    names:
        Variable names, parallel to node indices.
    elapsed:
        Per-phase wall-clock seconds: keys ``skeleton``, ``orientation``,
        ``total``.
    """

    cpdag: PDAG
    skeleton: UndirectedGraph
    sepsets: SepSetStore
    stats: SkeletonStats
    names: tuple[str, ...]
    elapsed: Mapping[str, float]

    @property
    def n_ci_tests(self) -> int:
        return self.stats.n_tests

    def edge_names(self) -> list[tuple[str, str]]:
        return [(self.names[u], self.names[v]) for u, v in self.skeleton.edges()]

    def directed_edge_names(self) -> list[tuple[str, str]]:
        return [(self.names[u], self.names[v]) for u, v in self.cpdag.directed_edges()]
