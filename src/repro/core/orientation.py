"""Steps 2 and 3 of PC-stable: v-structure identification and Meek rules.

These steps take a small fraction of the runtime (the paper reports step 1
at >90%), but they are required to produce the CPDAG output and to validate
correctness against ground truth.

* **V-structures** (step 2): for every unshielded triple ``u - k - v``
  (``u`` and ``v`` non-adjacent), orient ``u -> k <- v`` iff
  ``k not in SepSet(u, v)``.
* **Meek rules** (step 3): close the orientation under Meek's rules R1-R3
  (R4 participates only when background knowledge introduces extra arrows;
  it is provided behind ``apply_r4`` for that use case).
"""

from __future__ import annotations

from ..graphs.pdag import PDAG
from ..graphs.undirected import UndirectedGraph
from .sepsets import SepSetStore

__all__ = ["orient_v_structures", "apply_meek_rules", "orient_skeleton"]


def orient_v_structures(skeleton: UndirectedGraph, sepsets: SepSetStore) -> PDAG:
    """Build a PDAG from the skeleton with v-structure arrows oriented.

    Unshielded triples are scanned in sorted order for determinism.
    Conflicting double-orientations (a node pulled into two incompatible
    v-structures) are resolved first-come-first-served: an arrow is placed
    only while the target edge is still undirected, matching pcalg's
    conservative default behaviour.
    """
    pdag = PDAG.from_skeleton(skeleton)
    n = skeleton.n_nodes
    for k in range(n):
        neighbors = sorted(skeleton.neighbors(k))
        for i in range(len(neighbors)):
            for j in range(i + 1, len(neighbors)):
                u, v = neighbors[i], neighbors[j]
                if skeleton.has_edge(u, v):
                    continue  # shielded
                if sepsets.separates_with(u, v, k):
                    continue  # k separates u, v: no collider
                if not sepsets.contains(u, v):
                    # Pair never separated (still adjacent pairs cannot form
                    # the triple; this happens only with inconsistent input).
                    continue
                if pdag.has_undirected(u, k):
                    pdag.orient(u, k)
                if pdag.has_undirected(v, k):
                    pdag.orient(v, k)
    return pdag


def _rule1(pdag: PDAG) -> bool:
    """R1: ``i -> j`` and ``j - k`` with ``i, k`` non-adjacent  =>  ``j -> k``."""
    changed = False
    for i, j in list(pdag.directed_edges()):
        for k in list(pdag.undirected_neighbors(j)):
            if k != i and not pdag.adjacent(i, k):
                pdag.orient(j, k)
                changed = True
    return changed


def _rule2(pdag: PDAG) -> bool:
    """R2: ``i -> k -> j`` and ``i - j``  =>  ``i -> j``."""
    changed = False
    for i in range(pdag.n_nodes):
        for j in list(pdag.undirected_neighbors(i)):
            # directed path of length two i -> k -> j ?
            if pdag.children(i) & pdag.parents(j):
                if pdag.has_undirected(i, j):
                    pdag.orient(i, j)
                    changed = True
    return changed


def _rule3(pdag: PDAG) -> bool:
    """R3: ``i - j``, ``i - k``, ``i - l``, ``k -> j``, ``l -> j``, ``k, l``
    non-adjacent  =>  ``i -> j``."""
    changed = False
    for i in range(pdag.n_nodes):
        for j in list(pdag.undirected_neighbors(i)):
            if not pdag.has_undirected(i, j):
                continue
            candidates = [
                k
                for k in pdag.undirected_neighbors(i)
                if k != j and pdag.has_directed(k, j)
            ]
            done = False
            for a in range(len(candidates)):
                for b in range(a + 1, len(candidates)):
                    if not pdag.adjacent(candidates[a], candidates[b]):
                        pdag.orient(i, j)
                        changed = True
                        done = True
                        break
                if done:
                    break
    return changed


def _rule4(pdag: PDAG) -> bool:
    """R4 (background-knowledge closure): ``i - j``, ``i - k``, ``k -> l``,
    ``l -> j``, ``k, j`` non-adjacent  =>  ``i -> j``."""
    changed = False
    for i in range(pdag.n_nodes):
        for j in list(pdag.undirected_neighbors(i)):
            if not pdag.has_undirected(i, j):
                continue
            done = False
            for k in list(pdag.undirected_neighbors(i)):
                if k == j or pdag.adjacent(k, j):
                    continue
                for l in pdag.children(k):
                    if pdag.has_directed(l, j) and pdag.adjacent(i, l):
                        pdag.orient(i, j)
                        changed = True
                        done = True
                        break
                if done:
                    break
    return changed


def apply_meek_rules(pdag: PDAG, apply_r4: bool = False) -> PDAG:
    """Apply Meek rules until fixpoint, in place; returns the same object."""
    while True:
        changed = _rule1(pdag)
        changed |= _rule2(pdag)
        changed |= _rule3(pdag)
        if apply_r4:
            changed |= _rule4(pdag)
        if not changed:
            return pdag


def orient_skeleton(
    skeleton: UndirectedGraph,
    sepsets: SepSetStore,
    apply_r4: bool = False,
) -> PDAG:
    """Full orientation phase: v-structures followed by the Meek closure."""
    pdag = orient_v_structures(skeleton, sepsets)
    return apply_meek_rules(pdag, apply_r4=apply_r4)
