"""Markov-blanket discovery: Grow-Shrink and IAMB.

The paper's related work (refs [31], [32]) covers local constraint-based
discovery: instead of the global skeleton, find each variable's Markov
blanket MB(X) — parents, children and spouses — the minimal set rendering
X independent of everything else.  Both algorithms run on the same CI-test
substrate as PC-stable:

* **Grow-Shrink** (Margaritis & Thrun): grow a candidate blanket by adding
  any variable dependent on X given the current candidate set, then shrink
  by removing any member independent of X given the rest.
* **IAMB** (Tsamardinos et al.): the grow phase adds the *most* dependent
  variable each round (by the test statistic), which keeps the candidate
  set smaller and reduces test count; same shrink phase.

With a d-separation oracle both provably return the exact blanket; on data
they trade accuracy for locality (no global skeleton needed), which is the
standard approach for feature selection (ref [32]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..citests.base import ConditionalIndependenceTest

__all__ = ["MarkovBlanketResult", "grow_shrink", "iamb", "true_markov_blanket"]


@dataclass
class MarkovBlanketResult:
    """Blanket of one target variable plus work accounting."""

    target: int
    blanket: frozenset[int]
    n_tests: int
    grow_trace: list[int] = field(default_factory=list)
    shrink_trace: list[int] = field(default_factory=list)


def true_markov_blanket(n_nodes: int, edges, target: int) -> frozenset[int]:
    """Ground-truth MB from a DAG: parents + children + co-parents."""
    parents: set[int] = set()
    children: set[int] = set()
    for u, v in edges:
        if v == target:
            parents.add(u)
        if u == target:
            children.add(v)
    spouses: set[int] = set()
    for u, v in edges:
        if v in children and u != target:
            spouses.add(u)
    return frozenset(parents | children | spouses)


def grow_shrink(
    tester: ConditionalIndependenceTest,
    n_nodes: int,
    target: int,
    max_conditioning: int | None = None,
) -> MarkovBlanketResult:
    """Grow-Shrink Markov-blanket discovery for ``target``.

    ``max_conditioning`` caps the conditioning-set size used in tests
    (large blankets make unconditional-cap tests unreliable on data; the
    oracle needs no cap).
    """
    if not 0 <= target < n_nodes:
        raise ValueError("target out of range")
    blanket: list[int] = []
    n_tests = 0
    grow_trace: list[int] = []
    shrink_trace: list[int] = []

    def condition(current: list[int]) -> tuple[int, ...]:
        if max_conditioning is None or len(current) <= max_conditioning:
            return tuple(current)
        return tuple(current[:max_conditioning])

    # Grow: keep sweeping until no variable is added.
    changed = True
    while changed:
        changed = False
        for y in range(n_nodes):
            if y == target or y in blanket:
                continue
            res = tester.test(target, y, condition(blanket))
            n_tests += 1
            if not res.independent:
                blanket.append(y)
                grow_trace.append(y)
                changed = True

    # Shrink: remove false positives.
    changed = True
    while changed:
        changed = False
        for y in list(blanket):
            rest = [z for z in blanket if z != y]
            res = tester.test(target, y, condition(rest))
            n_tests += 1
            if res.independent:
                blanket.remove(y)
                shrink_trace.append(y)
                changed = True

    return MarkovBlanketResult(
        target=target,
        blanket=frozenset(blanket),
        n_tests=n_tests,
        grow_trace=grow_trace,
        shrink_trace=shrink_trace,
    )


def iamb(
    tester: ConditionalIndependenceTest,
    n_nodes: int,
    target: int,
    max_conditioning: int | None = None,
) -> MarkovBlanketResult:
    """IAMB: like Grow-Shrink, but each grow round admits only the
    candidate with the strongest observed dependence (largest test
    statistic among rejected independence hypotheses)."""
    if not 0 <= target < n_nodes:
        raise ValueError("target out of range")
    blanket: list[int] = []
    n_tests = 0
    grow_trace: list[int] = []
    shrink_trace: list[int] = []

    def condition(current: list[int]) -> tuple[int, ...]:
        if max_conditioning is None or len(current) <= max_conditioning:
            return tuple(current)
        return tuple(current[:max_conditioning])

    while True:
        best_y = -1
        best_stat = -1.0
        for y in range(n_nodes):
            if y == target or y in blanket:
                continue
            res = tester.test(target, y, condition(blanket))
            n_tests += 1
            if not res.independent and res.statistic > best_stat:
                best_stat = res.statistic
                best_y = y
        if best_y < 0:
            break
        blanket.append(best_y)
        grow_trace.append(best_y)

    changed = True
    while changed:
        changed = False
        for y in list(blanket):
            rest = [z for z in blanket if z != y]
            res = tester.test(target, y, condition(rest))
            n_tests += 1
            if res.independent:
                blanket.remove(y)
                shrink_trace.append(y)
                changed = True

    return MarkovBlanketResult(
        target=target,
        blanket=frozenset(blanket),
        n_tests=n_tests,
        grow_trace=grow_trace,
        shrink_trace=shrink_trace,
    )
