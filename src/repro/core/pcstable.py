"""Baseline PC-stable entry points.

Convenience wrappers for the two baseline regimes of the paper's Table III:

* :func:`pc_stable` — the "bnlearn-seq" analog: correct vectorised tests,
  but none of the Fast-BNS structural optimisations (per-direction work
  items, sample-major storage, materialised conditioning sets).
* :func:`pc_stable_naive` — the "pcalg/tetrad" analog: the same
  decomposition driven by a per-sample interpreted tester.

Both produce identical structures to Fast-BNS (tested); only the work
bookkeeping and speed differ.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..datasets.dataset import DiscreteDataset
from .learn import learn_structure
from .result import LearnResult

__all__ = ["pc_stable", "pc_stable_naive"]


def pc_stable(
    data: DiscreteDataset | np.ndarray,
    arities: Sequence[int] | None = None,
    alpha: float = 0.05,
    test: str = "g2",
    max_depth: int | None = None,
    dof_adjust: str = "structural",
) -> LearnResult:
    """Reference PC-stable (vectorised bnlearn-style baseline)."""
    return learn_structure(
        data,
        arities=arities,
        method="pc-stable",
        test=test,
        alpha=alpha,
        max_depth=max_depth,
        dof_adjust=dof_adjust,
    )


def pc_stable_naive(
    data: DiscreteDataset | np.ndarray,
    arities: Sequence[int] | None = None,
    alpha: float = 0.05,
    max_depth: int | None = None,
    dof_adjust: str = "structural",
) -> LearnResult:
    """Interpreted-speed PC-stable (pcalg/tetrad-regime baseline).

    Orders of magnitude slower by design; use only on small problems.
    """
    return learn_structure(
        data,
        arities=arities,
        method="pc-stable-naive",
        alpha=alpha,
        max_depth=max_depth,
        dof_adjust=dof_adjust,
    )
