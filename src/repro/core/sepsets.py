"""Separating-set store (``SepSet`` in Algorithm 1).

Maps an unordered node pair to the conditioning set that rendered it
independent during the skeleton phase; consumed by the v-structure step.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

__all__ = ["SepSetStore"]


class SepSetStore:
    """Dictionary of ``frozen pair -> tuple`` separating sets."""

    __slots__ = ("_store",)

    def __init__(self) -> None:
        self._store: dict[tuple[int, int], tuple[int, ...]] = {}

    @staticmethod
    def _key(u: int, v: int) -> tuple[int, int]:
        if u == v:
            raise ValueError("a node cannot be separated from itself")
        return (u, v) if u < v else (v, u)

    def record(self, u: int, v: int, sepset: tuple[int, ...]) -> None:
        self._store[self._key(u, v)] = tuple(sorted(int(s) for s in sepset))

    def get(self, u: int, v: int) -> tuple[int, ...] | None:
        return self._store.get(self._key(u, v))

    def contains(self, u: int, v: int) -> bool:
        return self._key(u, v) in self._store

    def separates_with(self, u: int, v: int, node: int) -> bool:
        """True iff ``node`` belongs to the recorded separating set —
        the v-structure criterion checks ``k not in SepSet(i, j)``."""
        sepset = self.get(u, v)
        return sepset is not None and node in sepset

    def items(self) -> Iterator[tuple[tuple[int, int], tuple[int, ...]]]:
        return iter(self._store.items())

    def as_dict(self) -> Mapping[tuple[int, int], tuple[int, ...]]:
        return dict(self._store)

    def __len__(self) -> int:
        return len(self._store)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SepSetStore):
            return NotImplemented
        return self._store == other._store

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("SepSetStore is mutable and unhashable")
