"""High-level structure-learning front-end.

``learn_structure`` wires together the tester, the skeleton engine (or a
parallel backend), and the orientation phase, and packages everything into a
:class:`~repro.core.result.LearnResult`.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from ..citests.base import ConditionalIndependenceTest
from ..citests.chisquare import ChiSquareTest
from ..citests.gsquare import GSquareTest
from ..citests.mutual_info import MutualInformationTest
from ..citests.naive import NaiveGSquareTest
from ..datasets.dataset import DiscreteDataset
from .orientation import orient_skeleton
from .result import LearnResult
from .skeleton import learn_skeleton
from .trace import TraceRecorder

__all__ = ["learn_structure", "make_tester", "METHODS", "TESTS", "PARALLELISMS"]

METHODS = ("fast-bns", "pc-stable", "pc-stable-naive")
TESTS = ("g2", "chi2", "mi")
PARALLELISMS = ("ci", "edge", "sample")


def make_tester(
    dataset: DiscreteDataset,
    test: str | ConditionalIndependenceTest = "g2",
    alpha: float = 0.05,
    dof_adjust: str = "structural",
    stats_cache=None,
    encoded=None,
    arena=None,
) -> ConditionalIndependenceTest:
    """Instantiate a CI tester by name, or pass an instance through.

    ``stats_cache`` optionally attaches a
    :class:`~repro.engine.statscache.SufficientStatsCache` so the tester
    serves repeated contingency tables from memory (the
    :class:`~repro.engine.session.LearningSession` path); ``encoded``
    optionally shares a :class:`~repro.datasets.encoded.EncodedDataset`
    across testers so column/endpoint encodings are derived once per
    dataset; ``arena`` optionally shares a
    :class:`~repro.citests.arena.KernelArena` so the fused group kernel's
    scratch buffers are reused across a tester family (one per worker
    process / session).  The naive tester ignores all three (its
    per-sample interpretation *is* the point).
    """
    if not isinstance(test, str):
        return test
    if test == "g2":
        return GSquareTest(
            dataset,
            alpha=alpha,
            dof_adjust=dof_adjust,
            stats_cache=stats_cache,
            encoded=encoded,
            arena=arena,
        )
    if test == "chi2":
        return ChiSquareTest(
            dataset,
            alpha=alpha,
            dof_adjust=dof_adjust,
            stats_cache=stats_cache,
            encoded=encoded,
            arena=arena,
        )
    if test == "mi":
        return MutualInformationTest(
            dataset,
            alpha=alpha,
            dof_adjust=dof_adjust,
            stats_cache=stats_cache,
            encoded=encoded,
            arena=arena,
        )
    if test == "g2-naive":
        return NaiveGSquareTest(dataset, alpha=alpha, dof_adjust=dof_adjust)
    raise ValueError(f"unknown test {test!r}; choose from {TESTS + ('g2-naive',)}")


def _coerce_dataset(
    data: DiscreteDataset | np.ndarray,
    arities: Sequence[int] | None,
    layout: str,
) -> DiscreteDataset:
    if isinstance(data, DiscreteDataset):
        return data.with_layout(layout)
    return DiscreteDataset.from_rows(np.asarray(data), arities=arities, layout=layout)


def learn_structure(
    data: DiscreteDataset | np.ndarray,
    arities: Sequence[int] | None = None,
    method: str = "fast-bns",
    test: str | ConditionalIndependenceTest = "g2",
    alpha: float = 0.05,
    gs: int | str = 1,
    n_jobs: int = 1,
    parallelism: str = "ci",
    backend: str = "process",
    max_depth: int | None = None,
    dof_adjust: str = "structural",
    apply_r4: bool = False,
    v_structures: str = "standard",
    recorder: TraceRecorder | None = None,
    use_shm: bool | None = None,
) -> LearnResult:
    """Learn a Bayesian-network CPDAG from complete discrete data.

    Parameters
    ----------
    data:
        A :class:`DiscreteDataset`, or a ``(n_samples, n_variables)`` array
        of category codes (``arities`` then optional).
    method:
        ``"fast-bns"`` — all paper optimisations (endpoint grouping,
        variable-major storage, on-the-fly conditioning sets);
        ``"pc-stable"`` — reference baseline (per-direction work items,
        sample-major storage, materialised conditioning sets);
        ``"pc-stable-naive"`` — the reference decomposition driven by the
        interpreted per-sample tester (pcalg/tetrad speed analog).
    test:
        ``"g2"`` (paper default), ``"chi2"``, ``"mi"``, or a tester object.
    alpha:
        Significance level (0.05 in all paper experiments).
    gs:
        Fast-BNS group size (Sec. IV-B); ignored by the baselines.
        ``"auto"`` turns on adaptive sizing: the CI-level parallel path
        runs an :class:`~repro.parallel.adaptive.AdaptiveGroupScheduler`
        (per-work-item sizes from live perf counters), the sequential
        path resolves to the fixed
        :data:`~repro.parallel.adaptive.DEFAULT_SEED_GS`.  Results are
        bit-identical for every choice.
    n_jobs, parallelism, backend:
        ``n_jobs > 1`` runs the skeleton phase in parallel with the chosen
        granularity: ``"ci"`` (Fast-BNS work pool), ``"edge"`` (static
        edge partition), or ``"sample"`` (per-test sample splitting);
        ``backend`` picks ``"process"`` or ``"thread"`` workers.
    max_depth:
        Optional cap on conditioning-set size.
    apply_r4:
        Also close orientations under Meek rule R4.
    v_structures:
        ``"standard"`` — orient colliders from the recorded separating
        sets (classic PC-stable); ``"conservative"`` / ``"majority"`` —
        re-test every unshielded triple against all separating subsets
        (CPC / MPC of Colombo & Maathuis) at the cost of extra CI tests.
    recorder:
        Optional :class:`TraceRecorder` capturing the execution trace for
        the multi-core simulator.
    use_shm:
        Dataset transport for process workers (see
        :class:`~repro.parallel.backends.WorkerPool`): ``None`` attaches
        them through the zero-copy shared-memory plane when available.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    if parallelism not in PARALLELISMS:
        raise ValueError(f"unknown parallelism {parallelism!r}; choose from {PARALLELISMS}")
    if v_structures not in ("standard", "conservative", "majority"):
        raise ValueError(
            f"unknown v_structures rule {v_structures!r}; "
            "choose 'standard', 'conservative' or 'majority'"
        )

    if method == "fast-bns":
        layout = "variable-major"
        group_endpoints = True
        onthefly = True
    else:
        layout = "sample-major"
        group_endpoints = False
        onthefly = False
        gs = 1
    if n_jobs == 1 or parallelism != "ci":
        # Only the CI-level parallel scheduler consumes live counters;
        # everything else runs the documented fixed fallback.  (The CI
        # path resolves "auto" itself, with the pool's arity info.)
        from ..parallel.adaptive import resolve_fixed_gs

        gs = resolve_fixed_gs(gs)

    dataset = _coerce_dataset(data, arities, layout)
    if method == "pc-stable-naive":
        tester = make_tester(dataset, "g2-naive", alpha=alpha, dof_adjust=dof_adjust)
    elif method == "fast-bns":
        tester = make_tester(dataset, test, alpha=alpha, dof_adjust=dof_adjust)
    else:
        # Baselines re-derive encodings per test like the reference
        # implementations they stand in for: a memoizing encoding layer
        # would erase part of the storage-layout contrast under study.
        from ..datasets.encoded import EncodedDataset

        tester = make_tester(
            dataset,
            test,
            alpha=alpha,
            dof_adjust=dof_adjust,
            encoded=EncodedDataset(dataset, memoize=False),
        )

    t0 = time.perf_counter()
    if n_jobs == 1:
        skeleton, sepsets, stats = learn_skeleton(
            tester,
            dataset.n_variables,
            gs=gs,
            group_endpoints=group_endpoints,
            onthefly=onthefly,
            max_depth=max_depth,
            recorder=recorder,
        )
    else:
        from ..parallel import run_parallel_skeleton

        skeleton, sepsets, stats = run_parallel_skeleton(
            dataset,
            tester,
            parallelism=parallelism,
            n_jobs=n_jobs,
            backend=backend,
            gs=gs,
            group_endpoints=group_endpoints,
            max_depth=max_depth,
            alpha=alpha,
            test=test if isinstance(test, str) else "g2",
            dof_adjust=dof_adjust,
            recorder=recorder,
            memoize_encodings=method == "fast-bns",
            use_shm=use_shm,
        )
    t1 = time.perf_counter()
    if v_structures == "standard":
        cpdag = orient_skeleton(skeleton, sepsets, apply_r4=apply_r4)
    else:
        from .conservative import orient_skeleton_robust

        cpdag, _classification = orient_skeleton_robust(
            tester, skeleton, sepsets, rule=v_structures, apply_r4=apply_r4
        )
    t2 = time.perf_counter()

    return LearnResult(
        cpdag=cpdag,
        skeleton=skeleton,
        sepsets=sepsets,
        stats=stats,
        names=dataset.names,
        elapsed={
            "skeleton": t1 - t0,
            "orientation": t2 - t1,
            "total": t2 - t0,
        },
    )
