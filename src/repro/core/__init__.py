"""Core contribution: the Fast-BNS / PC-stable learning engine."""

from .combinadic import rank_combination, unrank_combination
from .conservative import TripleClassification, classify_triples, orient_skeleton_robust
from .edges import EdgeTask
from .fastbns import FastBNS
from .learn import learn_structure, make_tester
from .markov_blanket import MarkovBlanketResult, grow_shrink, iamb, true_markov_blanket
from .orientation import apply_meek_rules, orient_skeleton, orient_v_structures
from .pcstable import pc_stable, pc_stable_naive
from .result import DepthStats, LearnResult, SkeletonStats
from .sepsets import SepSetStore
from .skeleton import learn_skeleton
from .trace import TraceRecorder
from .workpool import WorkPool

__all__ = [
    "learn_structure",
    "grow_shrink",
    "iamb",
    "true_markov_blanket",
    "MarkovBlanketResult",
    "classify_triples",
    "orient_skeleton_robust",
    "TripleClassification",
    "make_tester",
    "FastBNS",
    "pc_stable",
    "pc_stable_naive",
    "learn_skeleton",
    "orient_skeleton",
    "orient_v_structures",
    "apply_meek_rules",
    "EdgeTask",
    "WorkPool",
    "SepSetStore",
    "TraceRecorder",
    "LearnResult",
    "SkeletonStats",
    "DepthStats",
    "unrank_combination",
    "rank_combination",
]
