"""repro — Fast-BNS: fast parallel Bayesian network structure learning.

Reproduction of Jiang, Wen & Mian, "Fast Parallel Bayesian Network
Structure Learning" (IPDPS 2022).  See README.md for a tour,
docs/ARCHITECTURE.md for the system inventory, and EXPERIMENTS.md for the
experiment index and measurement policy.

Public API highlights
---------------------
* :func:`learn_structure` / :class:`FastBNS` — learn a CPDAG from data.
* :func:`pc_stable`, :func:`pc_stable_naive` — baseline learners.
* :mod:`repro.networks` — benchmark networks and generators.
* :mod:`repro.datasets` — datasets, forward sampling, BIF I/O.
* :mod:`repro.simcpu` — multi-core discrete-event simulator.
* :mod:`repro.analysis` — the paper's closed-form speedup model.
"""

from .citests import (
    ChiSquareTest,
    CITestResult,
    GSquareTest,
    MutualInformationTest,
    OracleCITest,
)
from .core import (
    FastBNS,
    grow_shrink,
    iamb,
    LearnResult,
    SepSetStore,
    TraceRecorder,
    learn_structure,
    pc_stable,
    pc_stable_naive,
)
from .datasets import DiscreteDataset, forward_sample
from .score import hill_climb
from .graphs import PDAG, UndirectedGraph, dag_to_cpdag, pdag_to_dag, shd, skeleton_metrics
from .inference import JunctionTree, VariableElimination, interventional_marginal
from .networks import (
    DiscreteBayesianNetwork,
    fit_cpts,
    get_network,
    log_likelihood,
    random_network,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "learn_structure",
    "FastBNS",
    "pc_stable",
    "pc_stable_naive",
    "hill_climb",
    "grow_shrink",
    "iamb",
    "LearnResult",
    "SepSetStore",
    "TraceRecorder",
    "DiscreteDataset",
    "forward_sample",
    "DiscreteBayesianNetwork",
    "random_network",
    "get_network",
    "UndirectedGraph",
    "PDAG",
    "dag_to_cpdag",
    "pdag_to_dag",
    "fit_cpts",
    "log_likelihood",
    "VariableElimination",
    "JunctionTree",
    "interventional_marginal",
    "shd",
    "skeleton_metrics",
    "GSquareTest",
    "ChiSquareTest",
    "MutualInformationTest",
    "OracleCITest",
    "CITestResult",
]
