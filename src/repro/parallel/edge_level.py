"""Edge-level parallel skeleton phase (the "bnlearn-par" analog).

Each depth statically partitions the frozen edge list into ``n_jobs``
contiguous blocks; every worker processes its block's edges to completion.
This is the coarse-grained scheme the paper criticises: the per-edge CI-test
workload is highly skewed (hub endpoints produce combinatorially more
conditioning sets, and early independence acceptance truncates work
unpredictably), so the depth's wall time is the *slowest block's* time while
other workers idle — no work stealing, no pool.

Output is identical to the sequential engine (Fast-BNS semantics per edge:
endpoint grouping honoured inside each work item; removal deferred to depth
end).

Workers come from the shared :class:`~repro.parallel.backends.WorkerPool`,
so edge-level runs ride the zero-copy shared-memory dataset plane (or its
pickled fallback) exactly like CI-level runs; the group-size machinery
(fixed or adaptive) does not apply here — each worker drives its edge test
by test, which is precisely the coarse-grained behaviour under study.
"""

from __future__ import annotations

import time

from ..core.result import DepthStats, SkeletonStats
from ..core.sepsets import SepSetStore
from ..core.skeleton import build_depth_tasks, depth_has_work
from ..core.trace import TraceRecorder
from ..graphs.undirected import UndirectedGraph
from .backends import WorkerPool

__all__ = ["edge_level_skeleton"]


def edge_level_skeleton(
    workers: WorkerPool,
    n_nodes: int,
    group_endpoints: bool = True,
    max_depth: int | None = None,
    recorder: TraceRecorder | None = None,
) -> tuple[UndirectedGraph, SepSetStore, SkeletonStats]:
    """Run the skeleton phase with static edge-level parallelism."""
    if recorder is not None:
        raise ValueError(
            "trace recording requires per-test visibility; use the sequential "
            "engine or the CI-level backend to record traces"
        )
    t_start = time.perf_counter()
    graph = UndirectedGraph.complete(n_nodes)
    sepsets = SepSetStore()
    stats = SkeletonStats()

    depth = 0
    while True:
        if max_depth is not None and depth > max_depth:
            break
        if depth > 0 and not depth_has_work(graph, depth):
            break
        if graph.n_edges == 0:
            break

        d_stats = DepthStats(depth=depth, n_edges_start=graph.n_edges)
        t_depth = time.perf_counter()

        tasks = build_depth_tasks(graph, depth, group_endpoints)
        jobs = [(t.u, t.v, t.side1, t.side2, t.depth) for t in tasks]
        # Static block partition: worker k gets the contiguous slice
        # [k * ceil(n/t), ...) — the |Ed| / t dedication of Sec. IV-A.
        results = workers.eval_edges(jobs)

        found: dict[tuple[int, int], list[tuple[int, tuple[int, ...]]]] = {}
        for rank, (task, (n_exec, accepting)) in enumerate(zip(tasks, results, strict=True)):
            d_stats.n_tests += n_exec
            d_stats.n_groups += n_exec  # gs = 1 semantics inside workers
            if accepting is not None:
                found.setdefault((task.u, task.v), []).append((rank, tuple(accepting)))

        for (u, v), hits in found.items():
            hits.sort(key=lambda pair: pair[0])
            sepsets.record(u, v, hits[0][1])
            graph.remove_edge(u, v)
        d_stats.n_edges_removed = len(found)
        d_stats.elapsed_s = time.perf_counter() - t_depth
        stats.depths.append(d_stats)
        stats.n_tests += d_stats.n_tests
        stats.n_groups += d_stats.n_groups
        depth += 1

    stats.elapsed_s = time.perf_counter() - t_start
    return graph, sepsets, stats
