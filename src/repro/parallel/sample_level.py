"""Sample-level parallel skeleton phase (the fine-grained scheme, Sec. IV-A).

Every CI test's contingency-table fill is split across workers: each worker
counts its slice of the samples into a private table and the master merges
the partial tables (the "local contingency table per thread" variant the
paper describes; the atomic-increment variant has no faithful shared-memory
analog in Python, and the paper already concludes the local-table variant
is the better of the two).  The algorithmic order is the sequential gs = 1
Fast-BNS order, so results are identical — only the per-test fork/join
overhead and merge cost differ, which is exactly the scheme's weakness:
thousands of tiny parallel regions.

Thread workers share the dataset arrays; process workers attach the
zero-copy shared-memory plane (:mod:`repro.datasets.shm`) when the
dataset is variable-major and the platform provides it, and otherwise
receive the dataset once at pool creation (no per-test data shipping —
only the partial tables return).  Sample-major runs keep the pickled path
on purpose: an attached plane is always variable-major, which would erase
the storage-layout contrast those baselines exist to measure.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from collections.abc import Sequence

import numpy as np

from ..citests.contingency import encode_columns, n_configurations
from ..citests.gsquare import g2_test_from_counts
from ..core.result import DepthStats, SkeletonStats
from ..core.sepsets import SepSetStore
from ..core.skeleton import build_depth_tasks, depth_has_work
from ..core.trace import TraceRecorder
from ..core.workpool import WorkPool
from ..datasets.dataset import DiscreteDataset
from ..graphs.undirected import UndirectedGraph

__all__ = ["sample_level_skeleton", "parallel_contingency"]

# fork-inherited dataset for process workers
_SAMPLE_DATASET: DiscreteDataset | None = None


def _init_sample_worker(dataset: DiscreteDataset | None, shm_handle=None) -> None:
    global _SAMPLE_DATASET
    if shm_handle is not None:
        from ..datasets.shm import attach_dataset

        dataset = attach_dataset(shm_handle)
    _SAMPLE_DATASET = dataset


def _partial_counts(job: tuple[int, int, tuple[int, ...], int, int, int]) -> np.ndarray:
    """Count one slice of the samples into a private dense table."""
    assert _SAMPLE_DATASET is not None, "sample worker not initialised"
    return _partial_counts_on(_SAMPLE_DATASET, job)


def _partial_counts_on(
    ds: DiscreteDataset, job: tuple[int, int, tuple[int, ...], int, int, int]
) -> np.ndarray:
    x, y, s, lo, hi, table_size = job
    rx, ry = ds.arity(x), ds.arity(y)
    x_col = ds.column(x)[lo:hi]
    y_col = ds.column(y)[lo:hi]
    cell = x_col.astype(np.int64) * ry + y_col
    if s:
        rz = [ds.arity(v) for v in s]
        z_codes, _ = encode_columns([ds.column(v)[lo:hi] for v in s], rz)
        cell = z_codes * (rx * ry) + cell
    return np.bincount(cell, minlength=table_size)


def parallel_contingency(
    dataset: DiscreteDataset,
    executor: Executor,
    use_process_workers: bool,
    n_jobs: int,
    x: int,
    y: int,
    s: Sequence[int],
) -> tuple[np.ndarray, int] | None:
    """Contingency table of ``I(x, y | s)`` computed by sample slicing.

    Returns ``(counts, nz_structural)`` with ``counts`` shaped
    ``(nz, rx, ry)``, or ``None`` when the dense table would be too large
    for slice-private tables (the caller then falls back to a sequential
    compressed-table test; such deep tests are rare).
    """
    m = dataset.n_samples
    rx, ry = dataset.arity(x), dataset.arity(y)
    rz = [dataset.arity(v) for v in s]
    nz = n_configurations(rz)
    table_size = nz * rx * ry
    if table_size > 4 * max(m, 1):
        return None
    bounds = np.linspace(0, m, n_jobs + 1, dtype=np.int64)
    jobs = [
        (x, y, tuple(int(v) for v in s), int(bounds[k]), int(bounds[k + 1]), table_size)
        for k in range(n_jobs)
        if bounds[k] < bounds[k + 1]
    ]
    if use_process_workers:
        partials = list(executor.map(_partial_counts, jobs))
    else:
        partials = list(executor.map(lambda j: _partial_counts_on(dataset, j), jobs))
    counts = np.sum(partials, axis=0).reshape(nz, rx, ry)
    return counts, nz


def sample_level_skeleton(
    dataset: DiscreteDataset,
    n_nodes: int,
    n_jobs: int,
    backend: str = "process",
    alpha: float = 0.05,
    dof_adjust: str = "structural",
    group_endpoints: bool = True,
    max_depth: int | None = None,
    recorder: TraceRecorder | None = None,
    use_shm: bool | None = None,
) -> tuple[UndirectedGraph, SepSetStore, SkeletonStats]:
    """Run the skeleton phase with sample-level parallelism (G^2 test).

    ``use_shm`` follows the :class:`~repro.parallel.backends.WorkerPool`
    contract: ``None`` auto-detects (process backend, variable-major
    layout, working shared memory), ``True`` requires the plane, ``False``
    forces the pickled path.
    """
    if recorder is not None:
        raise ValueError("trace recording is not supported by the sample-level backend")
    if n_nodes != dataset.n_variables:
        raise ValueError("n_nodes must equal the dataset's variable count")
    if use_shm and backend != "process":
        raise ValueError("thread workers already share memory; use_shm applies to processes")
    if use_shm and dataset.layout != "variable-major":
        raise ValueError(
            "the shm plane is variable-major; it cannot serve a sample-major "
            "baseline without erasing the storage-layout contrast"
        )
    from ..citests.gsquare import GSquareTest

    fallback = GSquareTest(dataset, alpha=alpha, dof_adjust=dof_adjust)
    t_start = time.perf_counter()

    shm_export = None
    if backend == "process":
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover
            ctx = multiprocessing.get_context("spawn")
        initargs: tuple = (dataset, None)
        if dataset.layout == "variable-major":
            # Raw-dtype zero-copy block for the Fast-BNS layout (workers
            # here only read values — no encoding layer, so no int64
            # widening); sample-major runs keep the pickled path (module
            # docstring).
            from ..datasets.shm import try_export_dataset

            shm_export = try_export_dataset(dataset, use_shm)
            if shm_export is not None:
                initargs = (None, shm_export.handle)
        executor: Executor = ProcessPoolExecutor(
            max_workers=n_jobs,
            mp_context=ctx,
            initializer=_init_sample_worker,
            initargs=initargs,
        )
        use_process = True
    elif backend == "thread":
        executor = ThreadPoolExecutor(max_workers=n_jobs)
        use_process = False
    else:
        raise ValueError("backend must be 'process' or 'thread'")

    graph = UndirectedGraph.complete(n_nodes)
    sepsets = SepSetStore()
    stats = SkeletonStats()

    try:
        depth = 0
        while True:
            if max_depth is not None and depth > max_depth:
                break
            if depth > 0 and not depth_has_work(graph, depth):
                break
            if graph.n_edges == 0:
                break

            d_stats = DepthStats(depth=depth, n_edges_start=graph.n_edges)
            t_depth = time.perf_counter()
            tasks = build_depth_tasks(graph, depth, group_endpoints)
            item_rank = {id(t): i for i, t in enumerate(tasks)}
            pool = WorkPool()
            for idx in range(len(tasks) - 1, -1, -1):
                pool.push(tasks[idx])
            found: dict[tuple[int, int], list[tuple[int, tuple[int, ...]]]] = {}

            while pool:
                task = pool.pop()
                sets = task.next_group(1)
                task.advance(1)
                s = sets[0]
                d_stats.n_tests += 1
                d_stats.n_groups += 1
                parts = parallel_contingency(
                    dataset, executor, use_process, n_jobs, task.u, task.v, s
                )
                if parts is None:
                    res = fallback.test(task.u, task.v, s)
                    independent = res.independent
                    accepting = res.s if independent else None
                else:
                    counts, nz = parts
                    rx, ry = dataset.arity(task.u), dataset.arity(task.v)
                    _, _, _, independent = g2_test_from_counts(
                        counts, nz, rx, ry, alpha, dof_adjust
                    )
                    accepting = tuple(s) if independent else None
                if accepting is not None:
                    found.setdefault((task.u, task.v), []).append(
                        (item_rank[id(task)], accepting)
                    )
                elif not task.done:
                    pool.push(task)

            for (u, v), hits in found.items():
                hits.sort(key=lambda pair: pair[0])
                sepsets.record(u, v, hits[0][1])
                graph.remove_edge(u, v)
            d_stats.n_edges_removed = len(found)
            d_stats.elapsed_s = time.perf_counter() - t_depth
            stats.depths.append(d_stats)
            stats.n_tests += d_stats.n_tests
            stats.n_groups += d_stats.n_groups
            depth += 1
    finally:
        executor.shutdown(wait=True)
        if shm_export is not None:
            shm_export.close()

    stats.elapsed_s = time.perf_counter() - t_start
    return graph, sepsets, stats
