"""CI-level parallel skeleton phase (the paper's Fast-BNS-par scheme).

The master owns the dynamic work pool; each scheduling round pops up to
``n_jobs * batch_factor`` edges, ships one gs-group of CI tests per edge to
the workers, applies the verdicts and pushes unfinished edges back.  This
mirrors the paper's design (Sec. IV-B): threads process groups of CI tests
from *different* edges, an edge is handled by at most one thread at a time,
completed edges leave the pool immediately, and no atomic operations are
needed because a contingency table is never shared.
"""

from __future__ import annotations

import time

from ..core.result import DepthStats, SkeletonStats
from ..core.sepsets import SepSetStore
from ..core.skeleton import build_depth_tasks, depth_has_work
from ..core.trace import TestRecord, TraceRecorder
from ..core.workpool import WorkPool
from ..graphs.undirected import UndirectedGraph
from .adaptive import AdaptiveGroupScheduler, resolve_gs
from .backends import WorkerPool

__all__ = ["ci_level_skeleton"]


def ci_level_skeleton(
    workers: WorkerPool,
    n_nodes: int,
    gs: int | str | AdaptiveGroupScheduler = 1,
    group_endpoints: bool = True,
    max_depth: int | None = None,
    batch_factor: int = 4,
    recorder: TraceRecorder | None = None,
    n_samples: int = 1,
    alpha_override: float | None = None,
) -> tuple[UndirectedGraph, SepSetStore, SkeletonStats]:
    """Run the skeleton phase with CI-level parallelism.

    Produces output identical to the sequential engine with the same
    ``group_endpoints`` for *any* ``gs`` (removal decisions are deferred
    to depth end and the accepting-set tie-break is work-item order, both
    scheduling independent) — which is what licenses ``gs="auto"``: an
    :class:`~repro.parallel.adaptive.AdaptiveGroupScheduler` (passed
    directly, or built by ``"auto"``) re-sizes each work item's next group
    from live waste/latency counters and pool pressure without touching
    the result.  Scheduled sizes land in each depth's ``gs_histogram``.

    ``alpha_override`` re-thresholds verdicts at a different significance
    level than the workers were initialised with — the
    :class:`~repro.engine.session.LearningSession` relearn path, which
    reuses a long-lived pool (and its workers' stats caches) across alphas.
    """
    gs = resolve_gs(gs, arities=getattr(workers, "arities", None))
    scheduler = gs if isinstance(gs, AdaptiveGroupScheduler) else None
    t_start = time.perf_counter()
    graph = UndirectedGraph.complete(n_nodes)
    sepsets = SepSetStore()
    stats = SkeletonStats()

    depth = 0
    while True:
        if max_depth is not None and depth > max_depth:
            break
        if depth > 0 and not depth_has_work(graph, depth):
            break
        if graph.n_edges == 0:
            break

        d_stats = DepthStats(depth=depth, n_edges_start=graph.n_edges)
        t_depth = time.perf_counter()
        if recorder is not None:
            recorder.begin_depth(depth, graph.n_edges)

        tasks = build_depth_tasks(graph, depth, group_endpoints)
        item_rank = {id(t): i for i, t in enumerate(tasks)}
        pool = WorkPool()
        for idx in range(len(tasks) - 1, -1, -1):
            pool.push(tasks[idx])

        found: dict[tuple[int, int], list[tuple[int, tuple[int, ...]]]] = {}
        round_size = max(1, workers.n_jobs * batch_factor)

        while pool:
            batch = pool.pop_many(round_size)
            jobs = []
            job_meta = []
            n_pending = len(pool) + len(batch)
            for task in batch:
                g = (
                    gs
                    if scheduler is None
                    else scheduler.gs_for(task, n_pending=n_pending, n_workers=workers.n_jobs)
                )
                sets = task.next_group(g)
                jobs.append((task.u, task.v, tuple(sets)))
                job_meta.append((task, sets))
            t_round = time.perf_counter()
            verdict_lists = workers.eval_groups(jobs, alpha=alpha_override)
            round_s = time.perf_counter() - t_round
            round_tests = sum(len(sets) for _, sets in job_meta)
            for (task, sets), verdicts in zip(job_meta, verdict_lists, strict=True):
                task.advance(len(sets))
                d_stats.n_tests += len(sets)
                d_stats.n_groups += 1
                d_stats.gs_histogram[len(sets)] = d_stats.gs_histogram.get(len(sets), 0) + 1
                if recorder is not None:
                    recorder.record_group(
                        task.u,
                        task.v,
                        task.total_tests,
                        [
                            TestRecord(depth=depth, m=n_samples, cells=0, independent=ind)
                            for ind in verdicts
                        ],
                    )
                first_idx = next((i for i, ind in enumerate(verdicts) if ind), -1)
                if scheduler is not None:
                    # Worker-seconds share of the group — the live latency
                    # counter behind the scheduler's growth damping.
                    scheduler.observe(
                        task,
                        len(sets),
                        first_idx,
                        round_s * len(sets) / max(round_tests, 1),
                    )
                if first_idx >= 0:
                    d_stats.n_redundant_tests += len(sets) - 1 - first_idx
                    found.setdefault((task.u, task.v), []).append(
                        (item_rank[id(task)], tuple(sets[first_idx]))
                    )
                elif not task.done:
                    pool.push(task)

        for (u, v), hits in found.items():
            hits.sort(key=lambda pair: pair[0])
            sepsets.record(u, v, hits[0][1])
            graph.remove_edge(u, v)
            if recorder is not None:
                recorder.mark_removed(u, v)
        d_stats.n_edges_removed = len(found)
        d_stats.elapsed_s = time.perf_counter() - t_depth
        stats.depths.append(d_stats)
        stats.n_tests += d_stats.n_tests
        stats.n_redundant_tests += d_stats.n_redundant_tests
        stats.n_groups += d_stats.n_groups
        stats.pool_pushes += pool.n_pushes
        stats.pool_pops += pool.n_pops
        stats.pool_peak = max(stats.pool_peak, pool.peak_size)
        if recorder is not None:
            recorder.end_depth(d_stats.n_edges_removed)
        depth += 1

    stats.elapsed_s = time.perf_counter() - t_start
    return graph, sepsets, stats
