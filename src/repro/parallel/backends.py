"""Worker-pool plumbing shared by the three parallel granularities.

Process workers are created once per learning run (the paper's OpenMP
threads live for the whole parallel region; re-spawning per depth would be
the "parallel overhead" failure mode).  Each worker builds its own CI tester
from the dataset shipped at initialisation, so no test-time traffic carries
data — only compact ``(edge, conditioning sets)`` descriptions and boolean
verdicts cross the process boundary.

The ``thread`` backend exists for comparison and for the sample-level
scheme (where shared memory matters most); CPython's GIL limits its
speedup, which is documented honestly in EXPERIMENTS.md.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence

from ..citests.base import ConditionalIndependenceTest
from ..datasets.dataset import DiscreteDataset

__all__ = ["WorkerPool", "GroupJob", "EdgeJob"]

# Module-level worker state (set by the process-pool initializer).
_WORKER_TESTER: ConditionalIndependenceTest | None = None

GroupJob = tuple[int, int, tuple[tuple[int, ...], ...]]
# (u, v, conditioning sets) -> per-set independence verdicts
EdgeJob = tuple[int, int, tuple[int, ...], tuple[int, ...], int]
# (u, v, side1, side2, depth) -> (n_tests_executed, accepting set | None)


def _init_worker(dataset: DiscreteDataset, test: str, alpha: float, dof_adjust: str) -> None:
    global _WORKER_TESTER
    from ..core.learn import make_tester

    _WORKER_TESTER = make_tester(dataset, test, alpha=alpha, dof_adjust=dof_adjust)


def _eval_group(job: GroupJob) -> list[bool]:
    """CI-level work unit: evaluate a group of conditioning sets for one
    edge; returns one verdict per set."""
    assert _WORKER_TESTER is not None, "worker not initialised"
    u, v, sets = job
    results = _WORKER_TESTER.test_group(u, v, list(sets))
    return [r.independent for r in results]


def _eval_edge(job: EdgeJob) -> tuple[int, tuple[int, ...] | None]:
    """Edge-level work unit: process one edge task to completion."""
    assert _WORKER_TESTER is not None, "worker not initialised"
    from ..core.edges import EdgeTask

    u, v, side1, side2, depth = job
    task = EdgeTask(u, v, side1, side2, depth)
    executed = 0
    while not task.done:
        sets = task.next_group(1)
        task.advance(1)
        executed += 1
        res = _WORKER_TESTER.test(u, v, sets[0])
        if res.independent:
            return executed, res.s
    return executed, None


class WorkerPool:
    """An executor plus the matching group/edge evaluation callables.

    ``process`` backend: module-level worker functions with per-process
    testers (zero shared state).  ``thread`` backend: closures over
    thread-local testers built lazily per worker thread (the dataset arrays
    are shared read-only, as OpenMP threads would share them).
    """

    def __init__(
        self,
        dataset: DiscreteDataset,
        n_jobs: int,
        backend: str = "process",
        test: str = "g2",
        alpha: float = 0.05,
        dof_adjust: str = "structural",
    ) -> None:
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if backend not in ("process", "thread"):
            raise ValueError("backend must be 'process' or 'thread'")
        self.n_jobs = n_jobs
        self.backend = backend
        self._executor: Executor
        if backend == "process":
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = multiprocessing.get_context("spawn")
            self._executor = ProcessPoolExecutor(
                max_workers=n_jobs,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(dataset, test, alpha, dof_adjust),
            )
            self.eval_groups: Callable[[Sequence[GroupJob]], list[list[bool]]] = (
                lambda jobs: list(self._executor.map(_eval_group, jobs))
            )
            # Edge-level uses a static block partition (chunksize = block
            # size), reproducing the |Ed|/t dedication of Sec. IV-A.
            self.eval_edges: Callable[[Sequence[EdgeJob]], list[tuple[int, tuple[int, ...] | None]]] = (
                lambda jobs: list(
                    self._executor.map(
                        _eval_edge, jobs, chunksize=max(1, -(-len(jobs) // self.n_jobs))
                    )
                )
            )
        else:
            import threading

            local = threading.local()

            def tester() -> ConditionalIndependenceTest:
                if not hasattr(local, "tester"):
                    from ..core.learn import make_tester

                    local.tester = make_tester(dataset, test, alpha=alpha, dof_adjust=dof_adjust)
                return local.tester

            def eval_group_local(job: GroupJob) -> list[bool]:
                u, v, sets = job
                return [r.independent for r in tester().test_group(u, v, list(sets))]

            def eval_edge_local(job: EdgeJob) -> tuple[int, tuple[int, ...] | None]:
                from ..core.edges import EdgeTask

                u, v, side1, side2, depth = job
                task = EdgeTask(u, v, side1, side2, depth)
                executed = 0
                while not task.done:
                    sets = task.next_group(1)
                    task.advance(1)
                    executed += 1
                    res = tester().test(u, v, sets[0])
                    if res.independent:
                        return executed, res.s
                return executed, None

            self._executor = ThreadPoolExecutor(max_workers=n_jobs)
            self.eval_groups = lambda jobs: list(self._executor.map(eval_group_local, jobs))
            self.eval_edges = lambda jobs: list(self._executor.map(eval_edge_local, jobs))

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
