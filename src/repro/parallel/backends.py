"""Worker-pool plumbing shared by the three parallel granularities.

Process workers are created once per learning run (the paper's OpenMP
threads live for the whole parallel region; re-spawning per depth would be
the "parallel overhead" failure mode).  Each worker builds its own CI tester
at initialisation, so no test-time traffic carries data — only compact
``(edge, conditioning sets)`` descriptions and boolean verdicts cross the
process boundary.

Workers receive their dataset through the **zero-copy shared-memory
plane** (:mod:`repro.datasets.shm`) whenever possible: the pool exports
the encoding layer's int64 columns (and memoized pair codes) into
``multiprocessing.shared_memory`` blocks and ships only block names +
shapes; every worker attaches read-only views of the same physical pages,
so per-worker private memory stays flat in the dataset size and pool
start-up skips the per-worker pickling/widening pass.  When shared memory
is unavailable (or ``use_shm=False``, or the baseline non-memoizing
regime), the pool falls back to the classic pickled-dataset shipping —
bit-identical results, only the memory/start-up cost differs.  The blocks
are unlinked at :meth:`WorkerPool.shutdown` (which
``LearningSession.__exit__`` triggers) with a finalizer backstop, so
crashes cannot leak ``/dev/shm`` segments.

When ``cache_bytes`` is set, every worker additionally keeps a per-process
:class:`~repro.engine.statscache.SufficientStatsCache`.  A pool owned by a
long-lived :class:`~repro.engine.session.LearningSession` then accumulates
sufficient statistics *across* successive ``learn``/``relearn`` calls —
repeated tables are served from worker memory instead of re-scanning the
dataset.  Because p-values do not depend on the significance level, a
relearn at a different alpha reuses the same pool: ``eval_groups`` accepts
an ``alpha`` override and workers re-threshold the cached p-values.

The ``thread`` backend exists for comparison and for the sample-level
scheme (threads already share one address space, so the shm plane is
moot there); CPython's GIL limits its speedup, which is documented
honestly in EXPERIMENTS.md at the repository root.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from collections.abc import Sequence

from ..citests.base import ConditionalIndependenceTest
from ..datasets.dataset import DiscreteDataset

__all__ = ["WorkerPool", "GroupJob", "EdgeJob"]

# Module-level worker state (set by the process-pool initializer).  The
# arena is the worker's kernel scratch pool: it outlives every job the
# worker runs, which is what makes the fused group kernel allocation-free
# in steady state (buffers grow to the high-water mark once, then recycle).
_WORKER_TESTER: ConditionalIndependenceTest | None = None
_WORKER_ARENA = None

GroupJob = tuple[int, int, tuple[tuple[int, ...], ...]]
# (u, v, conditioning sets) -> per-set independence verdicts
EdgeJob = tuple[int, int, tuple[int, ...], tuple[int, ...], int]
# (u, v, side1, side2, depth) -> (n_tests_executed, accepting set | None)


def _init_worker(
    dataset: DiscreteDataset | None,
    test: str,
    alpha: float,
    dof_adjust: str,
    cache_bytes: int | None = None,
    encoded=None,
    memoize_encodings: bool = True,
    shm_handle=None,
    arena_hint: dict | None = None,
) -> None:
    global _WORKER_TESTER, _WORKER_ARENA
    from ..citests.arena import KernelArena
    from ..core.learn import make_tester
    from ..datasets.encoded import EncodedDataset

    # The encoding layer arrives once per worker at pool start.  Preferred
    # transport is the shared-memory plane: ``shm_handle`` names the
    # exported blocks and the attach is zero-copy (module docstring).
    # Otherwise the layer (or the bare dataset) was pickled in; baseline
    # pools pass memoize_encodings=False so workers re-derive encodings
    # per test, like their sequential counterparts.
    if shm_handle is not None:
        encoded = EncodedDataset.attach_shm(shm_handle)
        dataset = encoded.dataset
    elif encoded is not None:
        dataset = encoded.dataset
    else:
        encoded = EncodedDataset(dataset, memoize=memoize_encodings)
    stats_cache = None
    if cache_bytes is not None:
        from ..engine.statscache import SufficientStatsCache

        stats_cache = SufficientStatsCache(max_bytes=cache_bytes)
    _WORKER_ARENA = KernelArena()
    if arena_hint:
        _WORKER_ARENA.prewarm(arena_hint)
    _WORKER_TESTER = make_tester(
        dataset, test, alpha=alpha, dof_adjust=dof_adjust, stats_cache=stats_cache,
        encoded=encoded, arena=_WORKER_ARENA,
    )


def _eval_group(job: GroupJob, alpha: float | None = None) -> list[bool]:
    """CI-level work unit: evaluate a group of conditioning sets for one
    edge; returns one verdict per set.

    ``alpha`` overrides the worker tester's significance level for this
    job (exact: the p-value is alpha-free, only the threshold moves).
    """
    assert _WORKER_TESTER is not None, "worker not initialised"
    u, v, sets = job
    results = _WORKER_TESTER.test_group(u, v, list(sets))
    if alpha is not None and alpha != _WORKER_TESTER.alpha:
        return [r.p_value > alpha for r in results]
    return [r.independent for r in results]


def _verdicts(tester, jobs: Sequence[GroupJob], alpha: float | None) -> list[list[bool]]:
    """Evaluate a chunk of group jobs on one tester, fused when possible.

    Testers exposing ``test_groups`` get the whole chunk in one call — the
    megagroup kernel then fuses table builds *across* the chunk's edges
    (same per-set results, fewer kernel invocations).  Testers without it
    (the naive baseline) fall back to per-job ``test_group``.
    """
    items = [(u, v, list(sets)) for u, v, sets in jobs]
    grouped = getattr(tester, "test_groups", None)
    if grouped is not None:
        per_job = grouped(items)
    else:
        per_job = [tester.test_group(u, v, sets) for u, v, sets in items]
    if alpha is not None and alpha != tester.alpha:
        return [[r.p_value > alpha for r in results] for results in per_job]
    return [[r.independent for r in results] for results in per_job]


def _eval_group_chunk(
    jobs: Sequence[GroupJob], alpha: float | None = None
) -> list[list[bool]]:
    """CI-level work chunk: several group jobs in one IPC round-trip."""
    assert _WORKER_TESTER is not None, "worker not initialised"
    return _verdicts(_WORKER_TESTER, jobs, alpha)


def _worker_arena_stats() -> dict | None:
    """This worker's kernel-arena counters (None before initialisation)."""
    if _WORKER_ARENA is None:
        return None
    out = _WORKER_ARENA.stats()
    out["worker_pid"] = os.getpid()
    return out


def _worker_cache_stats() -> dict | None:
    """Stats of this worker's stats cache (None when caching is off)."""
    assert _WORKER_TESTER is not None, "worker not initialised"
    builder = getattr(_WORKER_TESTER, "_builder", None)
    if builder is None:
        return None
    import os

    out = builder.cache.stats().as_dict()
    out["worker_pid"] = os.getpid()
    return out


def _read_private_kb() -> int | None:
    """This process's private (unshared) resident memory in KiB.

    ``Private_Clean + Private_Dirty`` from ``smaps_rollup`` — the honest
    per-worker footprint metric: pages of an attached shared-memory plane
    count toward plain RSS in *every* attacher but are private to none.
    Returns ``None`` where the proc interface is unavailable.
    """
    try:
        with open("/proc/self/smaps_rollup", encoding="ascii") as fh:
            total = 0
            for line in fh:
                if line.startswith(("Private_Clean:", "Private_Dirty:")):
                    total += int(line.split()[1])
        return total
    except (OSError, ValueError, IndexError):
        return None


def _worker_warm() -> dict:
    """Touch every widened column and report this worker's footprint.

    Forces the encoding layer fully resident (a shm attacher faults in the
    shared plane; a pickled-path worker materialises its private widened
    copies), so post-warm footprints compare like for like.
    """
    assert _WORKER_TESTER is not None, "worker not initialised"
    encoded = _WORKER_TESTER.encoded
    checksum = 0
    for i in range(encoded.dataset.n_variables):
        checksum += int(encoded.col64(i).sum())
    return {
        "worker_pid": os.getpid(),
        "private_kb": _read_private_kb(),
        "encoded_nbytes": encoded.stats()["nbytes"],
        "checksum": checksum,
    }


def _eval_edge(job: EdgeJob) -> tuple[int, tuple[int, ...] | None]:
    """Edge-level work unit: process one edge task to completion."""
    assert _WORKER_TESTER is not None, "worker not initialised"
    from ..core.edges import EdgeTask

    u, v, side1, side2, depth = job
    task = EdgeTask(u, v, side1, side2, depth)
    executed = 0
    while not task.done:
        sets = task.next_group(1)
        task.advance(1)
        executed += 1
        res = _WORKER_TESTER.test(u, v, sets[0])
        if res.independent:
            return executed, res.s
    return executed, None


class WorkerPool:
    """An executor plus the matching group/edge evaluation callables.

    ``process`` backend: module-level worker functions with per-process
    testers (zero shared state).  ``thread`` backend: closures over
    thread-local testers built lazily per worker thread (the dataset arrays
    are shared read-only, as OpenMP threads would share them).

    ``cache_bytes`` gives each worker a byte-budgeted sufficient-statistics
    cache (see module docstring); ``None`` keeps the seed behaviour.
    ``encoded`` optionally provides a (possibly pre-warmed)
    :class:`~repro.datasets.encoded.EncodedDataset` whose plane is exported
    (or, on fallback, pickled) to every worker at pool start, so all jobs
    of a worker share one encoding layer; without it, the pool builds a
    fresh layer over the dataset.

    ``use_shm`` controls the zero-copy plane: ``None`` (default) uses it
    whenever the backend is ``process``, encodings are memoized and the
    platform provides working shared memory; ``True`` requires it (errors
    surface instead of falling back); ``False`` forces the pickled path.
    ``start_method`` picks the multiprocessing context (``"fork"`` where
    available, else ``"spawn"``, by default) — the shm plane makes the two
    equivalent in what workers receive.
    """

    def __init__(
        self,
        dataset: DiscreteDataset,
        n_jobs: int,
        backend: str = "process",
        test: str = "g2",
        alpha: float = 0.05,
        dof_adjust: str = "structural",
        cache_bytes: int | None = None,
        encoded=None,
        memoize_encodings: bool = True,
        use_shm: bool | None = None,
        start_method: str | None = None,
        arena_hint: dict | None = None,
    ) -> None:
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if backend not in ("process", "thread"):
            raise ValueError("backend must be 'process' or 'thread'")
        if encoded is not None and encoded.dataset is not dataset:
            raise ValueError("encoded layer must wrap the pool's dataset")
        if use_shm and backend == "thread":
            raise ValueError("thread workers already share memory; use_shm applies to processes")
        if use_shm and not memoize_encodings:
            raise ValueError(
                "the shm plane ships a fully memoized encoding layer; it cannot "
                "serve the non-memoizing baseline regime"
            )
        self.n_jobs = n_jobs
        self.backend = backend
        self.alpha = float(alpha)
        self.cache_bytes = cache_bytes
        self.arities = tuple(int(dataset.arity(i)) for i in range(dataset.n_variables))
        self._shm_export = None
        self._executor: Executor
        if backend == "process":
            if start_method is not None:
                ctx = multiprocessing.get_context(start_method)
            else:
                try:
                    ctx = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX platforms
                    ctx = multiprocessing.get_context("spawn")
            # Dataset transport, in order of preference: shared-memory
            # plane (block names only), pickled encoding layer, pickled
            # bare dataset.  Each ships the data exactly once per worker.
            if memoize_encodings and use_shm is not False:
                from ..datasets.encoded import EncodedDataset
                from ..datasets.shm import try_export_encoded

                export_source = encoded if encoded is not None else EncodedDataset(dataset)
                self._shm_export = try_export_encoded(export_source, use_shm)
            if self._shm_export is not None:
                initargs = (
                    None, test, alpha, dof_adjust, cache_bytes, None, True,
                    self._shm_export.handle, arena_hint,
                )
            elif encoded is not None:
                initargs = (
                    None, test, alpha, dof_adjust, cache_bytes, encoded, True, None,
                    arena_hint,
                )
            else:
                initargs = (
                    dataset, test, alpha, dof_adjust, cache_bytes, None,
                    memoize_encodings, None, arena_hint,
                )
            self._executor = ProcessPoolExecutor(
                max_workers=n_jobs,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=initargs,
            )
        else:
            import threading

            from ..datasets.encoded import EncodedDataset

            local = threading.local()
            # Thread workers share the dataset arrays read-only (as OpenMP
            # threads would); they share one encoding layer the same way.
            shared_encoded = (
                encoded
                if encoded is not None
                else EncodedDataset(dataset, memoize=memoize_encodings)
            )

            def tester() -> ConditionalIndependenceTest:
                if not hasattr(local, "tester"):
                    from ..citests.arena import KernelArena
                    from ..core.learn import make_tester

                    stats_cache = None
                    if cache_bytes is not None:
                        from ..engine.statscache import SufficientStatsCache

                        stats_cache = SufficientStatsCache(max_bytes=cache_bytes)
                    # One arena per worker thread: arenas recycle buffers
                    # and are not safe to share across concurrent kernels.
                    arena = KernelArena()
                    if arena_hint:
                        arena.prewarm(arena_hint)
                    local.tester = make_tester(
                        dataset,
                        test,
                        alpha=alpha,
                        dof_adjust=dof_adjust,
                        stats_cache=stats_cache,
                        encoded=shared_encoded,
                        arena=arena,
                    )
                return local.tester

            def eval_group_local(job: GroupJob, alpha: float | None = None) -> list[bool]:
                u, v, sets = job
                results = tester().test_group(u, v, list(sets))
                if alpha is not None and alpha != tester().alpha:
                    return [r.p_value > alpha for r in results]
                return [r.independent for r in results]

            def eval_group_chunk_local(
                jobs: Sequence[GroupJob], alpha: float | None = None
            ) -> list[list[bool]]:
                return _verdicts(tester(), jobs, alpha)

            def eval_edge_local(job: EdgeJob) -> tuple[int, tuple[int, ...] | None]:
                from ..core.edges import EdgeTask

                u, v, side1, side2, depth = job
                task = EdgeTask(u, v, side1, side2, depth)
                executed = 0
                while not task.done:
                    sets = task.next_group(1)
                    task.advance(1)
                    executed += 1
                    res = tester().test(u, v, sets[0])
                    if res.independent:
                        return executed, res.s
                return executed, None

            self._executor = ThreadPoolExecutor(max_workers=n_jobs)
            self._eval_group_fn = eval_group_local
            self._eval_group_chunk_fn = eval_group_chunk_local
            self._eval_edge_fn = eval_edge_local
        if backend == "process":
            self._eval_group_fn = _eval_group
            self._eval_group_chunk_fn = _eval_group_chunk
            self._eval_edge_fn = _eval_edge

    def eval_groups(
        self, jobs: Sequence[GroupJob], alpha: float | None = None
    ) -> list[list[bool]]:
        """Evaluate group jobs across the pool.

        Group jobs are tiny (an edge id plus a handful of index tuples), so
        one IPC round-trip per job would dominate; jobs are therefore
        shipped in explicit chunks — ``4 * n_jobs`` chunks keep enough
        slack for dynamic balancing — and each chunk is evaluated by *one*
        ``test_groups`` call on the worker, so the fused kernel batches
        table builds across the chunk's edges, not just within each group.
        """
        fn = (
            self._eval_group_chunk_fn
            if alpha is None
            else partial(self._eval_group_chunk_fn, alpha=alpha)
        )
        chunksize = max(1, len(jobs) // (4 * self.n_jobs))
        chunks = [jobs[i : i + chunksize] for i in range(0, len(jobs), chunksize)]
        out: list[list[bool]] = []
        for chunk_verdicts in self._executor.map(fn, chunks):
            out.extend(chunk_verdicts)
        return out

    def eval_edges(
        self, jobs: Sequence[EdgeJob]
    ) -> list[tuple[int, tuple[int, ...] | None]]:
        # Edge-level uses a static block partition (chunksize = block
        # size), reproducing the |Ed|/t dedication of Sec. IV-A.
        return list(
            self._executor.map(
                self._eval_edge_fn, jobs, chunksize=max(1, -(-len(jobs) // self.n_jobs))
            )
        )

    def cache_stats(self) -> list[dict]:
        """Per-worker stats-cache snapshots (process backend only; empty
        when caching is disabled or the backend keeps thread-local caches).

        Probes are claimed by whichever workers are idle, so an
        oversubmitted batch is deduplicated by worker PID; the result is a
        best-effort sample — one exact snapshot per *responding* worker,
        never a double-counted one.
        """
        if self.cache_bytes is None or self.backend != "process":
            return []
        by_pid: dict[int, dict] = {}
        for stats in self._executor.map(
            _run_probe, [_worker_cache_stats] * (4 * self.n_jobs), chunksize=1
        ):
            if stats is not None:
                by_pid[stats["worker_pid"]] = stats
        return list(by_pid.values())

    def arena_stats(self) -> list[dict]:
        """Per-worker kernel-arena snapshots (process backend only).

        Best-effort sampling like :meth:`cache_stats`: one snapshot per
        responding worker, deduplicated by PID.  Used by benches and tests
        to verify steady-state buffer reuse (``n_grows`` plateaus while
        ``n_takes`` keeps climbing).
        """
        if self.backend != "process":
            return []
        by_pid: dict[int, dict] = {}
        for stats in self._executor.map(
            _run_probe, [_worker_arena_stats] * (4 * self.n_jobs), chunksize=1
        ):
            if stats is not None:
                by_pid[stats["worker_pid"]] = stats
        return list(by_pid.values())

    @property
    def uses_shm(self) -> bool:
        """True when workers attach the shared-memory plane (vs. pickled)."""
        return self._shm_export is not None

    def warm_up(self) -> list[dict]:
        """Force worker start-up and report per-worker memory footprints.

        Every responding worker touches its full encoding layer and
        reports ``{worker_pid, private_kb, encoded_nbytes, checksum}``
        (``private_kb`` is ``None`` off Linux).  Deduplicated by PID like
        :meth:`cache_stats`; process backend only (thread workers share
        this process's footprint).
        """
        if self.backend != "process":
            return []
        by_pid: dict[int, dict] = {}
        for stats in self._executor.map(
            _run_probe, [_worker_warm] * (4 * self.n_jobs), chunksize=1
        ):
            by_pid[stats["worker_pid"]] = stats
        return list(by_pid.values())

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)
        # Workers are gone: the creator unlinks the shared plane.  Safe
        # after a worker crash too (BrokenProcessPool leaves shutdown
        # callable, and ShmExport.close is idempotent with a finalizer
        # backstop for pools dropped without shutdown).
        if self._shm_export is not None:
            self._shm_export.close()
            self._shm_export = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _run_probe(fn):
    return fn()
