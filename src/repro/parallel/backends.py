"""Worker-pool plumbing shared by the three parallel granularities.

Process workers are created once per learning run (the paper's OpenMP
threads live for the whole parallel region; re-spawning per depth would be
the "parallel overhead" failure mode).  Each worker builds its own CI tester
from the dataset shipped at initialisation, so no test-time traffic carries
data — only compact ``(edge, conditioning sets)`` descriptions and boolean
verdicts cross the process boundary.

When ``cache_bytes`` is set, every worker additionally keeps a per-process
:class:`~repro.engine.statscache.SufficientStatsCache`.  A pool owned by a
long-lived :class:`~repro.engine.session.LearningSession` then accumulates
sufficient statistics *across* successive ``learn``/``relearn`` calls —
repeated tables are served from worker memory instead of re-scanning the
dataset.  Because p-values do not depend on the significance level, a
relearn at a different alpha reuses the same pool: ``eval_groups`` accepts
an ``alpha`` override and workers re-threshold the cached p-values.

The ``thread`` backend exists for comparison and for the sample-level
scheme (where shared memory matters most); CPython's GIL limits its
speedup, which is documented honestly in EXPERIMENTS.md.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from typing import Sequence

from ..citests.base import ConditionalIndependenceTest
from ..datasets.dataset import DiscreteDataset

__all__ = ["WorkerPool", "GroupJob", "EdgeJob"]

# Module-level worker state (set by the process-pool initializer).
_WORKER_TESTER: ConditionalIndependenceTest | None = None

GroupJob = tuple[int, int, tuple[tuple[int, ...], ...]]
# (u, v, conditioning sets) -> per-set independence verdicts
EdgeJob = tuple[int, int, tuple[int, ...], tuple[int, ...], int]
# (u, v, side1, side2, depth) -> (n_tests_executed, accepting set | None)


def _init_worker(
    dataset: DiscreteDataset | None,
    test: str,
    alpha: float,
    dof_adjust: str,
    cache_bytes: int | None = None,
    encoded=None,
    memoize_encodings: bool = True,
) -> None:
    global _WORKER_TESTER
    from ..core.learn import make_tester
    from ..datasets.encoded import EncodedDataset

    # The encoding layer ships once per worker at pool start (possibly
    # pre-warmed by the master); every job this worker runs then shares
    # the same widened columns and endpoint-pair codes.  Baseline pools
    # pass memoize_encodings=False so workers re-derive encodings per
    # test, like their sequential counterparts.
    if encoded is not None:
        dataset = encoded.dataset
    else:
        encoded = EncodedDataset(dataset, memoize=memoize_encodings)
    stats_cache = None
    if cache_bytes is not None:
        from ..engine.statscache import SufficientStatsCache

        stats_cache = SufficientStatsCache(max_bytes=cache_bytes)
    _WORKER_TESTER = make_tester(
        dataset, test, alpha=alpha, dof_adjust=dof_adjust, stats_cache=stats_cache,
        encoded=encoded,
    )


def _eval_group(job: GroupJob, alpha: float | None = None) -> list[bool]:
    """CI-level work unit: evaluate a group of conditioning sets for one
    edge; returns one verdict per set.

    ``alpha`` overrides the worker tester's significance level for this
    job (exact: the p-value is alpha-free, only the threshold moves).
    """
    assert _WORKER_TESTER is not None, "worker not initialised"
    u, v, sets = job
    results = _WORKER_TESTER.test_group(u, v, list(sets))
    if alpha is not None and alpha != _WORKER_TESTER.alpha:
        return [r.p_value > alpha for r in results]
    return [r.independent for r in results]


def _worker_cache_stats() -> dict | None:
    """Stats of this worker's stats cache (None when caching is off)."""
    assert _WORKER_TESTER is not None, "worker not initialised"
    builder = getattr(_WORKER_TESTER, "_builder", None)
    if builder is None:
        return None
    import os

    out = builder.cache.stats().as_dict()
    out["worker_pid"] = os.getpid()
    return out


def _eval_edge(job: EdgeJob) -> tuple[int, tuple[int, ...] | None]:
    """Edge-level work unit: process one edge task to completion."""
    assert _WORKER_TESTER is not None, "worker not initialised"
    from ..core.edges import EdgeTask

    u, v, side1, side2, depth = job
    task = EdgeTask(u, v, side1, side2, depth)
    executed = 0
    while not task.done:
        sets = task.next_group(1)
        task.advance(1)
        executed += 1
        res = _WORKER_TESTER.test(u, v, sets[0])
        if res.independent:
            return executed, res.s
    return executed, None


class WorkerPool:
    """An executor plus the matching group/edge evaluation callables.

    ``process`` backend: module-level worker functions with per-process
    testers (zero shared state).  ``thread`` backend: closures over
    thread-local testers built lazily per worker thread (the dataset arrays
    are shared read-only, as OpenMP threads would share them).

    ``cache_bytes`` gives each worker a byte-budgeted sufficient-statistics
    cache (see module docstring); ``None`` keeps the seed behaviour.
    ``encoded`` optionally ships a (possibly pre-warmed)
    :class:`~repro.datasets.encoded.EncodedDataset` to every worker at pool
    start, so all jobs of a worker share one encoding layer; without it,
    each worker builds a fresh layer over the shipped dataset.
    """

    def __init__(
        self,
        dataset: DiscreteDataset,
        n_jobs: int,
        backend: str = "process",
        test: str = "g2",
        alpha: float = 0.05,
        dof_adjust: str = "structural",
        cache_bytes: int | None = None,
        encoded=None,
        memoize_encodings: bool = True,
    ) -> None:
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if backend not in ("process", "thread"):
            raise ValueError("backend must be 'process' or 'thread'")
        if encoded is not None and encoded.dataset is not dataset:
            raise ValueError("encoded layer must wrap the pool's dataset")
        self.n_jobs = n_jobs
        self.backend = backend
        self.alpha = float(alpha)
        self.cache_bytes = cache_bytes
        self._executor: Executor
        if backend == "process":
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = multiprocessing.get_context("spawn")
            # Ship the dataset exactly once: inside the encoding layer when
            # one is given, bare otherwise.
            initargs = (
                (None, test, alpha, dof_adjust, cache_bytes, encoded, True)
                if encoded is not None
                else (dataset, test, alpha, dof_adjust, cache_bytes, None, memoize_encodings)
            )
            self._executor = ProcessPoolExecutor(
                max_workers=n_jobs,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=initargs,
            )
        else:
            import threading

            from ..datasets.encoded import EncodedDataset

            local = threading.local()
            # Thread workers share the dataset arrays read-only (as OpenMP
            # threads would); they share one encoding layer the same way.
            shared_encoded = (
                encoded
                if encoded is not None
                else EncodedDataset(dataset, memoize=memoize_encodings)
            )

            def tester() -> ConditionalIndependenceTest:
                if not hasattr(local, "tester"):
                    from ..core.learn import make_tester

                    stats_cache = None
                    if cache_bytes is not None:
                        from ..engine.statscache import SufficientStatsCache

                        stats_cache = SufficientStatsCache(max_bytes=cache_bytes)
                    local.tester = make_tester(
                        dataset,
                        test,
                        alpha=alpha,
                        dof_adjust=dof_adjust,
                        stats_cache=stats_cache,
                        encoded=shared_encoded,
                    )
                return local.tester

            def eval_group_local(job: GroupJob, alpha: float | None = None) -> list[bool]:
                u, v, sets = job
                results = tester().test_group(u, v, list(sets))
                if alpha is not None and alpha != tester().alpha:
                    return [r.p_value > alpha for r in results]
                return [r.independent for r in results]

            def eval_edge_local(job: EdgeJob) -> tuple[int, tuple[int, ...] | None]:
                from ..core.edges import EdgeTask

                u, v, side1, side2, depth = job
                task = EdgeTask(u, v, side1, side2, depth)
                executed = 0
                while not task.done:
                    sets = task.next_group(1)
                    task.advance(1)
                    executed += 1
                    res = tester().test(u, v, sets[0])
                    if res.independent:
                        return executed, res.s
                return executed, None

            self._executor = ThreadPoolExecutor(max_workers=n_jobs)
            self._eval_group_fn = eval_group_local
            self._eval_edge_fn = eval_edge_local
        if backend == "process":
            self._eval_group_fn = _eval_group
            self._eval_edge_fn = _eval_edge

    def eval_groups(
        self, jobs: Sequence[GroupJob], alpha: float | None = None
    ) -> list[list[bool]]:
        """Evaluate group jobs across the pool.

        Group jobs are tiny (an edge id plus a handful of index tuples), so
        one IPC round-trip per job would dominate; batching several jobs
        per submission amortises it, like ``eval_edges`` already does.
        ``4 * n_jobs`` chunks keep enough slack for dynamic balancing.
        """
        fn = self._eval_group_fn if alpha is None else partial(self._eval_group_fn, alpha=alpha)
        chunksize = max(1, len(jobs) // (4 * self.n_jobs))
        return list(self._executor.map(fn, jobs, chunksize=chunksize))

    def eval_edges(
        self, jobs: Sequence[EdgeJob]
    ) -> list[tuple[int, tuple[int, ...] | None]]:
        # Edge-level uses a static block partition (chunksize = block
        # size), reproducing the |Ed|/t dedication of Sec. IV-A.
        return list(
            self._executor.map(
                self._eval_edge_fn, jobs, chunksize=max(1, -(-len(jobs) // self.n_jobs))
            )
        )

    def cache_stats(self) -> list[dict]:
        """Per-worker stats-cache snapshots (process backend only; empty
        when caching is disabled or the backend keeps thread-local caches).

        Probes are claimed by whichever workers are idle, so an
        oversubmitted batch is deduplicated by worker PID; the result is a
        best-effort sample — one exact snapshot per *responding* worker,
        never a double-counted one.
        """
        if self.cache_bytes is None or self.backend != "process":
            return []
        by_pid: dict[int, dict] = {}
        for stats in self._executor.map(
            _run_probe, [_worker_cache_stats] * (4 * self.n_jobs), chunksize=1
        ):
            if stats is not None:
                by_pid[stats["worker_pid"]] = stats
        return list(by_pid.values())

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _run_probe(fn):
    return fn()
