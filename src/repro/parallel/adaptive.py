"""Adaptive CI-test group sizing for the dynamic work pool.

The paper treats the group size ``gs`` as a tuning constant (Fig. 4: too
small pays one scheduling round-trip per CI test, too large wastes tests
past the first accepting conditioning set).  One constant cannot be right
everywhere, though — the profitable group size depends on where in the run
a work item sits:

* **depth** — depth 0 has exactly one marginal test per edge (grouping is
  meaningless); deeper tests cost more per test, so the same latency
  budget buys fewer of them;
* **adjacency size** — hub edges own combinatorially many conditioning
  sets and amortise large groups well, leaf edges exhaust after a few;
* **arity** — high-arity endpoints build larger contingency tables per
  test, shifting the overhead/compute balance;
* **pool pressure** — at the tail of a depth there are fewer live edges
  than workers, and big groups serialise the stragglers.

:class:`AdaptiveGroupScheduler` picks a group size per work item from live
perf counters instead: work items are bucketed by
``(depth, adjacency class, arity class)``, every completed group feeds its
observed waste ratio (tests executed past the first accepting set) and its
worker-seconds share back into the bucket, and the bucket's group size
moves multiplicatively — halved when waste exceeds ``waste_shrink``,
doubled when waste stays under ``waste_grow`` *and* the group's cost still
fits the latency target.  The groups feed the same batched
:func:`~repro.citests.contingency.group_ci_counts` kernel either way, so a
bigger group also means a wider (more efficient) kernel invocation.

**Adaptivity never changes results.**  The CI-level scheduler defers edge
removal to the end of the depth and breaks accepting-set ties by work-item
rank, both of which are group-size independent, so skeletons, separating
sets and p-values are bit-identical to any fixed-``gs`` run (property
covered by ``tests/test_adaptive.py``); only the executed-test count and
the scheduling overhead move.  ``gs="auto"`` anywhere a group size is
accepted (:func:`repro.core.learn.learn_structure`,
:meth:`repro.engine.session.LearningSession.learn`, the CLI) resolves to
this scheduler on the CI-level parallel path and to
:data:`DEFAULT_SEED_GS` on the sequential path.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "AdaptiveGroupScheduler",
    "BucketState",
    "resolve_gs",
    "resolve_fixed_gs",
    "DEFAULT_SEED_GS",
]

#: Starting group size of every bucket (the paper's Fig. 4 sweet spot for
#: mid-size networks), and what ``gs="auto"`` means for engines that need
#: one fixed value (the sequential skeleton loop).
DEFAULT_SEED_GS = 4


@dataclass
class BucketState:
    """Live counters of one ``(depth, adjacency, arity)`` bucket."""

    gs: int
    ewma_waste: float = 0.0
    ewma_accept: float = 0.0
    ewma_group_s: float = 0.0
    n_groups: int = 0
    n_tests: int = 0
    n_wasted: int = 0

    def as_dict(self) -> dict:
        return {
            "gs": self.gs,
            "ewma_waste": round(self.ewma_waste, 4),
            "ewma_accept": round(self.ewma_accept, 4),
            "ewma_group_s": self.ewma_group_s,
            "n_groups": self.n_groups,
            "n_tests": self.n_tests,
            "n_wasted": self.n_wasted,
        }


class AdaptiveGroupScheduler:
    """Pick per-work-item group sizes from live counters (module docstring).

    Parameters
    ----------
    arities:
        Per-variable category counts; enables the arity dimension of the
        bucketing (omitted: all edges share one arity class).
    min_gs, max_gs:
        Clamp of every bucket's group size.
    seed_gs:
        Initial group size of a fresh bucket.
    waste_shrink, waste_grow:
        EWMA waste-ratio thresholds: above ``waste_shrink`` the bucket
        halves, below ``waste_grow`` (cheap groups only) it doubles.
    target_group_seconds:
        Latency ceiling per group: a bucket stops doubling once its
        estimated per-group worker-seconds share would cross this (keeps
        the dynamic pool's load balancing fine-grained enough).
    ewma:
        Smoothing factor of the waste/latency averages, in ``(0, 1]``;
        higher weights the latest observation more.
    """

    def __init__(
        self,
        arities=None,
        min_gs: int = 1,
        max_gs: int = 32,
        seed_gs: int = DEFAULT_SEED_GS,
        waste_shrink: float = 0.30,
        waste_grow: float = 0.10,
        target_group_seconds: float = 0.02,
        ewma: float = 0.5,
    ) -> None:
        if not 1 <= min_gs <= seed_gs <= max_gs:
            raise ValueError("need 1 <= min_gs <= seed_gs <= max_gs")
        if not 0.0 <= waste_grow < waste_shrink <= 1.0:
            raise ValueError("need 0 <= waste_grow < waste_shrink <= 1")
        if not 0.0 < ewma <= 1.0:
            raise ValueError("ewma must be in (0, 1]")
        self.arities = None if arities is None else tuple(int(a) for a in arities)
        self.min_gs = int(min_gs)
        self.max_gs = int(max_gs)
        self.seed_gs = int(seed_gs)
        self.waste_shrink = float(waste_shrink)
        self.waste_grow = float(waste_grow)
        self.target_group_seconds = float(target_group_seconds)
        self.ewma = float(ewma)
        self.buckets: dict[tuple[int, int, int], BucketState] = {}

    # ------------------------------------------------------------------ #
    # bucketing
    # ------------------------------------------------------------------ #
    def bucket_key(self, task) -> tuple[int, int, int]:
        """``(depth, adjacency class, arity class)`` of a work item.

        Classes are logarithmic (``bit_length``) so the table stays tiny
        while separating leaf edges from hubs and binary variables from
        high-arity ones.
        """
        adj_class = (len(task.side1) + len(task.side2)).bit_length()
        if self.arities is None:
            arity_class = 0
        else:
            arity_class = (self.arities[task.u] * self.arities[task.v]).bit_length()
        return (task.depth, adj_class, arity_class)

    def _bucket(self, task) -> BucketState:
        key = self.bucket_key(task)
        state = self.buckets.get(key)
        if state is None:
            # Depth 0 is one marginal test per edge; grouping buys nothing.
            seed = 1 if task.depth == 0 else min(self.seed_gs, self.max_gs)
            state = BucketState(gs=max(self.min_gs, seed))
            self.buckets[key] = state
        return state

    # ------------------------------------------------------------------ #
    # decisions & feedback
    # ------------------------------------------------------------------ #
    def gs_for(self, task, n_pending: int | None = None, n_workers: int | None = None) -> int:
        """Group size for ``task``'s next scheduling round.

        ``n_pending``/``n_workers`` enable the tail guard: when fewer work
        items remain than workers, smaller groups keep every worker fed
        instead of serialising the stragglers.
        """
        gs = self._bucket(task).gs
        if (
            n_pending is not None
            and n_workers is not None
            and n_pending < n_workers
            and gs > self.min_gs
        ):
            gs = max(self.min_gs, gs // 2)
        return gs

    def observe(self, task, n_sets: int, first_accept: int, elapsed_s: float) -> None:
        """Feed one completed group back into its bucket.

        ``first_accept`` is the index of the first accepting conditioning
        set within the group (``-1``: none accepted); every test after it
        was wasted work the early-termination of a smaller group would
        have skipped.  ``elapsed_s`` is the group's worker-seconds share.
        """
        if n_sets < 1:
            return
        state = self._bucket(task)
        wasted = (n_sets - 1 - first_accept) if first_accept >= 0 else 0
        state.n_groups += 1
        state.n_tests += n_sets
        state.n_wasted += wasted
        a = self.ewma
        state.ewma_waste += a * (wasted / n_sets - state.ewma_waste)
        state.ewma_accept += a * ((1.0 if first_accept >= 0 else 0.0) - state.ewma_accept)
        # Normalise the latency signal to the bucket's nominal group size
        # (a tail-guard or end-of-edge group is smaller than gs).
        per_test_s = elapsed_s / n_sets
        state.ewma_group_s += a * (per_test_s * state.gs - state.ewma_group_s)
        if state.n_groups < 2:
            return
        if state.ewma_waste > self.waste_shrink and state.gs > self.min_gs:
            state.gs = max(self.min_gs, state.gs // 2)
        elif (
            state.ewma_waste < self.waste_grow
            # Waste is only *observable* on acceptance, so a bucket at
            # gs=1 always reports zero waste; frequently-accepting
            # buckets must not grow on that blind spot (a doubled group
            # would turn every acceptance into wasted tail tests).
            and state.ewma_accept < 0.5
            and state.gs < self.max_gs
            and 2.0 * state.ewma_group_s <= self.target_group_seconds
        ):
            state.gs = min(self.max_gs, state.gs * 2)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def arena_hint(self, n_samples: int, chunk_groups: int = 4) -> dict:
        """Kernel-arena prewarm hint derived from the live bucket mix.

        Sizes the fused kernel's big per-worker buffers (cell matrix and
        endpoint gather, see :mod:`repro.citests.tablebase`) for a dispatch
        chunk of ``chunk_groups`` groups at the largest group size any
        bucket currently runs.  Purely an allocation warm-up: a wrong hint
        costs at most a few buffer growth copies, never correctness.
        """
        rows = max((s.gs for s in self.buckets.values()), default=self.seed_gs)
        n = min(rows * chunk_groups * max(int(n_samples), 1), 1 << 24)
        # "<i4" matches the common cell dtype (wave histograms stay well
        # under 2^31 cells); larger waves grow an int64 slot on demand.
        return {"cells": (n, "<i4"), "xygather": (n, "<i4")}

    def summary(self) -> dict:
        """Aggregate + per-bucket counters (diagnostics, benches, tests)."""
        n_tests = sum(s.n_tests for s in self.buckets.values())
        n_wasted = sum(s.n_wasted for s in self.buckets.values())
        return {
            "n_buckets": len(self.buckets),
            "n_groups": sum(s.n_groups for s in self.buckets.values()),
            "n_tests": n_tests,
            "n_wasted": n_wasted,
            "waste_ratio": (n_wasted / n_tests) if n_tests else 0.0,
            "buckets": {
                f"d{d}/adj{a}/ar{r}": s.as_dict()
                for (d, a, r), s in sorted(self.buckets.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdaptiveGroupScheduler(n_buckets={len(self.buckets)}, "
            f"seed_gs={self.seed_gs}, max_gs={self.max_gs})"
        )


def resolve_gs(gs, arities=None):
    """Normalise a ``gs`` argument into ``int`` or a scheduler.

    ``int`` passes through (validated), ``"auto"`` builds a fresh
    :class:`AdaptiveGroupScheduler`, and an existing scheduler instance is
    used as-is (callers may share one across depths or inspect it after
    the run).
    """
    if isinstance(gs, AdaptiveGroupScheduler):
        return gs
    if isinstance(gs, str):
        if gs == "auto":
            return AdaptiveGroupScheduler(arities=arities)
        raise ValueError(f"gs must be a positive int, 'auto', or a scheduler; got {gs!r}")
    gs = int(gs)
    if gs < 1:
        raise ValueError("gs must be >= 1")
    return gs


def resolve_fixed_gs(gs) -> int:
    """Normalise a ``gs`` argument for engines that need one fixed size.

    The sequential skeleton loop (and any non-CI granularity) consumes no
    live counters, so adaptive spellings resolve to their fixed
    equivalents instead of building a scheduler: ``"auto"`` becomes
    :data:`DEFAULT_SEED_GS`, a scheduler instance contributes its
    ``seed_gs``, ints validate and pass through.
    """
    if isinstance(gs, AdaptiveGroupScheduler):
        return int(gs.seed_gs)
    if isinstance(gs, str):
        if gs == "auto":
            return DEFAULT_SEED_GS
        raise ValueError(f"gs must be a positive int, 'auto', or a scheduler; got {gs!r}")
    gs = int(gs)
    if gs < 1:
        raise ValueError("gs must be >= 1")
    return gs
