"""Parallel skeleton-phase backends (edge-, sample- and CI-level).

All three granularities of Fig. 1 are implemented and produce output
identical to the sequential engine; they differ only in scheduling, which is
the property under study.  See the individual modules for the faithfulness
notes of each scheme.

Beyond the paper, this package adds the two serving-scale mechanisms of
the zero-copy PR: process workers attach the dataset through the
shared-memory plane (:mod:`repro.datasets.shm`, automatic with pickle
fallback), and the CI-level scheme accepts ``gs="auto"`` — an
:class:`~repro.parallel.adaptive.AdaptiveGroupScheduler` that re-sizes
CI-test groups per work item from live perf counters, feeding the batched
group kernel.  Neither changes any result bit.
"""

from __future__ import annotations

from ..citests.base import ConditionalIndependenceTest
from ..core.result import SkeletonStats
from ..core.sepsets import SepSetStore
from ..core.trace import TraceRecorder
from ..datasets.dataset import DiscreteDataset
from ..graphs.undirected import UndirectedGraph
from .adaptive import AdaptiveGroupScheduler, resolve_gs
from .backends import WorkerPool
from .ci_level import ci_level_skeleton
from .edge_level import edge_level_skeleton
from .sample_level import sample_level_skeleton

__all__ = [
    "WorkerPool",
    "AdaptiveGroupScheduler",
    "resolve_gs",
    "ci_level_skeleton",
    "edge_level_skeleton",
    "sample_level_skeleton",
    "run_parallel_skeleton",
]


def run_parallel_skeleton(
    dataset: DiscreteDataset,
    tester: ConditionalIndependenceTest,
    parallelism: str = "ci",
    n_jobs: int = 2,
    backend: str = "process",
    gs: int | str | AdaptiveGroupScheduler = 1,
    group_endpoints: bool = True,
    max_depth: int | None = None,
    alpha: float = 0.05,
    test: str = "g2",
    dof_adjust: str = "structural",
    recorder: TraceRecorder | None = None,
    batch_factor: int = 4,
    memoize_encodings: bool = True,
    use_shm: bool | None = None,
) -> tuple[UndirectedGraph, SepSetStore, SkeletonStats]:
    """Dispatch the skeleton phase to the requested parallel granularity.

    ``tester`` is only consulted for configuration defaults (workers build
    their own testers); pass the same ``test``/``alpha``/``dof_adjust`` the
    sequential run would use.  ``memoize_encodings=False`` makes every
    worker re-derive encodings per test — the baseline regime (mirrors the
    sequential baselines in :func:`repro.core.learn.learn_structure`).
    ``gs`` accepts a fixed size, ``"auto"`` or a scheduler (CI-level only);
    ``use_shm`` is forwarded to the :class:`WorkerPool` dataset transport.
    """
    del tester  # workers rebuild their own testers; kept for API symmetry
    if parallelism not in ("ci", "edge", "sample"):
        raise ValueError(f"unknown parallelism {parallelism!r}")
    if parallelism == "sample":
        return sample_level_skeleton(
            dataset,
            dataset.n_variables,
            n_jobs=n_jobs,
            backend=backend,
            alpha=alpha,
            dof_adjust=dof_adjust,
            group_endpoints=group_endpoints,
            max_depth=max_depth,
            recorder=recorder,
            use_shm=use_shm,
        )
    arena_hint = None
    if parallelism == "ci":
        # Resolve gs up front so the workers' kernel arenas can be
        # prewarmed for the group sizes this run will actually dispatch
        # (adaptive: live bucket mix; fixed: gs times the chunking factor).
        gs = resolve_gs(
            gs, arities=tuple(int(dataset.arity(i)) for i in range(dataset.n_variables))
        )
        if isinstance(gs, AdaptiveGroupScheduler):
            arena_hint = gs.arena_hint(dataset.n_samples)
        else:
            n = min(max(int(gs), 1) * 4 * max(dataset.n_samples, 1), 1 << 24)
            arena_hint = {"cells": (n, "<i4"), "xygather": (n, "<i4")}
    with WorkerPool(
        dataset,
        n_jobs,
        backend=backend,
        test=test,
        alpha=alpha,
        dof_adjust=dof_adjust,
        memoize_encodings=memoize_encodings,
        use_shm=use_shm,
        arena_hint=arena_hint,
    ) as workers:
        if parallelism == "ci":
            return ci_level_skeleton(
                workers,
                dataset.n_variables,
                gs=gs,
                group_endpoints=group_endpoints,
                max_depth=max_depth,
                batch_factor=batch_factor,
                recorder=recorder,
                n_samples=dataset.n_samples,
            )
        return edge_level_skeleton(
            workers,
            dataset.n_variables,
            group_endpoints=group_endpoints,
            max_depth=max_depth,
            recorder=recorder,
        )
